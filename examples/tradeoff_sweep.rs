//! Speed–quality trade-off sweep (the paper's Figures 2 and 3).
//!
//! Sweeps LAF-DBSCAN's error factor α and DBSCAN++ / LAF-DBSCAN++'s sample
//! fraction and prints `(time, AMI)` points: exactly the curves the paper
//! plots. Larger α skips more range queries (faster) at the cost of more
//! false negatives (lower AMI).
//!
//! ```bash
//! cargo run --release --example tradeoff_sweep
//! ```

use laf::prelude::*;
use std::time::Instant;

fn main() {
    let (data, _) = EmbeddingMixtureConfig {
        n_points: 1_200,
        dim: 48,
        clusters: 15,
        spread: 0.08,
        noise_fraction: 0.3,
        seed: 17,
        ..Default::default()
    }
    .generate()
    .expect("valid generator config");

    let eps = 0.35;
    let tau = 3;

    let truth = Dbscan::with_params(eps, tau).cluster(&data);
    println!(
        "ground truth: {} clusters, noise ratio {:.2}",
        truth.n_clusters(),
        truth.stats().noise_ratio()
    );

    let training = TrainingSetBuilder {
        max_queries: Some(400),
        ..Default::default()
    }
    .build(&data, &data)
    .expect("training set");
    let estimator = MlpEstimator::train(&training, &NetConfig::small());

    // LAF-DBSCAN: sweep the error factor α (the paper varies 1.1–15).
    println!("\nLAF-DBSCAN trade-off (varying alpha):");
    println!(
        "{:>7} {:>10} {:>8} {:>8} {:>14}",
        "alpha", "time (s)", "ARI", "AMI", "skipped"
    );
    for alpha in [0.5f32, 1.0, 1.5, 2.0, 3.0, 5.0, 8.0, 12.0] {
        let laf = LafDbscan::new(LafConfig::new(eps, tau, alpha), &estimator);
        let started = Instant::now();
        let (result, stats) = laf.cluster_with_stats(&data);
        let secs = started.elapsed().as_secs_f64();
        println!(
            "{:>7.1} {:>10.3} {:>8.4} {:>8.4} {:>13.1}%",
            alpha,
            secs,
            adjusted_rand_index(truth.labels(), result.labels()),
            adjusted_mutual_information(truth.labels(), result.labels()),
            100.0 * stats.skip_ratio()
        );
    }

    // DBSCAN++ vs LAF-DBSCAN++: sweep the sample fraction offset δ.
    println!("\nDBSCAN++ vs LAF-DBSCAN++ trade-off (varying delta / sample fraction):");
    println!(
        "{:>7} {:>16} {:>8} {:>18} {:>8}",
        "delta", "DBSCAN++ time(s)", "AMI", "LAF-DBSCAN++ time(s)", "AMI"
    );
    for delta in [0.1f64, 0.2, 0.3, 0.5, 0.7, 0.9] {
        let started = Instant::now();
        let pp = DbscanPlusPlus::with_params(eps, tau, delta.min(1.0)).cluster(&data);
        let pp_time = started.elapsed().as_secs_f64();
        let pp_ami = adjusted_mutual_information(truth.labels(), pp.labels());

        let laf_pp = LafDbscanPlusPlus::new(
            LafDbscanPlusPlusConfig::new(eps, tau, delta.min(0.3)),
            &estimator,
        );
        let started = Instant::now();
        let lpp = laf_pp.cluster(&data);
        let lpp_time = started.elapsed().as_secs_f64();
        let lpp_ami = adjusted_mutual_information(truth.labels(), lpp.labels());

        println!(
            "{:>7.1} {:>16.3} {:>8.4} {:>18.3} {:>8.4}",
            delta, pp_time, pp_ami, lpp_time, lpp_ami
        );
    }

    println!(
        "\n(the paper's conclusion — the LAF variants dominate the high-quality region of the \
         trade-off — shows up as LAF rows reaching comparable AMI in less time.)"
    );
}
