//! Generate / verify the committed **format-v1 golden snapshot fixture**.
//!
//! `tests/fixtures/golden_v1.lafs` is a version-1 snapshot committed to the
//! repository together with a `.labels` sidecar recording the clustering the
//! generating process observed. CI (and the `golden_v1` integration test)
//! loads the fixture through the current reader and asserts the labels still
//! match byte for byte — so a change that breaks v1 backward compatibility
//! fails the build instead of breaking deployed serving fleets.
//!
//! ```bash
//! # Verify the committed fixture against the current reader (what CI runs):
//! cargo run --release -p laf --example golden_fixture -- check tests/fixtures/golden_v1.lafs
//!
//! # Regenerate the fixture (only needed if the training pipeline itself
//! # changes deliberately — the file is deterministic for a given source
//! # tree, so a diff here is a compatibility decision, not noise):
//! cargo run --release -p laf --example golden_fixture -- gen tests/fixtures/golden_v1.lafs
//! ```

use laf::prelude::*;

/// Fixed, deterministic training inputs: everything is seeded, so `gen`
/// produces identical bytes on every run of the same source tree.
fn fixture_pipeline() -> LafPipeline {
    let (data, _) = EmbeddingMixtureConfig {
        n_points: 160,
        dim: 8,
        clusters: 3,
        noise_fraction: 0.15,
        seed: 7,
        ..Default::default()
    }
    .generate()
    .expect("valid fixture dataset config");
    LafPipeline::builder(LafConfig::new(0.3, 4, 1.2))
        .net(NetConfig::tiny())
        .training(TrainingSetBuilder {
            max_queries: Some(60),
            ..Default::default()
        })
        .train(data)
        .expect("fixture training")
}

fn labels_sidecar(path: &str) -> String {
    format!("{path}.labels")
}

fn gen(path: &str) {
    let pipeline = fixture_pipeline();
    let snapshot = pipeline.into_snapshot();
    let bytes = snapshot.encode_v1().expect("v1 encode");
    std::fs::write(path, &bytes).expect("write fixture");
    // Record the labels the v1-era pipeline produces so `check` can assert
    // the current reader reproduces them exactly.
    let (clustering, _) = LafPipeline::from_snapshot(snapshot).cluster_with_stats();
    let mut label_bytes = Vec::with_capacity(clustering.len() * 8);
    for &l in clustering.labels() {
        label_bytes.extend_from_slice(&l.to_le_bytes());
    }
    std::fs::write(labels_sidecar(path), label_bytes).expect("write labels sidecar");
    println!(
        "[gen] wrote v1 fixture {path} ({} bytes) and sidecar ({} labels)",
        bytes.len(),
        clustering.len()
    );
}

fn check(path: &str) {
    let pipeline = load_snapshot(path).expect("golden v1 fixture must load");
    assert!(
        pipeline.persisted_engine().is_none(),
        "a v1 snapshot carries no engine section; the fallback path must be exercised"
    );
    let (clustering, stats) = pipeline.cluster_with_stats();
    let sidecar = std::fs::read(labels_sidecar(path)).expect("labels sidecar");
    let reference: Vec<i64> = sidecar
        .chunks_exact(8)
        .map(|c| i64::from_le_bytes(c.try_into().expect("8-byte chunk")))
        .collect();
    assert_eq!(
        clustering.labels(),
        reference.as_slice(),
        "v1 backward compatibility broken: labels differ from the committed sidecar"
    );
    println!(
        "[check] OK: v1 fixture loads via the fallback path; {} labels byte-identical \
         ({} clusters, {} skipped / {} executed queries)",
        reference.len(),
        clustering.n_clusters(),
        stats.skipped_range_queries,
        stats.executed_range_queries
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.as_slice() {
        [mode, path] if mode == "gen" => gen(path),
        [mode, path] if mode == "check" => check(path),
        _ => {
            eprintln!("usage: golden_fixture [gen <fixture.lafs> | check <fixture.lafs>]");
            std::process::exit(2);
        }
    }
}
