//! Generate / verify the committed **golden snapshot fixtures**.
//!
//! `tests/fixtures/golden_v1.lafs` is a version-1 snapshot committed to the
//! repository together with a `.labels` sidecar recording the clustering the
//! generating process observed. CI (and the `golden_v1` integration test)
//! loads the fixture through the current reader and asserts the labels still
//! match byte for byte — so a change that breaks v1 backward compatibility
//! fails the build instead of breaking deployed serving fleets.
//!
//! `tests/fixtures/golden_v4.lafs` (unsharded) and
//! `tests/fixtures/golden_v4_sharded.lafs` (3 shards, per-shard engines) pin
//! the **current** format the same way for the `golden_v4` integration test:
//! the sharded fixture is the compatibility contract for every deployed
//! scatter-gather snapshot.
//!
//! ```bash
//! # Verify the committed fixtures against the current reader (what CI runs):
//! cargo run --release -p laf --example golden_fixture -- check tests/fixtures/golden_v1.lafs
//! cargo run --release -p laf --example golden_fixture -- check-v4 tests/fixtures/golden_v4_sharded.lafs
//!
//! # Regenerate a fixture (only needed if the training pipeline itself
//! # changes deliberately — the files are deterministic for a given source
//! # tree, so a diff here is a compatibility decision, not noise):
//! cargo run --release -p laf --example golden_fixture -- gen tests/fixtures/golden_v1.lafs
//! cargo run --release -p laf --example golden_fixture -- gen-v4 tests/fixtures/golden_v4.lafs
//! cargo run --release -p laf --example golden_fixture -- gen-v4-sharded tests/fixtures/golden_v4_sharded.lafs
//! ```

use laf::prelude::*;

/// Fixed, deterministic training inputs: everything is seeded, so `gen`
/// produces identical bytes on every run of the same source tree. `shards`
/// ≥ 2 produces a sharded pipeline (format v4's manifest layout); the v4
/// fixtures use a grid engine so the per-shard engine sections carry real
/// persisted structure.
fn fixture_pipeline(shards: usize, grid: bool) -> LafPipeline {
    let (data, _) = EmbeddingMixtureConfig {
        n_points: 160,
        dim: 8,
        clusters: 3,
        noise_fraction: 0.15,
        seed: 7,
        ..Default::default()
    }
    .generate()
    .expect("valid fixture dataset config");
    let mut config = LafConfig::new(0.3, 4, 1.2);
    if grid {
        config.engine = EngineChoice::Grid { cell_side: 0.3 };
    }
    LafPipeline::builder(config)
        .net(NetConfig::tiny())
        .training(TrainingSetBuilder {
            max_queries: Some(60),
            ..Default::default()
        })
        .shards(shards)
        .train(data)
        .expect("fixture training")
}

fn labels_sidecar(path: &str) -> String {
    format!("{path}.labels")
}

fn write_labels_sidecar(path: &str, labels: &[i64]) {
    let mut label_bytes = Vec::with_capacity(labels.len() * 8);
    for &l in labels {
        label_bytes.extend_from_slice(&l.to_le_bytes());
    }
    std::fs::write(labels_sidecar(path), label_bytes).expect("write labels sidecar");
}

fn read_labels_sidecar(path: &str) -> Vec<i64> {
    let sidecar = std::fs::read(labels_sidecar(path)).expect("labels sidecar");
    sidecar
        .chunks_exact(8)
        .map(|c| i64::from_le_bytes(c.try_into().expect("8-byte chunk")))
        .collect()
}

fn gen(path: &str) {
    let pipeline = fixture_pipeline(1, false);
    let snapshot = pipeline.into_snapshot();
    let bytes = snapshot.encode_v1().expect("v1 encode");
    std::fs::write(path, &bytes).expect("write fixture");
    // Record the labels the v1-era pipeline produces so `check` can assert
    // the current reader reproduces them exactly.
    let (clustering, _) = LafPipeline::from_snapshot(snapshot).cluster_with_stats();
    write_labels_sidecar(path, clustering.labels());
    println!(
        "[gen] wrote v1 fixture {path} ({} bytes) and sidecar ({} labels)",
        bytes.len(),
        clustering.len()
    );
}

fn gen_v4(path: &str, shards: usize) {
    let pipeline = fixture_pipeline(shards, true);
    pipeline.save(path).expect("write v4 fixture");
    let (clustering, _) = pipeline.cluster_with_stats();
    write_labels_sidecar(path, clustering.labels());
    let n_shards = pipeline.snapshot_arc().shards.len();
    println!(
        "[gen-v4] wrote v4 fixture {path} ({} bytes, {} shard sections) and sidecar ({} labels)",
        std::fs::metadata(path).expect("fixture size").len(),
        n_shards,
        clustering.len()
    );
}

fn check_v4(path: &str) {
    let reference = read_labels_sidecar(path);
    // Both warm-start paths must decode the fixture and reproduce the
    // committed labels byte for byte.
    for (name, pipeline) in [
        (
            "load",
            load_snapshot(path).expect("golden v4 fixture must load"),
        ),
        (
            "load_mmap",
            load_snapshot_mmap(path).expect("golden v4 fixture must mmap"),
        ),
    ] {
        let snapshot = pipeline.snapshot_arc();
        let sharded = !snapshot.shards.is_empty();
        if sharded {
            assert!(
                snapshot.shards.iter().all(|s| s.engine.is_some()),
                "every shard of the sharded fixture carries a persisted engine"
            );
        }
        let (clustering, _) = pipeline.cluster_with_stats();
        assert_eq!(
            clustering.labels(),
            reference.as_slice(),
            "v4 compatibility broken ({name}): labels differ from the committed sidecar"
        );
    }
    println!(
        "[check-v4] OK: {path} decodes via both warm-start paths; {} labels byte-identical",
        reference.len()
    );
}

fn check(path: &str) {
    let pipeline = load_snapshot(path).expect("golden v1 fixture must load");
    assert!(
        pipeline.persisted_engine().is_none(),
        "a v1 snapshot carries no engine section; the fallback path must be exercised"
    );
    let (clustering, stats) = pipeline.cluster_with_stats();
    let reference = read_labels_sidecar(path);
    assert_eq!(
        clustering.labels(),
        reference.as_slice(),
        "v1 backward compatibility broken: labels differ from the committed sidecar"
    );
    println!(
        "[check] OK: v1 fixture loads via the fallback path; {} labels byte-identical \
         ({} clusters, {} skipped / {} executed queries)",
        reference.len(),
        clustering.n_clusters(),
        stats.skipped_range_queries,
        stats.executed_range_queries
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.as_slice() {
        [mode, path] if mode == "gen" => gen(path),
        [mode, path] if mode == "check" => check(path),
        [mode, path] if mode == "gen-v4" => gen_v4(path, 1),
        [mode, path] if mode == "gen-v4-sharded" => gen_v4(path, 3),
        [mode, path] if mode == "check-v4" => check_v4(path),
        _ => {
            eprintln!(
                "usage: golden_fixture \
                 [gen | check | gen-v4 | gen-v4-sharded | check-v4] <fixture.lafs>"
            );
            std::process::exit(2);
        }
    }
}
