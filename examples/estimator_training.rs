//! Cardinality-estimator comparison: exact oracle, RMI, single MLP,
//! sampling and histogram baselines.
//!
//! The paper's framework is agnostic to the estimator; this example shows how
//! the different estimators in `laf-cardest` trade accuracy (mean q-error
//! against the exact counts) for prediction cost, which is what ultimately
//! drives LAF's speed-quality trade-off.
//!
//! ```bash
//! cargo run --release --example estimator_training
//! ```

use laf::prelude::*;
use std::time::Instant;

/// Mean q-error (max(pred, true)/min(pred, true), with 0 mapped to 1) over a
/// set of held-out queries.
fn mean_q_error(
    estimator: &dyn CardinalityEstimator,
    oracle: &ExactEstimator<'_>,
    queries: &Dataset,
    eps: f32,
) -> f64 {
    let mut total = 0.0f64;
    let mut count = 0usize;
    for q in queries.rows() {
        let predicted = estimator.estimate(q, eps).max(0.0) as f64 + 1.0;
        let truth = oracle.estimate(q, eps) as f64 + 1.0;
        total += (predicted.max(truth)) / (predicted.min(truth));
        count += 1;
    }
    total / count.max(1) as f64
}

fn main() {
    let (data, _) = EmbeddingMixtureConfig {
        n_points: 1_500,
        dim: 48,
        clusters: 12,
        spread: 0.08,
        noise_fraction: 0.3,
        seed: 5,
        ..Default::default()
    }
    .generate()
    .expect("valid generator config");

    let mut rng = rand::rngs::StdRng::seed_from_u64(11);
    use rand::SeedableRng;
    let (train, test) = data.train_test_split(0.8, &mut rng);
    println!(
        "train {} points / test {} points, dim {}",
        train.len(),
        test.len(),
        train.dim()
    );

    // Training pairs over the paper's threshold grid (cosine 0.1–0.9).
    let t0 = Instant::now();
    let training = TrainingSetBuilder {
        max_queries: Some(600),
        ..Default::default()
    }
    .build(&train, &train)
    .expect("training set");
    println!(
        "training set: {} samples over {} thresholds ({:.2?})",
        training.len(),
        training.thresholds.len(),
        t0.elapsed()
    );

    // Train the learned estimators.
    let t0 = Instant::now();
    let mlp = MlpEstimator::train(&training, &NetConfig::small());
    let mlp_time = t0.elapsed();
    let t0 = Instant::now();
    let rmi = RmiEstimator::train(&training, &RmiConfig::paper_stages(NetConfig::small()));
    let rmi_time = t0.elapsed();

    // Non-learned baselines.
    let sampling = SamplingEstimator::new(&train, Metric::Cosine, train.len() / 10, 3);
    let histogram = HistogramEstimator::from_training(&training);

    // Evaluate q-error on held-out queries against the exact counts over the
    // training data (the reference the estimators were fitted to).
    let oracle = ExactEstimator::new(&train, Metric::Cosine);
    let (eval_queries, _) = test.sample(200, &mut rng);

    println!("\nmean q-error by threshold (lower is better, 1.0 is perfect):");
    println!(
        "{:>6} {:>10} {:>10} {:>10} {:>10}",
        "eps", "MLP", "RMI", "sampling", "histogram"
    );
    for eps in [0.2f32, 0.4, 0.6, 0.8] {
        println!(
            "{:>6.1} {:>10.3} {:>10.3} {:>10.3} {:>10.3}",
            eps,
            mean_q_error(&mlp, &oracle, &eval_queries, eps),
            mean_q_error(&rmi, &oracle, &eval_queries, eps),
            mean_q_error(&sampling, &oracle, &eval_queries, eps),
            mean_q_error(&histogram, &oracle, &eval_queries, eps),
        );
    }

    println!(
        "\ntraining time: MLP {:.2?}, RMI {:.2?}",
        mlp_time, rmi_time
    );
    println!(
        "model sizes  : MLP {} params, RMI {} member models",
        mlp.net().param_count(),
        rmi.model_count()
    );
    println!(
        "\n(the learned estimators are query-sensitive — unlike the histogram — and far cheaper \
         at prediction time than sampling, which is why the paper gates DBSCAN's range queries \
         with them.)"
    );
}
