//! Plugging a custom cardinality estimator into LAF.
//!
//! The framework is generic over [`CardinalityEstimator`], so anything that
//! can guess a neighbor count — a heuristic, an external model server, a
//! cached lookup table — can gate DBSCAN's range queries. This example
//! implements a tiny domain-specific estimator (distance to a set of pivot
//! points → interpolated count) and compares it against the exact oracle and
//! the learned MLP, including the false-negative analysis the paper uses to
//! explain quality differences.
//!
//! ```bash
//! cargo run --release --example custom_estimator
//! ```

use laf::cardest::calibration::EstimatorCalibrator;
use laf::prelude::*;

/// A pivot-based estimator: remembers `k` pivot points and, for each pivot,
/// the average cardinality of training points near it at each threshold.
/// Queries are answered from the nearest pivot's table. Cheap, query
/// sensitive, but much cruder than the learned models.
struct PivotEstimator {
    pivots: Vec<Vec<f32>>,
    thresholds: Vec<f32>,
    /// `tables[p][t]` = average cardinality near pivot `p` at threshold `t`.
    tables: Vec<Vec<f32>>,
}

impl PivotEstimator {
    fn train(data: &Dataset, thresholds: &[f32], n_pivots: usize) -> Self {
        let scan = LinearScan::new(data, Metric::Cosine);
        let stride = (data.len() / n_pivots.max(1)).max(1);
        let mut pivots = Vec::new();
        let mut tables = Vec::new();
        for i in (0..data.len()).step_by(stride).take(n_pivots) {
            let pivot = data.row(i).to_vec();
            let table: Vec<f32> = thresholds
                .iter()
                .map(|&eps| scan.range_count(&pivot, eps) as f32)
                .collect();
            pivots.push(pivot);
            tables.push(table);
        }
        Self {
            pivots,
            thresholds: thresholds.to_vec(),
            tables,
        }
    }
}

impl CardinalityEstimator for PivotEstimator {
    fn estimate(&self, query: &[f32], eps: f32) -> f32 {
        // Nearest pivot under cosine distance.
        let (best, _) = self
            .pivots
            .iter()
            .enumerate()
            .map(|(i, p)| (i, CosineDistance.dist(query, p)))
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .expect("at least one pivot");
        // Nearest threshold in the table.
        let (slot, _) = self
            .thresholds
            .iter()
            .enumerate()
            .map(|(i, t)| (i, (t - eps).abs()))
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .expect("at least one threshold");
        self.tables[best][slot]
    }

    fn name(&self) -> &'static str {
        "pivot"
    }
}

fn main() {
    let (data, _) = EmbeddingMixtureConfig {
        n_points: 1_200,
        dim: 48,
        clusters: 15,
        spread: 0.08,
        noise_fraction: 0.3,
        seed: 3,
        ..Default::default()
    }
    .generate()
    .expect("valid generator config");

    let eps = 0.35;
    let tau = 4;
    let thresholds = TrainingSetBuilder::paper_thresholds();

    // Train all three estimators.
    let pivot = PivotEstimator::train(&data, &thresholds, 32);
    let training = TrainingSetBuilder {
        max_queries: Some(400),
        ..Default::default()
    }
    .build(&data, &data)
    .expect("training set");
    let mlp = MlpEstimator::train(&training, &NetConfig::small());
    let exact = ExactEstimator::new(&data, Metric::Cosine);

    // Core-prediction error analysis (the paper's Section 3.3 lens).
    let calibrator = EstimatorCalibrator::new(&data, Metric::Cosine);
    println!(
        "{:<10} {:>8} {:>8} {:>10} {:>10} {:>10}",
        "estimator", "FN", "FP", "precision", "recall", "skip%"
    );
    let estimators: Vec<(&str, &dyn CardinalityEstimator)> =
        vec![("exact", &exact), ("mlp", &mlp), ("pivot", &pivot)];
    for (name, est) in &estimators {
        let report = calibrator.core_prediction(*est, &data, eps, tau, 1.0);
        println!(
            "{:<10} {:>8} {:>8} {:>10.3} {:>10.3} {:>9.1}%",
            name,
            report.false_negatives,
            report.false_positives,
            report.precision(),
            report.recall(),
            100.0 * report.skip_ratio()
        );
    }

    // Cluster with each estimator and compare against DBSCAN.
    let truth = Dbscan::with_params(eps, tau).cluster(&data);
    println!(
        "\n{:<22} {:>8} {:>8} {:>10}",
        "method", "ARI", "AMI", "skipped"
    );
    for (name, result, skipped) in [
        {
            let (c, s) =
                LafDbscan::new(LafConfig::new(eps, tau, 1.0), &exact).cluster_with_stats(&data);
            ("LAF-DBSCAN + exact", c, s.skipped_range_queries)
        },
        {
            let (c, s) =
                LafDbscan::new(LafConfig::new(eps, tau, 1.0), &mlp).cluster_with_stats(&data);
            ("LAF-DBSCAN + mlp", c, s.skipped_range_queries)
        },
        {
            let (c, s) =
                LafDbscan::new(LafConfig::new(eps, tau, 1.0), &pivot).cluster_with_stats(&data);
            ("LAF-DBSCAN + pivot", c, s.skipped_range_queries)
        },
    ] {
        println!(
            "{:<22} {:>8.4} {:>8.4} {:>10}",
            name,
            adjusted_rand_index(truth.labels(), result.labels()),
            adjusted_mutual_information(truth.labels(), result.labels()),
            skipped
        );
    }
    println!(
        "\n(any CardinalityEstimator implementation slots into the same gate; its FN/FP balance \
         directly controls the speed-quality trade-off, which is the paper's central argument.)"
    );
}
