//! Two-phase train/serve demo of the snapshot subsystem.
//!
//! The paper's estimator is *trained once* and amortized across clustering
//! runs; this example splits that lifecycle across two process invocations:
//!
//! ```bash
//! # Offline training plane: fit the estimator, persist the snapshot
//! # (plus a `.labels` sidecar recording the training process's clustering).
//! cargo run --release --example train_serve -- train /tmp/pipeline.lafs
//!
//! # Same, but with a non-default range-query engine — snapshot format v2
//! # persists the *built* engine structure, so the serving side restores it
//! # instead of re-running the k-means construction:
//! cargo run --release --example train_serve -- train /tmp/pipeline.lafs kmeans_tree
//!
//! # Online serving plane (any number of processes, any time later):
//! # restore, cluster, and verify the labels match the training process
//! # byte for byte.
//! cargo run --release --example train_serve -- serve /tmp/pipeline.lafs
//!
//! # Same, but zero-copy: memory-map the snapshot and serve the dataset in
//! # place (format v3). Needs only read access to the file — works on a
//! # chmod 444 snapshot — and shares page-cache pages across every serving
//! # process mapping the same file:
//! cargo run --release --example train_serve -- serve-mmap /tmp/pipeline.lafs
//!
//! # Concurrent serving front: N pipelined client threads against one
//! # LafServer, results checked bit-for-bit against the synchronous path,
//! # then the batch-occupancy histogram — the coalescing win, from the CLI:
//! cargo run --release --example train_serve -- serve-concurrent /tmp/pipeline.lafs 4
//!
//! # Multi-tenant cache: serve two snapshots through a SnapshotCache whose
//! # byte budget holds only one of them, so every tenant switch evicts and
//! # reloads (mmap, read-only files suffice); each tenant's labels are
//! # verified against its own sidecar and the cache counters are checked:
//! cargo run --release --example train_serve -- serve-tenants /tmp/a.lafs /tmp/b.lafs
//!
//! # Mutable plane crash-recovery smoke: build a mutable pipeline
//! # directory, write through the WAL, tear the log tail at several byte
//! # offsets, reopen each copy, and assert recovery lands exactly on the
//! # committed prefix; then compact and verify answers are unchanged:
//! cargo run --release --example train_serve -- serve-mutable /tmp/mutable-dir
//!
//! # Or run all phases in sequence against a temp file:
//! cargo run --release --example train_serve [engine]
//! ```
//!
//! Engines: `linear` (default), `grid`, `kmeans_tree`, `ivf`, `cover_tree`
//! (the cover tree has no persistable structure and exercises the
//! rebuild-from-config fallback).
//!
//! The serve phase fails loudly (non-zero exit) if the restored pipeline's
//! labels differ from the sidecar — this is the round-trip smoke check CI
//! runs to catch snapshot format regressions.

use laf::prelude::*;
use laf::serve::ServeError;
use std::time::Instant;

fn demo_dataset() -> Dataset {
    EmbeddingMixtureConfig {
        n_points: 2_000,
        dim: 32,
        clusters: 8,
        noise_fraction: 0.2,
        seed: 42,
        ..Default::default()
    }
    .generate()
    .expect("valid generator config")
    .0
}

/// Sidecar with the labels the training process observed, so an independent
/// serve process can verify bit-exactness: little-endian `i64` per point.
fn labels_sidecar(snapshot_path: &str) -> String {
    format!("{snapshot_path}.labels")
}

fn write_labels(path: &str, labels: &[i64]) {
    let mut bytes = Vec::with_capacity(labels.len() * 8);
    for &l in labels {
        bytes.extend_from_slice(&l.to_le_bytes());
    }
    std::fs::write(path, bytes).expect("write labels sidecar");
}

fn read_labels(path: &str) -> Option<Vec<i64>> {
    let bytes = std::fs::read(path).ok()?;
    Some(
        bytes
            .chunks_exact(8)
            .map(|c| i64::from_le_bytes(c.try_into().expect("8-byte chunk")))
            .collect(),
    )
}

fn parse_engine(name: &str) -> EngineChoice {
    match name {
        "linear" => EngineChoice::Linear,
        "grid" => EngineChoice::Grid { cell_side: 0.25 },
        "kmeans_tree" => EngineChoice::KMeansTree {
            branching: 10,
            leaf_ratio: 0.6,
        },
        "ivf" => EngineChoice::Ivf {
            nlist: 16,
            nprobe: 16,
        },
        "cover_tree" => EngineChoice::CoverTree { basis: 2.0 },
        other => {
            eprintln!(
                "unknown engine `{other}` (use linear | grid | kmeans_tree | ivf | cover_tree)"
            );
            std::process::exit(2);
        }
    }
}

fn train(snapshot_path: &str, engine: EngineChoice) {
    let data = demo_dataset();
    println!(
        "[train] {} points x {} dims, engine {engine:?}",
        data.len(),
        data.dim()
    );

    let t = Instant::now();
    let pipeline = LafPipeline::builder(LafConfig {
        engine,
        ..LafConfig::new(0.35, 4, 1.0)
    })
    .training(TrainingSetBuilder {
        max_queries: Some(400),
        ..Default::default()
    })
    .calibrate(true)
    .train(data)
    .expect("training");
    println!("[train] estimator fitted in {:.2?}", t.elapsed());
    if let Some(report) = pipeline.calibration() {
        println!(
            "[train] calibration: mean q-error {:.3}, p95 {:.3} over {} pairs",
            report.mean, report.p95, report.evaluated
        );
    }

    let t = Instant::now();
    save_snapshot(&pipeline, snapshot_path).expect("snapshot save");
    let size = std::fs::metadata(snapshot_path).map_or(0, |m| m.len());
    println!(
        "[train] snapshot saved to {snapshot_path} ({size} bytes, engine structure {}) in {:.2?}",
        match pipeline.persisted_engine() {
            Some(e) => format!("persisted: {}", e.kind()),
            None => "not persisted (rebuild on load)".to_string(),
        },
        t.elapsed()
    );

    let (clustering, stats) = pipeline.cluster_with_stats();
    println!(
        "[train] reference clustering: {} clusters, {} noise, {} skipped / {} executed queries",
        clustering.n_clusters(),
        clustering.n_noise(),
        stats.skipped_range_queries,
        stats.executed_range_queries
    );
    write_labels(&labels_sidecar(snapshot_path), clustering.labels());
}

/// Format version from a `.lafs` header (bytes 4..8), `None` if unreadable.
fn snapshot_format_version(snapshot_path: &str) -> Option<u32> {
    use std::io::Read;
    let mut header = [0u8; 8];
    std::fs::File::open(snapshot_path)
        .and_then(|mut f| f.read_exact(&mut header))
        .ok()?;
    Some(u32::from_le_bytes(
        header[4..8].try_into().expect("4 bytes"),
    ))
}

fn serve(snapshot_path: &str, mmap: bool) {
    let t = Instant::now();
    let pipeline = if mmap {
        load_snapshot_mmap(snapshot_path).expect("snapshot mmap load")
    } else {
        load_snapshot(snapshot_path).expect("snapshot load")
    };
    println!(
        "[serve] warm start: {} points x {} dims restored in {:.2?} (no retraining; dataset {}; engine {})",
        pipeline.data().len(),
        pipeline.data().dim(),
        t.elapsed(),
        if pipeline.data().is_mapped() {
            "served zero-copy from the file mapping"
        } else {
            "copied into an owned buffer"
        },
        match pipeline.persisted_engine() {
            Some(e) => format!("`{}` restored without rebuild", e.kind()),
            None => "rebuilt from config".to_string(),
        }
    );
    if mmap && cfg!(target_endian = "little") && snapshot_format_version(snapshot_path) >= Some(3) {
        // The zero-copy path is the whole point of serve-mmap: fail loudly
        // if a format-v3 snapshot fell back to copying. Older snapshots are
        // *expected* to fall back (their writers guaranteed no alignment),
        // so the assert is gated on the file's actual format version.
        assert!(
            pipeline.data().is_mapped(),
            "serve-mmap on a v3 snapshot must map the dataset in place"
        );
    }

    let t = Instant::now();
    let (clustering, stats) = pipeline.cluster_with_stats();
    println!(
        "[serve] first clustering served in {:.2?}: {} clusters, {} noise, skip ratio {:.2}",
        t.elapsed(),
        clustering.n_clusters(),
        clustering.n_noise(),
        stats.skip_ratio()
    );

    match read_labels(&labels_sidecar(snapshot_path)) {
        Some(reference) => {
            assert_eq!(
                clustering.labels(),
                reference.as_slice(),
                "loaded pipeline produced different labels than the training process"
            );
            println!(
                "[serve] OK: labels byte-identical to the training process ({} points)",
                reference.len()
            );
        }
        None => println!("[serve] no labels sidecar found; skipping the bit-exactness check"),
    }
}

/// Concurrent serving plane: `n_clients` threads, each keeping several
/// range-count requests in flight against one [`LafServer`], every answer
/// checked bit-for-bit against the synchronous engine path. Prints the
/// batch-occupancy histogram at the end — the direct evidence of how well
/// the dispatcher coalesced independent requests into `dot4` tiles.
fn serve_concurrent(snapshot_path: &str, n_clients: usize) {
    /// Requests each client keeps in flight (via [`Ticket`]s) so the
    /// dispatcher always has batch-mates to merge.
    const PIPELINE_DEPTH: usize = 8;
    const REQUESTS_PER_CLIENT: usize = 2_000;
    const N_QUERIES: usize = 64;
    const EPS: f32 = 0.35;

    let pipeline = load_snapshot(snapshot_path).expect("snapshot load");
    let stride = (pipeline.data().len() / N_QUERIES).max(1);
    let queries: Vec<Vec<f32>> = (0..N_QUERIES.min(pipeline.data().len()))
        .map(|i| pipeline.data().row(i * stride).to_vec())
        .collect();
    // Ground truth from the synchronous path, before the server takes the
    // pipeline: coalescing must be invisible to callers.
    let engine = pipeline.engine();
    let expected: Vec<usize> = queries.iter().map(|q| engine.range_count(q, EPS)).collect();
    drop(engine);

    let server = LafServer::start(pipeline, ServeConfig::default());
    println!(
        "[serve-concurrent] {n_clients} clients x {REQUESTS_PER_CLIENT} range-count requests, \
         pipeline depth {PIPELINE_DEPTH}, window {}us, max batch {}",
        server.config().coalesce_window_us,
        server.config().max_batch
    );

    let t = Instant::now();
    std::thread::scope(|scope| {
        for client in 0..n_clients {
            let (server, queries, expected) = (&server, &queries, &expected);
            scope.spawn(move || {
                let mut inflight: std::collections::VecDeque<(usize, Ticket<usize>)> =
                    std::collections::VecDeque::with_capacity(PIPELINE_DEPTH);
                let mut issued = 0usize;
                let mut i = client; // stagger the query cycle per client
                while issued < REQUESTS_PER_CLIENT || !inflight.is_empty() {
                    while issued < REQUESTS_PER_CLIENT && inflight.len() < PIPELINE_DEPTH {
                        i = (i + 1) % queries.len();
                        match server.range_count_async(&queries[i], EPS) {
                            Ok(ticket) => {
                                inflight.push_back((i, ticket));
                                issued += 1;
                            }
                            // Queue full: stop issuing, drain one, retry.
                            Err(ServeError::Overloaded { .. }) => break,
                            Err(e) => panic!("submission failed: {e}"),
                        }
                    }
                    let Some((qi, ticket)) = inflight.pop_front() else {
                        break;
                    };
                    let served = ticket.wait();
                    assert_eq!(
                        served.value, expected[qi],
                        "served result diverged from the synchronous path"
                    );
                }
            });
        }
    });
    let elapsed = t.elapsed();
    let report = server.shutdown();

    let total = n_clients * REQUESTS_PER_CLIENT;
    println!(
        "[serve-concurrent] {} requests served in {:.2?} ({:.0} qps), all bit-identical \
         to the synchronous path",
        report.completed,
        elapsed,
        total as f64 / elapsed.as_secs_f64()
    );
    println!(
        "[serve-concurrent] {} batches, mean occupancy {:.2}, {} whole-tile, \
         peak queue depth {}, {} rejected",
        report.batches,
        report.mean_batch_occupancy,
        report.tile_batches,
        report.peak_queue_depth,
        report.rejected
    );
    println!("[serve-concurrent] batch-occupancy histogram (batch size -> batches):");
    let peak = report
        .occupancy
        .iter()
        .map(|b| b.batches)
        .max()
        .unwrap_or(0);
    for bucket in &report.occupancy {
        let bar = if peak == 0 {
            0
        } else {
            (bucket.batches * 40).div_ceil(peak) as usize
        };
        println!(
            "    {:>6} | {:<40} {}",
            bucket.batch_size,
            "#".repeat(bar),
            bucket.batches
        );
    }
    assert_eq!(
        report.completed, report.submitted,
        "every admitted request must be answered"
    );
}

/// Multi-tenant serving plane: two snapshots behind one [`SnapshotCache`]
/// whose byte budget holds only **one** of them. Every tenant switch in the
/// alternating access pattern below therefore evicts the other tenant and
/// reloads from disk (by mmap — read-only snapshot files suffice), while
/// back-to-back queries on the same tenant hit the resident entry. Each
/// tenant's clustering is verified against its own training sidecar, and
/// the cache's accounting is asserted to balance.
fn serve_tenants(path_a: &str, path_b: &str) {
    const ROUNDS: usize = 2;
    const EPS: f32 = 0.35;

    let size = |p: &str| std::fs::metadata(p).expect("snapshot metadata").len();
    let (a, b) = (size(path_a), size(path_b));
    // Fits either snapshot alone, never both: the eviction path is
    // guaranteed to run on every tenant switch.
    let budget = a.max(b) + a.min(b) / 2;
    let cache = SnapshotCache::new(CacheConfig {
        byte_budget: budget,
        max_entries: 2,
        tenant_quota: 0,
    });
    cache.register("a", path_a).expect("register tenant a");
    cache.register("b", path_b).expect("register tenant b");
    let server = TenantServer::new(cache.clone());
    println!(
        "[serve-tenants] byte budget {budget} holds one of ({a}, {b}) bytes: \
         every tenant switch must evict"
    );

    for _ in 0..ROUNDS {
        for (tenant, path) in [("a", path_a), ("b", path_b)] {
            // One pin across the whole request: the miss (or hit) below
            // keeps the snapshot resident for both the query and the
            // clustering, and the entry stays pinned — ineligible for
            // eviction — until the guard drops.
            let pin = server.pin(tenant).expect("tenant admission");
            let query: Vec<f32> = pin.data().row(0).to_vec();
            let count = pin.engine().get().range_count(&query, EPS);
            assert!(count >= 1, "row 0 must at least match itself");
            let (clustering, _) = pin.cluster_with_stats();
            match read_labels(&labels_sidecar(path)) {
                Some(reference) => assert_eq!(
                    clustering.labels(),
                    reference.as_slice(),
                    "tenant `{tenant}` labels diverged through the cache"
                ),
                None => println!("[serve-tenants] no sidecar for `{tenant}`; skipping label check"),
            }
        }
    }

    let report = cache.report();
    println!(
        "[serve-tenants] {} hits / {} misses / {} evictions, {} of {} bytes resident",
        report.hits, report.misses, report.evictions, report.resident_bytes, budget
    );
    assert!(
        report.evictions >= 1,
        "a cache sized for one snapshot must have evicted on tenant switches"
    );
    assert_eq!(report.pins, report.unpins, "every pin must be released");
    assert!(
        report.resident_bytes <= budget,
        "resident bytes exceed the byte budget"
    );
    assert_eq!(
        report.pins,
        report.hits + report.misses,
        "every pin must be classified as a hit or a miss"
    );
    println!("[serve-tenants] OK: both tenants bit-identical, cache accounting balanced");
}

/// Mutable-plane crash-recovery smoke. Builds a small mutable pipeline in
/// `dir`, applies a synced insert/delete workload recording the WAL byte
/// boundary and live-row bits after every operation, then for several kill
/// points — including one that tears the final frame mid-record — copies
/// the directory, truncates the log at the kill point, reopens, and asserts
/// the recovered rows are bit-identical to the longest committed prefix.
/// Finishes by proving post-recovery durability (insert, sync, reopen) and
/// compacting, verifying answers are unchanged by the fold.
fn serve_mutable(dir: &str) {
    use laf::core::WAL_FILE;

    let (data, _) = EmbeddingMixtureConfig {
        n_points: 800,
        dim: 16,
        clusters: 4,
        noise_fraction: 0.15,
        seed: 7,
        ..Default::default()
    }
    .generate()
    .expect("valid generator config");
    let pipeline = LafPipeline::builder(LafConfig::new(0.35, 4, 1.0))
        .training(TrainingSetBuilder {
            max_queries: Some(120),
            ..Default::default()
        })
        .train(data)
        .expect("training");

    std::fs::remove_dir_all(dir).ok();
    let mut mutable = MutablePipeline::create(dir, &pipeline).expect("mutable create");
    println!(
        "[serve-mutable] {} base rows x {} dims in {dir}",
        mutable.len(),
        mutable.dim()
    );

    let live_bits = |m: &MutablePipeline| -> Vec<u32> {
        let live = m.live_dataset().expect("live rows materialize");
        live.as_flat().iter().map(|v| v.to_bits()).collect()
    };
    let copy_dir = |from: &str, to: &std::path::Path| {
        std::fs::remove_dir_all(to).ok();
        std::fs::create_dir_all(to).expect("scratch dir");
        for entry in std::fs::read_dir(from).expect("read mutable dir") {
            let entry = entry.expect("dir entry");
            std::fs::copy(entry.path(), to.join(entry.file_name())).expect("copy file");
        }
    };

    // A synced workload, recording the durability frontier and the exact
    // live-row bits after every operation.
    let row: Vec<f32> = mutable.row(0).to_vec();
    let mut boundaries: Vec<u64> = Vec::new();
    let mut states: Vec<Vec<u32>> = vec![live_bits(&mutable)]; // states[i] = after i ops
    for op in 0..8usize {
        if op % 3 == 2 {
            mutable.delete(op * 13 % mutable.len()).expect("delete");
        } else {
            let mut r = row.clone();
            r[0] += op as f32;
            mutable.insert(&r).expect("insert");
        }
        mutable.sync().expect("sync");
        boundaries.push(mutable.wal_len_bytes());
        states.push(live_bits(&mutable));
    }
    let full_len = *boundaries.last().expect("non-empty workload");

    // Kill points: mid-frame tears (last frame and an interior frame) plus
    // every exact frame boundary.
    let mut kill_points: Vec<u64> = vec![full_len - 3, boundaries[3] + 5];
    kill_points.extend(boundaries.iter().copied());
    let scratch = std::path::PathBuf::from(format!("{dir}-crash"));
    for &kill in &kill_points {
        copy_dir(dir, &scratch);
        let wal = scratch.join(WAL_FILE);
        let file = std::fs::OpenOptions::new()
            .write(true)
            .open(&wal)
            .expect("open wal copy");
        file.set_len(kill).expect("truncate to kill point");
        drop(file);
        let reopened = MutablePipeline::open(&scratch).expect("recovery must succeed");
        let committed = boundaries.iter().filter(|&&b| b <= kill).count();
        assert_eq!(
            live_bits(&reopened),
            states[committed],
            "kill at byte {kill}: recovery must land exactly on the {committed}-op prefix"
        );
    }
    println!(
        "[serve-mutable] {} kill points recovered exactly (workload {} ops, {} WAL bytes)",
        kill_points.len(),
        boundaries.len(),
        full_len
    );

    // Post-recovery durability on the last torn copy: a write after replay
    // must survive its own crash-reopen cycle.
    let mut recovered = MutablePipeline::open(&scratch).expect("reopen torn copy");
    let len_before = recovered.len();
    recovered.insert(&row).expect("post-recovery insert");
    recovered.sync().expect("post-recovery sync");
    drop(recovered);
    let recovered = MutablePipeline::open(&scratch).expect("reopen after recovery write");
    assert_eq!(recovered.len(), len_before + 1, "post-recovery write lost");
    drop(recovered);
    std::fs::remove_dir_all(&scratch).ok();

    // Compaction must not change a single answer.
    let query: Vec<f32> = mutable.row(1).to_vec();
    let range_before = mutable.range(&query, 0.35);
    let knn_before = mutable.knn(&query, 8);
    mutable.compact().expect("compaction");
    assert_eq!(mutable.pending_ops(), 0, "compaction must fold everything");
    assert_eq!(mutable.generation(), 1, "compaction must bump generation");
    assert_eq!(
        mutable.range(&query, 0.35),
        range_before,
        "range answers must be unchanged by compaction"
    );
    let knn_after = mutable.knn(&query, 8);
    assert_eq!(knn_before.len(), knn_after.len());
    for (a, b) in knn_before.iter().zip(&knn_after) {
        assert_eq!(
            (a.index, a.dist.to_bits()),
            (b.index, b.dist.to_bits()),
            "knn answers must be bit-identical across compaction"
        );
    }
    println!(
        "[serve-mutable] OK: committed prefix recovered at every kill point, \
         answers bit-identical across compaction (generation {})",
        mutable.generation()
    );
}

fn parse_clients(arg: &str) -> usize {
    match arg.parse::<usize>() {
        Ok(n) if n >= 1 => n,
        _ => {
            eprintln!("client count must be a positive integer, got `{arg}`");
            std::process::exit(2);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.as_slice() {
        [phase, path] if phase == "train" => train(path, EngineChoice::Linear),
        [phase, path, engine] if phase == "train" => train(path, parse_engine(engine)),
        [phase, path] if phase == "serve" => serve(path, false),
        [phase, path] if phase == "serve-mmap" => serve(path, true),
        [phase, path] if phase == "serve-concurrent" => serve_concurrent(path, 4),
        [phase, path, n] if phase == "serve-concurrent" => {
            serve_concurrent(path, parse_clients(n));
        }
        [phase, path_a, path_b] if phase == "serve-tenants" => serve_tenants(path_a, path_b),
        [phase, dir] if phase == "serve-mutable" => serve_mutable(dir),
        [] | [_] => {
            let engine = args
                .first()
                .map_or(EngineChoice::Linear, |e| parse_engine(e));
            let path = std::env::temp_dir()
                .join(format!("laf_train_serve_demo_{}.lafs", std::process::id()));
            let path = path.to_string_lossy().into_owned();
            train(&path, engine);
            serve(&path, false);
            serve(&path, true);
            serve_concurrent(&path, 4);
            // Two tenants over the same snapshot file still churn the
            // cache: the budget holds one resident entry, not two.
            serve_tenants(&path, &path);
            let mutable_dir = format!("{path}.mutable");
            serve_mutable(&mutable_dir);
            std::fs::remove_dir_all(&mutable_dir).ok();
            std::fs::remove_file(&path).ok();
            std::fs::remove_file(labels_sidecar(&path)).ok();
        }
        _ => {
            eprintln!(
                "usage: train_serve [train <snapshot> [engine] | serve <snapshot> | \
                 serve-mmap <snapshot> | serve-concurrent <snapshot> [clients] | \
                 serve-tenants <snapshot_a> <snapshot_b> | serve-mutable <dir> | [engine]]"
            );
            std::process::exit(2);
        }
    }
}
