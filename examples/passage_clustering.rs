//! Passage-embedding clustering: the paper's motivating scenario.
//!
//! Recreates (at laptop scale) the MS MARCO workflow: generate a passage-
//! embedding-like dataset, split 80/20 into train/test, train the RMI
//! cardinality estimator on the training split, then cluster the testing
//! split with every method the paper evaluates and print a Table 3 / Figure 1
//! style comparison.
//!
//! ```bash
//! cargo run --release --example passage_clustering
//! ```

use laf::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

struct Row {
    method: &'static str,
    seconds: f64,
    ari: f64,
    ami: f64,
    clusters: usize,
}

fn main() {
    // MS-50k style preset, scaled down so the example finishes in seconds.
    let catalog = DatasetCatalog {
        scale: 0.02,
        dim_cap: Some(96),
        ..Default::default()
    };
    let ds = catalog.generate("MS-50k").expect("preset exists");
    println!(
        "dataset {} (synthetic stand-in): {} points, {} dims",
        ds.spec.name,
        ds.data.len(),
        ds.data.dim()
    );

    // 80/20 train/test split, as in the paper.
    let mut rng = StdRng::seed_from_u64(7);
    let (train, test) = ds.data.train_test_split(0.8, &mut rng);
    println!("train: {} points, test: {} points", train.len(), test.len());

    // Train the paper's estimator: a 3-stage RMI (1/2/4 MLPs).
    let t0 = Instant::now();
    let training = TrainingSetBuilder {
        max_queries: Some(800),
        ..Default::default()
    }
    .build(&train, &train)
    .expect("training set");
    let rmi = RmiEstimator::train(&training, &RmiConfig::paper_stages(NetConfig::small()));
    println!(
        "RMI estimator: {} models in {} stages, trained in {:.2?}",
        rmi.model_count(),
        rmi.n_stages(),
        t0.elapsed()
    );

    let eps = 0.5;
    let tau = 3;
    let alpha = ds.spec.paper_alpha.min(2.0);
    let mut rows: Vec<Row> = Vec::new();

    // Ground truth: DBSCAN on the test split.
    let t0 = Instant::now();
    let truth = Dbscan::with_params(eps, tau).cluster(&test);
    rows.push(Row {
        method: "DBSCAN (truth)",
        seconds: t0.elapsed().as_secs_f64(),
        ari: 1.0,
        ami: 1.0,
        clusters: truth.n_clusters(),
    });

    let mut record = |name: &'static str, started: Instant, c: &Clustering| {
        rows.push(Row {
            method: name,
            seconds: started.elapsed().as_secs_f64(),
            ari: adjusted_rand_index(truth.labels(), c.labels()),
            ami: adjusted_mutual_information(truth.labels(), c.labels()),
            clusters: c.n_clusters(),
        });
    };

    let t0 = Instant::now();
    let c = KnnBlockDbscan::with_params(eps, tau).cluster(&test);
    record("KNN-BLOCK", t0, &c);

    let t0 = Instant::now();
    let c = BlockDbscan::with_params(eps, tau).cluster(&test);
    record("BLOCK-DBSCAN", t0, &c);

    let t0 = Instant::now();
    let c = DbscanPlusPlus::with_params(eps, tau, 0.4).cluster(&test);
    record("DBSCAN++", t0, &c);

    let t0 = Instant::now();
    let c = RhoApproxDbscan::with_params(eps, tau).cluster(&test);
    record("rho-approx", t0, &c);

    let t0 = Instant::now();
    let laf_dbscan = LafDbscan::new(LafConfig::new(eps, tau, alpha), &rmi);
    let c = laf_dbscan.cluster(&test);
    record("LAF-DBSCAN", t0, &c);

    let t0 = Instant::now();
    let laf_pp = LafDbscanPlusPlus::new(LafDbscanPlusPlusConfig::new(eps, tau, 0.2), &rmi);
    let c = laf_pp.cluster(&test);
    record("LAF-DBSCAN++", t0, &c);

    println!();
    println!(
        "{:<16} {:>9} {:>8} {:>8} {:>9}",
        "method", "time (s)", "ARI", "AMI", "#clusters"
    );
    for r in &rows {
        println!(
            "{:<16} {:>9.3} {:>8.4} {:>8.4} {:>9}",
            r.method, r.seconds, r.ari, r.ami, r.clusters
        );
    }
    println!();
    println!(
        "(absolute numbers differ from the paper — synthetic data, reduced scale, single CPU — \
         but the ordering mirrors Table 3 / Figure 1: the LAF variants trade a little quality \
         for substantially fewer range queries.)"
    );
}
