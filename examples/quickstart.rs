//! Quickstart: cluster a synthetic embedding dataset with DBSCAN and
//! LAF-DBSCAN and compare quality and work.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use laf::prelude::*;
use std::time::Instant;

fn main() {
    // 1. Generate a small unit-normalized embedding dataset: 1,500 points in
    //    64 dimensions with 20 directional clusters and 30% noise.
    let (data, _planted) = EmbeddingMixtureConfig {
        n_points: 1_500,
        dim: 64,
        clusters: 20,
        spread: 0.07,
        noise_fraction: 0.3,
        seed: 42,
        ..Default::default()
    }
    .generate()
    .expect("valid generator config");
    println!(
        "dataset: {} points, {} dims, unit-normalized: {}",
        data.len(),
        data.dim(),
        data.is_normalized(1e-3)
    );

    let eps = 0.35;
    let tau = 5;

    // 2. Ground truth: the original DBSCAN (this is what the paper compares
    //    every approximate method against).
    let t0 = Instant::now();
    let truth = Dbscan::with_params(eps, tau).cluster(&data);
    let dbscan_time = t0.elapsed();
    println!(
        "DBSCAN      : {:>8.3?}  clusters={:<4} noise_ratio={:.2}  range_queries={}",
        dbscan_time,
        truth.n_clusters(),
        truth.stats().noise_ratio(),
        truth.range_queries
    );

    // 3. Train the learned cardinality estimator on the same data
    //    (the paper trains on an 80% split; the quickstart keeps it simple).
    let t0 = Instant::now();
    let training = TrainingSetBuilder {
        max_queries: Some(500),
        ..Default::default()
    }
    .build(&data, &data)
    .expect("training set");
    let estimator = MlpEstimator::train(&training, &NetConfig::small());
    println!(
        "estimator   : trained on {} samples in {:.3?} (final MSE {:.4})",
        training.len(),
        t0.elapsed(),
        estimator.report().final_loss
    );

    // 4. LAF-DBSCAN: same ε and τ, error factor α = 1.5.
    let t0 = Instant::now();
    let laf = LafDbscan::new(LafConfig::new(eps, tau, 1.5), estimator);
    let (result, stats) = laf.cluster_with_stats(&data);
    let laf_time = t0.elapsed();

    let ari = adjusted_rand_index(truth.labels(), result.labels());
    let ami = adjusted_mutual_information(truth.labels(), result.labels());
    println!(
        "LAF-DBSCAN  : {:>8.3?}  clusters={:<4} noise_ratio={:.2}  range_queries={} (skipped {})",
        laf_time,
        result.n_clusters(),
        result.stats().noise_ratio(),
        stats.executed_range_queries,
        stats.skipped_range_queries
    );
    println!(
        "quality vs DBSCAN: ARI={:.4}  AMI={:.4}  (1.0 = identical clustering)",
        ari, ami
    );
    println!(
        "work saved: {:.1}% of range queries skipped, {} false negatives repaired by post-processing",
        100.0 * stats.skip_ratio(),
        stats.detected_false_negatives
    );
}
