//! Failure-injection tests: LAF must degrade gracefully — never panic, never
//! produce an invalid labeling — when its estimator is broken or extreme.

use laf::prelude::*;

fn data() -> Dataset {
    EmbeddingMixtureConfig {
        n_points: 200,
        dim: 10,
        clusters: 4,
        noise_fraction: 0.25,
        seed: 77,
        ..Default::default()
    }
    .generate()
    .unwrap()
    .0
}

/// Estimator that returns pathological values depending on the query index
/// parity encoded in its first coordinate sign.
struct Erratic;

impl CardinalityEstimator for Erratic {
    fn estimate(&self, query: &[f32], _eps: f32) -> f32 {
        match query.first() {
            Some(x) if *x > 0.5 => f32::NAN,
            Some(x) if *x > 0.0 => f32::MAX,
            Some(x) if *x > -0.5 => -42.0,
            _ => 0.0,
        }
    }

    fn name(&self) -> &'static str {
        "erratic"
    }
}

#[test]
fn nan_infinity_and_negative_estimates_never_panic() {
    let data = data();
    for alpha in [0.1f32, 1.0, 10.0] {
        let (result, stats) =
            LafDbscan::new(LafConfig::new(0.35, 3, alpha), Erratic).cluster_with_stats(&data);
        assert_eq!(result.len(), data.len());
        assert_eq!(
            stats.cardest_calls,
            stats.skipped_range_queries + stats.executed_range_queries
        );
        for &l in result.labels() {
            assert!(l >= -1);
        }
    }
}

#[test]
fn always_zero_estimator_is_the_worst_case_but_valid() {
    let data = data();
    let truth = Dbscan::with_params(0.35, 3).cluster(&data);
    let (result, stats) = LafDbscan::new(LafConfig::new(0.35, 3, 1.0), ConstantEstimator::new(0.0))
        .cluster_with_stats(&data);
    // Everything predicted non-core: all noise, zero range queries executed.
    assert_eq!(result.n_noise(), data.len());
    assert_eq!(stats.executed_range_queries, 0);
    // Quality collapses (that is the point of the post-processing needing
    // *some* executed queries to find partial neighbors).
    let ami = adjusted_mutual_information(truth.labels(), result.labels());
    assert!(ami <= 0.5, "AMI {ami} should be poor in the worst case");
}

#[test]
fn always_infinite_estimator_costs_nothing_in_quality() {
    let data = data();
    let truth = Dbscan::with_params(0.35, 3).cluster(&data);
    let result = LafDbscan::new(
        LafConfig::new(0.35, 3, 1.0),
        ConstantEstimator::new(f32::INFINITY),
    )
    .cluster(&data);
    assert_eq!(truth.labels(), result.labels());
}

#[test]
fn extreme_alphas_are_safe_for_both_laf_algorithms() {
    let data = data();
    let training = TrainingSetBuilder {
        max_queries: Some(80),
        ..Default::default()
    }
    .build(&data, &data)
    .unwrap();
    let estimator = MlpEstimator::train(&training, &NetConfig::tiny());

    for alpha in [0.0f32, 0.001, 100.0, 10_000.0] {
        let laf = LafDbscan::new(LafConfig::new(0.35, 3, alpha), &estimator);
        let result = laf.cluster(&data);
        assert_eq!(result.len(), data.len());

        let mut cfg = LafDbscanPlusPlusConfig::new(0.35, 3, 0.2);
        cfg.laf.alpha = alpha;
        let laf_pp = LafDbscanPlusPlus::new(cfg, &estimator);
        let result = laf_pp.cluster(&data);
        assert_eq!(result.len(), data.len());
    }
}

#[test]
fn degenerate_clustering_parameters_are_safe() {
    let data = data();
    let est = ConstantEstimator::new(f32::INFINITY);

    // eps = 0: nothing is a neighbor of anything (strict inequality), so
    // every point is noise.
    let result = LafDbscan::new(LafConfig::new(0.0, 3, 1.0), &est).cluster(&data);
    assert_eq!(result.n_noise(), data.len());

    // tau = 0/1: every point is core; no noise.
    let result = LafDbscan::new(LafConfig::new(0.3, 1, 1.0), &est).cluster(&data);
    assert_eq!(result.n_noise(), 0);

    // eps covering the whole sphere: one cluster.
    let result = LafDbscan::new(LafConfig::new(2.1, 3, 1.0), &est).cluster(&data);
    assert_eq!(result.n_clusters(), 1);
}

#[test]
fn single_point_and_duplicate_datasets() {
    let single = Dataset::from_rows(vec![vec![1.0f32, 0.0, 0.0]]).unwrap();
    let est = ConstantEstimator::new(f32::INFINITY);
    let result = LafDbscan::new(LafConfig::new(0.5, 2, 1.0), &est).cluster(&single);
    assert_eq!(result.len(), 1);
    assert_eq!(result.n_noise(), 1);

    // 30 identical points: all mutual distance zero, one cluster regardless
    // of eps.
    let dup = Dataset::from_rows(vec![vec![0.6f32, 0.8, 0.0]; 30]).unwrap();
    let result = LafDbscan::new(LafConfig::new(1e-3, 5, 1.0), &est).cluster(&dup);
    assert_eq!(result.n_clusters(), 1);
    assert_eq!(result.n_noise(), 0);

    let truth = Dbscan::with_params(1e-3, 5).cluster(&dup);
    assert_eq!(truth.labels(), result.labels());
}
