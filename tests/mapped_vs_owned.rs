//! Property test for the owned-or-borrowed `Dataset` backing: an
//! owned-backed dataset and a memory-mapped dataset over the **same bytes**
//! must be indistinguishable to the whole clustering stack — identical
//! labels and identical `LafStats` across every persistable range-query
//! engine. This is the contract that lets the zero-copy warm start
//! (`laf::load_snapshot_mmap`) claim bit-exactness with the copying path.

use laf::prelude::*;
use laf::vector::{io, mapped, ops};
use proptest::prelude::*;
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Deterministic flat buffer of `rows` unit-normalized `dim`-vectors.
fn unit_rows(rows: usize, dim: usize, seed: u64) -> Vec<f32> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut flat: Vec<f32> = (0..rows * dim).map(|_| rng.gen_range(-1.0..1.0)).collect();
    for row in flat.chunks_mut(dim) {
        if ops::normalize_in_place(row) <= 1e-12 {
            row[0] = 1.0; // degenerate draw: pin to a fixed unit vector
            for x in &mut row[1..] {
                *x = 0.0;
            }
        }
    }
    flat
}

/// Write `owned`'s binary encoding to a unique temp file and map it back as
/// a borrowed dataset.
fn mapped_twin(owned: &Dataset) -> (Dataset, std::path::PathBuf) {
    static COUNTER: AtomicUsize = AtomicUsize::new(0);
    let path = std::env::temp_dir().join(format!(
        "laf_mapped_vs_owned_{}_{}.lafv",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    io::save_binary(owned, &path).expect("write dataset");
    let map = mapped::map_file(&path).expect("map dataset file");
    let twin = mapped::dataset_from_map(&map, 0, map.len()).expect("decode mapped dataset");
    (twin, path)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn mapped_and_owned_datasets_cluster_identically(
        rows in 24usize..80,
        dim in 2usize..8,
        seed in 0u64..1_000_000,
    ) {
        let owned = Dataset::from_flat(dim, unit_rows(rows, dim, seed)).unwrap();
        let (mapped_ds, path) = mapped_twin(&owned);
        prop_assert!(cfg!(target_endian = "big") || mapped_ds.is_mapped());
        prop_assert_eq!(&owned, &mapped_ds);

        let choices = [
            EngineChoice::Linear,
            EngineChoice::Grid { cell_side: 0.25 },
            EngineChoice::KMeansTree { branching: 3, leaf_ratio: 0.6 },
            EngineChoice::Ivf { nlist: 4, nprobe: 2 },
        ];
        for choice in choices {
            let config = LafConfig {
                engine: choice,
                ..LafConfig::new(0.4, 3, 1.0)
            };
            let laf = LafDbscan::new(config, ExactEstimator::new(&owned, Metric::Cosine));
            let (owned_clustering, owned_stats) = laf.cluster_with_stats(&owned);
            let (mapped_clustering, mapped_stats) = laf.cluster_with_stats(&mapped_ds);
            prop_assert_eq!(
                owned_clustering.labels(),
                mapped_clustering.labels(),
                "{:?}: labels diverged between owned and mapped backings",
                choice
            );
            prop_assert_eq!(owned_stats, mapped_stats, "{:?}: stats diverged", choice);
        }

        drop(mapped_ds);
        std::fs::remove_file(path).ok();
    }
}
