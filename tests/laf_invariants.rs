//! Property-based invariants of the LAF framework, checked across random
//! datasets and parameters.

use laf::prelude::*;
use proptest::prelude::*;

/// Small random directional-mixture dataset.
fn dataset_strategy() -> impl Strategy<Value = Dataset> {
    (40usize..120, 2usize..6, 0.0f64..0.4, any::<u64>()).prop_map(
        |(n_points, clusters, noise_fraction, seed)| {
            EmbeddingMixtureConfig {
                n_points,
                dim: 8,
                clusters,
                spread: 0.07,
                noise_fraction,
                size_skew: 0.5,
                subspace_fraction: 1.0,
                seed,
            }
            .generate()
            .expect("valid config")
            .0
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// LAF-DBSCAN with the exact oracle estimator and α = 1 must reproduce
    /// plain DBSCAN exactly — this is the framework's core correctness claim
    /// (the gate only skips queries whose outcome is already determined).
    #[test]
    fn oracle_laf_equals_dbscan(data in dataset_strategy(), eps in 0.1f32..0.6, tau in 2usize..6) {
        let truth = Dbscan::with_params(eps, tau).cluster(&data);
        let laf = LafDbscan::new(
            LafConfig::new(eps, tau, 1.0),
            ExactEstimator::new(&data, Metric::Cosine),
        );
        let result = laf.cluster(&data);
        prop_assert_eq!(truth.labels(), result.labels());
    }

    /// The always-infinite estimator disables the gate entirely, so LAF
    /// degrades to DBSCAN for any α.
    #[test]
    fn infinite_estimator_is_plain_dbscan(
        data in dataset_strategy(),
        eps in 0.1f32..0.6,
        tau in 2usize..6,
        alpha in 0.5f32..10.0
    ) {
        let truth = Dbscan::with_params(eps, tau).cluster(&data);
        let laf = LafDbscan::new(
            LafConfig::new(eps, tau, alpha),
            ConstantEstimator::new(f32::INFINITY),
        );
        let result = laf.cluster(&data);
        prop_assert_eq!(truth.labels(), result.labels());
    }

    /// Every clustering labels every point with either noise or a valid
    /// cluster id, and cluster ids are compact (0..n_clusters).
    #[test]
    fn labels_are_complete_and_compact(
        data in dataset_strategy(),
        eps in 0.1f32..0.6,
        tau in 2usize..6,
        alpha in 0.5f32..4.0
    ) {
        let est = SamplingEstimator::new(&data, Metric::Cosine, (data.len() / 4).max(2), 7);
        let (result, stats) = LafDbscan::new(LafConfig::new(eps, tau, alpha), est)
            .cluster_with_stats(&data);
        prop_assert_eq!(result.len(), data.len());
        let n_clusters = result.n_clusters() as i64;
        for &l in result.labels() {
            prop_assert!(l == -1 || (0..n_clusters).contains(&l), "label {} out of range", l);
        }
        // Gate bookkeeping is consistent.
        prop_assert_eq!(
            stats.cardest_calls,
            stats.skipped_range_queries + stats.executed_range_queries
        );
        prop_assert!(stats.predicted_stop_points <= stats.skipped_range_queries);
    }

    /// DBSCAN itself is invariant to the (exact) engine used underneath.
    #[test]
    fn dbscan_engine_invariance(data in dataset_strategy(), eps in 0.1f32..0.6, tau in 2usize..6) {
        let linear = Dbscan::new(DbscanConfig {
            eps,
            min_pts: tau,
            metric: Metric::Cosine,
            engine: EngineChoice::Linear,
        })
        .cluster(&data);
        let cover = Dbscan::new(DbscanConfig {
            eps,
            min_pts: tau,
            metric: Metric::Cosine,
            engine: EngineChoice::CoverTree { basis: 2.0 },
        })
        .cluster(&data);
        prop_assert_eq!(linear.labels(), cover.labels());
    }

    /// Post-processing only merges clusters: the number of clusters after a
    /// LAF run is never larger than the number DBSCAN finds plus the number
    /// of noise points (sanity bound), and never negative.
    #[test]
    fn post_processing_produces_sane_cluster_counts(
        data in dataset_strategy(),
        eps in 0.2f32..0.6,
        tau in 2usize..5
    ) {
        let est = SamplingEstimator::new(&data, Metric::Cosine, (data.len() / 3).max(2), 3);
        let result = LafDbscan::new(LafConfig::new(eps, tau, 1.0), est).cluster(&data);
        prop_assert!(result.n_clusters() <= data.len());
        let stats = result.stats();
        prop_assert_eq!(stats.n_points, data.len());
        prop_assert_eq!(stats.n_clustered() + result.n_noise(), data.len());
    }

    /// ARI/AMI of any approximate method against DBSCAN stays in the valid
    /// range, and comparing DBSCAN with itself gives exactly 1.
    #[test]
    fn metric_ranges_hold(data in dataset_strategy(), eps in 0.2f32..0.6, tau in 2usize..5) {
        let truth = Dbscan::with_params(eps, tau).cluster(&data);
        prop_assert!((adjusted_rand_index(truth.labels(), truth.labels()) - 1.0).abs() < 1e-9);
        let approx = DbscanPlusPlus::with_params(eps, tau, 0.5).cluster(&data);
        let ari = adjusted_rand_index(truth.labels(), approx.labels());
        let ami = adjusted_mutual_information(truth.labels(), approx.labels());
        prop_assert!((-1.0..=1.0 + 1e-9).contains(&ari), "ARI {}", ari);
        prop_assert!((-1.0..=1.0 + 1e-9).contains(&ami), "AMI {}", ami);
    }
}
