//! Chaos harness for the mutable serving plane: run randomized,
//! seed-deterministic fault schedules (armed over every named failpoint)
//! against an insert/delete/query/compact/reopen loop, and hold the store
//! to the robustness contract — every operation either succeeds with
//! answers **bit-identical** to a fault-free oracle or fails with a typed
//! error. Never a panic, never a silently wrong answer, and every reopen
//! (with faults paused) lands on exactly the committed prefix of
//! acknowledged writes.
//!
//! The oracle is a second [`MutablePipeline`] in its own directory that
//! mirrors only the operations the system under test acknowledged, applied
//! with injection paused, so its state is the ground truth for "what the
//! SUT promised". Seeds come from a fixed battery plus an optional
//! `LAF_CHAOS_SEED` environment override (CI passes a fresh one per run);
//! a failing seed is dumped to `results/chaos_failure.json` before the
//! panic propagates so the schedule can be replayed locally.

#![cfg(feature = "fault-injection")]

use laf::cardest::{NetConfig, TrainingSetBuilder};
use laf::core::fault::{self, FaultMode, FaultPlan};
use laf::core::{LafConfig, LafPipeline, MutablePipeline};
use laf::synth::EmbeddingMixtureConfig;
use laf::vector::Dataset;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::{Mutex, MutexGuard, OnceLock};

const DIM: usize = 6;
const OPS_PER_SEED: usize = 60;
const EPS: f32 = 0.3;

/// The fixed seed battery CI replays on every run (acceptance requires at
/// least 8). Each seed is a complete, replayable fault schedule.
const FIXED_SEEDS: [u64; 8] = [1, 2, 3, 5, 8, 13, 21, 34];

/// Every named failpoint site, armed together in each chaos plan.
const SITES: [&str; 6] = [
    "wal.append.partial",
    "wal.sync",
    "snapshot.save.fsync",
    "manifest.rename",
    "compact.dir_fsync",
    "mmap.section.bitflip",
];

/// Serialize every test in this binary: the failpoint registry is
/// process-wide, so a plan armed by one test must never fire inside
/// another test running on a sibling thread.
fn exclusive() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

/// splitmix64 — the op-sequence PRNG. Deterministic per seed and
/// independent of the fault registry's own draws.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The chaos plan for one seed: every site armed with a seeded probability
/// mode, so any consultation anywhere in the stack may trip, replayably.
fn chaos_plan(seed: u64) -> FaultPlan {
    FaultPlan::new(seed)
        .with_site("wal.append.partial", FaultMode::Probability(0.04))
        .with_site("wal.sync", FaultMode::Probability(0.06))
        .with_site("snapshot.save.fsync", FaultMode::Probability(0.10))
        .with_site("manifest.rename", FaultMode::Probability(0.10))
        .with_site("compact.dir_fsync", FaultMode::Probability(0.10))
        .with_site("mmap.section.bitflip", FaultMode::Probability(0.03))
}

/// Run `f` on the fault-free plane: injection paused (consultations do not
/// advance the schedule), so the oracle and recovery paths never trip.
fn fault_free<T>(f: impl FnOnce() -> T) -> T {
    fault::set_enabled(false);
    let out = f();
    fault::set_enabled(true);
    out
}

fn gen_data(n: usize, seed: u64) -> Dataset {
    EmbeddingMixtureConfig {
        n_points: n,
        dim: DIM,
        clusters: 2,
        noise_fraction: 0.1,
        seed,
        ..Default::default()
    }
    .generate()
    .unwrap()
    .0
}

fn train() -> LafPipeline {
    LafPipeline::builder(LafConfig::new(EPS, 4, 1.0))
        .net(NetConfig::tiny())
        .training(TrainingSetBuilder {
            max_queries: Some(30),
            ..Default::default()
        })
        .train(gen_data(40, 11))
        .unwrap()
}

fn unique_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("laf_chaos_{tag}_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn knn_bits(pipeline: &MutablePipeline, query: &[f32], k: usize) -> Vec<(u32, u32)> {
    pipeline
        .knn(query, k)
        .into_iter()
        .map(|n| (n.index, n.dist.to_bits()))
        .collect()
}

/// Everything observable about one seed's run — compared across replays to
/// prove the schedule is deterministic end to end.
#[derive(Debug, Clone, PartialEq)]
struct ChaosReport {
    typed_errors: u64,
    reopens: u64,
    recovered_reopens: u64,
    compactions: u64,
    trips: Vec<(&'static str, u64)>,
    final_rows: Vec<f32>,
}

/// One chaos run: a seed-deterministic op stream against the SUT with the
/// plan armed, an oracle mirroring only acknowledged writes, answer
/// comparison on every read, and a final fault-free battery.
fn run_chaos_seed(
    seed: u64,
    trained: &LafPipeline,
    extra: &Dataset,
    queries: &[Vec<f32>],
) -> ChaosReport {
    let sut_dir = unique_dir(&format!("sut_{seed}"));
    let oracle_dir = unique_dir(&format!("oracle_{seed}"));
    let mut sut = MutablePipeline::create(&sut_dir, trained).unwrap();
    let mut oracle = MutablePipeline::create(&oracle_dir, trained).unwrap();

    fault::install(chaos_plan(seed));
    let mut rng = seed ^ 0xD1B5_4A32_D192_ED03;
    let mut report = ChaosReport {
        typed_errors: 0,
        reopens: 0,
        recovered_reopens: 0,
        compactions: 0,
        trips: Vec::new(),
        final_rows: Vec::new(),
    };

    for step in 0..OPS_PER_SEED {
        let r = splitmix(&mut rng);
        match r % 100 {
            // Insert: acknowledged writes are mirrored to the oracle with
            // injection paused; rejected writes must carry a typed error
            // and leave the in-memory state untouched.
            0..=29 => {
                let row = extra.row(((r >> 8) as usize) % extra.len()).to_vec();
                match sut.insert(&row) {
                    Ok(_) => {
                        fault_free(|| oracle.insert(&row)).unwrap();
                    }
                    Err(e) => {
                        assert!(!e.to_string().is_empty(), "seed {seed} step {step}");
                        report.typed_errors += 1;
                    }
                }
            }
            // Delete a live dense id (skipped when the store is empty).
            30..=44 => {
                if !sut.is_empty() {
                    let dense = ((r >> 8) as usize) % sut.len();
                    match sut.delete(dense) {
                        Ok(_) => {
                            fault_free(|| oracle.delete(dense)).unwrap();
                        }
                        Err(e) => {
                            assert!(!e.to_string().is_empty(), "seed {seed} step {step}");
                            report.typed_errors += 1;
                        }
                    }
                }
            }
            // Reads must be bit-identical to the oracle — a fault is never
            // allowed to surface as a wrong answer.
            45..=69 => {
                let q = &queries[(r >> 8) as usize % queries.len()];
                let eps = EPS + ((r >> 16) % 3) as f32 * 0.1;
                assert_eq!(
                    sut.range(q, eps),
                    oracle.range(q, eps),
                    "seed {seed} step {step}: range diverged"
                );
                assert_eq!(
                    sut.range_count(q, eps),
                    oracle.range_count(q, eps),
                    "seed {seed} step {step}: range_count diverged"
                );
                let k = 1 + (r >> 24) as usize % 8;
                assert_eq!(
                    knn_bits(&sut, q, k),
                    knn_bits(&oracle, q, k),
                    "seed {seed} step {step}: knn diverged"
                );
            }
            // Durability point: a failed sync is transient and typed.
            70..=79 => {
                if let Err(e) = sut.sync() {
                    assert!(!e.to_string().is_empty(), "seed {seed} step {step}");
                    report.typed_errors += 1;
                }
            }
            // Compaction: on failure the store must keep answering from
            // its pre-compaction state (checked by the next read/reopen);
            // the oracle never compacts, so every comparison also proves
            // answers are invariant across the SUT's compaction history.
            80..=89 => match sut.compact() {
                Ok(()) => report.compactions += 1,
                Err(e) => {
                    assert!(!e.to_string().is_empty(), "seed {seed} step {step}");
                    report.typed_errors += 1;
                }
            },
            // Crash/restart: a reopen under faults may fail typed, but a
            // retry with injection paused must always recover — and must
            // land on exactly the acknowledged-write state.
            _ => {
                drop(sut);
                report.reopens += 1;
                sut = match MutablePipeline::open(&sut_dir) {
                    Ok(p) => p,
                    Err(e) => {
                        assert!(!e.to_string().is_empty(), "seed {seed} step {step}");
                        report.typed_errors += 1;
                        report.recovered_reopens += 1;
                        fault_free(|| MutablePipeline::open(&sut_dir)).unwrap_or_else(|e| {
                            panic!("seed {seed} step {step}: reopen with faults paused must succeed: {e}")
                        })
                    }
                };
                assert_eq!(
                    sut.live_dataset().unwrap().as_flat(),
                    oracle.live_dataset().unwrap().as_flat(),
                    "seed {seed} step {step}: recovery lost or invented acknowledged writes"
                );
            }
        }
        assert_eq!(
            sut.len(),
            oracle.len(),
            "seed {seed} step {step}: live-row count diverged"
        );
    }

    report.trips = SITES.iter().map(|&s| (s, fault::trips(s))).collect();
    fault::clear();

    // Final battery on the fault-free plane: one more crash/recovery, then
    // full state and answer equality against the oracle.
    drop(sut);
    let recovered = MutablePipeline::open(&sut_dir).unwrap();
    let live = recovered.live_dataset().unwrap();
    assert_eq!(
        live.as_flat(),
        oracle.live_dataset().unwrap().as_flat(),
        "seed {seed}: final recovered state diverged from the oracle"
    );
    for q in queries {
        assert_eq!(recovered.range(q, EPS), oracle.range(q, EPS), "seed {seed}");
        assert_eq!(
            recovered.range_count(q, EPS),
            oracle.range_count(q, EPS),
            "seed {seed}"
        );
        assert_eq!(
            knn_bits(&recovered, q, 5),
            knn_bits(&oracle, q, 5),
            "seed {seed}"
        );
    }
    report.final_rows = live.as_flat().to_vec();

    std::fs::remove_dir_all(&sut_dir).ok();
    std::fs::remove_dir_all(&oracle_dir).ok();
    report
}

/// Persist the failing seed so the exact schedule can be replayed with
/// `LAF_CHAOS_SEED=<seed>` (CI uploads this file as an artifact).
fn dump_failing_seed(seed: u64) {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results");
    std::fs::create_dir_all(&dir).ok();
    let sites: Vec<String> = SITES.iter().map(|s| format!("\"{s}\"")).collect();
    let json = format!(
        "{{\n  \"seed\": {seed},\n  \"replay\": \"LAF_CHAOS_SEED={seed} cargo test -p laf --features fault-injection --test chaos_mutable\",\n  \"sites\": [{}]\n}}\n",
        sites.join(", ")
    );
    std::fs::write(dir.join("chaos_failure.json"), json).ok();
    eprintln!("chaos: failing FaultPlan seed {seed} written to results/chaos_failure.json");
}

#[test]
fn chaos_schedules_never_panic_and_never_diverge() {
    let _guard = exclusive();
    let trained = train();
    let extra = gen_data(16, 77);
    let queries: Vec<Vec<f32>> = (0..8).map(|i| trained.data().row(i * 3).to_vec()).collect();

    let mut seeds: Vec<u64> = FIXED_SEEDS.to_vec();
    if let Ok(s) = std::env::var("LAF_CHAOS_SEED") {
        if let Ok(fresh) = s.trim().parse::<u64>() {
            seeds.push(fresh);
        }
    }

    for seed in seeds {
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            run_chaos_seed(seed, &trained, &extra, &queries)
        }));
        fault::clear();
        match outcome {
            Ok(report) => {
                let injected: u64 = report.trips.iter().map(|(_, n)| n).sum();
                println!(
                    "chaos seed {seed}: {injected} faults tripped, {} typed errors, \
                     {} reopens ({} needed fault-free recovery), {} compactions",
                    report.typed_errors,
                    report.reopens,
                    report.recovered_reopens,
                    report.compactions
                );
            }
            Err(payload) => {
                dump_failing_seed(seed);
                resume_unwind(payload);
            }
        }
    }
}

/// The whole point of a seeded plan: replaying a seed must reproduce the
/// run bit for bit — same trips per site, same typed-error count, same
/// final dataset — or a CI failure seed would be useless locally.
#[test]
fn replaying_a_seed_reproduces_the_run_exactly() {
    let _guard = exclusive();
    let trained = train();
    let extra = gen_data(16, 77);
    let queries: Vec<Vec<f32>> = (0..8).map(|i| trained.data().row(i * 3).to_vec()).collect();

    let first = run_chaos_seed(13, &trained, &extra, &queries);
    let second = run_chaos_seed(13, &trained, &extra, &queries);
    assert_eq!(first, second, "seed 13 replay diverged");
    assert!(
        first.trips.iter().any(|&(_, n)| n > 0),
        "seed 13 tripped no faults at all — the chaos plan is not exercising anything"
    );
}
