//! Hot-reload stress test for the serving front.
//!
//! A writer thread keeps swapping the served snapshot between two trained
//! pipelines (decoding fresh snapshot bytes each time, like a real reload
//! from disk) while reader threads hammer the server with range and
//! estimate requests. Every response must be **bit-exact** with exactly the
//! epoch it claims to come from — a response mixing the two snapshots (a
//! torn read across the swap) or matching neither is a bug — and no
//! admitted request may be lost across any number of swaps.

use laf::prelude::*;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

const DIM: usize = 12;
const EPS: f32 = 0.3;
const QUERIES: usize = 24;
const SWAPS: usize = 20;
const READERS: usize = 3;

fn train(seed: u64) -> LafPipeline {
    let (data, _) = EmbeddingMixtureConfig {
        n_points: 260,
        dim: DIM,
        clusters: 4,
        noise_fraction: 0.2,
        seed,
        ..Default::default()
    }
    .generate()
    .unwrap();
    LafPipeline::builder(LafConfig::new(EPS, 4, 1.0))
        .net(NetConfig::tiny())
        .training(TrainingSetBuilder {
            max_queries: Some(60),
            ..Default::default()
        })
        .train(data)
        .unwrap()
}

/// Everything a reader needs to verify a response against one epoch.
struct EpochExpectation {
    range: Vec<Vec<u32>>,
    estimate: Vec<f32>,
}

fn expectations(pipeline: &LafPipeline, queries: &[Vec<f32>]) -> EpochExpectation {
    let engine = pipeline.engine();
    EpochExpectation {
        range: queries.iter().map(|q| engine.range(q, EPS)).collect(),
        estimate: queries.iter().map(|q| pipeline.estimate(q, EPS)).collect(),
    }
}

#[test]
fn responses_stay_bit_exact_across_concurrent_snapshot_swaps() {
    let a = train(5);
    let b = train(6);
    // Reloads decode fresh bytes each round, so every swap exercises the
    // full snapshot decode + engine restore path, not a cached pipeline.
    let bytes_a = a.to_snapshot_bytes().unwrap();
    let bytes_b = b.to_snapshot_bytes().unwrap();

    let queries: Vec<Vec<f32>> = (0..QUERIES).map(|i| a.data().row(i * 7).to_vec()).collect();
    // Epoch numbering: the server starts `a` at epoch 1 and the writer
    // alternates b, a, b, ... — so odd epochs serve `a`, even serve `b`.
    let expect_a = expectations(&a, &queries);
    let expect_b = expectations(
        &LafPipeline::from_snapshot_bytes(&bytes_b).unwrap(),
        &queries,
    );

    let server = laf::serve::LafServer::start(
        a,
        laf::serve::ServeConfig {
            coalesce_window_us: 200,
            max_batch: 16,
            max_queue_depth: 4096,
            ..laf::serve::ServeConfig::default()
        },
    );

    let done = AtomicBool::new(false);
    let served_by_a = AtomicU64::new(0);
    let served_by_b = AtomicU64::new(0);
    let attempts = AtomicU64::new(0);

    std::thread::scope(|scope| {
        let server = &server;
        let (done, served_by_a, served_by_b, attempts) =
            (&done, &served_by_a, &served_by_b, &attempts);
        let (bytes_a, bytes_b) = (&bytes_a, &bytes_b);
        let (expect_a, expect_b) = (&expect_a, &expect_b);
        let queries = &queries;

        scope.spawn(move || {
            for swap in 0..SWAPS {
                let bytes = if swap % 2 == 0 { bytes_b } else { bytes_a };
                let replacement = LafPipeline::from_snapshot_bytes(bytes).unwrap();
                server.reload(replacement).unwrap();
                // Let readers land some requests on this epoch.
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            done.store(true, Ordering::Release);
        });

        for reader in 0..READERS {
            scope.spawn(move || {
                // Staggered starting offsets so readers do not march in
                // lockstep over the same query.
                let mut i = reader * 5;
                while !done.load(Ordering::Acquire) {
                    i = (i + 1) % QUERIES;
                    let q = &queries[i];
                    attempts.fetch_add(2, Ordering::Relaxed);
                    let range = server.range(q, EPS).expect("queue bound is generous");
                    let est = server.estimate(q, EPS).expect("queue bound is generous");
                    // Each response must be bit-exact with the snapshot of
                    // the epoch it claims — matching neither, or a mix of
                    // both, means a torn read across the swap.
                    let tally = |epoch: u64| -> &EpochExpectation {
                        if epoch % 2 == 1 {
                            served_by_a.fetch_add(1, Ordering::Relaxed);
                            expect_a
                        } else {
                            served_by_b.fetch_add(1, Ordering::Relaxed);
                            expect_b
                        }
                    };
                    assert_eq!(
                        range.value,
                        tally(range.epoch).range[i],
                        "range response for query {i} does not match its epoch {}",
                        range.epoch
                    );
                    assert_eq!(
                        est.value.to_bits(),
                        tally(est.epoch).estimate[i].to_bits(),
                        "estimate for query {i} does not match its epoch {}",
                        est.epoch
                    );
                }
            });
        }
    });

    let final_epoch = server.current_epoch();
    assert_eq!(
        final_epoch,
        1 + SWAPS as u64,
        "every reload must bump the epoch"
    );
    let report = server.shutdown();

    // No admitted request may be lost or left unanswered.
    assert_eq!(report.completed, report.submitted);
    assert_eq!(report.rejected, 0, "queue bound was sized to never reject");
    assert_eq!(
        report.submitted,
        attempts.load(Ordering::Relaxed),
        "every client attempt must be admitted and answered"
    );
    assert_eq!(report.reloads as usize, SWAPS);

    // The interleaving must actually have exercised both snapshots; with 20
    // swaps at 2ms apart and free-running readers this only fails if the
    // scheduler starved the readers entirely.
    assert!(
        served_by_a.load(Ordering::Relaxed) > 0,
        "no response was served by snapshot A"
    );
    assert!(
        served_by_b.load(Ordering::Relaxed) > 0,
        "no response was served by snapshot B"
    );
}
