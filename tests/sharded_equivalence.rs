//! Property test for the sharded scatter-gather contract: a
//! `ShardedEngine` fanning queries out over N dataset slices must be
//! **bit-identical** to the single engine over the whole dataset — same
//! range hits in the same order, same counts, same knn neighbors and
//! ordering, and same LAF-DBSCAN labels and stats — for every persistable
//! engine kind (in its exhaustive configuration, where the approximate
//! engines are exact), every metric, and both owned and memory-mapped
//! backings. This is the contract that lets format-v4 sharded snapshots
//! claim equivalence with their unsharded twins.

use laf::prelude::*;
use laf::vector::{io, mapped, ops};
use proptest::prelude::*;
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Deterministic flat buffer of `rows` unit-normalized `dim`-vectors.
fn unit_rows(rows: usize, dim: usize, seed: u64) -> Vec<f32> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut flat: Vec<f32> = (0..rows * dim).map(|_| rng.gen_range(-1.0..1.0)).collect();
    for row in flat.chunks_mut(dim) {
        if ops::normalize_in_place(row) <= 1e-12 {
            row[0] = 1.0;
            for x in &mut row[1..] {
                *x = 0.0;
            }
        }
    }
    flat
}

/// Write `owned`'s binary encoding to a unique temp file and map it back.
fn mapped_twin(owned: &Dataset) -> (Dataset, std::path::PathBuf) {
    static COUNTER: AtomicUsize = AtomicUsize::new(0);
    let path = std::env::temp_dir().join(format!(
        "laf_sharded_equivalence_{}_{}.lafv",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    io::save_binary(owned, &path).expect("write dataset");
    let map = mapped::map_file(&path).expect("map dataset file");
    let twin = mapped::dataset_from_map(&map, 0, map.len()).expect("decode mapped dataset");
    (twin, path)
}

/// Every persistable engine in its **exhaustive** configuration: k-means
/// tree visiting every leaf and IVF probing every list are exact, so all
/// four must match the linear scan bit for bit — sharded or not.
fn exhaustive_choices() -> [EngineChoice; 4] {
    [
        EngineChoice::Linear,
        EngineChoice::Grid { cell_side: 0.3 },
        EngineChoice::KMeansTree {
            branching: 3,
            leaf_ratio: 1.0,
        },
        EngineChoice::Ivf {
            nlist: 4,
            nprobe: 4,
        },
    ]
}

/// Build a [`ShardedEngine`] over `n` even slices of `data` and hand it to
/// `f`. (The per-shard engines borrow the slice datasets, so both live in
/// this scope.)
fn with_sharded<R>(
    data: &Dataset,
    n: usize,
    choice: EngineChoice,
    metric: Metric,
    eps: f32,
    f: impl FnOnce(&dyn RangeQueryEngine) -> R,
) -> R {
    let map = ShardMap::even_split(data.len(), n);
    let slices: Vec<Dataset> = (0..map.n_shards())
        .map(|s| data.slice_rows(map.start(s), map.shard_len(s)).unwrap())
        .collect();
    let engines: Vec<Box<dyn RangeQueryEngine + '_>> = slices
        .iter()
        .map(|slice| build_engine(choice, slice, metric, eps))
        .collect();
    let sharded = ShardedEngine::new(engines, map).expect("uniform shard engines");
    f(&sharded)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn sharded_queries_match_the_unsharded_engine_bit_for_bit(
        rows in 24usize..72,
        dim in 2usize..7,
        seed in 0u64..1_000_000,
        eps in 0.25f32..0.55,
    ) {
        let owned = Dataset::from_flat(dim, unit_rows(rows, dim, seed)).unwrap();
        let (mapped_ds, path) = mapped_twin(&owned);
        let queries: Vec<&[f32]> =
            (0..rows.min(6)).map(|i| owned.row(i * (rows / rows.min(6)))).collect();

        for metric in [Metric::Cosine, Metric::Euclidean] {
            for choice in exhaustive_choices() {
                let full = build_engine(choice, &owned, metric, eps);
                let want_range: Vec<Vec<u32>> =
                    queries.iter().map(|q| full.range(q, eps)).collect();
                let want_count: Vec<usize> =
                    queries.iter().map(|q| full.range_count(q, eps)).collect();
                let want_knn: Vec<Vec<Neighbor>> =
                    queries.iter().map(|q| full.knn(q, 5)).collect();

                for backing in [&owned, &mapped_ds] {
                    for n in [1usize, 2, 3, 7] {
                        with_sharded(backing, n, choice, metric, eps, |sharded| {
                            prop_assert_eq!(sharded.num_points(), rows);
                            for (i, q) in queries.iter().enumerate() {
                                prop_assert_eq!(
                                    &sharded.range(q, eps), &want_range[i],
                                    "{:?}/{:?} n={} mapped={}: range diverged",
                                    choice, metric, n, backing.is_mapped()
                                );
                                prop_assert_eq!(
                                    sharded.range_count(q, eps), want_count[i],
                                    "{:?}/{:?} n={}: range_count diverged",
                                    choice, metric, n
                                );
                                prop_assert_eq!(
                                    &sharded.knn(q, 5), &want_knn[i],
                                    "{:?}/{:?} n={}: knn diverged",
                                    choice, metric, n
                                );
                            }
                            Ok(())
                        })?;
                    }
                }
            }
        }

        drop(mapped_ds);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn sharded_clustering_labels_and_stats_are_bit_identical(
        rows in 30usize..70,
        dim in 2usize..6,
        seed in 0u64..1_000_000,
    ) {
        let owned = Dataset::from_flat(dim, unit_rows(rows, dim, seed)).unwrap();
        let (mapped_ds, path) = mapped_twin(&owned);

        for metric in [Metric::Cosine, Metric::Euclidean] {
            for choice in exhaustive_choices() {
                let config = LafConfig {
                    engine: choice,
                    metric,
                    ..LafConfig::new(0.4, 3, 1.0)
                };
                let laf = LafDbscan::new(
                    config.clone(),
                    ExactEstimator::new(&owned, metric),
                );
                let full = build_engine(choice, &owned, metric, config.eps);
                let (want_clustering, want_stats) =
                    laf.cluster_with_stats_using(&owned, full.as_ref());

                for backing in [&owned, &mapped_ds] {
                    for n in [1usize, 2, 3, 7] {
                        let (clustering, stats) = with_sharded(
                            backing, n, choice, metric, config.eps,
                            |sharded| laf.cluster_with_stats_using(backing, sharded),
                        );
                        prop_assert_eq!(
                            clustering.labels(), want_clustering.labels(),
                            "{:?}/{:?} n={} mapped={}: labels diverged",
                            choice, metric, n, backing.is_mapped()
                        );
                        prop_assert_eq!(
                            &stats, &want_stats,
                            "{:?}/{:?} n={}: stats diverged", choice, metric, n
                        );
                    }
                }
            }
        }

        drop(mapped_ds);
        std::fs::remove_file(path).ok();
    }
}
