//! Round-trip tests for everything that can be persisted: datasets (binary
//! and JSON), trained estimators, configurations and clustering results.

use laf::prelude::*;
use laf::vector::io;

fn small_data() -> Dataset {
    EmbeddingMixtureConfig {
        n_points: 150,
        dim: 10,
        clusters: 4,
        noise_fraction: 0.2,
        seed: 3,
        ..Default::default()
    }
    .generate()
    .unwrap()
    .0
}

#[test]
fn dataset_binary_and_json_files_round_trip() {
    let data = small_data();
    let dir = std::env::temp_dir().join("laf_integration_io");
    std::fs::create_dir_all(&dir).unwrap();
    let bin = dir.join("ds.lafv");
    let json = dir.join("ds.json");

    io::save_binary(&data, &bin).unwrap();
    io::save_json(&data, &json).unwrap();
    assert_eq!(io::load_binary(&bin).unwrap(), data);
    assert_eq!(io::load_json(&json).unwrap(), data);

    std::fs::remove_file(bin).ok();
    std::fs::remove_file(json).ok();
}

#[test]
fn trained_estimators_round_trip_through_json() {
    let data = small_data();
    let training = TrainingSetBuilder {
        max_queries: Some(80),
        ..Default::default()
    }
    .build(&data, &data)
    .unwrap();

    let mlp = MlpEstimator::train(&training, &NetConfig::tiny());
    let rmi = RmiEstimator::train(&training, &RmiConfig::paper_stages(NetConfig::tiny()));
    let hist = HistogramEstimator::from_training(&training);

    let mlp_back: MlpEstimator =
        serde_json::from_str(&serde_json::to_string(&mlp).unwrap()).unwrap();
    let rmi_back: RmiEstimator =
        serde_json::from_str(&serde_json::to_string(&rmi).unwrap()).unwrap();
    let hist_back: HistogramEstimator =
        serde_json::from_str(&serde_json::to_string(&hist).unwrap()).unwrap();

    for i in (0..data.len()).step_by(13) {
        let q = data.row(i);
        for eps in [0.2f32, 0.5, 0.8] {
            assert_eq!(mlp.estimate(q, eps), mlp_back.estimate(q, eps));
            assert_eq!(rmi.estimate(q, eps), rmi_back.estimate(q, eps));
            assert_eq!(hist.estimate(q, eps), hist_back.estimate(q, eps));
        }
    }
}

#[test]
fn persisted_estimator_produces_identical_clustering() {
    let data = small_data();
    let training = TrainingSetBuilder {
        max_queries: Some(80),
        ..Default::default()
    }
    .build(&data, &data)
    .unwrap();
    let estimator = MlpEstimator::train(&training, &NetConfig::tiny());
    let restored: MlpEstimator =
        serde_json::from_str(&serde_json::to_string(&estimator).unwrap()).unwrap();

    let a = LafDbscan::new(LafConfig::new(0.35, 3, 1.0), estimator).cluster(&data);
    let b = LafDbscan::new(LafConfig::new(0.35, 3, 1.0), restored).cluster(&data);
    assert_eq!(a.labels(), b.labels());
}

#[test]
fn configurations_and_results_serialize() {
    let laf_cfg = LafConfig::new(0.55, 5, 7.7);
    let back: LafConfig = serde_json::from_str(&serde_json::to_string(&laf_cfg).unwrap()).unwrap();
    assert_eq!(laf_cfg, back);

    let pp_cfg = LafDbscanPlusPlusConfig::new(0.5, 3, 0.25);
    let back: LafDbscanPlusPlusConfig =
        serde_json::from_str(&serde_json::to_string(&pp_cfg).unwrap()).unwrap();
    assert_eq!(pp_cfg, back);

    let dbscan_cfg = DbscanConfig {
        eps: 0.5,
        min_pts: 5,
        metric: Metric::Cosine,
        engine: EngineChoice::KMeansTree {
            branching: 10,
            leaf_ratio: 0.6,
        },
    };
    let back: DbscanConfig =
        serde_json::from_str(&serde_json::to_string(&dbscan_cfg).unwrap()).unwrap();
    assert_eq!(dbscan_cfg, back);

    let data = small_data();
    let clustering = Dbscan::with_params(0.35, 3).cluster(&data);
    let back: Clustering =
        serde_json::from_str(&serde_json::to_string(&clustering).unwrap()).unwrap();
    assert_eq!(clustering.labels(), back.labels());

    let report = MissedClusterReport::compute(clustering.labels(), clustering.labels());
    let back: MissedClusterReport =
        serde_json::from_str(&serde_json::to_string(&report).unwrap()).unwrap();
    assert_eq!(report, back);
}

#[test]
fn snapshot_round_trips_with_bit_exact_estimates() {
    let data = small_data();
    let pipeline = LafPipeline::builder(LafConfig::new(0.35, 3, 1.0))
        .net(NetConfig::tiny())
        .training(TrainingSetBuilder {
            max_queries: Some(80),
            ..Default::default()
        })
        .train(data)
        .unwrap();
    let bytes = pipeline.to_snapshot_bytes().unwrap();
    let warm = LafPipeline::from_snapshot_bytes(&bytes).unwrap();
    assert_eq!(warm.config(), pipeline.config());
    assert_eq!(warm.data(), pipeline.data());
    for i in (0..pipeline.data().len()).step_by(13) {
        let q = pipeline.data().row(i);
        for eps in [0.2f32, 0.5, 0.8] {
            assert_eq!(
                pipeline.estimate(q, eps).to_bits(),
                warm.estimate(q, eps).to_bits(),
                "row {i} eps {eps}"
            );
        }
    }
    assert_eq!(pipeline.cluster().labels(), warm.cluster().labels());
}

#[test]
fn training_set_round_trips() {
    let data = small_data();
    let ts = TrainingSetBuilder {
        max_queries: Some(20),
        thresholds: vec![0.3, 0.6],
        ..Default::default()
    }
    .build(&data, &data)
    .unwrap();
    let back: TrainingSet = serde_json::from_str(&serde_json::to_string(&ts).unwrap()).unwrap();
    assert_eq!(ts, back);
}
