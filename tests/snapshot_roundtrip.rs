//! Cross-process snapshot round-trip: a pipeline loaded in a **different
//! process** must be bit-exact with the process that trained it.
//!
//! Same-process round-trip tests cannot catch bugs where in-memory state
//! leaks into equality (e.g. an estimator that only looks identical because
//! the original weights are still alive). This test re-executes the current
//! test binary as a child "serving" process: the parent trains, saves a
//! snapshot and fingerprints its results; the child knows nothing but the
//! snapshot file, loads it, and writes its own fingerprint for the parent to
//! compare byte for byte.
//!
//! The fingerprint covers everything the acceptance bar names: cluster
//! labels, `LafStats`, and per-point estimates (as raw IEEE-754 bits).

use laf::prelude::*;
use std::path::PathBuf;
use std::process::Command;

/// Byte fingerprint of a pipeline's observable behaviour: labels (`i64` LE),
/// the serialized `LafStats`, and every per-point estimate's `f32` bits.
fn fingerprint(pipeline: &LafPipeline) -> Vec<u8> {
    let (clustering, stats) = pipeline.cluster_with_stats();
    let mut buf: Vec<u8> = Vec::new();
    for &label in clustering.labels() {
        buf.extend_from_slice(&label.to_le_bytes());
    }
    buf.extend_from_slice(
        serde_json::to_string(&stats)
            .expect("stats serialize")
            .as_bytes(),
    );
    let rows: Vec<&[f32]> = pipeline.data().rows().collect();
    for estimate in pipeline.estimate_batch(&rows, pipeline.config().eps) {
        buf.extend_from_slice(&estimate.to_bits().to_le_bytes());
    }
    buf
}

#[test]
fn cross_process_round_trip_is_bit_exact() {
    // Child role: triggered by the env vars the parent sets below. The child
    // has no access to the parent's in-memory pipeline — only the file.
    if let (Ok(snapshot), Ok(out)) = (
        std::env::var("LAF_SNAPSHOT_SERVE_PATH"),
        std::env::var("LAF_SNAPSHOT_FINGERPRINT_OUT"),
    ) {
        let warm = load_snapshot(&snapshot).expect("child: snapshot load");
        std::fs::write(&out, fingerprint(&warm)).expect("child: write fingerprint");
        return;
    }

    // Parent role: train, save, fingerprint.
    let dir = std::env::temp_dir().join(format!("laf_snapshot_xproc_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let snapshot_path = dir.join("pipeline.lafs");
    let fingerprint_path = dir.join("child.fp");

    let (data, _) = EmbeddingMixtureConfig {
        n_points: 300,
        dim: 12,
        clusters: 5,
        noise_fraction: 0.2,
        seed: 123,
        ..Default::default()
    }
    .generate()
    .unwrap();
    let cold = LafPipeline::builder(LafConfig::new(0.3, 4, 1.2))
        .net(NetConfig::tiny())
        .training(TrainingSetBuilder {
            max_queries: Some(120),
            ..Default::default()
        })
        .train(data)
        .unwrap();
    save_snapshot(&cold, &snapshot_path).unwrap();
    let parent_fp = fingerprint(&cold);

    // Re-execute this test binary as the serving process.
    let exe: PathBuf = std::env::current_exe().expect("test binary path");
    let status = Command::new(exe)
        .arg("cross_process_round_trip_is_bit_exact")
        .arg("--exact")
        .env("LAF_SNAPSHOT_SERVE_PATH", &snapshot_path)
        .env("LAF_SNAPSHOT_FINGERPRINT_OUT", &fingerprint_path)
        .status()
        .expect("spawn serving child process");
    assert!(status.success(), "child serving process failed: {status}");

    let child_fp = std::fs::read(&fingerprint_path).expect("child fingerprint written");
    assert!(
        parent_fp == child_fp,
        "cross-process fingerprints differ: parent {} bytes, child {} bytes",
        parent_fp.len(),
        child_fp.len()
    );
    std::fs::remove_dir_all(&dir).ok();
}
