//! Stress test for the multi-tenant snapshot cache: four tenants hammer a
//! cache with room for only **two** resident snapshots from concurrent
//! reader threads. The invariants under contention:
//!
//! * resident bytes never exceed the byte budget (checked after every
//!   operation and at the end from the cache's own accounting);
//! * only unpinned snapshots are evicted — a pinned pipeline keeps
//!   answering correctly even while its tenant is the eviction victim of
//!   choice, and `Overloaded` is returned instead of evicting it;
//! * every answer is bit-identical to the tenant's own pipeline, no matter
//!   how many times the snapshot was evicted and reloaded in between;
//! * pins and unpins balance, and the hit/miss/eviction counters are
//!   mutually consistent with residency.

use laf::prelude::*;
use laf::serve::CacheError;
use std::path::PathBuf;
use std::sync::Arc;

const TENANTS: usize = 4;
const ROUNDS: usize = 12;

fn snapshot_file(dir: &std::path::Path, tenant: usize) -> (PathBuf, LafPipeline) {
    let (data, _) = laf::synth::EmbeddingMixtureConfig {
        n_points: 90,
        dim: 6,
        clusters: 2,
        seed: 100 + tenant as u64,
        ..Default::default()
    }
    .generate()
    .unwrap();
    let path = dir.join(format!("tenant{tenant}_{}.lafs", std::process::id()));
    let pipeline = LafPipeline::builder(LafConfig::new(0.3, 4, 1.0))
        .net(NetConfig::tiny())
        .training(TrainingSetBuilder {
            max_queries: Some(40),
            ..Default::default()
        })
        .train_and_save(data, &path)
        .unwrap();
    (path, pipeline)
}

#[test]
fn four_tenants_through_a_two_snapshot_cache_under_concurrency() {
    let dir = std::env::temp_dir().join("laf_tenant_cache_stress");
    std::fs::create_dir_all(&dir).unwrap();
    let (paths, directs): (Vec<PathBuf>, Vec<LafPipeline>) =
        (0..TENANTS).map(|t| snapshot_file(&dir, t)).unzip();
    let bytes = std::fs::metadata(&paths[0]).unwrap().len();

    // Budget for exactly two resident snapshots (all four are the same
    // shape, hence the same file size).
    let cache = SnapshotCache::new(CacheConfig {
        byte_budget: bytes * 2 + bytes / 2,
        max_entries: 2,
        tenant_quota: 0,
    });
    for (t, path) in paths.iter().enumerate() {
        cache.register(&format!("t{t}"), path).unwrap();
    }
    let server = TenantServer::new(Arc::clone(&cache));

    // Reference answers straight from each tenant's own pipeline:
    // (query, range hits, range count, knn).
    type Reference = (Vec<f32>, Vec<u32>, usize, Vec<Neighbor>);
    let expected: Vec<Reference> = directs
        .iter()
        .map(|p| {
            let q: Vec<f32> = p.data().row(3).to_vec();
            let engine = p.engine();
            (
                q.clone(),
                engine.get().range(&q, 0.3),
                engine.get().range_count(&q, 0.3),
                engine.get().knn(&q, 5),
            )
        })
        .collect();

    std::thread::scope(|scope| {
        for reader in 0..TENANTS {
            let (server, cache, expected) = (&server, &cache, &expected);
            scope.spawn(move || {
                for round in 0..ROUNDS {
                    // Each reader walks the tenants starting from its own,
                    // so at any moment different readers want different
                    // snapshots and the 2-slot cache churns.
                    let t = (reader + round) % TENANTS;
                    let tenant = format!("t{t}");
                    let (q, want_range, want_count, want_knn) = &expected[t];
                    // A pinned snapshot must answer correctly even while
                    // other readers force evictions around it; Overloaded
                    // (every slot pinned elsewhere) is the one admissible
                    // failure and means this round proved pin-safety.
                    let pin = match cache.pin(&tenant) {
                        Ok(pin) => pin,
                        Err(CacheError::Overloaded { .. }) => continue,
                        Err(e) => panic!("reader {reader}: unexpected error {e}"),
                    };
                    assert_eq!(&pin.engine().get().range(q, 0.3), want_range);
                    assert_eq!(pin.engine().get().range_count(q, 0.3), *want_count);
                    drop(pin);
                    match server.knn(&tenant, q, 5) {
                        Ok(knn) => assert_eq!(&knn, want_knn),
                        Err(CacheError::Overloaded { .. }) => {}
                        Err(e) => panic!("reader {reader}: unexpected error {e}"),
                    }
                    let report = cache.report();
                    assert!(
                        report.resident_bytes <= report.byte_budget,
                        "budget exceeded mid-run: {} > {}",
                        report.resident_bytes,
                        report.byte_budget
                    );
                    assert!(report.resident_entries <= 2);
                }
            });
        }
    });

    let report = cache.report();
    assert!(report.resident_bytes <= report.byte_budget);
    assert!(report.resident_entries <= 2);
    assert_eq!(report.pins, report.unpins, "all pins must be released");
    assert!(
        report.misses > report.resident_entries as u64,
        "four tenants through two slots must reload evicted snapshots \
         (misses {}, resident {})",
        report.misses,
        report.resident_entries
    );
    assert_eq!(
        report.evictions,
        report.misses - report.resident_entries as u64,
        "every miss beyond the resident set must have evicted exactly one victim"
    );
    assert!(report.hits + report.misses + report.rejections > 0);

    for p in paths {
        std::fs::remove_file(p).ok();
    }
}
