//! Chaos harness for the sharded/tenant serving plane: run randomized,
//! seed-deterministic fault schedules against a multi-tenant
//! [`TenantServer`] (one tenant sharded) with a self-healing
//! [`MaintenanceSupervisor`] attached, and hold the plane to the
//! robustness contract — every query either succeeds **bit-identical** to
//! a fault-free oracle or fails with a typed [`CacheError`]; never a
//! panic, never a silently wrong answer. Corruption is injected two ways:
//! real bit-flips written into registered snapshot files (detected by the
//! scrub's CRC re-verification) and failpoint-driven repair-fetch
//! failures (`cache.repair.fetch`), plus pin-time mmap failures
//! (`cache.pin.mmap`) and load-time section flips
//! (`mmap.section.bitflip`). The supervisor runs in manual-tick mode so
//! every maintenance pass is an explicit, replayable step; at the end of
//! each run every tenant with a live good replica must return to
//! `Healthy` within the tick budget with no operator intervention, and a
//! concurrency phase proves the supervisor never deadlocks against
//! concurrent pins.
//!
//! Seeds come from a fixed battery plus an optional `LAF_CHAOS_SEED`
//! environment override (CI passes a fresh one per run); a failing seed is
//! dumped to `results/chaos_failure.json` before the panic propagates so
//! the schedule can be replayed locally.

#![cfg(feature = "fault-injection")]

use laf::cardest::{NetConfig, TrainingSetBuilder};
use laf::core::fault::{self, FaultMode, FaultPlan};
use laf::core::{LafConfig, LafPipeline};
use laf::serve::{
    CacheConfig, MaintenanceConfig, ReplicaSet, SnapshotCache, SnapshotSource, TenantHealth,
    TenantServer,
};
use laf::synth::EmbeddingMixtureConfig;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};

const DIM: usize = 6;
const EPS: f32 = 0.3;
const KNN_K: usize = 5;
const OPS_PER_SEED: usize = 70;
const QUERIES_PER_TENANT: usize = 6;
/// Scrub ticks a tenant with a live good replica gets to return to
/// `Healthy` in the fault-free heal phase (one should suffice: a pass
/// quarantines and repairs in the same tick).
const HEAL_TICK_BUDGET: usize = 4;

/// The fixed seed battery CI replays on every run.
const FIXED_SEEDS: [u64; 8] = [1, 2, 3, 5, 8, 13, 21, 34];

/// The serve-layer failpoint sites this harness arms.
const SITES: [&str; 3] = [
    "cache.pin.mmap",
    "mmap.section.bitflip",
    "cache.repair.fetch",
];

/// (tenant id, data seed, shard count) — tenant `t1` serves a sharded
/// snapshot, so repairs and scatter-gather loads cover the sharded plane.
const TENANTS: [(&str, u64, usize); 3] = [("t0", 11, 1), ("t1", 22, 3), ("t2", 33, 1)];
const REPLICAS: usize = 3;

/// Serialize every test in this binary: the failpoint registry is
/// process-wide, so a plan armed by one test must never fire inside
/// another test running on a sibling thread.
fn exclusive() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

/// splitmix64 — the op-sequence PRNG. Deterministic per seed and
/// independent of the fault registry's own draws.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The chaos plan for one seed. `cache.repair.fetch` is armed with a
/// *finite* schedule — the first `(seed % 4) + 1` fetch attempts fail —
/// so repairs are forced through their retry/backoff/next-candidate path
/// but self-healing is still guaranteed for every seed, including the
/// fresh one CI passes.
fn chaos_plan(seed: u64) -> FaultPlan {
    let failing_fetches: Vec<u64> = (0..(seed % 4) + 1).collect();
    FaultPlan::new(seed)
        .with_site("cache.pin.mmap", FaultMode::Probability(0.05))
        .with_site("mmap.section.bitflip", FaultMode::Probability(0.02))
        .with_site("cache.repair.fetch", FaultMode::Schedule(failing_fetches))
}

/// Run `f` on the fault-free plane: injection paused (consultations do not
/// advance the schedule), so oracle and recovery paths never trip.
fn fault_free<T>(f: impl FnOnce() -> T) -> T {
    fault::set_enabled(false);
    let out = f();
    fault::set_enabled(true);
    out
}

fn unique_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("laf_chaos_{tag}_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// The fault-free ground truth for one query on one tenant.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Expected {
    range: Vec<u32>,
    count: usize,
    knn: Vec<(u32, u32)>,
    estimate: u32,
}

/// One tenant's clean snapshot bytes plus oracle answers for its queries.
struct TenantFixture {
    name: &'static str,
    clean: Vec<u8>,
    queries: Vec<Vec<f32>>,
    expect: Vec<Expected>,
}

/// Train every tenant once (the expensive part, shared across seeds) and
/// precompute the oracle: answers from the freshly-loaded clean snapshot,
/// computed with no faults armed.
fn fixtures() -> Vec<TenantFixture> {
    let dir = unique_dir("tenant_fixtures");
    TENANTS
        .iter()
        .map(|&(name, seed, shards)| {
            let (data, _) = EmbeddingMixtureConfig {
                n_points: 120,
                dim: DIM,
                clusters: 2,
                noise_fraction: 0.1,
                seed,
                ..Default::default()
            }
            .generate()
            .unwrap();
            let path = dir.join(format!("{name}.lafs"));
            LafPipeline::builder(LafConfig::new(EPS, 4, 1.0))
                .net(NetConfig::tiny())
                .training(TrainingSetBuilder {
                    max_queries: Some(40),
                    ..Default::default()
                })
                .shards(shards)
                .train_and_save(data, &path)
                .unwrap();
            // The oracle answers from the same load path the cache uses, so
            // "bit-exact" compares mmap-served plane against mmap-served
            // plane.
            let loaded = LafPipeline::load_mmap(&path).unwrap();
            let queries: Vec<Vec<f32>> = (0..QUERIES_PER_TENANT)
                .map(|i| loaded.data().row(i * 7).to_vec())
                .collect();
            let engine = loaded.engine();
            let expect = queries
                .iter()
                .map(|q| Expected {
                    range: engine.get().range(q, EPS),
                    count: engine.get().range_count(q, EPS),
                    knn: engine
                        .get()
                        .knn(q, KNN_K)
                        .into_iter()
                        .map(|n| (n.index, n.dist.to_bits()))
                        .collect(),
                    estimate: loaded.estimate(q, EPS).to_bits(),
                })
                .collect();
            drop(loaded);
            let clean = std::fs::read(&path).unwrap();
            TenantFixture {
                name,
                clean,
                queries,
                expect,
            }
        })
        .collect()
}

/// XOR one mid-file byte in place — real on-disk corruption for the scrub
/// to find (a section body, past the header `register` validates).
fn flip_mid_byte(path: &std::path::Path) {
    let mut bytes = std::fs::read(path).unwrap();
    let at = bytes.len() / 2;
    bytes[at] ^= 0x01;
    std::fs::write(path, bytes).unwrap();
}

/// Everything observable about one seed's run — compared across replays to
/// prove the schedule is deterministic end to end.
#[derive(Debug, Clone, PartialEq)]
struct ChaosReport {
    typed_errors: u64,
    corrupt_ops: u64,
    ticks: u64,
    quarantines: u64,
    repairs_attempted: u64,
    repairs_succeeded: u64,
    repairs_failed: u64,
    trips: Vec<(&'static str, u64)>,
}

/// Run one query through the server and hold the contract: `Ok` must be
/// bit-identical to the oracle, `Err` must be a typed cache error.
/// Returns whether the query erred.
fn check_query(
    server: &TenantServer,
    fixture: &TenantFixture,
    qi: usize,
    kind: u64,
    context: &str,
) -> bool {
    let tenant = fixture.name;
    let q = &fixture.queries[qi];
    let want = &fixture.expect[qi];
    match kind % 4 {
        0 => match server.range(tenant, q, EPS) {
            Ok(hits) => {
                assert_eq!(hits, want.range, "{context}: range diverged");
                false
            }
            Err(e) => {
                assert!(!e.to_string().is_empty(), "{context}");
                true
            }
        },
        1 => match server.range_count(tenant, q, EPS) {
            Ok(n) => {
                assert_eq!(n, want.count, "{context}: range_count diverged");
                false
            }
            Err(e) => {
                assert!(!e.to_string().is_empty(), "{context}");
                true
            }
        },
        2 => match server.knn(tenant, q, KNN_K) {
            Ok(neighbors) => {
                let bits: Vec<(u32, u32)> = neighbors
                    .into_iter()
                    .map(|n| (n.index, n.dist.to_bits()))
                    .collect();
                assert_eq!(bits, want.knn, "{context}: knn diverged");
                false
            }
            Err(e) => {
                assert!(!e.to_string().is_empty(), "{context}");
                true
            }
        },
        _ => match server.estimate(tenant, q, EPS) {
            Ok(est) => {
                assert_eq!(est.to_bits(), want.estimate, "{context}: estimate diverged");
                false
            }
            Err(e) => {
                assert!(!e.to_string().is_empty(), "{context}");
                true
            }
        },
    }
}

/// One chaos run: a seed-deterministic op stream of queries, real
/// file corruption + maintenance ticks against the supervised
/// multi-tenant plane, then a fault-free concurrency (no-deadlock) phase
/// and a final self-healing battery.
fn run_chaos_seed(seed: u64, fixtures: &[TenantFixture]) -> ChaosReport {
    let dir = unique_dir(&format!("tenant_{seed}"));
    let replica_path = |t: &str, i: usize| -> PathBuf { dir.join(format!("{t}_r{i}.lafs")) };
    let restore_clean = |fixture: &TenantFixture| {
        for i in 0..REPLICAS {
            std::fs::write(replica_path(fixture.name, i), &fixture.clean).unwrap();
        }
    };

    let cache = SnapshotCache::new(CacheConfig {
        max_entries: 2, // fewer slots than tenants: constant eviction churn
        ..CacheConfig::default()
    });
    let source = Arc::new(ReplicaSet::new());
    for fixture in fixtures {
        restore_clean(fixture);
        cache
            .register(fixture.name, replica_path(fixture.name, 0))
            .unwrap();
        source.set(
            fixture.name,
            (0..REPLICAS).map(|i| replica_path(fixture.name, i)),
        );
    }
    let server = TenantServer::new(Arc::clone(&cache));
    // Manual-tick mode with one repair at a time: every failpoint
    // consultation happens in a deterministic, single-file order, so the
    // seeded schedule is replayable.
    let supervisor = server.start_maintenance(
        Arc::clone(&source) as Arc<dyn SnapshotSource>,
        MaintenanceConfig {
            scrub_interval_us: 0,
            jitter_us: 0,
            max_concurrent_repairs: 1,
            repair_retries: 1,
            repair_backoff_us: 10,
        },
    );

    fault::install(chaos_plan(seed));
    let mut rng = seed ^ 0xD1B5_4A32_D192_ED03;
    let mut typed_errors = 0u64;
    let mut corrupt_ops = 0u64;
    let mut ticks = 0u64;

    for step in 0..OPS_PER_SEED {
        let r = splitmix(&mut rng);
        let fixture = &fixtures[(r >> 8) as usize % fixtures.len()];
        match r % 100 {
            // Queries: bit-exact or typed, never anything else.
            0..=59 => {
                let qi = (r >> 16) as usize % QUERIES_PER_TENANT;
                let context = format!("seed {seed} step {step} tenant {}", fixture.name);
                if check_query(&server, fixture, qi, r >> 24, &context) {
                    typed_errors += 1;
                }
            }
            // Real corruption: restore every replica to clean bytes, make
            // the tenant resident, then flip a byte in the *registered*
            // file and immediately run a maintenance pass. No query touches
            // the tenant between the flip and the tick, so the corrupted
            // mmap is quarantined (or repaired) before it can serve.
            60..=79 => {
                restore_clean(fixture);
                match cache.pin(fixture.name) {
                    Ok(pin) => {
                        drop(pin);
                        let registered = cache.registered_path(fixture.name).unwrap();
                        flip_mid_byte(&registered);
                        corrupt_ops += 1;
                    }
                    Err(e) => {
                        // A failed pin (pin.mmap fault, quarantine) leaves
                        // nothing resident to corrupt; still typed.
                        assert!(!e.to_string().is_empty(), "seed {seed} step {step}");
                        typed_errors += 1;
                    }
                }
                supervisor.tick();
                ticks += 1;
            }
            // A plain maintenance pass at an arbitrary point in the stream.
            _ => {
                supervisor.tick();
                ticks += 1;
            }
        }
    }
    let trips: Vec<(&'static str, u64)> = SITES.iter().map(|&s| (s, fault::trips(s))).collect();

    // Concurrency phase, faults paused: first heal everything (clean
    // replicas + one pass), then hammer the plane from reader threads
    // while the supervisor keeps scrubbing. thread::scope joining at all
    // is the assertion: the supervisor must never deadlock against
    // concurrent pins.
    fault_free(|| {
        for fixture in fixtures {
            restore_clean(fixture);
        }
        supervisor.tick();
        for fixture in fixtures {
            assert_eq!(
                supervisor.health(fixture.name),
                TenantHealth::Healthy,
                "seed {seed}: tenant {} not healed before the concurrency phase",
                fixture.name
            );
        }
        std::thread::scope(|scope| {
            for reader in 0..3u64 {
                let server = &server;
                scope.spawn(move || {
                    let mut rng = seed ^ (0xA076_1D64_78BD_642F ^ reader);
                    for i in 0..40 {
                        let r = splitmix(&mut rng);
                        let fixture = &fixtures[(r >> 8) as usize % fixtures.len()];
                        let qi = (r >> 16) as usize % QUERIES_PER_TENANT;
                        let context = format!(
                            "seed {seed} reader {reader} query {i} tenant {}",
                            fixture.name
                        );
                        // Typed errors are legitimate here (three readers
                        // over two cache slots race pins into Overloaded);
                        // check_query still forbids wrong answers.
                        let _ = check_query(server, fixture, qi, r >> 24, &context);
                    }
                });
            }
            for _ in 0..5 {
                supervisor.tick();
            }
        });
    });
    fault::clear();

    // Final self-healing battery, no faults at all: corrupt each tenant's
    // registered file while good replicas exist (one tenant at a time —
    // the cache holds fewer slots than tenants, and only a *resident*
    // corruption is scrubbable), and require the tenant back to Healthy
    // within the tick budget with zero operator intervention — then every
    // answer bit-exact again.
    for fixture in fixtures {
        restore_clean(fixture);
        drop(cache.pin(fixture.name).unwrap()); // resident, so the scrub sees it
        flip_mid_byte(&cache.registered_path(fixture.name).unwrap());
        let healed = (0..HEAL_TICK_BUDGET).any(|_| {
            supervisor.tick();
            supervisor.health(fixture.name) == TenantHealth::Healthy
        });
        assert!(
            healed,
            "seed {seed}: tenant {} with live good replicas did not self-heal within \
             {HEAL_TICK_BUDGET} ticks: {:?}",
            fixture.name,
            supervisor.health_report()
        );
    }
    assert!(
        cache.quarantined().is_empty(),
        "seed {seed}: healed plane still has quarantined tenants"
    );
    for fixture in fixtures {
        for qi in 0..QUERIES_PER_TENANT {
            for kind in 0..4u64 {
                let context = format!("seed {seed} healed tenant {}", fixture.name);
                assert!(
                    !check_query(&server, fixture, qi, kind, &context),
                    "{context}: queries after self-heal must succeed"
                );
            }
        }
    }

    let stats = cache.report();
    assert!(
        stats.repairs_succeeded >= fixtures.len() as u64,
        "seed {seed}: the final battery alone repairs every tenant"
    );
    assert!(stats.repairs_attempted >= stats.repairs_succeeded);
    assert!(stats.quarantines >= fixtures.len() as u64);
    assert!(
        stats.mean_time_to_repair_us > 0.0,
        "seed {seed}: successful repairs must report a time-to-repair"
    );
    assert!(
        stats.scrub_passes > ticks,
        "every tick runs at least one pass"
    );

    drop(supervisor);
    drop(server);
    std::fs::remove_dir_all(&dir).ok();
    ChaosReport {
        typed_errors,
        corrupt_ops,
        ticks,
        quarantines: stats.quarantines,
        repairs_attempted: stats.repairs_attempted,
        repairs_succeeded: stats.repairs_succeeded,
        repairs_failed: stats.repairs_failed,
        trips,
    }
}

/// Persist the failing seed so the exact schedule can be replayed with
/// `LAF_CHAOS_SEED=<seed>` (CI uploads this file as an artifact).
fn dump_failing_seed(seed: u64) {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results");
    std::fs::create_dir_all(&dir).ok();
    let sites: Vec<String> = SITES.iter().map(|s| format!("\"{s}\"")).collect();
    let json = format!(
        "{{\n  \"seed\": {seed},\n  \"replay\": \"LAF_CHAOS_SEED={seed} cargo test -p laf --features fault-injection --test chaos_tenant\",\n  \"sites\": [{}]\n}}\n",
        sites.join(", ")
    );
    std::fs::write(dir.join("chaos_failure.json"), json).ok();
    eprintln!("chaos: failing FaultPlan seed {seed} written to results/chaos_failure.json");
}

#[test]
fn tenant_chaos_schedules_never_panic_and_always_self_heal() {
    let _guard = exclusive();
    let fixtures = fixtures();

    let mut seeds: Vec<u64> = FIXED_SEEDS.to_vec();
    if let Ok(s) = std::env::var("LAF_CHAOS_SEED") {
        if let Ok(fresh) = s.trim().parse::<u64>() {
            seeds.push(fresh);
        }
    }

    for seed in seeds {
        let outcome = catch_unwind(AssertUnwindSafe(|| run_chaos_seed(seed, &fixtures)));
        fault::set_enabled(true);
        fault::clear();
        match outcome {
            Ok(report) => {
                let injected: u64 = report.trips.iter().map(|(_, n)| n).sum();
                println!(
                    "tenant chaos seed {seed}: {injected} faults tripped, {} typed errors, \
                     {} corruptions over {} ticks, repairs {}/{} succeeded ({} failed)",
                    report.typed_errors,
                    report.corrupt_ops,
                    report.ticks,
                    report.repairs_succeeded,
                    report.repairs_attempted,
                    report.repairs_failed,
                );
            }
            Err(payload) => {
                dump_failing_seed(seed);
                resume_unwind(payload);
            }
        }
    }
}

/// Replaying a seed must reproduce the run bit for bit — same trips per
/// site, same typed-error and repair counts — or a CI failure seed would
/// be useless locally. (Wall-clock–dependent numbers like time-to-repair
/// are deliberately outside the report.)
#[test]
fn replaying_a_tenant_seed_reproduces_the_run_exactly() {
    let _guard = exclusive();
    let fixtures = fixtures();
    let first = run_chaos_seed(13, &fixtures);
    let second = run_chaos_seed(13, &fixtures);
    assert_eq!(first, second, "seed 13 replay diverged");
    assert!(
        first.trips.iter().any(|&(_, n)| n > 0),
        "seed 13 tripped no faults at all — the chaos plan is not exercising anything"
    );
}
