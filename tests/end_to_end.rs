//! End-to-end integration tests: the full pipeline (synthetic dataset →
//! estimator training → clustering → metrics) on every dataset family the
//! paper evaluates.

use laf::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Shared tiny catalog so the suite stays fast.
fn catalog() -> DatasetCatalog {
    DatasetCatalog {
        scale: 0.004,
        seed: 1234,
        dim_cap: Some(48),
    }
}

#[test]
fn every_preset_runs_through_the_full_pipeline() {
    let catalog = catalog();
    for name in ["NYT-150k", "Glove-150k", "MS-50k"] {
        let ds = catalog.generate(name).expect("preset generates");
        assert!(ds.data.is_normalized(1e-3), "{name} not normalized");

        let mut rng = StdRng::seed_from_u64(9);
        let (train, test) = ds.data.train_test_split(0.8, &mut rng);

        let training = TrainingSetBuilder {
            max_queries: Some(120),
            ..Default::default()
        }
        .build(&train, &train)
        .expect("training set builds");
        let estimator = MlpEstimator::train(&training, &NetConfig::tiny());

        let eps = 0.4;
        let tau = 3;
        let truth = Dbscan::with_params(eps, tau).cluster(&test);
        let laf = LafDbscan::new(LafConfig::new(eps, tau, 1.0), estimator);
        let (result, stats) = laf.cluster_with_stats(&test);

        assert_eq!(result.len(), test.len(), "{name}: label count");
        let ari = adjusted_rand_index(truth.labels(), result.labels());
        let ami = adjusted_mutual_information(truth.labels(), result.labels());
        assert!(ari > 0.3, "{name}: ARI {ari} unreasonably low");
        assert!(ami > 0.2, "{name}: AMI {ami} unreasonably low");
        assert!(
            stats.cardest_calls > 0,
            "{name}: the estimator gate was never consulted"
        );
    }
}

#[test]
fn laf_dbscan_executes_fewer_range_queries_than_dbscan() {
    let ds = catalog().generate("Glove-150k").expect("preset");
    let eps = 0.4;
    let tau = 3;
    let truth = Dbscan::with_params(eps, tau).cluster(&ds.data);

    let training = TrainingSetBuilder {
        max_queries: Some(150),
        ..Default::default()
    }
    .build(&ds.data, &ds.data)
    .expect("training set");
    let estimator = MlpEstimator::train(&training, &NetConfig::tiny());
    let (_, stats) =
        LafDbscan::new(LafConfig::new(eps, tau, 1.5), estimator).cluster_with_stats(&ds.data);

    assert!(
        stats.executed_range_queries < truth.range_queries,
        "LAF executed {} range queries, DBSCAN executed {}",
        stats.executed_range_queries,
        truth.range_queries
    );
    assert!(stats.skipped_range_queries > 0);
}

#[test]
fn all_methods_produce_complete_labelings_on_the_same_dataset() {
    let ds = catalog().generate("MS-50k").expect("preset");
    let data = &ds.data;
    let eps = 0.5;
    let tau = 3;

    let training = TrainingSetBuilder {
        max_queries: Some(100),
        ..Default::default()
    }
    .build(data, data)
    .expect("training set");
    let rmi = RmiEstimator::train(&training, &RmiConfig::paper_stages(NetConfig::tiny()));

    let clusterings: Vec<(&str, Clustering)> = vec![
        ("DBSCAN", Dbscan::with_params(eps, tau).cluster(data)),
        (
            "DBSCAN++",
            DbscanPlusPlus::with_params(eps, tau, 0.4).cluster(data),
        ),
        (
            "KNN-BLOCK",
            KnnBlockDbscan::with_params(eps, tau).cluster(data),
        ),
        (
            "BLOCK-DBSCAN",
            BlockDbscan::with_params(eps, tau).cluster(data),
        ),
        (
            "rho-approx",
            RhoApproxDbscan::with_params(eps, tau).cluster(data),
        ),
        (
            "LAF-DBSCAN",
            LafDbscan::new(LafConfig::new(eps, tau, 1.0), &rmi).cluster(data),
        ),
        (
            "LAF-DBSCAN++",
            LafDbscanPlusPlus::new(LafDbscanPlusPlusConfig::new(eps, tau, 0.2), &rmi).cluster(data),
        ),
    ];

    for (name, c) in &clusterings {
        assert_eq!(c.len(), data.len(), "{name}: missing labels");
        // Labels are either noise or a valid compact cluster id.
        let max_label = c.labels().iter().copied().max().unwrap();
        assert!(max_label < data.len() as i64, "{name}: label overflow");
        assert!(
            c.labels().iter().all(|&l| l >= -1),
            "{name}: invalid label below -1"
        );
    }
}

#[test]
fn dbscan_ground_truth_statistics_behave_like_table_2() {
    // The paper's Table 2: as ε grows (τ fixed), the noise ratio falls and
    // clusters merge (fewer, larger clusters) until everything collapses into
    // one cluster.
    let ds = catalog().generate("MS-50k").expect("preset");
    let mut previous_noise = f64::INFINITY;
    let mut ratios = Vec::new();
    for eps in [0.3f32, 0.5, 0.7, 0.95] {
        let c = Dbscan::with_params(eps, 5).cluster(&ds.data);
        let stats = c.stats();
        ratios.push((eps, stats.noise_ratio(), stats.n_clusters));
        assert!(
            stats.noise_ratio() <= previous_noise + 1e-9,
            "noise ratio must not increase with eps: {ratios:?}"
        );
        previous_noise = stats.noise_ratio();
    }
    // At the largest radius nearly everything is clustered together.
    let (_, final_noise, final_clusters) = *ratios.last().unwrap();
    assert!(final_noise < 0.5, "final noise ratio {final_noise}");
    assert!(final_clusters >= 1);
}

#[test]
fn missed_cluster_report_matches_the_table_6_shape() {
    // LAF with a deliberately aggressive alpha fully misses some clusters,
    // but — as in Table 6 — the missed clusters are small.
    let ds = catalog().generate("Glove-150k").expect("preset");
    let eps = 0.4;
    let tau = 3;
    let truth = Dbscan::with_params(eps, tau).cluster(&ds.data);

    let training = TrainingSetBuilder {
        max_queries: Some(150),
        ..Default::default()
    }
    .build(&ds.data, &ds.data)
    .expect("training set");
    let estimator = MlpEstimator::train(&training, &NetConfig::tiny());
    let aggressive = LafDbscan::new(LafConfig::new(eps, tau, 6.0), estimator).cluster(&ds.data);

    let report = MissedClusterReport::compute(truth.labels(), aggressive.labels());
    assert_eq!(report.total_clusters, truth.n_clusters());
    assert!(report.missed_clusters <= report.total_clusters);
    if report.missed_clusters > 0 {
        // Missed clusters are small relative to the biggest true cluster.
        let largest = truth.stats().largest_cluster() as f64;
        assert!(
            report.avg_missed_cluster_size <= largest,
            "ASMC {} vs largest cluster {largest}",
            report.avg_missed_cluster_size
        );
    }
}
