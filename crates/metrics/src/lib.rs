//! # laf-metrics
//!
//! Clustering-quality metrics used throughout the LAF-DBSCAN evaluation.
//!
//! The paper reports two external quality scores against the labels produced
//! by exact DBSCAN (its ground truth):
//!
//! * **ARI** — the Adjusted Rand Index of Hubert & Arabie (1985);
//! * **AMI** — the Adjusted Mutual Information of Vinh, Epps & Bailey (2010),
//!   with the exact hypergeometric expected-MI correction.
//!
//! plus the dataset statistics of Table 2 (noise ratio, number of clusters)
//! and the missed-cluster analysis of Table 6 (MC, TC, MP, TPC, ASMC).
//!
//! ## Label convention
//!
//! All metrics operate on `&[i64]` label slices: `-1` denotes noise, any
//! other value is a cluster id. Following scikit-learn's behaviour (which the
//! paper's evaluation scripts rely on), the noise label is treated as just
//! another cluster when computing ARI/AMI, so two clusterings that disagree
//! on which points are noise are penalized.

#![warn(missing_docs)]

pub mod contingency;
pub mod missed;
pub mod stats;
pub mod vmeasure;

pub use contingency::{
    adjusted_mutual_information, adjusted_rand_index, mutual_information,
    normalized_mutual_information, ContingencyTable,
};
pub use missed::MissedClusterReport;
pub use stats::ClusteringStats;
pub use vmeasure::{v_measure, VMeasure};

/// The noise label used across the workspace.
pub const NOISE: i64 = -1;
