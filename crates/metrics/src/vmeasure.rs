//! Homogeneity, completeness and V-measure (Rosenberg & Hirschberg 2007).
//!
//! The paper reports ARI and AMI; homogeneity/completeness decompose the
//! same information-theoretic comparison into "every cluster contains only
//! members of one true class" vs "all members of a true class are in the
//! same cluster", which is exactly the lens needed to understand LAF's two
//! error modes (false positives fragment clusters → completeness drops;
//! aggressive post-processing merges unrelated clusters → homogeneity
//! drops). Used by the ablation benchmarks.

use crate::contingency::ContingencyTable;
use serde::{Deserialize, Serialize};

/// Homogeneity, completeness and their harmonic mean (V-measure).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VMeasure {
    /// 1.0 when each predicted cluster contains members of a single true
    /// cluster.
    pub homogeneity: f64,
    /// 1.0 when all members of a true cluster land in a single predicted
    /// cluster.
    pub completeness: f64,
    /// Harmonic mean of the two.
    pub v_measure: f64,
}

impl VMeasure {
    /// Compute the decomposition for `(truth, predicted)` labelings
    /// (`-1` = noise is treated as its own cluster, consistently with the
    /// rest of this crate).
    pub fn compute(truth: &[i64], predicted: &[i64]) -> Self {
        let table = ContingencyTable::new(truth, predicted);
        Self::from_table(&table)
    }

    /// Compute the decomposition from a pre-built contingency table.
    pub fn from_table(table: &ContingencyTable) -> Self {
        let h_truth = table.row_entropy();
        let h_pred = table.col_entropy();
        let mi = table.mutual_information();
        // Conventions follow scikit-learn: a zero-entropy reference labeling
        // makes the corresponding score 1.
        let homogeneity = if h_truth <= 1e-15 {
            1.0
        } else {
            (mi / h_truth).clamp(0.0, 1.0)
        };
        let completeness = if h_pred <= 1e-15 {
            1.0
        } else {
            (mi / h_pred).clamp(0.0, 1.0)
        };
        let v_measure = if homogeneity + completeness <= 1e-15 {
            0.0
        } else {
            2.0 * homogeneity * completeness / (homogeneity + completeness)
        };
        Self {
            homogeneity,
            completeness,
            v_measure,
        }
    }
}

/// Convenience wrapper returning only the V-measure.
pub fn v_measure(truth: &[i64], predicted: &[i64]) -> f64 {
    VMeasure::compute(truth, predicted).v_measure
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_labelings_are_perfect() {
        let labels = vec![0, 0, 1, 1, -1, 2];
        let v = VMeasure::compute(&labels, &labels);
        assert!((v.homogeneity - 1.0).abs() < 1e-9);
        assert!((v.completeness - 1.0).abs() < 1e-9);
        assert!((v.v_measure - 1.0).abs() < 1e-9);
    }

    #[test]
    fn splitting_a_cluster_hurts_completeness_not_homogeneity() {
        let truth = vec![0, 0, 0, 0, 1, 1, 1, 1];
        let pred = vec![0, 0, 5, 5, 1, 1, 6, 6];
        let v = VMeasure::compute(&truth, &pred);
        assert!((v.homogeneity - 1.0).abs() < 1e-9, "{v:?}");
        assert!(v.completeness < 1.0);
        assert!(v.v_measure < 1.0 && v.v_measure > 0.0);
    }

    #[test]
    fn merging_clusters_hurts_homogeneity_not_completeness() {
        let truth = vec![0, 0, 0, 0, 1, 1, 1, 1];
        let pred = vec![0; 8];
        let v = VMeasure::compute(&truth, &pred);
        assert!(v.homogeneity < 1.0);
        assert!((v.completeness - 1.0).abs() < 1e-9, "{v:?}");
    }

    #[test]
    fn single_true_cluster_convention() {
        let truth = vec![0; 6];
        let pred = vec![0, 0, 1, 1, 2, 2];
        let v = VMeasure::compute(&truth, &pred);
        assert!((v.homogeneity - 1.0).abs() < 1e-9);
        assert!(v.completeness < 1.0);
    }

    #[test]
    fn independent_labelings_score_low() {
        let truth: Vec<i64> = (0..120).map(|i| (i % 3) as i64).collect();
        let pred: Vec<i64> = (0..120).map(|i| ((i * 7 + 1) % 4) as i64).collect();
        let v = VMeasure::compute(&truth, &pred);
        assert!(v.v_measure < 0.15, "{v:?}");
    }

    #[test]
    fn wrapper_matches_struct() {
        let truth = vec![0, 0, 1, 1];
        let pred = vec![0, 1, 1, 1];
        assert_eq!(
            v_measure(&truth, &pred),
            VMeasure::compute(&truth, &pred).v_measure
        );
    }

    #[test]
    fn serde_round_trip() {
        let v = VMeasure::compute(&[0, 1], &[1, 1]);
        let back: VMeasure = serde_json::from_str(&serde_json::to_string(&v).unwrap()).unwrap();
        assert_eq!(v, back);
    }
}
