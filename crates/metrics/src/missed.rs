//! Fully-missed-cluster analysis (the paper's Table 6).
//!
//! A ground-truth cluster is *fully missed* by an approximate clustering when
//! every one of its points ends up labeled noise — in LAF-DBSCAN this happens
//! when all of the cluster's core points are falsely predicted to be stop
//! points. The paper reports, for the worst-quality settings:
//!
//! * **MC** — number of fully missed clusters,
//! * **TC** — total number of ground-truth clusters,
//! * **MP** — number of points belonging to missed clusters,
//! * **TPC** — total number of points belonging to ground-truth clusters
//!   (i.e. non-noise points),
//! * **ASMC** — average size of the missed clusters,
//!
//! and argues the error is negligible because ASMC is tiny (3–7 points).

use crate::NOISE;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// The Table 6 statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MissedClusterReport {
    /// Number of ground-truth clusters every point of which is noise in the
    /// predicted clustering (MC).
    pub missed_clusters: usize,
    /// Total number of ground-truth clusters (TC).
    pub total_clusters: usize,
    /// Number of points in fully missed clusters (MP).
    pub missed_points: usize,
    /// Total number of non-noise ground-truth points (TPC).
    pub total_clustered_points: usize,
    /// Average size of the fully missed clusters (ASMC); 0 when none are
    /// missed.
    pub avg_missed_cluster_size: f64,
}

impl MissedClusterReport {
    /// Compare a predicted labeling against the ground-truth labeling
    /// (`-1` = noise in both).
    ///
    /// # Panics
    /// Panics if the slices have different lengths.
    pub fn compute(truth: &[i64], predicted: &[i64]) -> Self {
        assert_eq!(
            truth.len(),
            predicted.len(),
            "labelings must cover the same points"
        );
        // Group ground-truth clusters.
        let mut members: HashMap<i64, Vec<usize>> = HashMap::new();
        for (i, &t) in truth.iter().enumerate() {
            if t != NOISE {
                members.entry(t).or_default().push(i);
            }
        }
        let total_clusters = members.len();
        let total_clustered_points: usize = members.values().map(Vec::len).sum();

        let mut missed_clusters = 0usize;
        let mut missed_points = 0usize;
        for points in members.values() {
            if points.iter().all(|&i| predicted[i] == NOISE) {
                missed_clusters += 1;
                missed_points += points.len();
            }
        }
        let avg_missed_cluster_size = if missed_clusters == 0 {
            0.0
        } else {
            missed_points as f64 / missed_clusters as f64
        };
        Self {
            missed_clusters,
            total_clusters,
            missed_points,
            total_clustered_points,
            avg_missed_cluster_size,
        }
    }

    /// Fraction of ground-truth clusters fully missed (`MC / TC`).
    pub fn missed_cluster_fraction(&self) -> f64 {
        if self.total_clusters == 0 {
            0.0
        } else {
            self.missed_clusters as f64 / self.total_clusters as f64
        }
    }

    /// Fraction of clustered points lost to missed clusters (`MP / TPC`).
    pub fn missed_point_fraction(&self) -> f64 {
        if self.total_clustered_points == 0 {
            0.0
        } else {
            self.missed_points as f64 / self.total_clustered_points as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_clusters_missed_when_predictions_match() {
        let truth = vec![0, 0, 1, 1, -1];
        let report = MissedClusterReport::compute(&truth, &truth);
        assert_eq!(report.missed_clusters, 0);
        assert_eq!(report.total_clusters, 2);
        assert_eq!(report.missed_points, 0);
        assert_eq!(report.total_clustered_points, 4);
        assert_eq!(report.avg_missed_cluster_size, 0.0);
        assert_eq!(report.missed_cluster_fraction(), 0.0);
        assert_eq!(report.missed_point_fraction(), 0.0);
    }

    #[test]
    fn fully_missed_cluster_is_detected() {
        // Truth has clusters 0 (3 pts), 1 (2 pts); prediction turns cluster 1
        // entirely into noise but keeps cluster 0.
        let truth = vec![0, 0, 0, 1, 1, -1];
        let pred = vec![5, 5, 5, -1, -1, -1];
        let report = MissedClusterReport::compute(&truth, &pred);
        assert_eq!(report.missed_clusters, 1);
        assert_eq!(report.total_clusters, 2);
        assert_eq!(report.missed_points, 2);
        assert_eq!(report.total_clustered_points, 5);
        assert!((report.avg_missed_cluster_size - 2.0).abs() < 1e-12);
        assert!((report.missed_cluster_fraction() - 0.5).abs() < 1e-12);
        assert!((report.missed_point_fraction() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn partially_recovered_cluster_is_not_missed() {
        // One point of truth-cluster 1 survives in the prediction (even in a
        // different predicted cluster id), so the cluster is not fully missed.
        let truth = vec![0, 0, 1, 1];
        let pred = vec![0, 0, -1, 7];
        let report = MissedClusterReport::compute(&truth, &pred);
        assert_eq!(report.missed_clusters, 0);
    }

    #[test]
    fn all_noise_truth_is_degenerate_but_defined() {
        let truth = vec![-1, -1];
        let pred = vec![0, 1];
        let report = MissedClusterReport::compute(&truth, &pred);
        assert_eq!(report.total_clusters, 0);
        assert_eq!(report.missed_cluster_fraction(), 0.0);
        assert_eq!(report.missed_point_fraction(), 0.0);
    }

    #[test]
    #[should_panic(expected = "same points")]
    fn mismatched_lengths_panic() {
        let _ = MissedClusterReport::compute(&[0, 1], &[0]);
    }

    #[test]
    fn serde_round_trip() {
        let report = MissedClusterReport::compute(&[0, 1, -1], &[-1, 1, -1]);
        let json = serde_json::to_string(&report).unwrap();
        let back: MissedClusterReport = serde_json::from_str(&json).unwrap();
        assert_eq!(report, back);
    }
}
