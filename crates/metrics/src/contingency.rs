//! Contingency table and the ARI / MI / NMI / AMI family.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Contingency table between two labelings of the same points.
///
/// Rows index clusters of the first ("true") labeling, columns index clusters
/// of the second ("predicted") labeling; `counts[i][j]` is the number of
/// points assigned to true cluster `i` and predicted cluster `j`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ContingencyTable {
    counts: Vec<Vec<u64>>,
    row_sums: Vec<u64>,
    col_sums: Vec<u64>,
    total: u64,
}

impl ContingencyTable {
    /// Build the table from two equal-length label slices.
    ///
    /// # Panics
    /// Panics if the slices have different lengths.
    pub fn new(truth: &[i64], predicted: &[i64]) -> Self {
        assert_eq!(
            truth.len(),
            predicted.len(),
            "labelings must cover the same points"
        );
        let mut row_ids: HashMap<i64, usize> = HashMap::new();
        let mut col_ids: HashMap<i64, usize> = HashMap::new();
        for &t in truth {
            let next = row_ids.len();
            row_ids.entry(t).or_insert(next);
        }
        for &p in predicted {
            let next = col_ids.len();
            col_ids.entry(p).or_insert(next);
        }
        let mut counts = vec![vec![0u64; col_ids.len()]; row_ids.len()];
        for (&t, &p) in truth.iter().zip(predicted) {
            counts[row_ids[&t]][col_ids[&p]] += 1;
        }
        let row_sums: Vec<u64> = counts.iter().map(|r| r.iter().sum()).collect();
        let col_sums: Vec<u64> = (0..col_ids.len())
            .map(|j| counts.iter().map(|r| r[j]).sum())
            .collect();
        let total = truth.len() as u64;
        Self {
            counts,
            row_sums,
            col_sums,
            total,
        }
    }

    /// Number of distinct labels in the first labeling.
    pub fn n_rows(&self) -> usize {
        self.counts.len()
    }

    /// Number of distinct labels in the second labeling.
    pub fn n_cols(&self) -> usize {
        self.col_sums.len()
    }

    /// Total number of points.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Entropy (nats) of the first labeling.
    pub fn row_entropy(&self) -> f64 {
        entropy(&self.row_sums, self.total)
    }

    /// Entropy (nats) of the second labeling.
    pub fn col_entropy(&self) -> f64 {
        entropy(&self.col_sums, self.total)
    }

    /// Mutual information (nats) between the two labelings.
    pub fn mutual_information(&self) -> f64 {
        let n = self.total as f64;
        if self.total == 0 {
            return 0.0;
        }
        let mut mi = 0.0;
        for (i, row) in self.counts.iter().enumerate() {
            for (j, &nij) in row.iter().enumerate() {
                if nij == 0 {
                    continue;
                }
                let nij = nij as f64;
                let ai = self.row_sums[i] as f64;
                let bj = self.col_sums[j] as f64;
                mi += (nij / n) * ((n * nij) / (ai * bj)).ln();
            }
        }
        mi.max(0.0)
    }

    /// Expected mutual information under the hypergeometric null model
    /// (Vinh et al. 2010, Eq. 24a).
    pub fn expected_mutual_information(&self) -> f64 {
        let n = self.total;
        if n == 0 {
            return 0.0;
        }
        let nf = n as f64;
        let lgamma = LnFactorial::up_to(n as usize + 1);
        let mut emi = 0.0f64;
        for &ai in &self.row_sums {
            for &bj in &self.col_sums {
                if ai == 0 || bj == 0 {
                    continue;
                }
                let start = (ai + bj).saturating_sub(n).max(1);
                let end = ai.min(bj);
                for nij in start..=end {
                    let nij_f = nij as f64;
                    let term1 = (nij_f / nf) * ((nf * nij_f) / (ai as f64 * bj as f64)).ln();
                    // ln of the hypergeometric probability of nij.
                    let ln_p = lgamma.ln_fact(ai)
                        + lgamma.ln_fact(bj)
                        + lgamma.ln_fact(n - ai)
                        + lgamma.ln_fact(n - bj)
                        - lgamma.ln_fact(n)
                        - lgamma.ln_fact(nij)
                        - lgamma.ln_fact(ai - nij)
                        - lgamma.ln_fact(bj - nij)
                        - lgamma.ln_fact(n + nij - ai - bj);
                    emi += term1 * ln_p.exp();
                }
            }
        }
        emi
    }

    /// Adjusted Rand Index (Hubert & Arabie 1985).
    pub fn adjusted_rand_index(&self) -> f64 {
        let n = self.total;
        if n < 2 {
            return 1.0;
        }
        let comb2 = |x: u64| -> f64 {
            let x = x as f64;
            x * (x - 1.0) / 2.0
        };
        let sum_ij: f64 = self
            .counts
            .iter()
            .flat_map(|r| r.iter())
            .map(|&c| comb2(c))
            .sum();
        let sum_a: f64 = self.row_sums.iter().map(|&a| comb2(a)).sum();
        let sum_b: f64 = self.col_sums.iter().map(|&b| comb2(b)).sum();
        let total_pairs = comb2(n);
        let expected = sum_a * sum_b / total_pairs;
        let max_index = 0.5 * (sum_a + sum_b);
        let denom = max_index - expected;
        if denom.abs() < 1e-12 {
            // Both labelings are single clusters (or otherwise degenerate in
            // the same way): conventionally perfect agreement.
            return 1.0;
        }
        (sum_ij - expected) / denom
    }

    /// Adjusted Mutual Information with the arithmetic-mean normalization
    /// (scikit-learn's default, which the paper's evaluation pipeline uses).
    pub fn adjusted_mutual_information(&self) -> f64 {
        if self.total == 0 {
            return 1.0;
        }
        let h_u = self.row_entropy();
        let h_v = self.col_entropy();
        // Two degenerate single-cluster labelings agree perfectly.
        if h_u == 0.0 && h_v == 0.0 {
            return 1.0;
        }
        let mi = self.mutual_information();
        let emi = self.expected_mutual_information();
        let mean_h = 0.5 * (h_u + h_v);
        let denom = mean_h - emi;
        if denom.abs() < 1e-12 {
            return 0.0;
        }
        (mi - emi) / denom
    }

    /// Normalized Mutual Information (arithmetic mean normalization).
    pub fn normalized_mutual_information(&self) -> f64 {
        let h_u = self.row_entropy();
        let h_v = self.col_entropy();
        if h_u == 0.0 && h_v == 0.0 {
            return 1.0;
        }
        let mean_h = 0.5 * (h_u + h_v);
        if mean_h < 1e-12 {
            return 0.0;
        }
        (self.mutual_information() / mean_h).clamp(0.0, 1.0)
    }
}

/// Shannon entropy (nats) of a marginal distribution given as counts.
fn entropy(counts: &[u64], total: u64) -> f64 {
    if total == 0 {
        return 0.0;
    }
    let n = total as f64;
    counts
        .iter()
        .filter(|&&c| c > 0)
        .map(|&c| {
            let p = c as f64 / n;
            -p * p.ln()
        })
        .sum()
}

/// Precomputed `ln(k!)` table.
struct LnFactorial {
    table: Vec<f64>,
}

impl LnFactorial {
    fn up_to(n: usize) -> Self {
        let mut table = vec![0.0f64; n + 1];
        for k in 2..=n {
            table[k] = table[k - 1] + (k as f64).ln();
        }
        Self { table }
    }

    #[inline]
    fn ln_fact(&self, k: u64) -> f64 {
        self.table[k as usize]
    }
}

/// Adjusted Rand Index between two labelings (`-1` = noise is treated as a
/// regular cluster).
pub fn adjusted_rand_index(truth: &[i64], predicted: &[i64]) -> f64 {
    ContingencyTable::new(truth, predicted).adjusted_rand_index()
}

/// Adjusted Mutual Information between two labelings.
pub fn adjusted_mutual_information(truth: &[i64], predicted: &[i64]) -> f64 {
    ContingencyTable::new(truth, predicted).adjusted_mutual_information()
}

/// Mutual information (nats) between two labelings.
pub fn mutual_information(truth: &[i64], predicted: &[i64]) -> f64 {
    ContingencyTable::new(truth, predicted).mutual_information()
}

/// Normalized mutual information between two labelings.
pub fn normalized_mutual_information(truth: &[i64], predicted: &[i64]) -> f64 {
    ContingencyTable::new(truth, predicted).normalized_mutual_information()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "same points")]
    fn mismatched_lengths_panic() {
        let _ = ContingencyTable::new(&[0, 1], &[0]);
    }

    #[test]
    fn identical_labelings_score_one() {
        let labels = vec![0, 0, 1, 1, 2, 2, -1, -1];
        assert!((adjusted_rand_index(&labels, &labels) - 1.0).abs() < 1e-9);
        assert!((adjusted_mutual_information(&labels, &labels) - 1.0).abs() < 1e-6);
        assert!((normalized_mutual_information(&labels, &labels) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn permuted_cluster_ids_still_score_one() {
        let a = vec![0, 0, 1, 1, 2, 2];
        let b = vec![5, 5, 9, 9, 7, 7];
        assert!((adjusted_rand_index(&a, &b) - 1.0).abs() < 1e-9);
        assert!((adjusted_mutual_information(&a, &b) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn random_labelings_score_near_zero() {
        // Labels independent of the truth: adjusted indices should hover
        // around zero (that is what "adjusted for chance" means).
        let truth: Vec<i64> = (0..200).map(|i| (i % 4) as i64).collect();
        let pred: Vec<i64> = (0..200).map(|i| ((i * 7 + 3) % 5) as i64).collect();
        let ari = adjusted_rand_index(&truth, &pred);
        let ami = adjusted_mutual_information(&truth, &pred);
        assert!(ari.abs() < 0.1, "ari {ari}");
        assert!(ami.abs() < 0.1, "ami {ami}");
    }

    #[test]
    fn known_ari_value() {
        // Classic example: two clusterings of 6 points.
        let truth = vec![0, 0, 0, 1, 1, 1];
        let pred = vec![0, 0, 1, 1, 2, 2];
        // Contingency: [[2,1,0],[0,1,2]]
        // sum_ij C(nij,2) = 1 + 0 + 0 + 0 + 0 + 1 = 2
        // sum_a = 2*C(3,2) = 6 ; sum_b = C(2,2)+C(2,2)+C(2,2) = 3
        // expected = 6*3/15 = 1.2 ; max = 4.5 ; ari = (2-1.2)/(4.5-1.2)
        let expected = (2.0 - 1.2) / (4.5 - 1.2);
        assert!((adjusted_rand_index(&truth, &pred) - expected).abs() < 1e-9);
    }

    #[test]
    fn ari_is_symmetric() {
        let a = vec![0, 0, 1, 1, 2, -1, -1, 2, 0];
        let b = vec![1, 1, 1, 0, 0, -1, 0, 2, 2];
        assert!((adjusted_rand_index(&a, &b) - adjusted_rand_index(&b, &a)).abs() < 1e-12);
        assert!(
            (adjusted_mutual_information(&a, &b) - adjusted_mutual_information(&b, &a)).abs()
                < 1e-9
        );
    }

    #[test]
    fn disagreeing_split_scores_below_one() {
        let truth = vec![0, 0, 0, 0, 1, 1, 1, 1];
        let pred = vec![0, 0, 2, 2, 1, 1, 3, 3]; // each true cluster split in two
        let ari = adjusted_rand_index(&truth, &pred);
        assert!(ari > 0.0 && ari < 1.0, "ari {ari}");
        let ami = adjusted_mutual_information(&truth, &pred);
        assert!(ami > 0.0 && ami < 1.0, "ami {ami}");
    }

    #[test]
    fn single_cluster_against_itself_is_perfect() {
        let labels = vec![0i64; 10];
        assert_eq!(adjusted_rand_index(&labels, &labels), 1.0);
        assert_eq!(adjusted_mutual_information(&labels, &labels), 1.0);
    }

    #[test]
    fn entropy_and_mi_basics() {
        let truth = vec![0, 0, 1, 1];
        let pred = vec![0, 1, 0, 1];
        let table = ContingencyTable::new(&truth, &pred);
        assert_eq!(table.total(), 4);
        assert_eq!(table.n_rows(), 2);
        assert_eq!(table.n_cols(), 2);
        assert!((table.row_entropy() - (2.0f64).ln()).abs() < 1e-9);
        // Independent labelings: MI = 0. With only 4 points the chance
        // correction is large: EMI = ln2/3, so AMI = (0 − ln2/3)/(ln2 − ln2/3)
        // = −0.5 exactly (matches scikit-learn on the same input).
        assert!(table.mutual_information().abs() < 1e-9);
        assert!((table.adjusted_mutual_information() + 0.5).abs() < 1e-9);
    }

    #[test]
    fn empty_labelings_are_degenerate_but_defined() {
        let table = ContingencyTable::new(&[], &[]);
        assert_eq!(table.total(), 0);
        assert_eq!(table.mutual_information(), 0.0);
        assert_eq!(table.adjusted_rand_index(), 1.0);
        assert_eq!(table.adjusted_mutual_information(), 1.0);
    }

    #[test]
    fn ami_matches_hand_derived_value() {
        // truth = {0,0,1,1}, pred = {0,0,1,2}:
        //   MI   = ln 2
        //   H(U) = ln 2, H(V) = 1.5·ln 2
        //   EMI  = (2/3)·ln 2  (hypergeometric model, worked out by hand)
        //   AMI  = (MI − EMI) / ((H(U)+H(V))/2 − EMI) = (1/3)/(7/12) = 4/7.
        let truth = vec![0, 0, 1, 1];
        let pred = vec![0, 0, 1, 2];
        let table = ContingencyTable::new(&truth, &pred);
        assert!((table.mutual_information() - std::f64::consts::LN_2).abs() < 1e-9);
        assert!(
            (table.expected_mutual_information() - 2.0 / 3.0 * std::f64::consts::LN_2).abs() < 1e-9
        );
        let ami = table.adjusted_mutual_information();
        assert!((ami - 4.0 / 7.0).abs() < 1e-9, "ami {ami}");
    }

    #[test]
    fn serde_round_trip() {
        let table = ContingencyTable::new(&[0, 1, 1], &[1, 1, 0]);
        let json = serde_json::to_string(&table).unwrap();
        let back: ContingencyTable = serde_json::from_str(&json).unwrap();
        assert_eq!(table, back);
    }
}
