//! Per-clustering statistics: the quantities of the paper's Table 2.

use crate::NOISE;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Summary statistics of a single clustering (noise ratio and cluster count
/// are the two quantities the paper's (ε, τ) grid search in Table 2 is based
/// on).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusteringStats {
    /// Total number of points.
    pub n_points: usize,
    /// Number of points labeled noise.
    pub n_noise: usize,
    /// Number of distinct (non-noise) clusters.
    pub n_clusters: usize,
    /// Sizes of the clusters, largest first.
    pub cluster_sizes: Vec<usize>,
}

impl ClusteringStats {
    /// Compute statistics from a label slice (`-1` = noise).
    pub fn from_labels(labels: &[i64]) -> Self {
        let mut sizes: HashMap<i64, usize> = HashMap::new();
        let mut n_noise = 0usize;
        for &l in labels {
            if l == NOISE {
                n_noise += 1;
            } else {
                *sizes.entry(l).or_insert(0) += 1;
            }
        }
        let mut cluster_sizes: Vec<usize> = sizes.into_values().collect();
        cluster_sizes.sort_unstable_by(|a, b| b.cmp(a));
        Self {
            n_points: labels.len(),
            n_noise,
            n_clusters: cluster_sizes.len(),
            cluster_sizes,
        }
    }

    /// Fraction of points labeled noise (0 for an empty labeling).
    pub fn noise_ratio(&self) -> f64 {
        if self.n_points == 0 {
            0.0
        } else {
            self.n_noise as f64 / self.n_points as f64
        }
    }

    /// Number of points that belong to some cluster.
    pub fn n_clustered(&self) -> usize {
        self.n_points - self.n_noise
    }

    /// Size of the largest cluster (0 when there are none).
    pub fn largest_cluster(&self) -> usize {
        self.cluster_sizes.first().copied().unwrap_or(0)
    }

    /// Mean cluster size (0 when there are no clusters).
    pub fn mean_cluster_size(&self) -> f64 {
        if self.cluster_sizes.is_empty() {
            0.0
        } else {
            self.cluster_sizes.iter().sum::<usize>() as f64 / self.cluster_sizes.len() as f64
        }
    }

    /// The paper's Table 2 criterion for a "proper" (ε, τ) setting: noise
    /// ratio below `max_noise_ratio` and at least `min_clusters` clusters.
    pub fn is_proper(&self, max_noise_ratio: f64, min_clusters: usize) -> bool {
        self.noise_ratio() < max_noise_ratio && self.n_clusters >= min_clusters
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_from_labels() {
        let labels = vec![0, 0, 0, 1, 1, -1, -1, -1, 2];
        let s = ClusteringStats::from_labels(&labels);
        assert_eq!(s.n_points, 9);
        assert_eq!(s.n_noise, 3);
        assert_eq!(s.n_clusters, 3);
        assert_eq!(s.cluster_sizes, vec![3, 2, 1]);
        assert!((s.noise_ratio() - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(s.n_clustered(), 6);
        assert_eq!(s.largest_cluster(), 3);
        assert!((s.mean_cluster_size() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_labeling() {
        let s = ClusteringStats::from_labels(&[]);
        assert_eq!(s.n_points, 0);
        assert_eq!(s.noise_ratio(), 0.0);
        assert_eq!(s.largest_cluster(), 0);
        assert_eq!(s.mean_cluster_size(), 0.0);
    }

    #[test]
    fn all_noise() {
        let s = ClusteringStats::from_labels(&[-1, -1, -1]);
        assert_eq!(s.n_clusters, 0);
        assert_eq!(s.noise_ratio(), 1.0);
        assert_eq!(s.n_clustered(), 0);
    }

    #[test]
    fn proper_criterion_mirrors_the_paper() {
        // Paper: proper means noise ratio < 0.6 and > 20 clusters (we use >=).
        let mut labels = Vec::new();
        for c in 0..25i64 {
            for _ in 0..4 {
                labels.push(c);
            }
        }
        labels.extend(std::iter::repeat_n(-1, 20));
        let s = ClusteringStats::from_labels(&labels);
        assert!(s.is_proper(0.6, 20));
        assert!(!s.is_proper(0.1, 20));
        assert!(!s.is_proper(0.6, 100));
    }

    #[test]
    fn serde_round_trip() {
        let s = ClusteringStats::from_labels(&[0, 1, -1]);
        let json = serde_json::to_string(&s).unwrap();
        let back: ClusteringStats = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }
}
