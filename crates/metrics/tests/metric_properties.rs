//! Property tests for the clustering-quality metrics.

use laf_metrics::{
    adjusted_mutual_information, adjusted_rand_index, normalized_mutual_information, v_measure,
    ClusteringStats, ContingencyTable, MissedClusterReport,
};
use proptest::prelude::*;
use std::collections::HashMap;

/// Random labeling with values in -1..4.
fn labels(len: usize) -> impl Strategy<Value = Vec<i64>> {
    prop::collection::vec(-1i64..4, len..len + 1)
}

/// Apply a random permutation to the cluster ids (noise stays noise).
fn permute_ids(labels: &[i64], seed: u64) -> Vec<i64> {
    let mut mapping: HashMap<i64, i64> = HashMap::new();
    let mut next = 1000 + (seed % 7) as i64;
    labels
        .iter()
        .map(|&l| {
            if l == -1 {
                -1
            } else {
                *mapping.entry(l).or_insert_with(|| {
                    next += 3;
                    next
                })
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn ari_and_ami_are_symmetric_and_bounded(a in labels(40), b in labels(40)) {
        let ari_ab = adjusted_rand_index(&a, &b);
        let ari_ba = adjusted_rand_index(&b, &a);
        prop_assert!((ari_ab - ari_ba).abs() < 1e-9);
        prop_assert!(ari_ab <= 1.0 + 1e-9);
        let ami_ab = adjusted_mutual_information(&a, &b);
        let ami_ba = adjusted_mutual_information(&b, &a);
        prop_assert!((ami_ab - ami_ba).abs() < 1e-7);
        prop_assert!(ami_ab <= 1.0 + 1e-7);
        let nmi = normalized_mutual_information(&a, &b);
        prop_assert!((0.0..=1.0 + 1e-9).contains(&nmi));
        let v = v_measure(&a, &b);
        prop_assert!((0.0..=1.0 + 1e-9).contains(&v));
    }

    #[test]
    fn identical_labelings_score_one(a in labels(30)) {
        prop_assert!((adjusted_rand_index(&a, &a) - 1.0).abs() < 1e-9);
        prop_assert!((adjusted_mutual_information(&a, &a) - 1.0).abs() < 1e-7);
        prop_assert!((v_measure(&a, &a) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn scores_are_invariant_to_cluster_id_permutation(a in labels(35), b in labels(35), seed in any::<u64>()) {
        let b_permuted = permute_ids(&b, seed);
        prop_assert!((adjusted_rand_index(&a, &b) - adjusted_rand_index(&a, &b_permuted)).abs() < 1e-9);
        prop_assert!(
            (adjusted_mutual_information(&a, &b) - adjusted_mutual_information(&a, &b_permuted)).abs() < 1e-7
        );
        prop_assert!((v_measure(&a, &b) - v_measure(&a, &b_permuted)).abs() < 1e-9);
    }

    #[test]
    fn contingency_table_marginals_are_consistent(a in labels(50), b in labels(50)) {
        let table = ContingencyTable::new(&a, &b);
        prop_assert_eq!(table.total() as usize, a.len());
        // Mutual information is bounded by each entropy.
        let mi = table.mutual_information();
        prop_assert!(mi <= table.row_entropy() + 1e-6);
        prop_assert!(mi <= table.col_entropy() + 1e-6);
        prop_assert!(mi >= -1e-9);
        // EMI is bounded by the MI upper bound as well.
        let emi = table.expected_mutual_information();
        prop_assert!(emi <= table.row_entropy().min(table.col_entropy()) + 1e-6);
    }

    #[test]
    fn clustering_stats_partition_points(a in labels(60)) {
        let stats = ClusteringStats::from_labels(&a);
        prop_assert_eq!(stats.n_points, a.len());
        prop_assert_eq!(stats.n_clustered() + stats.n_noise, a.len());
        prop_assert_eq!(stats.cluster_sizes.iter().sum::<usize>(), stats.n_clustered());
        prop_assert!(stats.noise_ratio() >= 0.0 && stats.noise_ratio() <= 1.0);
        if !stats.cluster_sizes.is_empty() {
            prop_assert!(stats.cluster_sizes.windows(2).all(|w| w[0] >= w[1]));
            prop_assert_eq!(stats.largest_cluster(), stats.cluster_sizes[0]);
        }
    }

    #[test]
    fn missed_cluster_report_bounds(a in labels(40), b in labels(40)) {
        let report = MissedClusterReport::compute(&a, &b);
        prop_assert!(report.missed_clusters <= report.total_clusters);
        prop_assert!(report.missed_points <= report.total_clustered_points);
        prop_assert!((0.0..=1.0).contains(&report.missed_cluster_fraction()));
        prop_assert!((0.0..=1.0).contains(&report.missed_point_fraction()));
        // Identical labelings never miss anything.
        let self_report = MissedClusterReport::compute(&a, &a);
        prop_assert_eq!(self_report.missed_clusters, 0);
    }
}
