//! # laf
//!
//! Facade crate for the **LAF-DBSCAN** reproduction (Wang & Wang, *Learned
//! Accelerator Framework for Angular-Distance-Based High-Dimensional DBSCAN*,
//! EDBT 2023). Downstream users depend on this crate and get the whole stack:
//!
//! ```
//! use laf::prelude::*;
//!
//! // 1. Get (or generate) unit-normalized embeddings.
//! let (data, _) = EmbeddingMixtureConfig {
//!     n_points: 400,
//!     dim: 16,
//!     clusters: 6,
//!     ..Default::default()
//! }
//! .generate()
//! .unwrap();
//!
//! // 2. Train the learned cardinality estimator.
//! let training = TrainingSetBuilder::default().build(&data, &data).unwrap();
//! let estimator = MlpEstimator::train(&training, &NetConfig::tiny());
//!
//! // 3. Cluster with LAF-DBSCAN.
//! let laf = LafDbscan::new(LafConfig::new(0.3, 4, 1.0), estimator);
//! let clustering = laf.cluster(&data);
//! assert_eq!(clustering.len(), data.len());
//! ```
//!
//! The individual layers are re-exported as modules: [`vector`], [`synth`],
//! [`index`], [`cardest`], [`clustering`], [`core`], [`metrics`].
//!
//! For production serving, train once and persist the pipeline with
//! [`save_snapshot`], then restore it in any number of serving processes
//! with [`load_snapshot`] — no retraining, bit-exact results. See
//! [`core::LafPipeline`] and the `train_serve` example.

#![warn(missing_docs)]

/// Dense vectors, distances, projection, dataset container ([`laf_vector`]).
pub mod vector {
    pub use laf_vector::*;
}

/// Synthetic workload generators ([`laf_synth`]).
pub mod synth {
    pub use laf_synth::*;
}

/// Range-query and KNN engines ([`laf_index`]).
pub mod index {
    pub use laf_index::*;
}

/// Learned cardinality estimation ([`laf_cardest`]).
pub mod cardest {
    pub use laf_cardest::*;
}

/// DBSCAN and the approximate baselines ([`laf_clustering`]).
pub mod clustering {
    pub use laf_clustering::*;
}

/// The LAF framework itself ([`laf_core`]).
pub mod core {
    pub use laf_core::*;
}

/// Clustering quality metrics ([`laf_metrics`]).
pub mod metrics {
    pub use laf_metrics::*;
}

/// Concurrent serving front: request coalescing, admission control,
/// snapshot hot-reload ([`laf_serve`]).
pub mod serve {
    pub use laf_serve::*;
}

/// The unified error type of the facade: every fallible layer folds into
/// one enum, so applications can hold a single error type across snapshot
/// I/O, the serving front and the tenant cache instead of juggling
/// `SnapshotError` / `ServeError` / `CacheError` per call site.
///
/// Marked `#[non_exhaustive]`: new layers add variants without a breaking
/// change, so matches need a wildcard arm. `From` conversions from each
/// layer error make `?` work directly in functions returning
/// `Result<_, laf::Error>`.
#[non_exhaustive]
#[derive(Debug)]
pub enum Error {
    /// Snapshot encoding, decoding or I/O failed ([`core::SnapshotError`]).
    Snapshot(core::SnapshotError),
    /// The serving front rejected a submission ([`serve::ServeError`]).
    Serve(serve::ServeError),
    /// The multi-tenant snapshot cache failed ([`serve::CacheError`]).
    Cache(serve::CacheError),
    /// A write reached a mutable pipeline but was rejected
    /// ([`serve::WriteError`]).
    Write(serve::WriteError),
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::Snapshot(e) => write!(f, "snapshot error: {e}"),
            Error::Serve(e) => write!(f, "serve error: {e}"),
            Error::Cache(e) => write!(f, "cache error: {e}"),
            Error::Write(e) => write!(f, "write error: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Snapshot(e) => Some(e),
            Error::Serve(e) => Some(e),
            Error::Cache(e) => Some(e),
            Error::Write(e) => Some(e),
        }
    }
}

impl From<core::SnapshotError> for Error {
    fn from(e: core::SnapshotError) -> Self {
        Error::Snapshot(e)
    }
}

impl From<serve::ServeError> for Error {
    fn from(e: serve::ServeError) -> Self {
        Error::Serve(e)
    }
}

impl From<serve::CacheError> for Error {
    fn from(e: serve::CacheError) -> Self {
        Error::Cache(e)
    }
}

impl From<serve::WriteError> for Error {
    fn from(e: serve::WriteError) -> Self {
        Error::Write(e)
    }
}

/// Persist a trained [`core::LafPipeline`] as a versioned, checksummed
/// binary snapshot at `path`.
///
/// This is the **train-once** half of the train-once/serve-many split: one
/// process pays the estimator training cost, saves a snapshot, and any number
/// of serving processes restore it with [`load_snapshot`] — producing
/// byte-identical estimates, gate decisions and cluster labels. See
/// [`core::snapshot`] for the wire format.
///
/// # Errors
/// Propagates encoding and filesystem failures as [`core::SnapshotError`].
pub fn save_snapshot<P: AsRef<std::path::Path>>(
    pipeline: &core::LafPipeline,
    path: P,
) -> Result<(), core::SnapshotError> {
    pipeline.save(path)
}

/// Restore a [`core::LafPipeline`] from a snapshot written by
/// [`save_snapshot`] — the **serve-many** half: no retraining, ready to
/// cluster immediately, bit-exact with the training process. Format-v2
/// snapshots restore the **built** range-query engine structure too (see
/// [`index::persist`]), so the grid bucketing / k-means construction cost is
/// also paid once, at training time; v1 snapshots fall back to rebuilding the
/// engine from the restored [`index::EngineChoice`].
///
/// # Errors
/// Returns [`core::SnapshotError`] on I/O failures, checksum mismatches
/// (format v2 names the corrupt section), unsupported format versions or
/// malformed sections.
pub fn load_snapshot<P: AsRef<std::path::Path>>(
    path: P,
) -> Result<core::LafPipeline, core::SnapshotError> {
    core::LafPipeline::load(path)
}

/// Restore a [`core::LafPipeline`] by **memory-mapping** the snapshot
/// instead of reading and copying it — the zero-copy warm start.
///
/// Same validation and bit-exact results as [`load_snapshot`], but a
/// format-v3 snapshot's dataset is served in place from the kernel mapping
/// (see [`vector::mapped`]): startup cost no longer scales with the dataset
/// section, only read access to the file is needed, and all serving
/// processes mapping one snapshot share a single set of page-cache pages.
/// Older format versions fall back to copying transparently.
///
/// # Errors
/// Returns [`core::SnapshotError`] on I/O/`mmap(2)` failures, checksum
/// mismatches, unsupported format versions or malformed sections.
pub fn load_snapshot_mmap<P: AsRef<std::path::Path>>(
    path: P,
) -> Result<core::LafPipeline, core::SnapshotError> {
    core::LafPipeline::load_mmap(path)
}

/// One-stop import for applications.
///
/// Error handling: the prelude exports the unified [`crate::Error`]; the
/// per-layer error names (`SnapshotError`, `ServeError`, `CacheError`) are
/// still present as **deprecated aliases** and will be removed — match on
/// `laf::Error`, or import the layer types from their modules
/// ([`crate::core`], [`crate::serve`]) when a single layer is meant.
pub mod prelude {
    pub use crate::{load_snapshot, load_snapshot_mmap, save_snapshot, Error};
    pub use laf_cardest::{
        CardinalityEstimator, ConstantEstimator, ExactEstimator, HistogramEstimator, Mlp,
        MlpEstimator, NetConfig, RmiConfig, RmiEstimator, SamplingEstimator, TrainingSet,
        TrainingSetBuilder,
    };
    pub use laf_clustering::{
        BlockDbscan, BlockDbscanConfig, Clusterer, Clustering, Dbscan, DbscanConfig,
        DbscanPlusPlus, DbscanPlusPlusConfig, KnnBlockDbscan, KnnBlockDbscanConfig,
        RhoApproxDbscan, RhoApproxDbscanConfig,
    };
    pub use laf_core::{
        section_id, CardEstGate, GateDecision, LafConfig, LafDbscan, LafDbscanPlusPlus,
        LafDbscanPlusPlusConfig, LafPipeline, LafPipelineBuilder, LafStats, Manifest,
        MutablePipeline, PartialNeighborMap, PostProcessor, Prescan, SharedEngine, Snapshot,
        SnapshotShard, Wal, WalOp, WalRecord,
    };
    pub use laf_index::{
        build_engine, restore_engine, CoverTree, EngineChoice, GridIndex, KMeansTree, LinearScan,
        Neighbor, PersistedEngine, RangeQueryEngine, ShardedEngine, TopK, TotalDist,
    };
    pub use laf_metrics::{
        adjusted_mutual_information, adjusted_rand_index, normalized_mutual_information,
        ClusteringStats, ContingencyTable, MissedClusterReport,
    };
    pub use laf_serve::{
        CacheConfig, CacheStatsReport, EvictionPolicy, LafServer, LruPolicy, MaintenanceConfig,
        MaintenanceSupervisor, PinnedSnapshot, QueryRequest, QueryResponse, ReplicaSet,
        ServeConfig, ServeStats, ServeStatsReport, Served, SnapshotCache, SnapshotSource,
        TenantHealth, TenantServer, Ticket, WriteError,
    };
    pub use laf_synth::{
        BagOfWordsConfig, DatasetCatalog, DatasetSpec, EmbeddingMixtureConfig, SyntheticDataset,
    };
    pub use laf_vector::{
        cosine_to_euclidean, euclidean_to_cosine, AngularDistance, CosineDistance, Dataset,
        DeltaSegment, DistanceMetric, EuclideanDistance, GaussianRandomProjection, Metric,
        ShardMap, TombstoneSet,
    };

    /// Deprecated alias kept for migration; see the prelude docs.
    #[deprecated(
        since = "0.1.0",
        note = "match on `laf::Error` or import `laf::core::SnapshotError`"
    )]
    pub type SnapshotError = laf_core::SnapshotError;

    /// Deprecated alias kept for migration; see the prelude docs.
    #[deprecated(
        since = "0.1.0",
        note = "match on `laf::Error` or import `laf::serve::ServeError`"
    )]
    pub type ServeError = laf_serve::ServeError;

    /// Deprecated alias kept for migration; see the prelude docs.
    #[deprecated(
        since = "0.1.0",
        note = "match on `laf::Error` or import `laf::serve::CacheError`"
    )]
    pub type CacheError = laf_serve::CacheError;
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn prelude_exposes_the_whole_pipeline() {
        let (data, _) = EmbeddingMixtureConfig {
            n_points: 120,
            dim: 8,
            clusters: 3,
            seed: 2,
            ..Default::default()
        }
        .generate()
        .unwrap();
        let truth = Dbscan::with_params(0.3, 3).cluster(&data);
        let laf = LafDbscan::new(
            LafConfig::new(0.3, 3, 1.0),
            ExactEstimator::new(&data, Metric::Cosine),
        );
        let result = laf.cluster(&data);
        assert_eq!(result.labels(), truth.labels());
        assert!((adjusted_rand_index(truth.labels(), result.labels()) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn facade_snapshot_round_trip() {
        let (data, _) = EmbeddingMixtureConfig {
            n_points: 100,
            dim: 6,
            clusters: 3,
            seed: 8,
            ..Default::default()
        }
        .generate()
        .unwrap();
        let pipeline = LafPipeline::builder(LafConfig::new(0.3, 3, 1.0))
            .net(NetConfig::tiny())
            .training(TrainingSetBuilder {
                max_queries: Some(50),
                ..Default::default()
            })
            .train(data)
            .unwrap();
        let dir = std::env::temp_dir().join("laf_facade_snapshot_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("facade.lafs");
        crate::save_snapshot(&pipeline, &path).unwrap();
        let warm = crate::load_snapshot(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(pipeline.cluster().labels(), warm.cluster().labels());
    }
}
