//! Property tests for the cardinality estimators.

use laf_cardest::{
    CardinalityEstimator, ExactEstimator, HistogramEstimator, MlpEstimator, NetConfig, RmiConfig,
    RmiEstimator, SamplingEstimator, TrainingSetBuilder,
};
use laf_synth::EmbeddingMixtureConfig;
use laf_vector::{ops, Dataset, Metric};
use proptest::prelude::*;

/// A fixed dataset and trained estimators, built once (training inside a
/// proptest closure would dominate the runtime).
struct Fixture {
    data: Dataset,
    mlp: MlpEstimator,
    rmi: RmiEstimator,
    histogram: HistogramEstimator,
    sampling: SamplingEstimator,
}

fn fixture() -> &'static Fixture {
    use std::sync::OnceLock;
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let (data, _) = EmbeddingMixtureConfig {
            n_points: 220,
            dim: 8,
            clusters: 5,
            noise_fraction: 0.25,
            seed: 17,
            ..Default::default()
        }
        .generate()
        .unwrap();
        let training = TrainingSetBuilder {
            max_queries: Some(120),
            ..Default::default()
        }
        .build(&data, &data)
        .unwrap();
        Fixture {
            mlp: MlpEstimator::train(&training, &NetConfig::tiny()),
            rmi: RmiEstimator::train(&training, &RmiConfig::paper_stages(NetConfig::tiny())),
            histogram: HistogramEstimator::from_training(&training),
            sampling: SamplingEstimator::new(&data, Metric::Cosine, 40, 3),
            data,
        }
    })
}

fn unit_query() -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(-1.0f32..1.0, 8)
        .prop_filter("non-zero", |v| ops::norm(v) > 1e-3)
        .prop_map(|mut v| {
            ops::normalize_in_place(&mut v);
            v
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn all_estimators_return_finite_nonnegative_values(q in unit_query(), eps in 0.05f32..1.5) {
        let f = fixture();
        let estimators: Vec<&dyn CardinalityEstimator> =
            vec![&f.mlp, &f.rmi, &f.histogram, &f.sampling];
        for est in estimators {
            let v = est.estimate(&q, eps);
            prop_assert!(v.is_finite(), "{} produced {}", est.name(), v);
            prop_assert!(v >= 0.0, "{} produced {}", est.name(), v);
        }
    }

    #[test]
    fn exact_estimator_is_monotone_in_eps(q in unit_query(), e1 in 0.05f32..1.0, e2 in 0.05f32..1.0) {
        let f = fixture();
        let exact = ExactEstimator::new(&f.data, Metric::Cosine);
        let (lo, hi) = if e1 <= e2 { (e1, e2) } else { (e2, e1) };
        prop_assert!(exact.estimate(&q, lo) <= exact.estimate(&q, hi));
    }

    #[test]
    fn exact_estimator_is_bounded_by_dataset_size(q in unit_query(), eps in 0.05f32..2.5) {
        let f = fixture();
        let exact = ExactEstimator::new(&f.data, Metric::Cosine);
        let v = exact.estimate(&q, eps);
        prop_assert!(v <= f.data.len() as f32);
    }

    #[test]
    fn histogram_is_monotone_in_eps(q in unit_query(), e1 in 0.05f32..1.0, e2 in 0.05f32..1.0) {
        let f = fixture();
        let (lo, hi) = if e1 <= e2 { (e1, e2) } else { (e2, e1) };
        prop_assert!(f.histogram.estimate(&q, lo) <= f.histogram.estimate(&q, hi) + 1e-3);
    }

    #[test]
    fn sampling_estimator_never_exceeds_scaled_sample(q in unit_query(), eps in 0.05f32..2.5) {
        let f = fixture();
        let v = f.sampling.estimate(&q, eps);
        prop_assert!(v <= f.data.len() as f32 + 1e-3);
    }

    #[test]
    fn learned_estimators_are_deterministic(q in unit_query(), eps in 0.1f32..0.9) {
        let f = fixture();
        prop_assert_eq!(f.mlp.estimate(&q, eps), f.mlp.estimate(&q, eps));
        prop_assert_eq!(f.rmi.estimate(&q, eps), f.rmi.estimate(&q, eps));
    }
}
