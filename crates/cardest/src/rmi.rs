//! Recursive Model Index (RMI) cardinality estimator — the paper's model.
//!
//! The paper borrows its estimator from CardNet's strong baseline: a
//! three-stage RMI whose stages contain 1, 2 and 4 fully-connected neural
//! networks from top to bottom. The root model routes each input to one of
//! the second-stage models, which in turn routes to one of the third-stage
//! models; the leaf model's prediction is the answer. Every member model is
//! an [`Mlp`] from this crate (Kraska et al.'s original RMI used the same
//! idea over linear/NN models for learned indexing).
//!
//! Routing follows the standard RMI recipe: a model's prediction (in
//! normalized target space) selects the child whose bucket the prediction
//! falls into. Buckets that receive no training samples inherit their
//! parent's training subset so every leaf is usable at inference time.

use crate::estimator::CardinalityEstimator;
use crate::nn::{Mlp, NetConfig};
use crate::training::TrainingSet;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};

/// Configuration of the RMI structure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RmiConfig {
    /// Number of models per stage, from root to leaves. The paper uses
    /// `[1, 2, 4]`.
    pub stage_sizes: Vec<usize>,
    /// Hyper-parameters for every member network.
    pub net: NetConfig,
}

impl RmiConfig {
    /// The paper's three-stage layout (1, 2, 4 models) with the given
    /// per-model network configuration.
    pub fn paper_stages(net: NetConfig) -> Self {
        Self {
            stage_sizes: vec![1, 2, 4],
            net,
        }
    }
}

impl Default for RmiConfig {
    fn default() -> Self {
        Self::paper_stages(NetConfig::small())
    }
}

/// Three-stage (configurable) recursive model index over [`Mlp`] regressors.
#[derive(Debug, Serialize, Deserialize)]
pub struct RmiEstimator {
    /// `stages[s][m]` is model `m` of stage `s`.
    stages: Vec<Vec<Mlp>>,
    stage_sizes: Vec<usize>,
    data_dim: usize,
    /// Minimum and maximum regression target seen in training, used to
    /// normalize predictions for routing.
    target_min: f32,
    target_max: f32,
    #[serde(skip)]
    predictions: AtomicU64,
}

impl RmiEstimator {
    /// Train the RMI on a prepared [`TrainingSet`].
    ///
    /// # Panics
    /// Panics if the training set is empty or the stage layout is empty or
    /// does not start with a single root model.
    pub fn train(training: &TrainingSet, cfg: &RmiConfig) -> Self {
        assert!(
            !training.is_empty(),
            "cannot train an RMI estimator on an empty training set"
        );
        assert!(
            !cfg.stage_sizes.is_empty() && cfg.stage_sizes[0] == 1,
            "RMI stage layout must start with a single root model"
        );
        assert!(
            cfg.stage_sizes.iter().all(|&s| s > 0),
            "RMI stages must be non-empty"
        );

        let (xs, ys) = training.as_xy();
        let target_min = ys.iter().copied().fold(f32::INFINITY, f32::min);
        let target_max = ys.iter().copied().fold(f32::NEG_INFINITY, f32::max);

        let feature_dim = training.feature_dim();
        let n_stages = cfg.stage_sizes.len();
        let mut stages: Vec<Vec<Mlp>> = Vec::with_capacity(n_stages);

        // assignment[i] = which model of the *current* stage sample i belongs to.
        let mut assignment = vec![0usize; xs.len()];

        for (stage_idx, &n_models) in cfg.stage_sizes.iter().enumerate() {
            let mut stage_models: Vec<Mlp> = Vec::with_capacity(n_models);
            let mut next_assignment = vec![0usize; xs.len()];

            for model_idx in 0..n_models {
                // Samples routed to this model.
                let member_indices: Vec<usize> = (0..xs.len())
                    .filter(|&i| assignment[i] == model_idx)
                    .collect();
                // Empty bucket: fall back to the full training set so the
                // model is still usable at inference time.
                let effective: Vec<usize> = if member_indices.is_empty() {
                    (0..xs.len()).collect()
                } else {
                    member_indices.clone()
                };
                let sub_x: Vec<Vec<f32>> = effective.iter().map(|&i| xs[i].clone()).collect();
                let sub_y: Vec<f32> = effective.iter().map(|&i| ys[i]).collect();

                let seed = cfg
                    .net
                    .seed
                    .wrapping_add((stage_idx as u64) << 16)
                    .wrapping_add(model_idx as u64);
                let mut net = Mlp::new(feature_dim, &cfg.net.hidden, seed);
                net.train(&sub_x, &sub_y, &cfg.net);

                // Route this model's members to the next stage.
                if stage_idx + 1 < n_stages {
                    let next_n = cfg.stage_sizes[stage_idx + 1];
                    for &i in &member_indices {
                        let pred = net.predict(&xs[i]);
                        next_assignment[i] = route(pred, target_min, target_max, next_n);
                    }
                }
                stage_models.push(net);
            }
            stages.push(stage_models);
            assignment = next_assignment;
        }

        Self {
            stages,
            stage_sizes: cfg.stage_sizes.clone(),
            data_dim: training.dim,
            target_min,
            target_max,
            predictions: AtomicU64::new(0),
        }
    }

    /// Number of stages in the index.
    pub fn n_stages(&self) -> usize {
        self.stages.len()
    }

    /// Number of models per stage, root first.
    pub fn stage_sizes(&self) -> &[usize] {
        &self.stage_sizes
    }

    /// Dimensionality of the data vectors the estimator expects.
    pub fn data_dim(&self) -> usize {
        self.data_dim
    }

    /// Total number of member models.
    pub fn model_count(&self) -> usize {
        self.stages.iter().map(Vec::len).sum()
    }
}

/// Map a prediction in `[target_min, target_max]` to a child index in
/// `0..n_children`.
fn route(pred: f32, target_min: f32, target_max: f32, n_children: usize) -> usize {
    if n_children <= 1 {
        return 0;
    }
    let span = (target_max - target_min).max(1e-9);
    let normalized = ((pred - target_min) / span).clamp(0.0, 1.0);
    ((normalized * n_children as f32) as usize).min(n_children - 1)
}

impl CardinalityEstimator for RmiEstimator {
    fn estimate(&self, query: &[f32], eps: f32) -> f32 {
        assert_eq!(
            query.len(),
            self.data_dim,
            "query dimensionality does not match the training data"
        );
        self.predictions.fetch_add(1, Ordering::Relaxed);
        let mut features = Vec::with_capacity(query.len() + 1);
        features.extend_from_slice(query);
        features.push(eps);

        let mut model_idx = 0usize;
        let mut pred = 0.0f32;
        for (stage_idx, stage) in self.stages.iter().enumerate() {
            let model = &stage[model_idx.min(stage.len() - 1)];
            pred = model.predict(&features);
            if stage_idx + 1 < self.stages.len() {
                model_idx = route(
                    pred,
                    self.target_min,
                    self.target_max,
                    self.stages[stage_idx + 1].len(),
                );
            }
        }
        pred.exp_m1().max(0.0)
    }

    fn name(&self) -> &'static str {
        "rmi"
    }

    fn predictions(&self) -> Option<u64> {
        Some(self.predictions.load(Ordering::Relaxed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::training::TrainingSetBuilder;
    use crate::{CardinalityEstimator, ExactEstimator};
    use laf_synth::EmbeddingMixtureConfig;
    use laf_vector::{Dataset, Metric};

    fn data() -> Dataset {
        EmbeddingMixtureConfig {
            n_points: 250,
            dim: 8,
            clusters: 5,
            noise_fraction: 0.2,
            spread: 0.06,
            seed: 77,
            ..Default::default()
        }
        .generate()
        .unwrap()
        .0
    }

    fn train_rmi(data: &Dataset) -> RmiEstimator {
        let ts = TrainingSetBuilder {
            max_queries: Some(120),
            ..Default::default()
        }
        .build(data, data)
        .unwrap();
        RmiEstimator::train(&ts, &RmiConfig::paper_stages(NetConfig::tiny()))
    }

    #[test]
    fn paper_layout_has_seven_models_in_three_stages() {
        let data = data();
        let rmi = train_rmi(&data);
        assert_eq!(rmi.n_stages(), 3);
        assert_eq!(rmi.stage_sizes(), &[1, 2, 4]);
        assert_eq!(rmi.model_count(), 7);
        assert_eq!(rmi.data_dim(), 8);
    }

    #[test]
    fn estimates_are_finite_and_nonnegative() {
        let data = data();
        let rmi = train_rmi(&data);
        for i in (0..data.len()).step_by(23) {
            for eps in [0.1f32, 0.5, 0.9] {
                let e = rmi.estimate(data.row(i), eps);
                assert!(e.is_finite() && e >= 0.0);
            }
        }
        assert!(rmi.predictions().unwrap() > 0);
        assert_eq!(rmi.name(), "rmi");
    }

    #[test]
    fn rmi_learns_the_monotone_trend() {
        let data = data();
        let rmi = train_rmi(&data);
        let oracle = ExactEstimator::new(&data, Metric::Cosine);
        let mut est_small = 0.0f64;
        let mut est_large = 0.0f64;
        let mut true_small = 0.0f64;
        let mut true_large = 0.0f64;
        for i in (0..data.len()).step_by(5) {
            let q = data.row(i);
            est_small += rmi.estimate(q, 0.1) as f64;
            est_large += rmi.estimate(q, 0.9) as f64;
            true_small += oracle.estimate(q, 0.1) as f64;
            true_large += oracle.estimate(q, 0.9) as f64;
        }
        assert!(true_large > true_small);
        assert!(est_large > est_small);
    }

    #[test]
    fn routing_is_stable_and_in_bounds() {
        assert_eq!(route(0.5, 0.0, 1.0, 1), 0);
        assert_eq!(route(-5.0, 0.0, 1.0, 4), 0);
        assert_eq!(route(10.0, 0.0, 1.0, 4), 3);
        assert_eq!(route(0.49, 0.0, 1.0, 2), 0);
        assert_eq!(route(0.51, 0.0, 1.0, 2), 1);
        // Degenerate target span must not divide by zero.
        assert_eq!(route(0.3, 0.3, 0.3, 4), 0);
    }

    #[test]
    #[should_panic(expected = "single root")]
    fn invalid_stage_layout_panics() {
        let data = data();
        let ts = TrainingSetBuilder {
            max_queries: Some(10),
            thresholds: vec![0.5],
            ..Default::default()
        }
        .build(&data, &data)
        .unwrap();
        let cfg = RmiConfig {
            stage_sizes: vec![2, 4],
            net: NetConfig::tiny(),
        };
        let _ = RmiEstimator::train(&ts, &cfg);
    }

    #[test]
    fn serde_round_trip_preserves_estimates() {
        let data = data();
        let rmi = train_rmi(&data);
        let json = serde_json::to_string(&rmi).unwrap();
        let back: RmiEstimator = serde_json::from_str(&json).unwrap();
        let q = data.row(3);
        assert_eq!(rmi.estimate(q, 0.4), back.estimate(q, 0.4));
    }
}
