//! # laf-cardest
//!
//! Learned cardinality estimation for angular range queries — the first half
//! of the paper's LAF framework.
//!
//! The key idea of LAF-DBSCAN is that deciding whether a point is *core*
//! only requires the **number** of neighbors within ε, not the neighbors
//! themselves, and that number can be predicted by a regression model far
//! more cheaply than it can be counted by a range query. This crate provides:
//!
//! * [`CardinalityEstimator`] — the estimator abstraction the LAF framework
//!   plugs in front of every range query;
//! * [`RmiEstimator`] — the paper's estimator: a 3-stage Recursive Model
//!   Index whose stages contain 1 / 2 / 4 fully-connected neural networks
//!   (the configuration borrowed from CardNet's RMI baseline);
//! * [`MlpEstimator`] — a single multi-layer perceptron, the building block
//!   of the RMI and a useful ablation;
//! * [`SamplingEstimator`] and [`HistogramEstimator`] — the traditional
//!   (non-learned) baselines cardinality-estimation literature compares
//!   against;
//! * [`ExactEstimator`] and [`ConstantEstimator`] — oracles used for testing
//!   and failure injection;
//! * [`TrainingSetBuilder`] — builds `(query ⊕ ε) → ln(1 + |N_ε(query)|)`
//!   training pairs over a grid of cosine thresholds (the paper uses
//!   0.1–0.9), exploiting the boundedness of angular distance that the paper
//!   argues makes the learning problem tractable;
//! * [`nn`] — the from-scratch dense neural network (ReLU, Adam, MSE) the
//!   learned estimators are built on. No GPU, no external ML framework.

#![warn(missing_docs)]

pub mod calibration;
pub mod estimator;
pub mod mlp;
pub mod nn;
pub mod rmi;
pub mod traditional;
pub mod training;

pub use calibration::{CorePredictionReport, EstimatorCalibrator, QErrorReport};
pub use estimator::{CardinalityEstimator, ConstantEstimator, ExactEstimator};
pub use mlp::MlpEstimator;
pub use nn::{Mlp, NetConfig, TrainReport};
pub use rmi::{RmiConfig, RmiEstimator};
pub use traditional::{HistogramEstimator, SamplingEstimator};
pub use training::{TrainingSample, TrainingSet, TrainingSetBuilder};
