//! Training-set construction for learned cardinality estimators.
//!
//! The paper trains its estimator on `(query, threshold) → cardinality`
//! pairs where thresholds are cosine distances between 0.1 and 0.9 — a
//! bounded range, which is precisely the paper's argument for focusing on
//! angular distance (a regressor generalizes better when the training set
//! can cover the input domain). The builder here:
//!
//! 1. takes the training split of a dataset,
//! 2. samples (or uses all) query points from it,
//! 3. counts their exact neighbors at every threshold in the grid using the
//!    brute-force engine (in parallel), and
//! 4. emits features `[query ⊕ ε]` with targets `ln(1 + count)` — the log
//!    transform keeps the regression well-conditioned across the orders of
//!    magnitude that cardinalities span.

use laf_index::{LinearScan, RangeQueryEngine};
use laf_vector::{Dataset, Metric, VectorError};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// One training pair.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainingSample {
    /// Feature vector: the query point's coordinates followed by the
    /// distance threshold ε.
    pub features: Vec<f32>,
    /// Regression target: `ln(1 + true_cardinality)`.
    pub log_cardinality: f32,
    /// The raw neighbor count, kept for evaluation and calibration.
    pub cardinality: u32,
}

/// A complete training set (plus the metadata needed to interpret it).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainingSet {
    /// Dimensionality of the underlying data (features are `dim + 1` long).
    pub dim: usize,
    /// The threshold grid the samples were generated over.
    pub thresholds: Vec<f32>,
    /// The samples.
    pub samples: Vec<TrainingSample>,
}

impl TrainingSet {
    /// Feature dimensionality (`dim + 1`: the query plus ε).
    pub fn feature_dim(&self) -> usize {
        self.dim + 1
    }

    /// Borrow the features/targets as parallel vectors for [`crate::Mlp::train`].
    pub fn as_xy(&self) -> (Vec<Vec<f32>>, Vec<f32>) {
        let xs = self.samples.iter().map(|s| s.features.clone()).collect();
        let ys = self.samples.iter().map(|s| s.log_cardinality).collect();
        (xs, ys)
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// `true` when the set holds no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }
}

/// Builder for [`TrainingSet`]s.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainingSetBuilder {
    /// Distance metric the cardinalities are counted under.
    pub metric: Metric,
    /// Threshold grid (the paper uses 0.1, 0.2, …, 0.9 for cosine distance).
    pub thresholds: Vec<f32>,
    /// Maximum number of query points sampled from the training data
    /// (`None` uses every point). Each query point produces one sample per
    /// threshold.
    pub max_queries: Option<usize>,
    /// Sampling seed.
    pub seed: u64,
}

impl Default for TrainingSetBuilder {
    fn default() -> Self {
        Self {
            metric: Metric::Cosine,
            thresholds: Self::paper_thresholds(),
            max_queries: Some(2_000),
            seed: 0x7EA,
        }
    }
}

impl TrainingSetBuilder {
    /// The paper's cosine-distance threshold grid: 0.1 to 0.9 in steps of 0.1.
    pub fn paper_thresholds() -> Vec<f32> {
        (1..=9).map(|i| i as f32 * 0.1).collect()
    }

    /// Build the training set by counting exact cardinalities of queries
    /// drawn from `queries` against `reference` (for DBSCAN both are the
    /// training split of the dataset).
    ///
    /// # Errors
    /// Returns [`VectorError::InvalidParameter`] if the threshold grid is
    /// empty or the query/reference dimensions disagree, and
    /// [`VectorError::EmptyDataset`] if either dataset is empty.
    pub fn build(
        &self,
        queries: &Dataset,
        reference: &Dataset,
    ) -> Result<TrainingSet, VectorError> {
        if self.thresholds.is_empty() {
            return Err(VectorError::InvalidParameter(
                "threshold grid must be non-empty".into(),
            ));
        }
        if queries.is_empty() || reference.is_empty() {
            return Err(VectorError::EmptyDataset);
        }
        if queries.dim() != reference.dim() {
            return Err(VectorError::DimensionMismatch {
                expected: reference.dim(),
                found: queries.dim(),
            });
        }

        let mut rng = StdRng::seed_from_u64(self.seed);
        let query_set = match self.max_queries {
            Some(cap) if cap < queries.len() => queries.sample(cap, &mut rng).0,
            _ => queries.clone(),
        };

        let scan = LinearScan::new(reference, self.metric);
        let thresholds = self.thresholds.clone();
        let samples: Vec<TrainingSample> = (0..query_set.len())
            .into_par_iter()
            .flat_map_iter(|qi| {
                let q = query_set.row(qi).to_vec();
                // One scan per (query, threshold); counting all thresholds in
                // a single pass would be faster but this mirrors the
                // range_count interface the estimators themselves see.
                let scan = &scan;
                thresholds.clone().into_iter().map(move |eps| {
                    let count = scan.range_count(&q, eps) as u32;
                    let mut features = q.clone();
                    features.push(eps);
                    TrainingSample {
                        features,
                        log_cardinality: (count as f32).ln_1p(),
                        cardinality: count,
                    }
                })
            })
            .collect();

        Ok(TrainingSet {
            dim: reference.dim(),
            thresholds,
            samples,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use laf_synth::EmbeddingMixtureConfig;

    fn small_data() -> Dataset {
        EmbeddingMixtureConfig {
            n_points: 150,
            dim: 8,
            clusters: 4,
            noise_fraction: 0.2,
            seed: 3,
            ..Default::default()
        }
        .generate()
        .unwrap()
        .0
    }

    #[test]
    fn paper_threshold_grid() {
        let t = TrainingSetBuilder::paper_thresholds();
        assert_eq!(t.len(), 9);
        assert!((t[0] - 0.1).abs() < 1e-6);
        assert!((t[8] - 0.9).abs() < 1e-6);
    }

    #[test]
    fn builds_one_sample_per_query_per_threshold() {
        let data = small_data();
        let builder = TrainingSetBuilder {
            max_queries: Some(20),
            thresholds: vec![0.2, 0.5],
            ..Default::default()
        };
        let ts = builder.build(&data, &data).unwrap();
        assert_eq!(ts.len(), 40);
        assert_eq!(ts.dim, 8);
        assert_eq!(ts.feature_dim(), 9);
        assert!(!ts.is_empty());
        for s in &ts.samples {
            assert_eq!(s.features.len(), 9);
            let eps = *s.features.last().unwrap();
            assert!(eps == 0.2 || eps == 0.5);
            assert!((s.log_cardinality - (s.cardinality as f32).ln_1p()).abs() < 1e-6);
            // Every query is a dataset member, so it is its own neighbor.
            assert!(s.cardinality >= 1);
        }
    }

    #[test]
    fn cardinality_is_monotone_in_threshold_for_same_query() {
        let data = small_data();
        let builder = TrainingSetBuilder {
            max_queries: Some(10),
            thresholds: vec![0.1, 0.3, 0.6, 0.9],
            ..Default::default()
        };
        let ts = builder.build(&data, &data).unwrap();
        // Samples for one query are consecutive (per the flat_map order).
        for chunk in ts.samples.chunks(4) {
            for w in chunk.windows(2) {
                assert!(
                    w[1].cardinality >= w[0].cardinality,
                    "cardinality must grow with eps"
                );
            }
        }
    }

    #[test]
    fn rejects_bad_inputs() {
        let data = small_data();
        let empty = Dataset::new(8).unwrap();
        let wrong_dim = Dataset::from_rows(vec![vec![1.0f32; 4]]).unwrap();
        let builder = TrainingSetBuilder::default();
        assert!(builder.build(&empty, &data).is_err());
        assert!(builder.build(&data, &empty).is_err());
        assert!(builder.build(&wrong_dim, &data).is_err());
        let no_thresholds = TrainingSetBuilder {
            thresholds: vec![],
            ..Default::default()
        };
        assert!(no_thresholds.build(&data, &data).is_err());
    }

    #[test]
    fn max_queries_caps_the_sample_count() {
        let data = small_data();
        let capped = TrainingSetBuilder {
            max_queries: Some(5),
            thresholds: vec![0.5],
            ..Default::default()
        };
        assert_eq!(capped.build(&data, &data).unwrap().len(), 5);
        let uncapped = TrainingSetBuilder {
            max_queries: None,
            thresholds: vec![0.5],
            ..Default::default()
        };
        assert_eq!(uncapped.build(&data, &data).unwrap().len(), data.len());
    }

    #[test]
    fn as_xy_matches_samples() {
        let data = small_data();
        let builder = TrainingSetBuilder {
            max_queries: Some(3),
            thresholds: vec![0.4],
            ..Default::default()
        };
        let ts = builder.build(&data, &data).unwrap();
        let (xs, ys) = ts.as_xy();
        assert_eq!(xs.len(), ts.len());
        assert_eq!(ys.len(), ts.len());
        assert_eq!(xs[0], ts.samples[0].features);
        assert_eq!(ys[0], ts.samples[0].log_cardinality);
    }
}
