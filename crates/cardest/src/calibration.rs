//! Estimator calibration and core-prediction error analysis.
//!
//! Section 3.3 of the paper explains its quality results through the number
//! of **false negative** core predictions (5687 / 2010 / 7425 on
//! NYT/Glove/MS-150k at ε = 0.5, τ = 3) and Section 3.2 discusses how the
//! error factor α shifts the balance between false negatives and false
//! positives. This module provides exactly that analysis for any
//! [`CardinalityEstimator`]:
//!
//! * [`QErrorReport`] — the regression view: how far the predicted
//!   cardinalities are from the true ones (mean/median/p95 q-error);
//! * [`CorePredictionReport`] — the classification view: confusion counts of
//!   the thresholded decision `prediction ≥ α·τ` against the ground truth
//!   `count ≥ τ`, which is the decision LAF actually gates range queries on.

use crate::estimator::CardinalityEstimator;
use laf_index::{LinearScan, RangeQueryEngine};
use laf_vector::{Dataset, Metric};
use serde::{Deserialize, Serialize};

/// Distribution summary of q-errors (`max(pred, true) / min(pred, true)`,
/// computed on counts offset by 1 so empty neighborhoods are well-defined).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QErrorReport {
    /// Number of (query, ε) pairs evaluated.
    pub evaluated: usize,
    /// Arithmetic mean q-error.
    pub mean: f64,
    /// Median q-error.
    pub median: f64,
    /// 95th-percentile q-error.
    pub p95: f64,
    /// Largest q-error observed.
    pub max: f64,
}

/// Confusion counts of the gate decision `estimate ≥ α·τ` versus the truth
/// `true_count ≥ τ`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct CorePredictionReport {
    /// Points correctly predicted core.
    pub true_positives: usize,
    /// Points predicted core that are actually stop points (cost: an
    /// unnecessary range query — pure slowdown, no quality loss).
    pub false_positives: usize,
    /// Core points predicted as stop points (cost: potentially split or
    /// missed clusters — the error the post-processing repairs).
    pub false_negatives: usize,
    /// Points correctly predicted as stop points (the saved range queries).
    pub true_negatives: usize,
    /// The α used for the thresholding.
    pub alpha: f32,
    /// The τ used for the thresholding.
    pub tau: usize,
    /// The ε the counts were computed at.
    pub eps: f32,
}

impl CorePredictionReport {
    /// Precision of the core prediction (1.0 when there are no positives).
    pub fn precision(&self) -> f64 {
        let denom = self.true_positives + self.false_positives;
        if denom == 0 {
            1.0
        } else {
            self.true_positives as f64 / denom as f64
        }
    }

    /// Recall of the core prediction (1.0 when there are no true cores).
    pub fn recall(&self) -> f64 {
        let denom = self.true_positives + self.false_negatives;
        if denom == 0 {
            1.0
        } else {
            self.true_positives as f64 / denom as f64
        }
    }

    /// Fraction of all points whose range query would be skipped.
    pub fn skip_ratio(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            (self.true_negatives + self.false_negatives) as f64 / total as f64
        }
    }

    /// Total number of evaluated points.
    pub fn total(&self) -> usize {
        self.true_positives + self.false_positives + self.false_negatives + self.true_negatives
    }
}

/// Calibrates an estimator against exact counts over a reference dataset.
pub struct EstimatorCalibrator<'a> {
    reference: &'a Dataset,
    metric: Metric,
}

impl<'a> EstimatorCalibrator<'a> {
    /// Calibrate against `reference` under `metric` (cosine in the paper).
    pub fn new(reference: &'a Dataset, metric: Metric) -> Self {
        Self { reference, metric }
    }

    /// Q-error distribution of `estimator` over the given query points and
    /// thresholds.
    pub fn q_error(
        &self,
        estimator: &dyn CardinalityEstimator,
        queries: &Dataset,
        thresholds: &[f32],
    ) -> QErrorReport {
        let scan = LinearScan::new(self.reference, self.metric);
        let mut errors: Vec<f64> = Vec::with_capacity(queries.len() * thresholds.len());
        for q in queries.rows() {
            for &eps in thresholds {
                let predicted = estimator.estimate(q, eps).max(0.0) as f64 + 1.0;
                let truth = scan.range_count(q, eps) as f64 + 1.0;
                errors.push(predicted.max(truth) / predicted.min(truth));
            }
        }
        summarize(errors)
    }

    /// Confusion counts of the gate decision at `(eps, tau, alpha)` over the
    /// given query points.
    pub fn core_prediction(
        &self,
        estimator: &dyn CardinalityEstimator,
        queries: &Dataset,
        eps: f32,
        tau: usize,
        alpha: f32,
    ) -> CorePredictionReport {
        let scan = LinearScan::new(self.reference, self.metric);
        let threshold = alpha * tau as f32;
        let mut report = CorePredictionReport {
            alpha,
            tau,
            eps,
            ..Default::default()
        };
        for q in queries.rows() {
            let predicted_core = {
                let est = estimator.estimate(q, eps);
                !est.is_finite() || est >= threshold
            };
            let actually_core = scan.range_count(q, eps) >= tau;
            match (predicted_core, actually_core) {
                (true, true) => report.true_positives += 1,
                (true, false) => report.false_positives += 1,
                (false, true) => report.false_negatives += 1,
                (false, false) => report.true_negatives += 1,
            }
        }
        report
    }

    /// Sweep α and report the confusion counts at each value — the data
    /// behind the paper's "α controls the FP/FN balance" discussion.
    pub fn alpha_sweep(
        &self,
        estimator: &dyn CardinalityEstimator,
        queries: &Dataset,
        eps: f32,
        tau: usize,
        alphas: &[f32],
    ) -> Vec<CorePredictionReport> {
        alphas
            .iter()
            .map(|&a| self.core_prediction(estimator, queries, eps, tau, a))
            .collect()
    }
}

fn summarize(mut errors: Vec<f64>) -> QErrorReport {
    if errors.is_empty() {
        return QErrorReport {
            evaluated: 0,
            mean: 1.0,
            median: 1.0,
            p95: 1.0,
            max: 1.0,
        };
    }
    errors.sort_by(|a, b| a.total_cmp(b));
    let n = errors.len();
    let mean = errors.iter().sum::<f64>() / n as f64;
    let pct = |p: f64| errors[((n as f64 - 1.0) * p).round() as usize];
    QErrorReport {
        evaluated: n,
        mean,
        median: pct(0.5),
        p95: pct(0.95),
        max: errors[n - 1],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ConstantEstimator, ExactEstimator};
    use laf_synth::EmbeddingMixtureConfig;

    fn data() -> Dataset {
        EmbeddingMixtureConfig {
            n_points: 180,
            dim: 8,
            clusters: 4,
            noise_fraction: 0.25,
            seed: 19,
            ..Default::default()
        }
        .generate()
        .unwrap()
        .0
    }

    #[test]
    fn exact_estimator_has_perfect_q_error_and_confusion() {
        let d = data();
        let calibrator = EstimatorCalibrator::new(&d, Metric::Cosine);
        let exact = ExactEstimator::new(&d, Metric::Cosine);
        let q = calibrator.q_error(&exact, &d, &[0.2, 0.5, 0.8]);
        assert_eq!(q.evaluated, d.len() * 3);
        assert!((q.mean - 1.0).abs() < 1e-9);
        assert!((q.max - 1.0).abs() < 1e-9);

        let report = calibrator.core_prediction(&exact, &d, 0.4, 4, 1.0);
        assert_eq!(report.false_negatives, 0);
        assert_eq!(report.false_positives, 0);
        assert_eq!(report.total(), d.len());
        assert_eq!(report.precision(), 1.0);
        assert_eq!(report.recall(), 1.0);
    }

    #[test]
    fn zero_estimator_is_all_false_negatives() {
        let d = data();
        let calibrator = EstimatorCalibrator::new(&d, Metric::Cosine);
        let zero = ConstantEstimator::new(0.0);
        let report = calibrator.core_prediction(&zero, &d, 0.4, 4, 1.0);
        assert_eq!(report.true_positives, 0);
        assert_eq!(report.false_positives, 0);
        assert!(report.false_negatives > 0);
        assert_eq!(report.recall(), 0.0);
        assert_eq!(report.precision(), 1.0);
        assert!(report.skip_ratio() > 0.99);
    }

    #[test]
    fn infinite_estimator_is_all_positives() {
        let d = data();
        let calibrator = EstimatorCalibrator::new(&d, Metric::Cosine);
        let inf = ConstantEstimator::new(f32::INFINITY);
        let report = calibrator.core_prediction(&inf, &d, 0.4, 4, 1.0);
        assert_eq!(report.false_negatives, 0);
        assert_eq!(report.true_negatives, 0);
        assert_eq!(report.skip_ratio(), 0.0);
        assert_eq!(report.recall(), 1.0);
    }

    #[test]
    fn larger_alpha_increases_false_negatives_for_a_scaled_oracle() {
        // A half-scale oracle behaves like a learned estimator with a
        // systematic under-prediction; increasing alpha must then produce
        // (weakly) more false negatives and fewer false positives.
        struct Half<'a>(ExactEstimator<'a>);
        impl CardinalityEstimator for Half<'_> {
            fn estimate(&self, q: &[f32], eps: f32) -> f32 {
                self.0.estimate(q, eps) * 0.5
            }
            fn name(&self) -> &'static str {
                "half"
            }
        }
        let d = data();
        let calibrator = EstimatorCalibrator::new(&d, Metric::Cosine);
        let est = Half(ExactEstimator::new(&d, Metric::Cosine));
        let sweep = calibrator.alpha_sweep(&est, &d, 0.4, 4, &[0.25, 0.5, 1.0, 2.0, 4.0]);
        assert_eq!(sweep.len(), 5);
        for w in sweep.windows(2) {
            assert!(w[1].false_negatives >= w[0].false_negatives, "{sweep:?}");
            assert!(w[1].false_positives <= w[0].false_positives, "{sweep:?}");
        }
    }

    #[test]
    fn q_error_of_a_biased_estimator_is_above_one() {
        let d = data();
        let calibrator = EstimatorCalibrator::new(&d, Metric::Cosine);
        let biased = ConstantEstimator::new(1.0);
        let q = calibrator.q_error(&biased, &d, &[0.9]);
        assert!(q.mean > 1.0);
        assert!(q.p95 >= q.median);
        assert!(q.max >= q.p95);
    }

    #[test]
    fn empty_query_set_is_well_defined() {
        let d = data();
        let calibrator = EstimatorCalibrator::new(&d, Metric::Cosine);
        let exact = ExactEstimator::new(&d, Metric::Cosine);
        let empty = Dataset::new(8).unwrap();
        let q = calibrator.q_error(&exact, &empty, &[0.5]);
        assert_eq!(q.evaluated, 0);
        assert_eq!(q.mean, 1.0);
        let report = calibrator.core_prediction(&exact, &empty, 0.5, 3, 1.0);
        assert_eq!(report.total(), 0);
        assert_eq!(report.skip_ratio(), 0.0);
    }
}
