//! Single-MLP learned cardinality estimator.

use crate::estimator::CardinalityEstimator;
use crate::nn::{Mlp, NetConfig, TrainReport};
use crate::training::TrainingSet;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};

/// A cardinality estimator backed by one multi-layer perceptron.
///
/// The network regresses `ln(1 + cardinality)` from the concatenation of the
/// query vector and the distance threshold; [`CardinalityEstimator::estimate`]
/// maps the prediction back through `expm1` and clamps it to be non-negative.
/// This is both a building block of the paper's RMI ([`crate::RmiEstimator`])
/// and a natural single-model ablation.
#[derive(Debug, Serialize, Deserialize)]
pub struct MlpEstimator {
    net: Mlp,
    data_dim: usize,
    report: TrainReport,
    #[serde(skip)]
    predictions: AtomicU64,
}

impl Clone for MlpEstimator {
    fn clone(&self) -> Self {
        Self {
            net: self.net.clone(),
            data_dim: self.data_dim,
            report: self.report,
            predictions: AtomicU64::new(self.predictions.load(Ordering::Relaxed)),
        }
    }
}

impl MlpEstimator {
    /// Train an estimator on a prepared [`TrainingSet`].
    ///
    /// # Panics
    /// Panics if the training set is empty (there is nothing to learn from);
    /// callers construct training sets through [`crate::TrainingSetBuilder`],
    /// which never produces an empty set for non-empty data.
    pub fn train(training: &TrainingSet, cfg: &NetConfig) -> Self {
        assert!(
            !training.is_empty(),
            "cannot train an MLP estimator on an empty training set"
        );
        let (xs, ys) = training.as_xy();
        let mut net = Mlp::new(training.feature_dim(), &cfg.hidden, cfg.seed);
        let report = net.train(&xs, &ys, cfg);
        Self {
            net,
            data_dim: training.dim,
            report,
            predictions: AtomicU64::new(0),
        }
    }

    /// A degraded-mode estimator that can never gate a query off the exact
    /// path: every prediction is the constant `expm1(80)` (≈ 5.5e34, still
    /// finite in `f32`), far above any `α·τ` threshold, so the gate always
    /// runs the range query. Snapshot loads substitute this for a corrupt
    /// estimator section instead of failing the load — exact-only serving
    /// beats no serving, and answers stay correct because the gate only
    /// ever *skips* work it believes is fruitless.
    pub fn gate_off(data_dim: usize) -> Self {
        Self {
            net: Mlp::constant(data_dim + 1, 80.0),
            data_dim,
            report: TrainReport {
                epochs: 0,
                initial_loss: 0.0,
                final_loss: 0.0,
            },
            predictions: AtomicU64::new(0),
        }
    }

    /// Training summary (initial/final MSE in log-cardinality space).
    pub fn report(&self) -> TrainReport {
        self.report
    }

    /// The underlying network.
    pub fn net(&self) -> &Mlp {
        &self.net
    }

    /// Dimensionality of the data vectors the estimator expects.
    pub fn data_dim(&self) -> usize {
        self.data_dim
    }

    /// Append the estimator (training report, data dimensionality and the
    /// network's raw weight bits) to `buf` in the little-endian binary form.
    ///
    /// Exists alongside the serde JSON representation for the snapshot
    /// subsystem: the binary form is both compact (4 bytes per weight instead
    /// of decimal text) and **bit-exact**, which is what makes loaded
    /// snapshots produce byte-identical estimates, gate decisions and cluster
    /// labels. See [`crate::Mlp::encode_binary`].
    pub fn encode_binary(&self, buf: &mut impl bytes::BufMut) {
        buf.put_u32_le(self.data_dim as u32);
        buf.put_u64_le(self.report.epochs as u64);
        buf.put_f32_le(self.report.initial_loss);
        buf.put_f32_le(self.report.final_loss);
        self.net.encode_binary(buf);
    }

    /// Inverse of [`MlpEstimator::encode_binary`], advancing the cursor.
    ///
    /// # Errors
    /// Returns [`laf_vector::VectorError::MalformedPayload`] on truncation or
    /// when the embedded network's input width does not equal
    /// `data_dim + 1` (query features plus the ε threshold).
    pub fn decode_binary(bytes: &mut &[u8]) -> Result<Self, laf_vector::VectorError> {
        use bytes::Buf;
        if bytes.remaining() < 20 {
            return Err(laf_vector::VectorError::MalformedPayload(format!(
                "truncated estimator header: {} bytes",
                bytes.remaining()
            )));
        }
        let data_dim = bytes.get_u32_le() as usize;
        let epochs = bytes.get_u64_le() as usize;
        let initial_loss = bytes.get_f32_le();
        let final_loss = bytes.get_f32_le();
        let net = Mlp::decode_binary(bytes)?;
        if net.input_dim() != data_dim + 1 {
            return Err(laf_vector::VectorError::MalformedPayload(format!(
                "network input width {} does not match data_dim {} + 1",
                net.input_dim(),
                data_dim
            )));
        }
        Ok(Self {
            net,
            data_dim,
            report: TrainReport {
                epochs,
                initial_loss,
                final_loss,
            },
            predictions: AtomicU64::new(0),
        })
    }
}

impl CardinalityEstimator for MlpEstimator {
    fn estimate(&self, query: &[f32], eps: f32) -> f32 {
        assert_eq!(
            query.len(),
            self.data_dim,
            "query dimensionality does not match the training data"
        );
        self.predictions.fetch_add(1, Ordering::Relaxed);
        let mut features = Vec::with_capacity(query.len() + 1);
        features.extend_from_slice(query);
        features.push(eps);
        let log_pred = self.net.predict(&features);
        log_pred.exp_m1().max(0.0)
    }

    fn estimate_batch(&self, queries: &[&[f32]], eps: f32) -> Vec<f32> {
        let features: Vec<Vec<f32>> = queries
            .iter()
            .map(|q| {
                assert_eq!(
                    q.len(),
                    self.data_dim,
                    "query dimensionality does not match the training data"
                );
                let mut f = Vec::with_capacity(q.len() + 1);
                f.extend_from_slice(q);
                f.push(eps);
                f
            })
            .collect();
        self.predictions
            .fetch_add(queries.len() as u64, Ordering::Relaxed);
        let refs: Vec<&[f32]> = features.iter().map(Vec::as_slice).collect();
        self.net
            .predict_batch(&refs)
            .into_iter()
            .map(|log_pred| log_pred.exp_m1().max(0.0))
            .collect()
    }

    fn name(&self) -> &'static str {
        "mlp"
    }

    fn predictions(&self) -> Option<u64> {
        Some(self.predictions.load(Ordering::Relaxed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::training::TrainingSetBuilder;
    use laf_synth::EmbeddingMixtureConfig;
    use laf_vector::Dataset;

    fn data() -> Dataset {
        EmbeddingMixtureConfig {
            n_points: 200,
            dim: 8,
            clusters: 4,
            noise_fraction: 0.2,
            spread: 0.06,
            seed: 5,
            ..Default::default()
        }
        .generate()
        .unwrap()
        .0
    }

    fn train_small(data: &Dataset) -> MlpEstimator {
        let ts = TrainingSetBuilder {
            max_queries: Some(120),
            ..Default::default()
        }
        .build(data, data)
        .unwrap();
        MlpEstimator::train(&ts, &NetConfig::tiny())
    }

    #[test]
    fn training_produces_finite_nonnegative_estimates() {
        let data = data();
        let est = train_small(&data);
        assert_eq!(est.data_dim(), 8);
        assert!(est.report().final_loss.is_finite());
        for i in (0..data.len()).step_by(17) {
            for eps in [0.1f32, 0.5, 0.9] {
                let e = est.estimate(data.row(i), eps);
                assert!(e.is_finite() && e >= 0.0, "estimate {e}");
            }
        }
        assert!(est.predictions().unwrap() > 0);
    }

    #[test]
    fn estimates_correlate_with_true_cardinalities() {
        let data = data();
        let est = train_small(&data);
        let oracle = crate::ExactEstimator::new(&data, laf_vector::Metric::Cosine);
        // Average estimate at a large radius must exceed the average at a
        // small radius (the estimator must have learned the monotone trend).
        let mut small_sum = 0.0f64;
        let mut large_sum = 0.0f64;
        let mut true_small = 0.0f64;
        let mut true_large = 0.0f64;
        let n = 40usize;
        for i in 0..n {
            let q = data.row(i * 3);
            small_sum += est.estimate(q, 0.1) as f64;
            large_sum += est.estimate(q, 0.9) as f64;
            true_small += oracle.estimate(q, 0.1) as f64;
            true_large += oracle.estimate(q, 0.9) as f64;
        }
        assert!(true_large > true_small);
        assert!(
            large_sum > small_sum,
            "learned estimator lost the monotone trend: {large_sum} <= {small_sum}"
        );
    }

    #[test]
    #[should_panic(expected = "empty training set")]
    fn empty_training_set_panics() {
        let ts = crate::TrainingSet {
            dim: 4,
            thresholds: vec![0.5],
            samples: vec![],
        };
        let _ = MlpEstimator::train(&ts, &NetConfig::tiny());
    }

    #[test]
    #[should_panic(expected = "dimensionality")]
    fn wrong_query_dim_panics() {
        let data = data();
        let est = train_small(&data);
        let _ = est.estimate(&[1.0, 2.0], 0.5);
    }

    #[test]
    fn estimate_batch_is_bit_exact_with_per_query_estimates() {
        let data = data();
        let est = train_small(&data);
        let queries: Vec<&[f32]> = (0..data.len()).step_by(3).map(|i| data.row(i)).collect();
        for eps in [0.1f32, 0.5, 0.9] {
            let batched = est.estimate_batch(&queries, eps);
            assert_eq!(batched.len(), queries.len());
            for (qi, q) in queries.iter().enumerate() {
                // Bit-exact: the batched forward pass computes the same dot
                // products in the same order as the scalar path.
                assert_eq!(batched[qi], est.estimate(q, eps), "query {qi} eps {eps}");
            }
        }
        // The batch counts toward the prediction counter once per query.
        let before = est.predictions().unwrap();
        let _ = est.estimate_batch(&queries, 0.5);
        assert_eq!(est.predictions().unwrap(), before + queries.len() as u64);
    }

    #[test]
    fn serde_round_trip_preserves_estimates() {
        let data = data();
        let est = train_small(&data);
        let json = serde_json::to_string(&est).unwrap();
        let back: MlpEstimator = serde_json::from_str(&json).unwrap();
        let q = data.row(0);
        assert_eq!(est.estimate(q, 0.5), back.estimate(q, 0.5));
        assert_eq!(est.name(), "mlp");
    }

    #[test]
    fn binary_round_trip_is_bit_exact() {
        let data = data();
        let est = train_small(&data);
        let mut buf: Vec<u8> = Vec::new();
        est.encode_binary(&mut buf);
        let back = MlpEstimator::decode_binary(&mut buf.as_slice()).unwrap();
        assert_eq!(back.data_dim(), est.data_dim());
        assert_eq!(back.report(), est.report());
        for i in (0..data.len()).step_by(11) {
            for eps in [0.1f32, 0.5, 0.9] {
                assert_eq!(
                    est.estimate(data.row(i), eps).to_bits(),
                    back.estimate(data.row(i), eps).to_bits(),
                    "row {i} eps {eps}"
                );
            }
        }
    }

    #[test]
    fn binary_decode_rejects_dim_mismatch_and_truncation() {
        let data = data();
        let est = train_small(&data);
        let mut buf: Vec<u8> = Vec::new();
        est.encode_binary(&mut buf);
        assert!(MlpEstimator::decode_binary(&mut &buf[..10]).is_err());
        // Lie about data_dim: the embedded net expects data_dim + 1 inputs.
        let mut bad = buf.clone();
        bad[0] = bad[0].wrapping_add(1);
        assert!(MlpEstimator::decode_binary(&mut bad.as_slice()).is_err());
    }
}
