//! From-scratch dense neural network used by the learned estimators.
//!
//! The paper's cardinality estimator is an RMI whose member models are
//! fully-connected neural networks with four hidden layers (512, 512, 256,
//! 128), trained for 200 epochs with batch size 512 on a GPU workstation.
//! This module provides an equivalent CPU implementation: dense layers with
//! ReLU activations, mean-squared-error loss and the Adam optimizer, all in
//! plain safe Rust with no external ML framework.
//!
//! [`NetConfig::paper`] exposes the paper's widths; [`NetConfig::small`] is
//! the CPU-friendly default used by the reproduction's experiments (the
//! substitution is documented in DESIGN.md §4).

use bytes::{Buf, BufMut};
use laf_vector::VectorError;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, Normal};
use serde::{Deserialize, Serialize};

/// Read-guard: error (instead of panicking) when fewer than `needed` bytes
/// remain in a binary payload being decoded.
fn ensure_remaining(bytes: &&[u8], needed: usize, what: &str) -> Result<(), VectorError> {
    if bytes.remaining() < needed {
        return Err(VectorError::MalformedPayload(format!(
            "truncated {what}: need {needed} bytes, found {}",
            bytes.remaining()
        )));
    }
    Ok(())
}

/// Hyper-parameters for building and training an [`Mlp`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetConfig {
    /// Hidden layer widths (the output layer is always a single unit).
    pub hidden: Vec<usize>,
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub learning_rate: f32,
    /// Parameter-initialization / shuffling seed.
    pub seed: u64,
}

impl NetConfig {
    /// The configuration the paper uses inside its RMI (4 hidden layers of
    /// width 512/512/256/128, 200 epochs, batch 512). Expensive on CPU.
    pub fn paper() -> Self {
        Self {
            hidden: vec![512, 512, 256, 128],
            epochs: 200,
            batch_size: 512,
            learning_rate: 1e-3,
            seed: 0x1AF,
        }
    }

    /// CPU-friendly configuration used by default in this reproduction.
    pub fn small() -> Self {
        Self {
            hidden: vec![64, 32],
            epochs: 60,
            batch_size: 64,
            learning_rate: 2e-3,
            seed: 0x1AF,
        }
    }

    /// Even smaller configuration for unit tests.
    pub fn tiny() -> Self {
        Self {
            hidden: vec![16],
            epochs: 80,
            batch_size: 32,
            learning_rate: 5e-3,
            seed: 0x1AF,
        }
    }
}

impl Default for NetConfig {
    fn default() -> Self {
        Self::small()
    }
}

/// Summary statistics returned by [`Mlp::train`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainReport {
    /// Number of epochs actually run.
    pub epochs: usize,
    /// Mean squared error on the training set before training.
    pub initial_loss: f32,
    /// Mean squared error on the training set after training.
    pub final_loss: f32,
}

/// One dense layer: `y = W x + b`.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Dense {
    in_dim: usize,
    out_dim: usize,
    /// Row-major `out_dim × in_dim` weights.
    w: Vec<f32>,
    b: Vec<f32>,
}

impl Dense {
    fn new(in_dim: usize, out_dim: usize, rng: &mut StdRng) -> Self {
        // He initialization for ReLU networks.
        let std = (2.0 / in_dim as f64).sqrt();
        let normal = Normal::new(0.0, std).expect("positive std");
        let w = (0..in_dim * out_dim)
            .map(|_| normal.sample(rng) as f32)
            .collect();
        Self {
            in_dim,
            out_dim,
            w,
            b: vec![0.0; out_dim],
        }
    }

    fn forward(&self, x: &[f32], out: &mut Vec<f32>) {
        out.clear();
        out.reserve(self.out_dim);
        for o in 0..self.out_dim {
            let row = &self.w[o * self.in_dim..(o + 1) * self.in_dim];
            out.push(laf_vector::ops::dot(row, x) + self.b[o]);
        }
    }

    fn param_count(&self) -> usize {
        self.w.len() + self.b.len()
    }

    /// Append this layer's shape and raw IEEE-754 parameter bits to `buf`
    /// (little-endian; exact — no text round-trip).
    fn encode_binary(&self, buf: &mut impl BufMut) {
        buf.put_u32_le(self.in_dim as u32);
        buf.put_u32_le(self.out_dim as u32);
        for &w in &self.w {
            buf.put_f32_le(w);
        }
        for &b in &self.b {
            buf.put_f32_le(b);
        }
    }

    /// Inverse of [`Dense::encode_binary`], advancing the cursor.
    fn decode_binary(bytes: &mut &[u8]) -> Result<Self, VectorError> {
        ensure_remaining(bytes, 8, "dense layer header")?;
        let in_dim = bytes.get_u32_le() as usize;
        let out_dim = bytes.get_u32_le() as usize;
        if in_dim == 0 || out_dim == 0 {
            return Err(VectorError::MalformedPayload(format!(
                "dense layer with zero dimension ({in_dim} x {out_dim})"
            )));
        }
        let param_bytes = in_dim
            .checked_mul(out_dim)
            .and_then(|n| n.checked_add(out_dim))
            .and_then(|n| n.checked_mul(4))
            .ok_or_else(|| VectorError::MalformedPayload("layer size overflow".to_string()))?;
        ensure_remaining(bytes, param_bytes, "dense layer parameters")?;
        let w = (0..in_dim * out_dim).map(|_| bytes.get_f32_le()).collect();
        let b = (0..out_dim).map(|_| bytes.get_f32_le()).collect();
        Ok(Self {
            in_dim,
            out_dim,
            w,
            b,
        })
    }
}

/// Multi-layer perceptron with ReLU hidden activations and a single linear
/// output unit, trained with Adam on mean squared error.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Mlp {
    input_dim: usize,
    layers: Vec<Dense>,
}

impl Mlp {
    /// Build an untrained network with He-initialized weights.
    ///
    /// # Panics
    /// Panics if `input_dim == 0`.
    pub fn new(input_dim: usize, hidden: &[usize], seed: u64) -> Self {
        assert!(input_dim > 0, "input_dim must be positive");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut layers = Vec::with_capacity(hidden.len() + 1);
        let mut prev = input_dim;
        for &h in hidden {
            let h = h.max(1);
            layers.push(Dense::new(prev, h, &mut rng));
            prev = h;
        }
        layers.push(Dense::new(prev, 1, &mut rng));
        Self { input_dim, layers }
    }

    /// Build a network that predicts `output` for every input: one linear
    /// layer with zero weights and `output` as its bias. Degraded snapshot
    /// loads substitute such a network for a corrupt estimator section so
    /// the gate can never steer a query off the exact path.
    ///
    /// # Panics
    /// Panics if `input_dim == 0`.
    pub fn constant(input_dim: usize, output: f32) -> Self {
        assert!(input_dim > 0, "input_dim must be positive");
        Self {
            input_dim,
            layers: vec![Dense {
                in_dim: input_dim,
                out_dim: 1,
                w: vec![0.0; input_dim],
                b: vec![output],
            }],
        }
    }

    /// Input dimensionality the network expects.
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// Total number of trainable parameters.
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(Dense::param_count).sum()
    }

    /// Forward pass producing the scalar prediction.
    ///
    /// # Panics
    /// Panics if `x.len() != self.input_dim()`.
    pub fn predict(&self, x: &[f32]) -> f32 {
        assert_eq!(x.len(), self.input_dim, "input dimension mismatch");
        let mut cur = x.to_vec();
        let mut next = Vec::new();
        let last = self.layers.len() - 1;
        for (l, layer) in self.layers.iter().enumerate() {
            layer.forward(&cur, &mut next);
            if l != last {
                for v in next.iter_mut() {
                    if *v < 0.0 {
                        *v = 0.0;
                    }
                }
            }
            std::mem::swap(&mut cur, &mut next);
        }
        cur[0]
    }

    /// Forward pass over a whole batch of inputs, bit-exact with calling
    /// [`Mlp::predict`] per row (each output unit computes the same
    /// `dot(row, x) + b` in the same order), but shaped as a matrix-matrix
    /// sweep: every layer's weight row is streamed from memory once per batch
    /// instead of once per sample, which is what makes the LAF gate's batched
    /// prescan profitable.
    ///
    /// The inner loop runs on the shared [`laf_vector::ops::dot4`] mini-GEMM
    /// tile — four batch activations per weight-row load — whose lanes are
    /// bit-identical to the scalar `dot`, so the batch/scalar bit-exactness
    /// contract is preserved.
    ///
    /// # Panics
    /// Panics if any input's length differs from [`Mlp::input_dim`].
    pub fn predict_batch(&self, xs: &[&[f32]]) -> Vec<f32> {
        let batch = xs.len();
        if batch == 0 {
            return Vec::new();
        }
        // Activations as a row-major batch × width matrix.
        let mut cur: Vec<f32> = Vec::with_capacity(batch * self.input_dim);
        for x in xs {
            assert_eq!(x.len(), self.input_dim, "input dimension mismatch");
            cur.extend_from_slice(x);
        }
        let mut width = self.input_dim;
        let last = self.layers.len() - 1;
        let tiles = batch / 4 * 4;
        for (l, layer) in self.layers.iter().enumerate() {
            let mut next = vec![0.0f32; batch * layer.out_dim];
            let relu = l != last;
            for o in 0..layer.out_dim {
                let row = &layer.w[o * layer.in_dim..(o + 1) * layer.in_dim];
                let bias = layer.b[o];
                let mut store = |b: usize, dot: f32| {
                    let mut v = dot + bias;
                    if relu && v < 0.0 {
                        v = 0.0;
                    }
                    next[b * layer.out_dim + o] = v;
                };
                // Four activations per weight-row load (f32 multiplication
                // commutes, so dot4(x.., row) lanes equal dot(row, x)).
                for b in (0..tiles).step_by(4) {
                    let x0 = &cur[b * width..(b + 1) * width];
                    let x1 = &cur[(b + 1) * width..(b + 2) * width];
                    let x2 = &cur[(b + 2) * width..(b + 3) * width];
                    let x3 = &cur[(b + 3) * width..(b + 4) * width];
                    let dots = laf_vector::ops::dot4(x0, x1, x2, x3, row);
                    for (lane, &d) in dots.iter().enumerate() {
                        store(b + lane, d);
                    }
                }
                for b in tiles..batch {
                    let x = &cur[b * width..b * width + width];
                    store(b, laf_vector::ops::dot(row, x));
                }
            }
            cur = next;
            width = layer.out_dim;
        }
        cur
    }

    /// Append the network's architecture and raw IEEE-754 weight bits to
    /// `buf` (little-endian).
    ///
    /// Unlike the serde JSON path — which renders every weight through
    /// decimal text — this encoding copies the exact `f32` bit patterns, so a
    /// decoded network is **bit-exact**: every prediction it makes is
    /// byte-identical to the network that was encoded. The snapshot subsystem
    /// in `laf-core` persists estimators through this entry point.
    pub fn encode_binary(&self, buf: &mut impl BufMut) {
        buf.put_u32_le(self.input_dim as u32);
        buf.put_u32_le(self.layers.len() as u32);
        for layer in &self.layers {
            layer.encode_binary(buf);
        }
    }

    /// Inverse of [`Mlp::encode_binary`], advancing the cursor past the
    /// encoded network.
    ///
    /// # Errors
    /// Returns [`VectorError::MalformedPayload`] on truncation, zero
    /// dimensions, or an inconsistent layer chain (adjacent layer widths must
    /// line up and the output layer must have a single unit).
    pub fn decode_binary(bytes: &mut &[u8]) -> Result<Self, VectorError> {
        ensure_remaining(bytes, 8, "network header")?;
        let input_dim = bytes.get_u32_le() as usize;
        let n_layers = bytes.get_u32_le() as usize;
        if input_dim == 0 {
            return Err(VectorError::MalformedPayload(
                "network input dimension is zero".to_string(),
            ));
        }
        if n_layers == 0 {
            return Err(VectorError::MalformedPayload(
                "network with no layers".to_string(),
            ));
        }
        // Bound the layer count by the bytes actually present (every layer
        // occupies at least its 8-byte header) before reserving: a malformed
        // header must produce an error, not a multi-gigabyte allocation.
        ensure_remaining(bytes, n_layers.saturating_mul(8), "layer list")?;
        let mut layers = Vec::with_capacity(n_layers);
        let mut prev = input_dim;
        for l in 0..n_layers {
            let layer = Dense::decode_binary(bytes)?;
            if layer.in_dim != prev {
                return Err(VectorError::MalformedPayload(format!(
                    "layer {l} expects input width {} but the previous layer produces {prev}",
                    layer.in_dim
                )));
            }
            prev = layer.out_dim;
            layers.push(layer);
        }
        if prev != 1 {
            return Err(VectorError::MalformedPayload(format!(
                "output layer must have a single unit, found {prev}"
            )));
        }
        Ok(Self { input_dim, layers })
    }

    /// Forward pass keeping every layer's post-activation output (used by
    /// backprop). `activations[0]` is the input, `activations[i]` the output
    /// of layer `i-1`.
    fn forward_cached(&self, x: &[f32]) -> Vec<Vec<f32>> {
        let mut activations = Vec::with_capacity(self.layers.len() + 1);
        activations.push(x.to_vec());
        let last = self.layers.len() - 1;
        for (l, layer) in self.layers.iter().enumerate() {
            let mut out = Vec::new();
            layer.forward(activations.last().expect("non-empty"), &mut out);
            if l != last {
                for v in out.iter_mut() {
                    if *v < 0.0 {
                        *v = 0.0;
                    }
                }
            }
            activations.push(out);
        }
        activations
    }

    /// Mean squared error over a set of samples.
    pub fn mse(&self, inputs: &[Vec<f32>], targets: &[f32]) -> f32 {
        assert_eq!(inputs.len(), targets.len());
        if inputs.is_empty() {
            return 0.0;
        }
        let sum: f32 = inputs
            .iter()
            .zip(targets)
            .map(|(x, &y)| {
                let e = self.predict(x) - y;
                e * e
            })
            .sum();
        sum / inputs.len() as f32
    }

    /// Train with Adam on MSE. `inputs` and `targets` must have equal length;
    /// empty training sets return a zeroed report.
    pub fn train(&mut self, inputs: &[Vec<f32>], targets: &[f32], cfg: &NetConfig) -> TrainReport {
        assert_eq!(
            inputs.len(),
            targets.len(),
            "inputs/targets length mismatch"
        );
        if inputs.is_empty() {
            return TrainReport {
                epochs: 0,
                initial_loss: 0.0,
                final_loss: 0.0,
            };
        }
        let initial_loss = self.mse(inputs, targets);
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xDEAD_BEEF);
        let n = inputs.len();
        let batch = cfg.batch_size.max(1).min(n);

        // Adam state, one slot per parameter, laid out layer by layer
        // (weights then biases).
        let total_params = self.param_count();
        let mut m = vec![0.0f32; total_params];
        let mut v = vec![0.0f32; total_params];
        let (beta1, beta2, eps) = (0.9f32, 0.999f32, 1e-8f32);
        let mut step = 0u64;

        let mut order: Vec<usize> = (0..n).collect();
        let mut grads = vec![0.0f32; total_params];

        for _ in 0..cfg.epochs {
            // Shuffle sample order each epoch.
            for i in (1..order.len()).rev() {
                let j = rng.gen_range(0..=i);
                order.swap(i, j);
            }
            for chunk in order.chunks(batch) {
                grads.iter_mut().for_each(|g| *g = 0.0);
                for &idx in chunk {
                    self.accumulate_gradients(&inputs[idx], targets[idx], chunk.len(), &mut grads);
                }
                // Adam update.
                step += 1;
                let bias1 = 1.0 - beta1.powi(step.min(i32::MAX as u64) as i32);
                let bias2 = 1.0 - beta2.powi(step.min(i32::MAX as u64) as i32);
                let mut offset = 0usize;
                for layer in self.layers.iter_mut() {
                    for (slot, w) in layer.w.iter_mut().enumerate() {
                        let g = grads[offset + slot];
                        let mi = &mut m[offset + slot];
                        let vi = &mut v[offset + slot];
                        *mi = beta1 * *mi + (1.0 - beta1) * g;
                        *vi = beta2 * *vi + (1.0 - beta2) * g * g;
                        let m_hat = *mi / bias1;
                        let v_hat = *vi / bias2;
                        *w -= cfg.learning_rate * m_hat / (v_hat.sqrt() + eps);
                    }
                    offset += layer.w.len();
                    for (slot, b) in layer.b.iter_mut().enumerate() {
                        let g = grads[offset + slot];
                        let mi = &mut m[offset + slot];
                        let vi = &mut v[offset + slot];
                        *mi = beta1 * *mi + (1.0 - beta1) * g;
                        *vi = beta2 * *vi + (1.0 - beta2) * g * g;
                        let m_hat = *mi / bias1;
                        let v_hat = *vi / bias2;
                        *b -= cfg.learning_rate * m_hat / (v_hat.sqrt() + eps);
                    }
                    offset += layer.b.len();
                }
            }
        }

        TrainReport {
            epochs: cfg.epochs,
            initial_loss,
            final_loss: self.mse(inputs, targets),
        }
    }

    /// Backpropagate one sample's MSE gradient into `grads` (layout matches
    /// the Adam update in [`Mlp::train`]): `d(pred-y)^2 / dθ / batch_len`.
    fn accumulate_gradients(&self, x: &[f32], y: f32, batch_len: usize, grads: &mut [f32]) {
        let acts = self.forward_cached(x);
        let pred = acts.last().expect("output layer exists")[0];
        let scale = 2.0 * (pred - y) / batch_len as f32;

        // delta for the current layer's outputs, starting at the output unit.
        let mut delta = vec![scale];

        // Pre-compute per-layer parameter offsets.
        let mut offsets = Vec::with_capacity(self.layers.len());
        let mut off = 0usize;
        for layer in &self.layers {
            offsets.push(off);
            off += layer.param_count();
        }

        for l in (0..self.layers.len()).rev() {
            let layer = &self.layers[l];
            let input = &acts[l];
            let w_off = offsets[l];
            let b_off = w_off + layer.w.len();

            // Gradients for this layer.
            for o in 0..layer.out_dim {
                let d = delta[o];
                if d != 0.0 {
                    let row = &mut grads[w_off + o * layer.in_dim..w_off + (o + 1) * layer.in_dim];
                    for (g, &xi) in row.iter_mut().zip(input.iter()) {
                        *g += d * xi;
                    }
                }
                grads[b_off + o] += d;
            }

            // Propagate delta to the previous layer (skip for the input).
            if l > 0 {
                let prev_layer_out = &acts[l]; // post-ReLU output of layer l-1
                let mut prev_delta = vec![0.0f32; layer.in_dim];
                for (o, &d) in delta.iter().enumerate().take(layer.out_dim) {
                    if d == 0.0 {
                        continue;
                    }
                    let row = &layer.w[o * layer.in_dim..(o + 1) * layer.in_dim];
                    for (pd, &w) in prev_delta.iter_mut().zip(row.iter()) {
                        *pd += d * w;
                    }
                }
                // ReLU derivative: zero where the previous activation was zero.
                for (pd, &a) in prev_delta.iter_mut().zip(prev_layer_out.iter()) {
                    if a <= 0.0 {
                        *pd = 0.0;
                    }
                }
                delta = prev_delta;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predict_has_right_shape_and_is_deterministic() {
        let net = Mlp::new(4, &[8, 4], 7);
        assert_eq!(net.input_dim(), 4);
        let x = [0.1f32, -0.2, 0.3, 0.4];
        assert_eq!(net.predict(&x), net.predict(&x));
        let net2 = Mlp::new(4, &[8, 4], 7);
        assert_eq!(net.predict(&x), net2.predict(&x));
        let net3 = Mlp::new(4, &[8, 4], 8);
        assert_ne!(net.predict(&x), net3.predict(&x));
    }

    #[test]
    #[should_panic(expected = "input dimension mismatch")]
    fn predict_rejects_wrong_dim() {
        let net = Mlp::new(3, &[4], 1);
        let _ = net.predict(&[1.0, 2.0]);
    }

    #[test]
    fn param_count_matches_architecture() {
        let net = Mlp::new(5, &[7, 3], 1);
        // (5*7 + 7) + (7*3 + 3) + (3*1 + 1) = 42 + 24 + 4
        assert_eq!(net.param_count(), 70);
    }

    #[test]
    fn training_reduces_loss_on_linear_function() {
        // y = 2*x0 - x1 + 0.5
        let inputs: Vec<Vec<f32>> = (0..200)
            .map(|i| {
                let a = (i as f32 * 0.017).sin();
                let b = (i as f32 * 0.03).cos();
                vec![a, b]
            })
            .collect();
        let targets: Vec<f32> = inputs.iter().map(|v| 2.0 * v[0] - v[1] + 0.5).collect();
        let mut net = Mlp::new(2, &[16], 3);
        let report = net.train(&inputs, &targets, &NetConfig::tiny());
        assert!(report.final_loss < report.initial_loss);
        assert!(
            report.final_loss < 0.05,
            "final loss too high: {}",
            report.final_loss
        );
    }

    #[test]
    fn training_learns_a_nonlinear_function() {
        // y = |x0| (needs the ReLU nonlinearity).
        let inputs: Vec<Vec<f32>> = (-100..100).map(|i| vec![i as f32 / 50.0]).collect();
        let targets: Vec<f32> = inputs.iter().map(|v| v[0].abs()).collect();
        let mut net = Mlp::new(1, &[16, 8], 11);
        let cfg = NetConfig {
            epochs: 200,
            ..NetConfig::tiny()
        };
        let report = net.train(&inputs, &targets, &cfg);
        assert!(report.final_loss < 0.02, "loss {}", report.final_loss);
        assert!((net.predict(&[1.5]) - 1.5).abs() < 0.3);
        assert!((net.predict(&[-1.5]) - 1.5).abs() < 0.3);
    }

    #[test]
    fn predict_batch_is_bit_exact_with_scalar_forward_across_tile_shapes() {
        // Batch sizes straddling the dot4 tile: empty, sub-tile, exactly one
        // tile, tile + tail, many tiles. Every blocked prediction must be
        // bit-identical to the scalar forward.
        let mut net = Mlp::new(3, &[8, 5], 17);
        let inputs: Vec<Vec<f32>> = (0..60)
            .map(|i| {
                vec![
                    (i as f32 * 0.13).sin(),
                    (i as f32 * 0.29).cos(),
                    i as f32 / 60.0,
                ]
            })
            .collect();
        let targets: Vec<f32> = inputs.iter().map(|v| v[0] - v[1]).collect();
        net.train(&inputs, &targets, &NetConfig::tiny());
        for batch in [0usize, 1, 3, 4, 5, 8, 11, 32] {
            let xs: Vec<&[f32]> = inputs.iter().take(batch).map(|v| v.as_slice()).collect();
            let blocked = net.predict_batch(&xs);
            assert_eq!(blocked.len(), batch);
            for (b, x) in xs.iter().enumerate() {
                assert_eq!(
                    blocked[b].to_bits(),
                    net.predict(x).to_bits(),
                    "batch {batch} slot {b}"
                );
            }
        }
    }

    #[test]
    fn empty_training_set_is_a_noop() {
        let mut net = Mlp::new(2, &[4], 1);
        let report = net.train(&[], &[], &NetConfig::tiny());
        assert_eq!(report.epochs, 0);
        assert_eq!(report.initial_loss, 0.0);
    }

    #[test]
    fn config_presets() {
        assert_eq!(NetConfig::paper().hidden, vec![512, 512, 256, 128]);
        assert_eq!(NetConfig::paper().epochs, 200);
        assert_eq!(NetConfig::paper().batch_size, 512);
        assert!(NetConfig::small().hidden.len() < NetConfig::paper().hidden.len());
        assert_eq!(NetConfig::default(), NetConfig::small());
    }

    #[test]
    fn serde_round_trip_preserves_predictions() {
        let net = Mlp::new(3, &[6], 21);
        let json = serde_json::to_string(&net).unwrap();
        let back: Mlp = serde_json::from_str(&json).unwrap();
        let x = [0.3f32, 0.1, -0.7];
        assert_eq!(net.predict(&x), back.predict(&x));
    }

    #[test]
    fn binary_round_trip_is_bit_exact_and_advances_cursor() {
        let mut net = Mlp::new(4, &[8, 4], 9);
        // Train a little so weights are not just the init distribution.
        let inputs: Vec<Vec<f32>> = (0..50).map(|i| vec![i as f32 / 25.0; 4]).collect();
        let targets: Vec<f32> = inputs.iter().map(|v| v[0] * 2.0).collect();
        net.train(&inputs, &targets, &NetConfig::tiny());

        let mut buf: Vec<u8> = Vec::new();
        net.encode_binary(&mut buf);
        buf.extend_from_slice(&[0xEE; 3]); // trailing bytes belong to the caller
        let mut cursor: &[u8] = &buf;
        let back = Mlp::decode_binary(&mut cursor).unwrap();
        assert_eq!(cursor, &[0xEE; 3], "decode must stop at the network's end");
        assert_eq!(back.input_dim(), net.input_dim());
        assert_eq!(back.param_count(), net.param_count());
        for i in 0..20 {
            let x = [i as f32 * 0.17, -0.3, 0.9, i as f32];
            assert_eq!(
                net.predict(&x).to_bits(),
                back.predict(&x).to_bits(),
                "prediction must be bit-exact"
            );
        }
    }

    #[test]
    fn binary_decode_rejects_malformed_payloads() {
        let net = Mlp::new(3, &[4], 2);
        let mut buf: Vec<u8> = Vec::new();
        net.encode_binary(&mut buf);

        // Truncation anywhere inside the payload.
        for cut in [0, 4, 8, 12, buf.len() - 1] {
            let mut cursor = &buf[..cut];
            assert!(Mlp::decode_binary(&mut cursor).is_err(), "cut at {cut}");
        }
        // Zero layers.
        let mut bad: Vec<u8> = Vec::new();
        bad.put_u32_le(3);
        bad.put_u32_le(0);
        assert!(Mlp::decode_binary(&mut bad.as_slice()).is_err());
        // A header claiming u32::MAX layers must error out before reserving
        // gigabytes for the layer vector.
        let mut bad: Vec<u8> = Vec::new();
        bad.put_u32_le(3);
        bad.put_u32_le(u32::MAX);
        assert!(Mlp::decode_binary(&mut bad.as_slice()).is_err());
        // Inconsistent layer chain: claim input_dim 5 against a net built
        // for 3 inputs.
        let mut bad = buf.clone();
        bad[0] = 5;
        assert!(Mlp::decode_binary(&mut bad.as_slice()).is_err());
    }
}
