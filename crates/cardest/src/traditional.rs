//! Traditional (non-learned) cardinality estimators.
//!
//! The paper positions learned estimation against the classic approaches
//! used for distance-range cardinality: sampling and (kernel) density /
//! histogram summaries. These two estimators provide that baseline in the
//! reproduction's ablation benchmarks: they are cheap but query-insensitive
//! (histogram) or high-variance (small samples), which is exactly why the
//! learned models win.

use crate::estimator::CardinalityEstimator;
use crate::training::TrainingSet;
use laf_vector::{Dataset, Metric};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};

/// Sampling estimator: counts neighbors within a fixed random sample of the
/// reference data and scales the count up by the sampling ratio.
#[derive(Debug, Serialize, Deserialize)]
pub struct SamplingEstimator {
    sample: Dataset,
    metric: Metric,
    scale: f32,
    #[serde(skip)]
    predictions: AtomicU64,
}

impl SamplingEstimator {
    /// Draw a sample of `sample_size` points (clamped to the dataset size)
    /// from `reference`.
    ///
    /// # Panics
    /// Panics if `reference` is empty or `sample_size` is zero.
    pub fn new(reference: &Dataset, metric: Metric, sample_size: usize, seed: u64) -> Self {
        assert!(!reference.is_empty(), "reference dataset must be non-empty");
        assert!(sample_size > 0, "sample_size must be positive");
        let mut rng = StdRng::seed_from_u64(seed);
        let (sample, _) = reference.sample(sample_size.min(reference.len()), &mut rng);
        let scale = reference.len() as f32 / sample.len() as f32;
        Self {
            sample,
            metric,
            scale,
            predictions: AtomicU64::new(0),
        }
    }

    /// Number of points in the retained sample.
    pub fn sample_size(&self) -> usize {
        self.sample.len()
    }

    /// The up-scaling factor `|reference| / |sample|`.
    pub fn scale(&self) -> f32 {
        self.scale
    }
}

impl CardinalityEstimator for SamplingEstimator {
    fn estimate(&self, query: &[f32], eps: f32) -> f32 {
        self.predictions.fetch_add(1, Ordering::Relaxed);
        let count = self
            .sample
            .rows()
            .filter(|row| self.metric.dist(query, row) < eps)
            .count();
        count as f32 * self.scale
    }

    fn name(&self) -> &'static str {
        "sampling"
    }

    fn predictions(&self) -> Option<u64> {
        Some(self.predictions.load(Ordering::Relaxed))
    }
}

/// Histogram estimator: remembers the *average* cardinality observed at each
/// training threshold and answers queries by linear interpolation over ε,
/// completely ignoring the query vector. This is the crudest reasonable
/// baseline and illustrates why query-sensitive (learned) estimation matters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramEstimator {
    /// Sorted thresholds.
    thresholds: Vec<f32>,
    /// Average cardinality observed at each threshold.
    averages: Vec<f32>,
}

impl HistogramEstimator {
    /// Build the histogram from a training set.
    ///
    /// # Panics
    /// Panics if the training set is empty.
    pub fn from_training(training: &TrainingSet) -> Self {
        assert!(!training.is_empty(), "training set must be non-empty");
        let mut thresholds = training.thresholds.clone();
        thresholds.sort_by(f32::total_cmp);
        thresholds.dedup();
        let mut sums = vec![0.0f64; thresholds.len()];
        let mut counts = vec![0u64; thresholds.len()];
        for sample in &training.samples {
            let eps = *sample
                .features
                .last()
                .expect("training features always end with eps");
            if let Some(slot) = thresholds.iter().position(|&t| (t - eps).abs() < 1e-6) {
                sums[slot] += sample.cardinality as f64;
                counts[slot] += 1;
            }
        }
        let averages = sums
            .iter()
            .zip(&counts)
            .map(|(&s, &c)| if c > 0 { (s / c as f64) as f32 } else { 0.0 })
            .collect();
        Self {
            thresholds,
            averages,
        }
    }

    /// The thresholds the histogram stores averages for.
    pub fn thresholds(&self) -> &[f32] {
        &self.thresholds
    }
}

impl CardinalityEstimator for HistogramEstimator {
    fn estimate(&self, _query: &[f32], eps: f32) -> f32 {
        match self.thresholds.iter().position(|&t| t >= eps) {
            // eps below the first threshold: scale the first average down.
            Some(0) => {
                let t0 = self.thresholds[0];
                if t0 <= 0.0 {
                    self.averages[0]
                } else {
                    self.averages[0] * (eps / t0).clamp(0.0, 1.0)
                }
            }
            Some(i) => {
                let (t_lo, t_hi) = (self.thresholds[i - 1], self.thresholds[i]);
                let (a_lo, a_hi) = (self.averages[i - 1], self.averages[i]);
                let w = if t_hi > t_lo {
                    (eps - t_lo) / (t_hi - t_lo)
                } else {
                    0.0
                };
                a_lo + w * (a_hi - a_lo)
            }
            // eps beyond the last threshold: hold the last average.
            None => *self.averages.last().expect("non-empty histogram"),
        }
    }

    fn name(&self) -> &'static str {
        "histogram"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::training::TrainingSetBuilder;
    use crate::ExactEstimator;
    use laf_synth::EmbeddingMixtureConfig;

    fn data() -> Dataset {
        EmbeddingMixtureConfig {
            n_points: 200,
            dim: 8,
            clusters: 4,
            noise_fraction: 0.2,
            seed: 41,
            ..Default::default()
        }
        .generate()
        .unwrap()
        .0
    }

    #[test]
    fn sampling_estimator_tracks_exact_counts() {
        let d = data();
        // A full-size "sample" must reproduce exact counts.
        let full = SamplingEstimator::new(&d, Metric::Cosine, d.len(), 1);
        let oracle = ExactEstimator::new(&d, Metric::Cosine);
        assert_eq!(full.sample_size(), d.len());
        assert!((full.scale() - 1.0).abs() < 1e-6);
        for i in (0..d.len()).step_by(29) {
            assert_eq!(full.estimate(d.row(i), 0.5), oracle.estimate(d.row(i), 0.5));
        }
        // A half sample should be in the right ballpark on average.
        let half = SamplingEstimator::new(&d, Metric::Cosine, d.len() / 2, 1);
        assert!((half.scale() - 2.0).abs() < 0.1);
        let mut est_sum = 0.0;
        let mut true_sum = 0.0;
        for i in (0..d.len()).step_by(7) {
            est_sum += half.estimate(d.row(i), 0.5) as f64;
            true_sum += oracle.estimate(d.row(i), 0.5) as f64;
        }
        let ratio = est_sum / true_sum;
        assert!((0.6..1.6).contains(&ratio), "ratio {ratio}");
        assert!(half.predictions().unwrap() > 0);
        assert_eq!(half.name(), "sampling");
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn sampling_estimator_rejects_empty_reference() {
        let empty = Dataset::new(4).unwrap();
        let _ = SamplingEstimator::new(&empty, Metric::Cosine, 10, 0);
    }

    #[test]
    fn histogram_interpolates_monotonically() {
        let d = data();
        let ts = TrainingSetBuilder {
            max_queries: Some(80),
            ..Default::default()
        }
        .build(&d, &d)
        .unwrap();
        let hist = HistogramEstimator::from_training(&ts);
        assert_eq!(hist.thresholds().len(), 9);
        let q = d.row(0);
        let at_01 = hist.estimate(q, 0.1);
        let at_05 = hist.estimate(q, 0.5);
        let at_09 = hist.estimate(q, 0.9);
        assert!(at_01 <= at_05 && at_05 <= at_09);
        // Below the grid: smaller than the first average; above: clamped.
        assert!(hist.estimate(q, 0.01) <= at_01);
        assert!((hist.estimate(q, 1.5) - at_09).abs() < 1e-3);
        // Interpolation lands between its endpoints.
        let mid = hist.estimate(q, 0.15);
        let at_02 = hist.estimate(q, 0.2);
        assert!(mid >= at_01.min(at_02) && mid <= at_01.max(at_02));
        assert_eq!(hist.name(), "histogram");
    }

    #[test]
    fn histogram_ignores_the_query_vector() {
        let d = data();
        let ts = TrainingSetBuilder {
            max_queries: Some(50),
            ..Default::default()
        }
        .build(&d, &d)
        .unwrap();
        let hist = HistogramEstimator::from_training(&ts);
        assert_eq!(hist.estimate(d.row(0), 0.5), hist.estimate(d.row(100), 0.5));
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn histogram_rejects_empty_training() {
        let ts = TrainingSet {
            dim: 4,
            thresholds: vec![0.5],
            samples: vec![],
        };
        let _ = HistogramEstimator::from_training(&ts);
    }

    #[test]
    fn serde_round_trips() {
        let d = data();
        let ts = TrainingSetBuilder {
            max_queries: Some(30),
            ..Default::default()
        }
        .build(&d, &d)
        .unwrap();
        let hist = HistogramEstimator::from_training(&ts);
        let json = serde_json::to_string(&hist).unwrap();
        let back: HistogramEstimator = serde_json::from_str(&json).unwrap();
        assert_eq!(hist, back);

        let samp = SamplingEstimator::new(&d, Metric::Cosine, 20, 3);
        let json = serde_json::to_string(&samp).unwrap();
        let back: SamplingEstimator = serde_json::from_str(&json).unwrap();
        assert_eq!(samp.estimate(d.row(5), 0.4), back.estimate(d.row(5), 0.4));
    }
}
