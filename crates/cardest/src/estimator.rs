//! The estimator abstraction plus the oracle / failure-injection estimators.

use laf_index::{LinearScan, RangeQueryEngine};
use laf_vector::{Dataset, Metric};

/// Predicts the number of dataset points within distance `eps` of `query`
/// **without executing the range query**.
///
/// LAF compares the prediction against `α·τ` (error factor times the DBSCAN
/// neighbor threshold) to decide whether the range query can be skipped.
pub trait CardinalityEstimator: Send + Sync {
    /// Predicted number of neighbors of `query` within `eps`.
    ///
    /// Implementations should return a non-negative finite value; the LAF
    /// layer treats non-finite predictions as "don't know" and falls back to
    /// executing the range query.
    fn estimate(&self, query: &[f32], eps: f32) -> f32;

    /// Predictions for a whole batch of queries at once, element-for-element
    /// identical (bit-exact) to calling [`CardinalityEstimator::estimate`]
    /// per query.
    ///
    /// The default implementation is the sequential loop (used by the RMI,
    /// the traditional baselines and the failure-injection estimators);
    /// [`crate::MlpEstimator`] overrides it with a single matrix-shaped
    /// forward pass over the whole query batch, and [`ExactEstimator`]
    /// forwards to the engine's blocked counting kernel. The LAF gate's
    /// prescan feeds entire datasets through this entry point.
    fn estimate_batch(&self, queries: &[&[f32]], eps: f32) -> Vec<f32> {
        queries.iter().map(|q| self.estimate(q, eps)).collect()
    }

    /// Short name used in experiment reports.
    fn name(&self) -> &'static str;

    /// Number of predictions served so far (diagnostics). Implementations
    /// that do not track this return `None`.
    fn predictions(&self) -> Option<u64> {
        None
    }
}

impl<T: CardinalityEstimator + ?Sized> CardinalityEstimator for &T {
    fn estimate(&self, query: &[f32], eps: f32) -> f32 {
        (**self).estimate(query, eps)
    }

    fn estimate_batch(&self, queries: &[&[f32]], eps: f32) -> Vec<f32> {
        (**self).estimate_batch(queries, eps)
    }

    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn predictions(&self) -> Option<u64> {
        (**self).predictions()
    }
}

impl<T: CardinalityEstimator + ?Sized> CardinalityEstimator for Box<T> {
    fn estimate(&self, query: &[f32], eps: f32) -> f32 {
        (**self).estimate(query, eps)
    }

    fn estimate_batch(&self, queries: &[&[f32]], eps: f32) -> Vec<f32> {
        (**self).estimate_batch(queries, eps)
    }

    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn predictions(&self) -> Option<u64> {
        (**self).predictions()
    }
}

impl<T: CardinalityEstimator + ?Sized> CardinalityEstimator for std::sync::Arc<T> {
    fn estimate(&self, query: &[f32], eps: f32) -> f32 {
        (**self).estimate(query, eps)
    }

    fn estimate_batch(&self, queries: &[&[f32]], eps: f32) -> Vec<f32> {
        (**self).estimate_batch(queries, eps)
    }

    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn predictions(&self) -> Option<u64> {
        (**self).predictions()
    }
}

/// Oracle estimator: runs the actual range count. Useful for tests (LAF with
/// an exact oracle and α = 1 must reproduce DBSCAN exactly) and as an upper
/// bound in ablations. Obviously provides no speedup.
pub struct ExactEstimator<'a> {
    scan: LinearScan<'a>,
}

impl<'a> ExactEstimator<'a> {
    /// Build the oracle over `data` with the given metric.
    pub fn new(data: &'a Dataset, metric: Metric) -> Self {
        Self {
            scan: LinearScan::new(data, metric),
        }
    }
}

impl CardinalityEstimator for ExactEstimator<'_> {
    fn estimate(&self, query: &[f32], eps: f32) -> f32 {
        self.scan.range_count(query, eps) as f32
    }

    fn estimate_batch(&self, queries: &[&[f32]], eps: f32) -> Vec<f32> {
        self.scan
            .range_count_batch(queries, eps)
            .into_iter()
            .map(|c| c as f32)
            .collect()
    }

    fn name(&self) -> &'static str {
        "exact"
    }
}

/// Failure-injection estimator: always answers the same value, regardless of
/// the query. `ConstantEstimator::new(0.0)` makes LAF predict every point as
/// a stop point; `f32::INFINITY` makes it predict every point as core (i.e.
/// degrade to plain DBSCAN); `f32::NAN` exercises the non-finite fallback.
#[derive(Debug, Clone, Copy)]
pub struct ConstantEstimator {
    value: f32,
}

impl ConstantEstimator {
    /// Estimator that always answers `value`.
    pub fn new(value: f32) -> Self {
        Self { value }
    }
}

impl CardinalityEstimator for ConstantEstimator {
    fn estimate(&self, _query: &[f32], _eps: f32) -> f32 {
        self.value
    }

    fn name(&self) -> &'static str {
        "constant"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data() -> Dataset {
        let mut d = Dataset::from_rows(vec![
            vec![1.0f32, 0.0],
            vec![0.99, 0.14],
            vec![0.0, 1.0],
            vec![-1.0, 0.0],
        ])
        .unwrap();
        d.normalize();
        d
    }

    #[test]
    fn exact_estimator_counts_exactly() {
        let d = data();
        let est = ExactEstimator::new(&d, Metric::Cosine);
        assert_eq!(est.estimate(d.row(0), 0.05), 2.0);
        assert_eq!(est.estimate(d.row(0), 1.5), 3.0);
        assert_eq!(est.estimate(d.row(0), 2.5), 4.0);
        assert_eq!(est.name(), "exact");
        assert!(est.predictions().is_none());
    }

    #[test]
    fn constant_estimator_ignores_input() {
        let d = data();
        let zero = ConstantEstimator::new(0.0);
        let inf = ConstantEstimator::new(f32::INFINITY);
        assert_eq!(zero.estimate(d.row(0), 0.5), 0.0);
        assert_eq!(zero.estimate(d.row(3), 2.0), 0.0);
        assert_eq!(inf.estimate(d.row(1), 0.1), f32::INFINITY);
        assert_eq!(zero.name(), "constant");
    }
}
