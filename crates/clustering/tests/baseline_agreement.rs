//! Property tests for the clustering baselines: label validity, determinism,
//! and agreement with exact DBSCAN in their exact configurations.

use laf_clustering::{
    BlockDbscan, Clusterer, Clustering, Dbscan, DbscanConfig, DbscanPlusPlus, KnnBlockDbscan,
    KnnBlockDbscanConfig, RhoApproxDbscan, RhoApproxDbscanConfig,
};
use laf_index::EngineChoice;
use laf_metrics::adjusted_rand_index;
use laf_synth::EmbeddingMixtureConfig;
use laf_vector::{Dataset, Metric};
use proptest::prelude::*;

fn dataset_strategy() -> impl Strategy<Value = Dataset> {
    (40usize..110, 2usize..5, 0.05f64..0.35, any::<u64>()).prop_map(
        |(n_points, clusters, noise_fraction, seed)| {
            EmbeddingMixtureConfig {
                n_points,
                dim: 6,
                clusters,
                spread: 0.06,
                noise_fraction,
                size_skew: 0.4,
                subspace_fraction: 1.0,
                seed,
            }
            .generate()
            .unwrap()
            .0
        },
    )
}

fn assert_valid_labels(c: &Clustering, n: usize) -> Result<(), TestCaseError> {
    prop_assert_eq!(c.len(), n);
    let n_clusters = c.n_clusters() as i64;
    for &l in c.labels() {
        prop_assert!(l == -1 || l >= 0, "invalid label {}", l);
        prop_assert!(l < n_clusters.max(n as i64), "label {} out of range", l);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn every_baseline_produces_valid_deterministic_labelings(
        data in dataset_strategy(),
        eps in 0.15f32..0.5,
        tau in 2usize..5
    ) {
        let clusterings: Vec<Clustering> = vec![
            Dbscan::with_params(eps, tau).cluster(&data),
            DbscanPlusPlus::with_params(eps, tau, 0.5).cluster(&data),
            KnnBlockDbscan::with_params(eps, tau).cluster(&data),
            BlockDbscan::with_params(eps, tau).cluster(&data),
            RhoApproxDbscan::with_params(eps, tau).cluster(&data),
        ];
        for c in &clusterings {
            assert_valid_labels(c, data.len())?;
        }
        // Determinism.
        let again = Dbscan::with_params(eps, tau).cluster(&data);
        prop_assert_eq!(clusterings[0].labels(), again.labels());
        let again = BlockDbscan::with_params(eps, tau).cluster(&data);
        prop_assert_eq!(clusterings[3].labels(), again.labels());
    }

    #[test]
    fn exact_configurations_agree_with_dbscan(
        data in dataset_strategy(),
        eps in 0.15f32..0.5,
        tau in 2usize..5
    ) {
        let truth = Dbscan::with_params(eps, tau).cluster(&data);

        // KNN-BLOCK with the full leaf budget performs exact kNN, so its core
        // decisions match DBSCAN's.
        let knn_exact = KnnBlockDbscan::new(KnnBlockDbscanConfig {
            eps,
            min_pts: tau,
            leaf_ratio: 1.0,
            ..Default::default()
        })
        .cluster(&data);
        let ari = adjusted_rand_index(truth.labels(), knn_exact.labels());
        prop_assert!(ari > 0.95, "KNN-BLOCK exact ARI {}", ari);

        // rho = 0 makes the grid exact.
        let rho_exact = RhoApproxDbscan::new(RhoApproxDbscanConfig {
            eps,
            min_pts: tau,
            rho: 0.0,
            metric: Metric::Cosine,
        })
        .cluster(&data);
        let ari = adjusted_rand_index(truth.labels(), rho_exact.labels());
        prop_assert!(ari > 0.999, "rho=0 ARI {}", ari);

        // DBSCAN over the cover tree engine is exact as well.
        let cover = Dbscan::new(DbscanConfig {
            eps,
            min_pts: tau,
            metric: Metric::Cosine,
            engine: EngineChoice::CoverTree { basis: 2.0 },
        })
        .cluster(&data);
        prop_assert_eq!(truth.labels(), cover.labels());
    }

    #[test]
    fn dbscan_noise_is_monotone_in_tau(
        data in dataset_strategy(),
        eps in 0.15f32..0.5,
        tau in 2usize..5
    ) {
        let low = Dbscan::with_params(eps, tau).cluster(&data);
        let high = Dbscan::with_params(eps, tau + 2).cluster(&data);
        // Raising the core threshold can only produce more (or equal) noise.
        prop_assert!(high.n_noise() >= low.n_noise());
    }

    #[test]
    fn dbscan_noise_is_antitone_in_eps(
        data in dataset_strategy(),
        eps in 0.15f32..0.4,
        tau in 2usize..5
    ) {
        let small = Dbscan::with_params(eps, tau).cluster(&data);
        let large = Dbscan::with_params(eps + 0.3, tau).cluster(&data);
        prop_assert!(large.n_noise() <= small.n_noise());
    }
}
