//! Original DBSCAN (Ester et al. 1996) — the paper's ground truth.
//!
//! The implementation follows the black-text lines of the paper's
//! Algorithm 1 exactly (the red lines are the LAF additions, implemented in
//! the `laf-core` crate): every unclassified point issues a range query; if
//! it has at least τ neighbors it becomes a core point and its cluster is
//! expanded through a seed list, issuing one range query per newly reached
//! point that has not been classified yet.

use crate::result::{Clusterer, Clustering, NOISE, UNDEFINED};
use laf_index::{build_engine, EngineChoice, RangeQueryEngine};
use laf_vector::{Dataset, Metric};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// DBSCAN parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DbscanConfig {
    /// Distance threshold ε.
    pub eps: f32,
    /// Minimum number of neighbors τ (the range query result includes the
    /// query point itself, as in the paper).
    pub min_pts: usize,
    /// Distance metric (the paper's evaluation uses cosine distance).
    pub metric: Metric,
    /// Which range-query engine executes the queries.
    pub engine: EngineChoice,
}

impl Default for DbscanConfig {
    fn default() -> Self {
        Self {
            eps: 0.5,
            min_pts: 3,
            metric: Metric::Cosine,
            engine: EngineChoice::Linear,
        }
    }
}

impl DbscanConfig {
    /// Convenience constructor with the paper's default metric (cosine) and
    /// the exact linear-scan engine.
    pub fn new(eps: f32, min_pts: usize) -> Self {
        Self {
            eps,
            min_pts,
            ..Default::default()
        }
    }
}

/// The original DBSCAN algorithm.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dbscan {
    /// Algorithm parameters.
    pub config: DbscanConfig,
}

impl Dbscan {
    /// Create a DBSCAN instance.
    pub fn new(config: DbscanConfig) -> Self {
        Self { config }
    }

    /// Shorthand for `Dbscan::new(DbscanConfig::new(eps, min_pts))`.
    pub fn with_params(eps: f32, min_pts: usize) -> Self {
        Self::new(DbscanConfig::new(eps, min_pts))
    }

    /// Run DBSCAN using an externally constructed engine (used by tests and
    /// ablations; [`Clusterer::cluster`] builds the engine from the config).
    pub fn cluster_with_engine(&self, data: &Dataset, engine: &dyn RangeQueryEngine) -> Clustering {
        let start = Instant::now();
        let n = data.len();
        let eps = self.config.eps;
        let tau = self.config.min_pts;
        let mut labels = vec![UNDEFINED; n];
        let mut range_queries = 0u64;
        let mut next_cluster: i64 = -1;

        for p in 0..n {
            if labels[p] != UNDEFINED {
                continue;
            }
            let neighbors = engine.range(data.row(p), eps);
            range_queries += 1;
            if neighbors.len() < tau {
                labels[p] = NOISE;
                continue;
            }
            next_cluster += 1;
            labels[p] = next_cluster;

            // Seed list: N \ {P}.
            let mut seeds: Vec<u32> = neighbors.into_iter().filter(|&q| q as usize != p).collect();
            let mut cursor = 0usize;
            while cursor < seeds.len() {
                let q = seeds[cursor] as usize;
                cursor += 1;
                if labels[q] == NOISE {
                    // Border point reached from a core point.
                    labels[q] = next_cluster;
                }
                if labels[q] != UNDEFINED {
                    continue;
                }
                labels[q] = next_cluster;
                let q_neighbors = engine.range(data.row(q), eps);
                range_queries += 1;
                if q_neighbors.len() >= tau {
                    seeds.extend(q_neighbors);
                }
            }
        }

        let mut clustering = Clustering::new(labels);
        // Canonicalize cluster ids to first-appearance order so that two
        // algorithms producing the same partition (e.g. DBSCAN and
        // LAF-DBSCAN with an exact estimator) also produce identical labels.
        clustering.normalize_ids();
        clustering.elapsed = start.elapsed();
        clustering.range_queries = range_queries;
        clustering.distance_evaluations = engine.distance_evaluations();
        clustering
    }
}

impl Clusterer for Dbscan {
    fn cluster(&self, data: &Dataset) -> Clustering {
        let engine = build_engine(
            self.config.engine,
            data,
            self.config.metric,
            self.config.eps,
        );
        self.cluster_with_engine(data, engine.as_ref())
    }

    fn name(&self) -> &'static str {
        "DBSCAN"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use laf_synth::EmbeddingMixtureConfig;
    use laf_vector::ops;

    /// Three tight angular clusters plus two isolated points.
    fn toy() -> Dataset {
        let mut rows = Vec::new();
        let centers = [0.0f32, 1.2, 2.4];
        for &c in &centers {
            for k in 0..5 {
                let a = c + k as f32 * 0.01;
                rows.push(vec![a.cos(), a.sin()]);
            }
        }
        rows.push(vec![(-1.0f32).cos(), (-1.0f32).sin()]);
        rows.push(vec![(-2.2f32).cos(), (-2.2f32).sin()]);
        let mut d = Dataset::from_rows(rows).unwrap();
        d.normalize();
        d
    }

    #[test]
    fn clusters_tight_groups_and_flags_noise() {
        let data = toy();
        let dbscan = Dbscan::with_params(0.01, 3);
        let result = dbscan.cluster(&data);
        assert_eq!(result.len(), 17);
        assert_eq!(result.n_clusters(), 3);
        assert_eq!(result.n_noise(), 2);
        // Points of the same planted group share a label.
        for g in 0..3 {
            let base = result.label(g * 5);
            assert!(base >= 0);
            for k in 1..5 {
                assert_eq!(result.label(g * 5 + k), base);
            }
        }
        // The two stragglers are noise.
        assert_eq!(result.label(15), NOISE);
        assert_eq!(result.label(16), NOISE);
        assert!(result.range_queries >= data.len() as u64 - 2);
        assert!(result.distance_evaluations > 0);
    }

    #[test]
    fn huge_eps_gives_one_cluster_tiny_eps_gives_all_noise() {
        let data = toy();
        let all_one = Dbscan::with_params(2.0, 3).cluster(&data);
        assert_eq!(all_one.n_clusters(), 1);
        assert_eq!(all_one.n_noise(), 0);

        let all_noise = Dbscan::with_params(1e-6, 3).cluster(&data);
        assert_eq!(all_noise.n_clusters(), 0);
        assert_eq!(all_noise.n_noise(), data.len());
    }

    #[test]
    fn min_pts_one_makes_every_point_core() {
        let data = toy();
        let result = Dbscan::with_params(0.01, 1).cluster(&data);
        assert_eq!(result.n_noise(), 0);
        assert_eq!(result.n_clusters(), 5);
    }

    #[test]
    fn engines_agree_on_the_result() {
        let (data, _) = EmbeddingMixtureConfig {
            n_points: 220,
            dim: 12,
            clusters: 5,
            noise_fraction: 0.25,
            seed: 9,
            ..Default::default()
        }
        .generate()
        .unwrap();
        let linear = Dbscan::new(DbscanConfig {
            eps: 0.25,
            min_pts: 4,
            metric: Metric::Cosine,
            engine: EngineChoice::Linear,
        })
        .cluster(&data);
        let cover = Dbscan::new(DbscanConfig {
            eps: 0.25,
            min_pts: 4,
            metric: Metric::Cosine,
            engine: EngineChoice::CoverTree { basis: 2.0 },
        })
        .cluster(&data);
        // Exact engines must produce identical partitions (cluster ids may
        // in principle differ, but the deterministic scan order makes them
        // equal here).
        assert_eq!(linear.labels(), cover.labels());
    }

    #[test]
    fn border_points_join_a_cluster() {
        // A chain: dense core of 4 points, one border point reachable from a
        // core point but itself having too few neighbors.
        let mut rows = Vec::new();
        for k in 0..4 {
            let a = k as f32 * 0.005;
            rows.push(vec![a.cos(), a.sin()]);
        }
        let border = 0.06f32;
        rows.push(vec![border.cos(), border.sin()]);
        let far = 2.0f32;
        rows.push(vec![far.cos(), far.sin()]);
        let mut data = Dataset::from_rows(rows).unwrap();
        data.normalize();
        // eps in cosine distance ≈ 1 - cos(0.05 rad) ≈ 1.25e-3 — border point
        // is within eps of the nearest core point only.
        let result = Dbscan::with_params(2.5e-3, 3).cluster(&data);
        assert_eq!(result.n_clusters(), 1);
        assert_eq!(result.label(4), result.label(0), "border point must join");
        assert_eq!(result.label(5), NOISE);
    }

    #[test]
    fn deterministic_across_runs() {
        let data = toy();
        let a = Dbscan::with_params(0.01, 3).cluster(&data);
        let b = Dbscan::with_params(0.01, 3).cluster(&data);
        assert_eq!(a.labels(), b.labels());
    }

    #[test]
    fn normalized_vectors_preserve_cosine_neighborhoods() {
        // Sanity: unit normalization leaves cosine distances intact, so the
        // clustering of scaled copies matches the clustering of originals.
        let data = toy();
        let mut scaled_rows: Vec<Vec<f32>> = data.rows().map(|r| r.to_vec()).collect();
        for r in scaled_rows.iter_mut() {
            ops::scale_in_place(r, 3.7);
        }
        let mut scaled = Dataset::from_rows(scaled_rows).unwrap();
        scaled.normalize();
        let a = Dbscan::with_params(0.01, 3).cluster(&data);
        let b = Dbscan::with_params(0.01, 3).cluster(&scaled);
        assert_eq!(a.labels(), b.labels());
    }
}
