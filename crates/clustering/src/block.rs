//! BLOCK-DBSCAN (Chen et al. 2021).
//!
//! BLOCK-DBSCAN's central observation is that any ball of radius ε/2 whose
//! population reaches τ is an **inner core block**: every pair of its members
//! is within ε of each other (triangle inequality), so all of them are core
//! points and belong to one cluster — without issuing a single per-point
//! range query. The algorithm therefore
//!
//! 1. carves the dataset into inner core blocks using cover-tree range
//!    queries of radius ε/2 (the cover tree's **basis** is the knob the paper
//!    controls, default 2, swept 1.1–5 in the trade-off study);
//! 2. merges blocks whose points come within ε of each other, bounding the
//!    pairwise search by **RNT** iterations (paper default 10);
//! 3. processes the leftover "outer" points individually, exactly like
//!    DBSCAN.
//!
//! Because cosine distance violates the triangle inequality, the ε/2
//! construction happens in Euclidean space over the unit-normalized vectors
//! (Equation (1) of the paper), mirroring how the original C++ baseline was
//! fed converted thresholds.

use crate::result::{Clusterer, Clustering, NOISE, UNDEFINED};
use laf_index::{CoverTree, RangeQueryEngine};
use laf_vector::{cosine_to_euclidean, euclidean_to_cosine, Dataset, Metric};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// BLOCK-DBSCAN parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BlockDbscanConfig {
    /// Distance threshold ε.
    pub eps: f32,
    /// Minimum number of neighbors τ.
    pub min_pts: usize,
    /// Cover tree basis (paper default 2.0).
    pub basis: f32,
    /// Maximum iterations when testing whether two blocks touch
    /// (the paper's RNT parameter, default 10).
    pub rnt: usize,
    /// Distance metric.
    pub metric: Metric,
    /// Seed for the randomized block-merge sampling.
    pub seed: u64,
}

impl Default for BlockDbscanConfig {
    fn default() -> Self {
        Self {
            eps: 0.5,
            min_pts: 3,
            basis: 2.0,
            rnt: 10,
            metric: Metric::Cosine,
            seed: 0xB10C,
        }
    }
}

impl BlockDbscanConfig {
    /// Convenience constructor with the paper's default basis and RNT.
    pub fn new(eps: f32, min_pts: usize) -> Self {
        Self {
            eps,
            min_pts,
            ..Default::default()
        }
    }
}

/// The BLOCK-DBSCAN algorithm.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BlockDbscan {
    /// Algorithm parameters.
    pub config: BlockDbscanConfig,
}

impl BlockDbscan {
    /// Create a BLOCK-DBSCAN instance.
    pub fn new(config: BlockDbscanConfig) -> Self {
        Self { config }
    }

    /// Shorthand constructor.
    pub fn with_params(eps: f32, min_pts: usize) -> Self {
        Self::new(BlockDbscanConfig::new(eps, min_pts))
    }

    /// The ε/2 threshold expressed in the configured metric: chosen so that
    /// two points both within the half-radius of a center are guaranteed to
    /// be within ε of each other.
    fn half_radius(&self) -> f32 {
        match self.config.metric {
            Metric::Euclidean => self.config.eps / 2.0,
            Metric::Angular => self.config.eps / 2.0,
            Metric::SquaredEuclidean => self.config.eps / 4.0,
            // Equation (1): d_euc = sqrt(2 d_cos); halving d_euc quarters d_cos.
            Metric::Cosine => euclidean_to_cosine(cosine_to_euclidean(self.config.eps) / 2.0),
            Metric::NegDot => {
                euclidean_to_cosine(cosine_to_euclidean(self.config.eps + 1.0) / 2.0) - 1.0
            }
        }
    }
}

/// Union-find over block / cluster ids.
struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        Self {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, x: usize) -> usize {
        if self.parent[x] != x {
            let root = self.find(self.parent[x]);
            self.parent[x] = root;
        }
        self.parent[x]
    }

    fn union(&mut self, a: usize, b: usize) {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra != rb {
            self.parent[ra] = rb;
        }
    }
}

impl Clusterer for BlockDbscan {
    fn cluster(&self, data: &Dataset) -> Clustering {
        let start = Instant::now();
        let n = data.len();
        if n == 0 {
            return Clustering::new(Vec::new());
        }
        let cfg = &self.config;
        let tree = CoverTree::new(data, cfg.metric, cfg.basis);
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut range_queries = 0u64;

        // Phase 1: carve inner core blocks with ε/2 range queries.
        let half = self.half_radius();
        let mut block_of: Vec<Option<usize>> = vec![None; n];
        let mut blocks: Vec<Vec<u32>> = Vec::new();
        let mut is_core = vec![false; n];
        for p in 0..n {
            if block_of[p].is_some() {
                continue;
            }
            let members = tree.range(data.row(p), half);
            range_queries += 1;
            if members.len() >= cfg.min_pts {
                // Every member of the half-radius ball is core.
                let block_id = blocks.len();
                let mut owned = Vec::with_capacity(members.len());
                for &m in &members {
                    let m_usize = m as usize;
                    if block_of[m_usize].is_none() {
                        block_of[m_usize] = Some(block_id);
                        owned.push(m);
                    }
                    is_core[m_usize] = true;
                }
                blocks.push(owned);
            }
        }

        // Phase 2: merge blocks that touch (some cross pair within ε).
        let mut uf = UnionFind::new(blocks.len());
        for i in 0..blocks.len() {
            for j in (i + 1)..blocks.len() {
                if uf.find(i) == uf.find(j) {
                    continue;
                }
                if blocks_touch(data, cfg, &blocks[i], &blocks[j], &mut rng) {
                    uf.union(i, j);
                }
            }
        }

        // Assign cluster ids to blocks (after union-find).
        let mut labels = vec![UNDEFINED; n];
        let mut block_cluster: Vec<i64> = vec![-1; blocks.len()];
        let mut next_cluster: i64 = -1;
        for b in 0..blocks.len() {
            let root = uf.find(b);
            if block_cluster[root] < 0 {
                next_cluster += 1;
                block_cluster[root] = next_cluster;
            }
            block_cluster[b] = block_cluster[root];
        }
        for (p, b) in block_of.iter().enumerate() {
            if let Some(b) = b {
                labels[p] = block_cluster[*b];
            }
        }

        // Phase 3: outer points — classic DBSCAN treatment with full-ε range
        // queries against the cover tree.
        for p in 0..n {
            if labels[p] != UNDEFINED {
                continue;
            }
            let neighbors = tree.range(data.row(p), cfg.eps);
            range_queries += 1;
            if neighbors.len() >= cfg.min_pts {
                is_core[p] = true;
                // Core outer point: adopt the cluster of any core neighbor,
                // otherwise open a new cluster.
                let adopted = neighbors
                    .iter()
                    .map(|&q| q as usize)
                    .find(|&q| q != p && is_core[q] && labels[q] >= 0)
                    .map(|q| labels[q]);
                let cluster = match adopted {
                    Some(c) => c,
                    None => {
                        next_cluster += 1;
                        next_cluster
                    }
                };
                labels[p] = cluster;
                // Pull in unclassified neighbors as border members.
                for &q in &neighbors {
                    let q = q as usize;
                    if labels[q] == UNDEFINED {
                        labels[q] = cluster;
                    }
                }
            } else {
                // Non-core: border if a core neighbor exists, else noise.
                let border_of = neighbors
                    .iter()
                    .map(|&q| q as usize)
                    .find(|&q| is_core[q] && labels[q] >= 0)
                    .map(|q| labels[q]);
                labels[p] = border_of.unwrap_or(NOISE);
            }
        }

        let mut clustering = Clustering::new(labels);
        clustering.normalize_ids();
        clustering.elapsed = start.elapsed();
        clustering.range_queries = range_queries;
        clustering.distance_evaluations = tree.distance_evaluations();
        clustering
    }

    fn name(&self) -> &'static str {
        "BLOCK-DBSCAN"
    }
}

/// Decide whether two inner core blocks belong to the same cluster: first
/// compare representatives, then sample up to `rnt` cross pairs.
fn blocks_touch(
    data: &Dataset,
    cfg: &BlockDbscanConfig,
    a: &[u32],
    b: &[u32],
    rng: &mut StdRng,
) -> bool {
    if a.is_empty() || b.is_empty() {
        return false;
    }
    let eps = cfg.eps;
    // Representative check: block founders (first members).
    if cfg
        .metric
        .dist(data.row(a[0] as usize), data.row(b[0] as usize))
        < eps
    {
        return true;
    }
    // Bounded random cross-pair probing (the RNT iterations of the paper).
    for _ in 0..cfg.rnt {
        let pa = a[rng.gen_range(0..a.len())] as usize;
        let pb = b[rng.gen_range(0..b.len())] as usize;
        if cfg.metric.dist(data.row(pa), data.row(pb)) < eps {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dbscan::Dbscan;
    use laf_metrics::adjusted_rand_index;
    use laf_synth::EmbeddingMixtureConfig;

    fn data() -> Dataset {
        EmbeddingMixtureConfig {
            n_points: 300,
            dim: 12,
            clusters: 5,
            spread: 0.05,
            noise_fraction: 0.2,
            seed: 83,
            ..Default::default()
        }
        .generate()
        .unwrap()
        .0
    }

    #[test]
    fn half_radius_is_consistent_with_equation_1() {
        let algo = BlockDbscan::with_params(0.5, 3);
        // cosine eps 0.5 → euclid 1.0 → half 0.5 → cosine 0.125
        assert!((algo.half_radius() - 0.125).abs() < 1e-6);
        let algo = BlockDbscan::new(BlockDbscanConfig {
            metric: Metric::Euclidean,
            eps: 0.8,
            ..Default::default()
        });
        assert!((algo.half_radius() - 0.4).abs() < 1e-6);
    }

    #[test]
    fn quality_is_close_to_dbscan() {
        let data = data();
        let truth = Dbscan::with_params(0.25, 4).cluster(&data);
        let block = BlockDbscan::with_params(0.25, 4).cluster(&data);
        let ari = adjusted_rand_index(truth.labels(), block.labels());
        assert!(ari > 0.6, "ARI {ari}");
        assert!(block.n_clusters() > 0);
    }

    #[test]
    fn inner_blocks_reduce_full_range_queries() {
        let data = data();
        let dbscan = Dbscan::with_params(0.25, 4).cluster(&data);
        let block = BlockDbscan::with_params(0.25, 4).cluster(&data);
        assert!(
            block.range_queries < dbscan.range_queries,
            "block {} vs dbscan {}",
            block.range_queries,
            dbscan.range_queries
        );
    }

    #[test]
    fn empty_dataset() {
        let empty = Dataset::new(4).unwrap();
        assert!(BlockDbscan::with_params(0.3, 3).cluster(&empty).is_empty());
    }

    #[test]
    fn deterministic_given_seed() {
        let data = data();
        let a = BlockDbscan::with_params(0.25, 4).cluster(&data);
        let b = BlockDbscan::with_params(0.25, 4).cluster(&data);
        assert_eq!(a.labels(), b.labels());
    }

    #[test]
    fn all_noise_when_tau_is_huge() {
        let data = data();
        let result = BlockDbscan::with_params(0.25, data.len() + 1).cluster(&data);
        assert_eq!(result.n_noise(), data.len());
    }
}
