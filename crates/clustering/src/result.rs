//! The [`Clustering`] result type and the [`Clusterer`] trait.

use laf_metrics::ClusteringStats;
use laf_vector::Dataset;
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Noise label (mirrors [`laf_metrics::NOISE`]).
pub const NOISE: i64 = -1;
/// Internal "not yet classified" label used while algorithms run. Finished
/// clusterings never contain it.
pub const UNDEFINED: i64 = -2;

/// The output of a clustering run: one label per input row plus bookkeeping
/// about how much work the run performed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Clustering {
    /// Per-point labels: `-1` = noise, otherwise a cluster id in `0..`.
    labels: Vec<i64>,
    /// Wall-clock time of the clustering call.
    pub elapsed: Duration,
    /// Number of ε-range queries the algorithm executed.
    pub range_queries: u64,
    /// Number of query-to-point distance evaluations performed by the
    /// underlying engine(s).
    pub distance_evaluations: u64,
    /// Number of range queries skipped thanks to cardinality estimation
    /// (always 0 for the non-LAF algorithms).
    pub skipped_range_queries: u64,
}

impl Clustering {
    /// Wrap a finished label vector.
    ///
    /// # Panics
    /// Panics (in debug builds) if any label is still [`UNDEFINED`].
    pub fn new(labels: Vec<i64>) -> Self {
        debug_assert!(
            labels.iter().all(|&l| l != UNDEFINED),
            "clustering finished with UNDEFINED labels"
        );
        Self {
            labels,
            elapsed: Duration::ZERO,
            range_queries: 0,
            distance_evaluations: 0,
            skipped_range_queries: 0,
        }
    }

    /// The per-point labels.
    pub fn labels(&self) -> &[i64] {
        &self.labels
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// `true` when the clustering covers no points.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Number of distinct non-noise clusters.
    pub fn n_clusters(&self) -> usize {
        self.stats().n_clusters
    }

    /// Number of noise points.
    pub fn n_noise(&self) -> usize {
        self.labels.iter().filter(|&&l| l == NOISE).count()
    }

    /// Summary statistics (noise ratio, cluster sizes, ...).
    pub fn stats(&self) -> ClusteringStats {
        ClusteringStats::from_labels(&self.labels)
    }

    /// Label of point `i`.
    ///
    /// # Panics
    /// Panics if `i` is out of bounds.
    pub fn label(&self, i: usize) -> i64 {
        self.labels[i]
    }

    /// Consume the clustering and return the raw labels.
    pub fn into_labels(self) -> Vec<i64> {
        self.labels
    }

    /// Renumber cluster ids to be consecutive starting at 0 (noise stays
    /// `-1`). Keeps the relative order of first appearance. Useful when an
    /// algorithm (e.g. post-processing merges) leaves gaps in the id space.
    pub fn normalize_ids(&mut self) {
        let mut remap = std::collections::HashMap::new();
        for l in self.labels.iter_mut() {
            if *l == NOISE {
                continue;
            }
            let next = remap.len() as i64;
            let id = *remap.entry(*l).or_insert(next);
            *l = id;
        }
    }
}

/// A clustering algorithm.
pub trait Clusterer {
    /// Cluster the dataset and return per-point labels.
    fn cluster(&self, data: &Dataset) -> Clustering;

    /// Short name used in reports ("DBSCAN", "LAF-DBSCAN", ...).
    fn name(&self) -> &'static str;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_accessors() {
        let c = Clustering::new(vec![0, 0, 1, -1]);
        assert_eq!(c.len(), 4);
        assert!(!c.is_empty());
        assert_eq!(c.n_clusters(), 2);
        assert_eq!(c.n_noise(), 1);
        assert_eq!(c.label(2), 1);
        assert_eq!(c.labels(), &[0, 0, 1, -1]);
        assert_eq!(c.stats().n_points, 4);
        assert_eq!(c.clone().into_labels(), vec![0, 0, 1, -1]);
    }

    #[test]
    fn normalize_ids_compacts_sparse_ids() {
        let mut c = Clustering::new(vec![7, 7, 42, -1, 3]);
        c.normalize_ids();
        assert_eq!(c.labels(), &[0, 0, 1, -1, 2]);
        assert_eq!(c.n_clusters(), 3);
        // Idempotent.
        c.normalize_ids();
        assert_eq!(c.labels(), &[0, 0, 1, -1, 2]);
    }

    #[test]
    fn empty_clustering() {
        let c = Clustering::new(vec![]);
        assert!(c.is_empty());
        assert_eq!(c.n_clusters(), 0);
        assert_eq!(c.n_noise(), 0);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "UNDEFINED")]
    fn undefined_labels_are_rejected_in_debug() {
        let _ = Clustering::new(vec![0, UNDEFINED]);
    }

    #[test]
    fn serde_round_trip() {
        let c = Clustering::new(vec![0, 1, -1]);
        let json = serde_json::to_string(&c).unwrap();
        let back: Clustering = serde_json::from_str(&json).unwrap();
        assert_eq!(c, back);
    }
}
