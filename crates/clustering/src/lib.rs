//! # laf-clustering
//!
//! Density-based clustering algorithms: the original DBSCAN (the paper's
//! ground truth) and the four approximate baselines the paper evaluates
//! against.
//!
//! | Algorithm | Paper baseline | Module |
//! |-----------|----------------|--------|
//! | DBSCAN (Ester et al. 1996) | ground truth | [`dbscan`] |
//! | DBSCAN++ (Jang & Jiang 2018) | sampling-based variant LAF also accelerates | [`dbscan_pp`] |
//! | KNN-BLOCK DBSCAN (Chen et al. 2019) | k-means-tree KNN pruning | [`knn_block`] |
//! | BLOCK-DBSCAN (Chen et al. 2021) | cover-tree inner-block pruning | [`block`] |
//! | ρ-approximate DBSCAN (Gan & Tao 2015/2017) | grid-based approximation | [`rho_approx`] |
//!
//! All of them consume data through [`laf_vector::Dataset`], search neighbors
//! through [`laf_index`] engines and produce a [`Clustering`], so the LAF
//! layer (crate `laf-core`) and the benchmark harness can treat them
//! uniformly through the [`Clusterer`] trait.

#![warn(missing_docs)]

pub mod block;
pub mod dbscan;
pub mod dbscan_pp;
pub mod knn_block;
pub mod result;
pub mod rho_approx;

pub use block::{BlockDbscan, BlockDbscanConfig};
pub use dbscan::{Dbscan, DbscanConfig};
pub use dbscan_pp::{DbscanPlusPlus, DbscanPlusPlusConfig};
pub use knn_block::{KnnBlockDbscan, KnnBlockDbscanConfig};
pub use result::{Clusterer, Clustering, NOISE, UNDEFINED};
pub use rho_approx::{RhoApproxDbscan, RhoApproxDbscanConfig};
