//! DBSCAN++ (Jang & Jiang 2018) — the sampling-based variant LAF also
//! accelerates.
//!
//! DBSCAN++ samples a fraction `p` of the points, determines which of the
//! *sampled* points are core **with respect to the entire dataset**, grows
//! clusters over those sampled core points, and finally assigns every
//! remaining unclassified point to the cluster of its closest core point
//! (within ε; points with no core point within ε stay noise). Only the
//! sampled points pay for range queries, which is where the speedup comes
//! from; the quality loss comes from core points outside the sample being
//! invisible to the cluster-growing phase.

use crate::result::{Clusterer, Clustering, NOISE, UNDEFINED};
use laf_index::{build_engine, EngineChoice, RangeQueryEngine};
use laf_vector::{Dataset, Metric};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// DBSCAN++ parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DbscanPlusPlusConfig {
    /// Distance threshold ε.
    pub eps: f32,
    /// Minimum number of neighbors τ.
    pub min_pts: usize,
    /// Fraction of points sampled into the subset, in `(0, 1]`. The paper
    /// sets `p = δ + R_c` where `R_c` is the predicted core-point ratio and
    /// δ ∈ [0.1, 0.3]; the resulting values land in 0.2–0.6.
    pub sample_fraction: f64,
    /// Distance metric.
    pub metric: Metric,
    /// Range-query engine.
    pub engine: EngineChoice,
    /// Sampling seed.
    pub seed: u64,
}

impl Default for DbscanPlusPlusConfig {
    fn default() -> Self {
        Self {
            eps: 0.5,
            min_pts: 3,
            sample_fraction: 0.3,
            metric: Metric::Cosine,
            engine: EngineChoice::Linear,
            seed: 0xDB5C,
        }
    }
}

impl DbscanPlusPlusConfig {
    /// Convenience constructor.
    pub fn new(eps: f32, min_pts: usize, sample_fraction: f64) -> Self {
        Self {
            eps,
            min_pts,
            sample_fraction,
            ..Default::default()
        }
    }
}

/// The DBSCAN++ algorithm.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DbscanPlusPlus {
    /// Algorithm parameters.
    pub config: DbscanPlusPlusConfig,
}

impl DbscanPlusPlus {
    /// Create a DBSCAN++ instance.
    pub fn new(config: DbscanPlusPlusConfig) -> Self {
        Self { config }
    }

    /// Shorthand constructor.
    pub fn with_params(eps: f32, min_pts: usize, sample_fraction: f64) -> Self {
        Self::new(DbscanPlusPlusConfig::new(eps, min_pts, sample_fraction))
    }

    /// The sampled subset used for core detection (exposed so LAF-DBSCAN++
    /// can reuse exactly the same subset selection logic).
    pub fn sample_indices(&self, n: usize) -> Vec<usize> {
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let mut indices: Vec<usize> = (0..n).collect();
        indices.shuffle(&mut rng);
        let keep = ((n as f64) * self.config.sample_fraction.clamp(0.0, 1.0)).round() as usize;
        indices.truncate(keep.max(1).min(n));
        indices.sort_unstable();
        indices
    }

    /// Run DBSCAN++ with an externally constructed engine.
    pub fn cluster_with_engine(&self, data: &Dataset, engine: &dyn RangeQueryEngine) -> Clustering {
        let start = Instant::now();
        let n = data.len();
        if n == 0 {
            return Clustering::new(Vec::new());
        }
        let eps = self.config.eps;
        let tau = self.config.min_pts;
        let mut range_queries = 0u64;

        // Phase 1: core detection within the sample, w.r.t. the whole dataset.
        let sample = self.sample_indices(n);
        let mut core_points: Vec<usize> = Vec::new();
        let mut core_neighbors: Vec<Vec<u32>> = Vec::new();
        for &s in &sample {
            let neighbors = engine.range(data.row(s), eps);
            range_queries += 1;
            if neighbors.len() >= tau {
                core_points.push(s);
                core_neighbors.push(neighbors);
            }
        }

        // Phase 2: grow clusters over the sampled core points. Two core
        // points share a cluster when one lies in the other's ε-neighborhood.
        let mut labels = vec![UNDEFINED; n];
        let mut core_slot: Vec<Option<usize>> = vec![None; n];
        for (slot, &c) in core_points.iter().enumerate() {
            core_slot[c] = Some(slot);
        }
        let mut next_cluster: i64 = -1;
        for (slot, &c) in core_points.iter().enumerate() {
            if labels[c] != UNDEFINED {
                continue;
            }
            next_cluster += 1;
            // BFS over core points connected through ε-neighborhoods.
            let mut queue = vec![slot];
            labels[c] = next_cluster;
            while let Some(cur_slot) = queue.pop() {
                for &nb in &core_neighbors[cur_slot] {
                    let nb = nb as usize;
                    if let Some(nb_slot) = core_slot[nb] {
                        if labels[nb] == UNDEFINED {
                            labels[nb] = next_cluster;
                            queue.push(nb_slot);
                        }
                    }
                }
            }
        }

        // Phase 3: every other point joins the cluster of its closest core
        // point within ε (this is also where non-core sampled points and
        // unsampled points get their labels); otherwise it is noise.
        for p in 0..n {
            if labels[p] != UNDEFINED {
                continue;
            }
            let row = data.row(p);
            let mut best: Option<(f32, i64)> = None;
            for &c in &core_points {
                let d = self.config.metric.dist(row, data.row(c));
                if d < eps {
                    match best {
                        Some((bd, _)) if bd <= d => {}
                        _ => best = Some((d, labels[c])),
                    }
                }
            }
            labels[p] = best.map(|(_, l)| l).unwrap_or(NOISE);
        }

        let mut clustering = Clustering::new(labels);
        clustering.elapsed = start.elapsed();
        clustering.range_queries = range_queries;
        clustering.distance_evaluations = engine.distance_evaluations();
        clustering
    }
}

impl Clusterer for DbscanPlusPlus {
    fn cluster(&self, data: &Dataset) -> Clustering {
        let engine = build_engine(
            self.config.engine,
            data,
            self.config.metric,
            self.config.eps,
        );
        self.cluster_with_engine(data, engine.as_ref())
    }

    fn name(&self) -> &'static str {
        "DBSCAN++"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dbscan::Dbscan;
    use laf_metrics::adjusted_rand_index;
    use laf_synth::EmbeddingMixtureConfig;

    fn data() -> Dataset {
        EmbeddingMixtureConfig {
            n_points: 300,
            dim: 12,
            clusters: 5,
            spread: 0.05,
            noise_fraction: 0.2,
            seed: 61,
            ..Default::default()
        }
        .generate()
        .unwrap()
        .0
    }

    #[test]
    fn sample_indices_respect_fraction_and_are_unique() {
        let algo = DbscanPlusPlus::with_params(0.3, 4, 0.25);
        let idx = algo.sample_indices(200);
        assert_eq!(idx.len(), 50);
        let mut sorted = idx.clone();
        sorted.dedup();
        assert_eq!(sorted.len(), idx.len());
        assert!(idx.iter().all(|&i| i < 200));
        // Degenerate fractions are clamped to at least one point.
        let tiny = DbscanPlusPlus::with_params(0.3, 4, 0.0);
        assert_eq!(tiny.sample_indices(10).len(), 1);
        let full = DbscanPlusPlus::with_params(0.3, 4, 1.0);
        assert_eq!(full.sample_indices(10).len(), 10);
    }

    #[test]
    fn full_sample_fraction_approximates_dbscan_closely() {
        let data = data();
        let truth = Dbscan::with_params(0.25, 4).cluster(&data);
        let pp = DbscanPlusPlus::with_params(0.25, 4, 1.0).cluster(&data);
        let ari = adjusted_rand_index(truth.labels(), pp.labels());
        assert!(ari > 0.9, "ARI {ari} too low for p=1.0");
    }

    #[test]
    fn moderate_sample_keeps_reasonable_quality_with_fewer_queries() {
        let data = data();
        let truth = Dbscan::with_params(0.25, 4).cluster(&data);
        let pp = DbscanPlusPlus::with_params(0.25, 4, 0.4).cluster(&data);
        let ari = adjusted_rand_index(truth.labels(), pp.labels());
        assert!(ari > 0.5, "ARI {ari} too low for p=0.4");
        assert!(
            pp.range_queries < truth.range_queries,
            "sampling must issue fewer range queries ({} vs {})",
            pp.range_queries,
            truth.range_queries
        );
    }

    #[test]
    fn empty_dataset_is_handled() {
        let empty = Dataset::new(4).unwrap();
        let result = DbscanPlusPlus::with_params(0.3, 3, 0.5).cluster(&empty);
        assert!(result.is_empty());
    }

    #[test]
    fn deterministic_given_seed() {
        let data = data();
        let a = DbscanPlusPlus::with_params(0.25, 4, 0.3).cluster(&data);
        let b = DbscanPlusPlus::with_params(0.25, 4, 0.3).cluster(&data);
        assert_eq!(a.labels(), b.labels());
        let mut cfg = DbscanPlusPlusConfig::new(0.25, 4, 0.3);
        cfg.seed = 777;
        let c = DbscanPlusPlus::new(cfg).cluster(&data);
        // A different sample may (and generally does) change some labels.
        assert_eq!(c.len(), a.len());
    }

    #[test]
    fn no_core_points_means_all_noise() {
        let data = data();
        // τ larger than the dataset: nothing can be core.
        let result = DbscanPlusPlus::with_params(0.25, data.len() + 1, 0.5).cluster(&data);
        assert_eq!(result.n_noise(), data.len());
        assert_eq!(result.n_clusters(), 0);
    }
}
