//! KNN-BLOCK DBSCAN (Chen et al. 2019).
//!
//! KNN-BLOCK DBSCAN avoids full range queries by answering **approximate
//! k-nearest-neighbor** queries with a FLANN-style k-means tree: a point is
//! core exactly when its τ-th nearest neighbor lies within ε, so a kNN query
//! with `k = τ` decides core-ness while visiting only a fraction of the
//! leaves. Clusters are then grown from the core points using the same
//! (approximate) index. The two knobs the paper tunes — the tree's
//! **branching factor** (10) and the **ratio of leaves to check** (0.6) —
//! control the accuracy/speed trade-off exactly as in the original.
//!
//! This is a faithful-in-spirit re-implementation of the published algorithm
//! on our common engine substrate; the original's finer-grained block
//! bookkeeping (merging whole FLANN blocks at once) is subsumed by the
//! per-point expansion below, which produces the same kind of approximation
//! (missed neighbors in unvisited leaves) the paper's baseline exhibits.

use crate::result::{Clusterer, Clustering, NOISE, UNDEFINED};
use laf_index::{KMeansTree, RangeQueryEngine};
use laf_vector::{Dataset, Metric};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// KNN-BLOCK DBSCAN parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KnnBlockDbscanConfig {
    /// Distance threshold ε.
    pub eps: f32,
    /// Minimum number of neighbors τ.
    pub min_pts: usize,
    /// Branching factor of the k-means tree (paper default 10).
    pub branching: usize,
    /// Fraction of tree leaves each query inspects (paper default 0.6).
    pub leaf_ratio: f64,
    /// Distance metric.
    pub metric: Metric,
    /// Tree construction seed.
    pub seed: u64,
}

impl Default for KnnBlockDbscanConfig {
    fn default() -> Self {
        Self {
            eps: 0.5,
            min_pts: 3,
            branching: 10,
            leaf_ratio: 0.6,
            metric: Metric::Cosine,
            seed: 0x5EED,
        }
    }
}

impl KnnBlockDbscanConfig {
    /// Convenience constructor using the paper's default tree parameters.
    pub fn new(eps: f32, min_pts: usize) -> Self {
        Self {
            eps,
            min_pts,
            ..Default::default()
        }
    }
}

/// The KNN-BLOCK DBSCAN algorithm.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KnnBlockDbscan {
    /// Algorithm parameters.
    pub config: KnnBlockDbscanConfig,
}

impl KnnBlockDbscan {
    /// Create a KNN-BLOCK DBSCAN instance.
    pub fn new(config: KnnBlockDbscanConfig) -> Self {
        Self { config }
    }

    /// Shorthand constructor with the paper's default tree parameters.
    pub fn with_params(eps: f32, min_pts: usize) -> Self {
        Self::new(KnnBlockDbscanConfig::new(eps, min_pts))
    }
}

impl Clusterer for KnnBlockDbscan {
    fn cluster(&self, data: &Dataset) -> Clustering {
        let start = Instant::now();
        let n = data.len();
        if n == 0 {
            return Clustering::new(Vec::new());
        }
        let cfg = &self.config;
        let tree = KMeansTree::new(data, cfg.metric, cfg.branching, cfg.leaf_ratio, cfg.seed);
        let mut range_queries = 0u64;

        // Phase 1: approximate core detection via kNN with k = τ.
        let mut is_core = vec![false; n];
        for (p, core) in is_core.iter_mut().enumerate() {
            let knn = tree.knn(data.row(p), cfg.min_pts);
            range_queries += 1;
            if knn.len() >= cfg.min_pts && knn.last().map(|nb| nb.dist < cfg.eps).unwrap_or(false) {
                *core = true;
            }
        }

        // Phase 2: grow clusters from core points with approximate range
        // queries; border points are labeled when first reached.
        let mut labels = vec![UNDEFINED; n];
        let mut next_cluster: i64 = -1;
        for p in 0..n {
            if !is_core[p] || labels[p] != UNDEFINED {
                continue;
            }
            next_cluster += 1;
            labels[p] = next_cluster;
            let mut queue = vec![p];
            while let Some(cur) = queue.pop() {
                let neighbors = tree.range(data.row(cur), cfg.eps);
                range_queries += 1;
                for &nb in &neighbors {
                    let nb = nb as usize;
                    if labels[nb] == UNDEFINED || labels[nb] == NOISE {
                        labels[nb] = next_cluster;
                        if is_core[nb] {
                            queue.push(nb);
                        }
                    }
                }
            }
        }

        // Everything never reached is noise.
        for l in labels.iter_mut() {
            if *l == UNDEFINED {
                *l = NOISE;
            }
        }

        let mut clustering = Clustering::new(labels);
        clustering.elapsed = start.elapsed();
        clustering.range_queries = range_queries;
        clustering.distance_evaluations = tree.distance_evaluations();
        clustering
    }

    fn name(&self) -> &'static str {
        "KNN-BLOCK"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dbscan::Dbscan;
    use laf_metrics::adjusted_rand_index;
    use laf_synth::EmbeddingMixtureConfig;

    fn data() -> Dataset {
        EmbeddingMixtureConfig {
            n_points: 300,
            dim: 12,
            clusters: 5,
            spread: 0.05,
            noise_fraction: 0.2,
            seed: 71,
            ..Default::default()
        }
        .generate()
        .unwrap()
        .0
    }

    #[test]
    fn full_leaf_budget_matches_dbscan_well() {
        let data = data();
        let truth = Dbscan::with_params(0.25, 4).cluster(&data);
        let approx = KnnBlockDbscan::new(KnnBlockDbscanConfig {
            eps: 0.25,
            min_pts: 4,
            leaf_ratio: 1.0,
            ..Default::default()
        })
        .cluster(&data);
        let ari = adjusted_rand_index(truth.labels(), approx.labels());
        assert!(ari > 0.9, "ARI {ari}");
    }

    #[test]
    fn paper_defaults_give_reasonable_quality() {
        let data = data();
        let truth = Dbscan::with_params(0.25, 4).cluster(&data);
        let approx = KnnBlockDbscan::with_params(0.25, 4).cluster(&data);
        let ari = adjusted_rand_index(truth.labels(), approx.labels());
        assert!(ari > 0.5, "ARI {ari}");
        assert!(approx.n_clusters() > 0);
    }

    #[test]
    fn tiny_leaf_ratio_degrades_but_does_not_crash() {
        let data = data();
        let approx = KnnBlockDbscan::new(KnnBlockDbscanConfig {
            eps: 0.25,
            min_pts: 4,
            leaf_ratio: 0.01,
            ..Default::default()
        })
        .cluster(&data);
        assert_eq!(approx.len(), data.len());
        // With almost no leaves visited most points cannot prove core-ness.
        assert!(approx.n_noise() > 0);
    }

    #[test]
    fn empty_dataset() {
        let empty = Dataset::new(4).unwrap();
        let result = KnnBlockDbscan::with_params(0.3, 3).cluster(&empty);
        assert!(result.is_empty());
    }

    #[test]
    fn deterministic_given_seed() {
        let data = data();
        let a = KnnBlockDbscan::with_params(0.25, 4).cluster(&data);
        let b = KnnBlockDbscan::with_params(0.25, 4).cluster(&data);
        assert_eq!(a.labels(), b.labels());
    }
}
