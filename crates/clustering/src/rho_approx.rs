//! ρ-approximate DBSCAN (Gan & Tao, SIGMOD 2015 / TODS 2017).
//!
//! The algorithm buckets points into a grid with cell side `ε/√d` (so any two
//! points sharing a cell are within ε of each other) and relaxes the density
//! predicate by an approximation factor ρ: when counting a point's neighbors,
//! points at distance between ε and ε(1+ρ) **may or may not** be counted. The
//! grid makes this extremely fast in 2–3 dimensions — and hopeless in high
//! dimensions, where nearly every point occupies its own cell and the
//! per-query cell bookkeeping outweighs the naive scan. The paper's Table 4
//! documents exactly that inversion (ρ-approximate DBSCAN is 2–4× *slower*
//! than plain DBSCAN on the MS MARCO embeddings even with ρ inflated to 1.0),
//! which is why the method is excluded from the rest of its evaluation.
//!
//! The implementation below keeps the published semantics: same-cell points
//! are counted without distance computations, cells entirely beyond ε(1+ρ)
//! are skipped, cells entirely within ε(1+ρ) are counted wholesale (this is
//! where the ρ-approximation enters), and only straddling cells pay for exact
//! distances. Cosine thresholds are converted through Equation (1).

use crate::result::{Clusterer, Clustering, NOISE, UNDEFINED};
use laf_vector::distance::DistanceMetric;
use laf_vector::{cosine_to_euclidean, Dataset, EuclideanDistance, Metric};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::time::Instant;

/// ρ-approximate DBSCAN parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RhoApproxDbscanConfig {
    /// Distance threshold ε.
    pub eps: f32,
    /// Minimum number of neighbors τ.
    pub min_pts: usize,
    /// Approximation factor ρ > 0 (the paper sets 1.0 in its evaluation to
    /// give the method the best possible speed).
    pub rho: f32,
    /// Distance metric.
    pub metric: Metric,
}

impl Default for RhoApproxDbscanConfig {
    fn default() -> Self {
        Self {
            eps: 0.5,
            min_pts: 3,
            rho: 1.0,
            metric: Metric::Cosine,
        }
    }
}

impl RhoApproxDbscanConfig {
    /// Convenience constructor with the paper's ρ = 1.0.
    pub fn new(eps: f32, min_pts: usize) -> Self {
        Self {
            eps,
            min_pts,
            ..Default::default()
        }
    }
}

/// The ρ-approximate DBSCAN algorithm.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RhoApproxDbscan {
    /// Algorithm parameters.
    pub config: RhoApproxDbscanConfig,
}

impl RhoApproxDbscan {
    /// Create a ρ-approximate DBSCAN instance.
    pub fn new(config: RhoApproxDbscanConfig) -> Self {
        Self { config }
    }

    /// Shorthand constructor (ρ = 1.0, cosine metric).
    pub fn with_params(eps: f32, min_pts: usize) -> Self {
        Self::new(RhoApproxDbscanConfig::new(eps, min_pts))
    }

    fn eps_euclidean(&self) -> f32 {
        match self.config.metric {
            Metric::Euclidean => self.config.eps,
            Metric::SquaredEuclidean => self.config.eps.max(0.0).sqrt(),
            Metric::Cosine => cosine_to_euclidean(self.config.eps),
            Metric::Angular => {
                let d_cos = 1.0 - (self.config.eps.clamp(0.0, 1.0) * std::f32::consts::PI).cos();
                cosine_to_euclidean(d_cos)
            }
            Metric::NegDot => cosine_to_euclidean(self.config.eps + 1.0),
        }
    }
}

/// The ε-grid used internally.
struct Grid {
    cell_side: f32,
    cells: Vec<(Vec<i16>, Vec<u32>)>,
}

impl Grid {
    fn build(data: &Dataset, cell_side: f32) -> Self {
        let mut lookup: HashMap<Vec<i16>, usize> = HashMap::new();
        let mut cells: Vec<(Vec<i16>, Vec<u32>)> = Vec::new();
        for (i, row) in data.rows().enumerate() {
            let coords = Self::quantize(row, cell_side);
            match lookup.get(&coords) {
                Some(&id) => cells[id].1.push(i as u32),
                None => {
                    lookup.insert(coords.clone(), cells.len());
                    cells.push((coords, vec![i as u32]));
                }
            }
        }
        Self { cell_side, cells }
    }

    fn quantize(v: &[f32], cell_side: f32) -> Vec<i16> {
        v.iter()
            .map(|&x| {
                (x / cell_side)
                    .floor()
                    .clamp(i16::MIN as f32, i16::MAX as f32) as i16
            })
            .collect()
    }

    /// Minimum and maximum possible Euclidean distance from `q` to the cell's
    /// bounding box.
    fn box_bounds(&self, q: &[f32], coords: &[i16]) -> (f32, f32) {
        let mut min_sq = 0.0f32;
        let mut max_sq = 0.0f32;
        for (d, &c) in coords.iter().enumerate() {
            let lo = c as f32 * self.cell_side;
            let hi = lo + self.cell_side;
            let x = q[d];
            let gap = if x < lo {
                lo - x
            } else if x > hi {
                x - hi
            } else {
                0.0
            };
            min_sq += gap * gap;
            let far = (x - lo).abs().max((x - hi).abs());
            max_sq += far * far;
        }
        (min_sq.sqrt(), max_sq.sqrt())
    }
}

/// Result of one approximate neighborhood probe.
struct Probe {
    /// Neighbors found (approximate: may include points up to ε(1+ρ) away).
    neighbors: Vec<u32>,
    /// Distance evaluations spent.
    evaluations: u64,
}

fn probe(data: &Dataset, grid: &Grid, q: &[f32], eps: f32, rho: f32) -> Probe {
    let eps_hi = eps * (1.0 + rho.max(0.0));
    let mut neighbors = Vec::new();
    let mut evaluations = 0u64;
    for (coords, points) in &grid.cells {
        let (lo, hi) = grid.box_bounds(q, coords);
        if lo >= eps_hi {
            continue;
        }
        if hi < eps_hi && lo < eps {
            // Whole cell accepted under the ρ-approximate relaxation.
            neighbors.extend_from_slice(points);
            continue;
        }
        for &p in points {
            evaluations += 1;
            if EuclideanDistance.dist(q, data.row(p as usize)) < eps {
                neighbors.push(p);
            }
        }
    }
    Probe {
        neighbors,
        evaluations,
    }
}

impl Clusterer for RhoApproxDbscan {
    fn cluster(&self, data: &Dataset) -> Clustering {
        let start = Instant::now();
        let n = data.len();
        if n == 0 {
            return Clustering::new(Vec::new());
        }
        let eps_euc = self.eps_euclidean();
        let rho = self.config.rho;
        let tau = self.config.min_pts;
        let cell_side = eps_euc / (data.dim() as f32).sqrt();
        let grid = Grid::build(data, cell_side.max(1e-6));

        let mut labels = vec![UNDEFINED; n];
        let mut range_queries = 0u64;
        let mut evaluations = 0u64;

        for p in 0..n {
            if labels[p] != UNDEFINED {
                continue;
            }
            let first = probe(data, &grid, data.row(p), eps_euc, rho);
            range_queries += 1;
            evaluations += first.evaluations;
            if first.neighbors.len() < tau {
                labels[p] = NOISE;
                continue;
            }
            let cluster = labels
                .iter()
                .filter(|&&l| l >= 0)
                .max()
                .map_or(0, |m| m + 1);
            labels[p] = cluster;
            let mut seeds: Vec<u32> = first
                .neighbors
                .into_iter()
                .filter(|&q| q as usize != p)
                .collect();
            let mut cursor = 0usize;
            while cursor < seeds.len() {
                let q = seeds[cursor] as usize;
                cursor += 1;
                if labels[q] == NOISE {
                    labels[q] = cluster;
                }
                if labels[q] != UNDEFINED {
                    continue;
                }
                labels[q] = cluster;
                let next = probe(data, &grid, data.row(q), eps_euc, rho);
                range_queries += 1;
                evaluations += next.evaluations;
                if next.neighbors.len() >= tau {
                    seeds.extend(next.neighbors);
                }
            }
        }

        let mut clustering = Clustering::new(labels);
        clustering.normalize_ids();
        clustering.elapsed = start.elapsed();
        clustering.range_queries = range_queries;
        clustering.distance_evaluations = evaluations;
        clustering
    }

    fn name(&self) -> &'static str {
        "rho-approx-DBSCAN"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dbscan::Dbscan;
    use laf_metrics::adjusted_rand_index;
    use laf_synth::EmbeddingMixtureConfig;

    fn data(dim: usize) -> Dataset {
        EmbeddingMixtureConfig {
            n_points: 250,
            dim,
            clusters: 5,
            spread: 0.05,
            noise_fraction: 0.2,
            seed: 97,
            ..Default::default()
        }
        .generate()
        .unwrap()
        .0
    }

    #[test]
    fn rho_zero_matches_dbscan_exactly() {
        let data = data(8);
        let truth = Dbscan::with_params(0.25, 4).cluster(&data);
        let approx = RhoApproxDbscan::new(RhoApproxDbscanConfig {
            eps: 0.25,
            min_pts: 4,
            rho: 0.0,
            metric: Metric::Cosine,
        })
        .cluster(&data);
        // With ρ = 0 every cell must be checked exactly, so the result is
        // identical to DBSCAN up to cluster numbering.
        let ari = adjusted_rand_index(truth.labels(), approx.labels());
        assert!(ari > 0.999, "ARI {ari}");
    }

    #[test]
    fn larger_rho_relaxes_the_density_predicate() {
        // The paper inflates ρ to 1.0 purely for speed and does not report
        // the method's quality (Table 4 only compares runtimes); with such a
        // coarse relaxation clusters merge aggressively. The invariant we can
        // assert is that quality is monotone: ρ = 0 is exact, larger ρ can
        // only do worse (or equal), and the run still labels every point.
        let data = data(8);
        let truth = Dbscan::with_params(0.25, 4).cluster(&data);
        let exact = RhoApproxDbscan::new(RhoApproxDbscanConfig {
            eps: 0.25,
            min_pts: 4,
            rho: 0.0,
            metric: Metric::Cosine,
        })
        .cluster(&data);
        let relaxed = RhoApproxDbscan::with_params(0.25, 4).cluster(&data);
        assert_eq!(relaxed.len(), data.len());
        assert!(relaxed.n_clusters() >= 1);
        let ari_exact = adjusted_rand_index(truth.labels(), exact.labels());
        let ari_relaxed = adjusted_rand_index(truth.labels(), relaxed.labels());
        assert!(
            ari_exact >= ari_relaxed - 1e-9,
            "exact {ari_exact} vs relaxed {ari_relaxed}"
        );
    }

    #[test]
    fn high_dimension_costs_more_distance_work_than_dbscan() {
        // The Table 4 effect: per distance-evaluation bookkeeping the grid
        // saves nothing in high dimension while paying cell overhead.
        let data = data(32);
        let dbscan = Dbscan::with_params(0.3, 4).cluster(&data);
        let approx = RhoApproxDbscan::with_params(0.3, 4).cluster(&data);
        assert!(
            approx.distance_evaluations as f64 > 0.5 * dbscan.distance_evaluations as f64,
            "grid should not be able to prune much in high dimension ({} vs {})",
            approx.distance_evaluations,
            dbscan.distance_evaluations
        );
    }

    #[test]
    fn empty_dataset() {
        let empty = Dataset::new(4).unwrap();
        assert!(RhoApproxDbscan::with_params(0.3, 3)
            .cluster(&empty)
            .is_empty());
    }

    #[test]
    fn deterministic() {
        let data = data(8);
        let a = RhoApproxDbscan::with_params(0.25, 4).cluster(&data);
        let b = RhoApproxDbscan::with_params(0.25, 4).cluster(&data);
        assert_eq!(a.labels(), b.labels());
    }

    #[test]
    fn tiny_eps_is_all_noise() {
        let data = data(8);
        let result = RhoApproxDbscan::with_params(1e-6, 3).cluster(&data);
        assert_eq!(result.n_noise(), data.len());
    }
}
