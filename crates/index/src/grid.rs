//! ε-grid index (the ρ-approximate DBSCAN substrate).
//!
//! Gan & Tao's ρ-approximate DBSCAN buckets points into a grid whose cell
//! side is proportional to ε; core status and cluster connectivity are then
//! resolved cell-by-cell. The construction is extremely effective in 2–3
//! dimensions but degrades badly as dimensionality grows — the number of
//! non-empty cells approaches the number of points and almost every pair of
//! cells must still be examined — which is exactly why the paper's Table 4
//! finds ρ-approximate DBSCAN *slower than plain DBSCAN* on 768-dimensional
//! embeddings. This module reproduces that behaviour honestly: the grid is
//! exact (range queries prune with per-cell bounding boxes) and the overhead
//! it pays in high dimension is the overhead the paper measured.
//!
//! Like the cover tree, the grid operates internally in Euclidean space over
//! the normalized vectors and converts cosine thresholds via Equation (1).

use crate::engine::{KernelMode, Neighbor, RangeQueryEngine, TotalDist};
use crate::persist::{PersistError, PersistedCell, PersistedEngine, PersistedGrid};
use laf_vector::distance::DistanceMetric;
use laf_vector::EuclideanDistance;
use laf_vector::{cosine_to_euclidean, euclidean_to_cosine, Dataset, Metric, MetricKernel};
use rayon::prelude::*;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Queries per cache block in the batched kernels: every populated cell's
/// bounding box and point list is visited once per block instead of once per
/// query. See `laf_index::linear` for the same technique on the flat scan.
const QUERY_BLOCK: usize = 16;

/// Smallest usable cell side length (internal Euclidean units).
///
/// This is the **single** degenerate-cell-side guard of the grid engine:
/// [`GridIndex::new`] clamps any non-finite or smaller requested side up to
/// this value, and [`crate::engine::build_engine`] passes its
/// `eps_hint * cell_side` product through unguarded so the clamp applied here
/// is the only one. A clamped side still yields a correct (merely
/// finer-than-requested) grid; it never silently swaps in a coarser geometry.
pub const MIN_CELL_SIDE: f32 = 1e-6;

/// A populated grid cell.
#[derive(Debug)]
struct Cell {
    /// Quantized coordinates of the cell (one entry per dimension).
    coords: Vec<i32>,
    /// Dataset rows falling in this cell.
    points: Vec<u32>,
}

/// Exact grid index with bounding-box pruning.
pub struct GridIndex<'a> {
    data: &'a Dataset,
    metric: Metric,
    /// Cell side length in internal Euclidean space.
    cell_side: f32,
    cells: Vec<Cell>,
    /// Map from quantized coordinates to position in `cells`.
    lookup: HashMap<Vec<i32>, u32>,
    /// Candidate verification runs in the internal Euclidean space, so the
    /// specialized kernel is always the Euclidean one regardless of the
    /// public metric.
    verify_kernel: MetricKernel,
    mode: KernelMode,
    evaluations: AtomicU64,
}

impl<'a> GridIndex<'a> {
    /// Build a grid with the given cell side length (internal Euclidean
    /// units). Gan & Tao use `ε/√d`; [`crate::engine::build_engine`] computes
    /// the side from its `eps_hint`. Sides below [`MIN_CELL_SIDE`] (or
    /// non-finite) are clamped up to it — see the constant's documentation.
    pub fn new(data: &'a Dataset, metric: Metric, cell_side: f32) -> Self {
        Self::with_kernel_mode(data, metric, cell_side, KernelMode::default())
    }

    /// [`GridIndex::new`] with an explicit [`KernelMode`] for the candidate
    /// verification loops.
    pub fn with_kernel_mode(
        data: &'a Dataset,
        metric: Metric,
        cell_side: f32,
        mode: KernelMode,
    ) -> Self {
        let cell_side = if cell_side.is_finite() && cell_side >= MIN_CELL_SIDE {
            cell_side
        } else {
            MIN_CELL_SIDE
        };
        let mut lookup: HashMap<Vec<i32>, u32> = HashMap::new();
        let mut cells: Vec<Cell> = Vec::new();
        for (i, row) in data.rows().enumerate() {
            let coords = quantize(row, cell_side);
            match lookup.get(&coords) {
                Some(&cell_id) => cells[cell_id as usize].points.push(i as u32),
                None => {
                    let cell_id = cells.len() as u32;
                    lookup.insert(coords.clone(), cell_id);
                    cells.push(Cell {
                        coords,
                        points: vec![i as u32],
                    });
                }
            }
        }
        Self {
            data,
            metric,
            cell_side,
            cells,
            lookup,
            verify_kernel: MetricKernel::new(Metric::Euclidean),
            mode,
            evaluations: AtomicU64::new(0),
        }
    }

    /// The kernel mode the verification loops run on.
    pub fn kernel_mode(&self) -> KernelMode {
        self.mode
    }

    /// Rebuild a grid from a [persisted structure](PersistedGrid) without
    /// re-quantizing any row: only the coordinate→cell lookup map is
    /// reconstructed (a hash insert per cell). The caller is expected to have
    /// [validated](PersistedEngine::validate) the structure against `data`;
    /// this constructor re-checks nothing beyond what it touches.
    ///
    /// # Errors
    /// Returns [`PersistError`] when two cells share coordinates (the lookup
    /// map would silently drop one).
    pub fn from_persisted(data: &'a Dataset, p: &PersistedGrid) -> Result<Self, PersistError> {
        let mut lookup: HashMap<Vec<i32>, u32> = HashMap::with_capacity(p.cells.len());
        let mut cells: Vec<Cell> = Vec::with_capacity(p.cells.len());
        for cell in &p.cells {
            let cell_id = cells.len() as u32;
            if lookup.insert(cell.coords.clone(), cell_id).is_some() {
                return Err(PersistError::new(
                    "grid holds two cells with identical coordinates",
                ));
            }
            cells.push(Cell {
                coords: cell.coords.clone(),
                points: cell.points.clone(),
            });
        }
        Ok(Self {
            data,
            metric: p.metric,
            cell_side: p.cell_side,
            cells,
            lookup,
            verify_kernel: MetricKernel::new(Metric::Euclidean),
            mode: KernelMode::default(),
            evaluations: AtomicU64::new(0),
        })
    }

    /// Number of non-empty cells (diagnostics: in high dimension this
    /// approaches the number of points, which is the degradation the paper's
    /// Table 4 demonstrates).
    pub fn cell_count(&self) -> usize {
        self.cells.len()
    }

    /// Cell side length in internal Euclidean units.
    pub fn cell_side(&self) -> f32 {
        self.cell_side
    }

    /// All points sharing the query's cell (the "same cell" primitive of
    /// ρ-approximate DBSCAN: those points are within `ε√d` of each other by
    /// construction).
    pub fn cell_mates(&self, q: &[f32]) -> &[u32] {
        let coords = quantize(q, self.cell_side);
        match self.lookup.get(&coords) {
            Some(&cell_id) => &self.cells[cell_id as usize].points,
            None => &[],
        }
    }

    fn eps_to_internal(&self, eps: f32) -> f32 {
        match self.metric {
            Metric::Euclidean => eps,
            Metric::SquaredEuclidean => eps.max(0.0).sqrt(),
            Metric::Cosine => cosine_to_euclidean(eps),
            Metric::Angular => {
                let d_cos = 1.0 - (eps.clamp(0.0, 1.0) * std::f32::consts::PI).cos();
                cosine_to_euclidean(d_cos)
            }
            Metric::NegDot => cosine_to_euclidean(eps + 1.0),
        }
    }

    fn dist_to_public(&self, d_euc: f32) -> f32 {
        match self.metric {
            Metric::Euclidean => d_euc,
            Metric::SquaredEuclidean => d_euc * d_euc,
            Metric::Cosine => euclidean_to_cosine(d_euc),
            Metric::Angular => {
                let d_cos = euclidean_to_cosine(d_euc);
                (1.0 - d_cos).clamp(-1.0, 1.0).acos() / std::f32::consts::PI
            }
            Metric::NegDot => euclidean_to_cosine(d_euc) - 1.0,
        }
    }

    /// Shared body of the blocked batch kernels: visit every cell once per
    /// block, box-prune per query, and verify the surviving (query, point)
    /// pairs — calling `hit(slot, point)` for each point within range.
    ///
    /// In specialized mode the queries that pass a cell's box check are
    /// verified four at a time against each of the cell's points through the
    /// [`MetricKernel::within4`] mini-GEMM tile (each point row is loaded
    /// once per four queries); `norms` must then be `Some`. Generic mode is
    /// the plain per-pair [`EuclideanDistance`] comparison. Both arms count
    /// one evaluation per surviving pair into `evals`.
    fn verify_block(
        &self,
        block: &[&[f32]],
        eps_euc: f32,
        norms: Option<&laf_vector::RowNorms>,
        evals: &mut u64,
        mut hit: impl FnMut(usize, u32),
    ) {
        match self.mode {
            KernelMode::Generic => {
                for cell in &self.cells {
                    for (slot, q) in block.iter().enumerate() {
                        if self.box_distance(q, &cell.coords) >= eps_euc {
                            continue;
                        }
                        for &p in &cell.points {
                            *evals += 1;
                            if EuclideanDistance.dist(q, self.data.row(p as usize)) < eps_euc {
                                hit(slot, p);
                            }
                        }
                    }
                }
            }
            KernelMode::Specialized => {
                let norms = norms.expect("specialized mode passes the norm cache");
                let probes: Vec<_> = block
                    .iter()
                    .map(|q| self.verify_kernel.probe(q, eps_euc))
                    .collect();
                let mut active: Vec<usize> = Vec::with_capacity(block.len());
                for cell in &self.cells {
                    active.clear();
                    active.extend(block.iter().enumerate().filter_map(|(slot, q)| {
                        (self.box_distance(q, &cell.coords) < eps_euc).then_some(slot)
                    }));
                    if active.is_empty() {
                        continue;
                    }
                    *evals += (active.len() * cell.points.len()) as u64;
                    let (tiles, rest) = active.split_at(active.len() / 4 * 4);
                    for &p in &cell.points {
                        let i = p as usize;
                        let row = self.data.row(i);
                        let (row_norm, row_sq) = (norms.norm(i), norms.sq(i));
                        for tile in tiles.chunks_exact(4) {
                            let tile_probes = [
                                probes[tile[0]],
                                probes[tile[1]],
                                probes[tile[2]],
                                probes[tile[3]],
                            ];
                            let lanes =
                                self.verify_kernel
                                    .within4(&tile_probes, row, row_norm, row_sq);
                            for (lane, &slot) in tile.iter().enumerate() {
                                if lanes[lane] {
                                    hit(slot, p);
                                }
                            }
                        }
                        for &slot in rest {
                            if self
                                .verify_kernel
                                .within(&probes[slot], row, row_norm, row_sq)
                            {
                                hit(slot, p);
                            }
                        }
                    }
                }
            }
        }
    }

    /// Minimum possible Euclidean distance from `q` to any point inside the
    /// cell's bounding box.
    fn box_distance(&self, q: &[f32], coords: &[i32]) -> f32 {
        let mut sum = 0.0f32;
        for (d, &c) in coords.iter().enumerate() {
            let lo = c as f32 * self.cell_side;
            let hi = lo + self.cell_side;
            let x = q[d];
            let gap = if x < lo {
                lo - x
            } else if x > hi {
                x - hi
            } else {
                0.0
            };
            sum += gap * gap;
        }
        sum.sqrt()
    }
}

// i32 coordinates: with the normalized vectors every engine indexes (|x| <= 1)
// and a cell side clamped to MIN_CELL_SIDE = 1e-6, quantized coordinates reach
// at most ~1e6 — comfortably inside i32. The previous i16 coordinates
// saturated at 32767, collapsing distinct points into boundary cells whose
// bounding boxes did not contain them, which made box-distance pruning skip
// cells holding true neighbors.
fn quantize(v: &[f32], cell_side: f32) -> Vec<i32> {
    v.iter()
        .map(|&x| {
            let q = (x / cell_side).floor();
            q.clamp(i32::MIN as f32, i32::MAX as f32) as i32
        })
        .collect()
}

impl RangeQueryEngine for GridIndex<'_> {
    fn num_points(&self) -> usize {
        self.data.len()
    }

    fn metric(&self) -> Metric {
        self.metric
    }

    fn range(&self, q: &[f32], eps: f32) -> Vec<u32> {
        // One query, internal Euclidean space: the kernel's scalar Euclidean
        // predicate is exactly this subtract-form comparison, so both kernel
        // modes share one implementation here — the specialized win lives in
        // the batch paths, where `within4` amortizes the row loads across
        // four queries.
        let eps_euc = self.eps_to_internal(eps);
        let mut out = Vec::new();
        for cell in &self.cells {
            if self.box_distance(q, &cell.coords) >= eps_euc {
                continue;
            }
            for &p in &cell.points {
                self.evaluations.fetch_add(1, Ordering::Relaxed);
                if EuclideanDistance.dist(q, self.data.row(p as usize)) < eps_euc {
                    out.push(p);
                }
            }
        }
        out.sort_unstable();
        out
    }

    fn knn(&self, q: &[f32], k: usize) -> Vec<Neighbor> {
        if k == 0 || self.data.is_empty() {
            return Vec::new();
        }
        // Visit cells in order of box distance; stop when the k-th best
        // distance is closer than the next cell could possibly be.
        let mut order: Vec<(TotalDist, u32)> = self
            .cells
            .iter()
            .enumerate()
            .map(|(i, c)| (TotalDist(self.box_distance(q, &c.coords)), i as u32))
            .collect();
        order.sort_unstable();
        let k = k.min(self.data.len());
        let mut best: Vec<Neighbor> = Vec::with_capacity(k + 1);
        for (TotalDist(box_d), cell_id) in order {
            if best.len() == k && box_d >= best.last().map(|n| n.dist).unwrap_or(f32::INFINITY) {
                break;
            }
            for &p in &self.cells[cell_id as usize].points {
                self.evaluations.fetch_add(1, Ordering::Relaxed);
                let d = EuclideanDistance.dist(q, self.data.row(p as usize));
                if best.len() < k || d < best.last().map(|n| n.dist).unwrap_or(f32::INFINITY) {
                    best.push(Neighbor::new(p, d));
                    best.sort_unstable();
                    best.truncate(k);
                }
            }
        }
        for n in best.iter_mut() {
            n.dist = self.dist_to_public(n.dist);
        }
        best
    }

    fn range_batch(&self, queries: &[&[f32]], eps: f32) -> Vec<Vec<u32>> {
        let eps_euc = self.eps_to_internal(eps);
        // Norm cache only in specialized mode — the generic arm stays the
        // true pre-kernel baseline.
        let norms = match self.mode {
            KernelMode::Specialized => Some(self.data.row_norms()),
            KernelMode::Generic => None,
        };
        let per_block: Vec<(Vec<Vec<u32>>, u64)> = queries
            .par_chunks(QUERY_BLOCK)
            .map(|block| {
                let mut hits: Vec<Vec<u32>> = vec![Vec::new(); block.len()];
                let mut evals = 0u64;
                self.verify_block(block, eps_euc, norms, &mut evals, |slot, p| {
                    hits[slot].push(p)
                });
                for h in hits.iter_mut() {
                    h.sort_unstable();
                }
                (hits, evals)
            })
            .collect();
        let mut out = Vec::with_capacity(queries.len());
        for (hits, evals) in per_block {
            self.evaluations.fetch_add(evals, Ordering::Relaxed);
            out.extend(hits);
        }
        out
    }

    fn range_count_batch(&self, queries: &[&[f32]], eps: f32) -> Vec<usize> {
        let eps_euc = self.eps_to_internal(eps);
        let norms = match self.mode {
            KernelMode::Specialized => Some(self.data.row_norms()),
            KernelMode::Generic => None,
        };
        let per_block: Vec<(Vec<usize>, u64)> = queries
            .par_chunks(QUERY_BLOCK)
            .map(|block| {
                let mut counts = vec![0usize; block.len()];
                let mut evals = 0u64;
                self.verify_block(block, eps_euc, norms, &mut evals, |slot, _p| {
                    counts[slot] += 1
                });
                (counts, evals)
            })
            .collect();
        let mut out = Vec::with_capacity(queries.len());
        for (counts, evals) in per_block {
            self.evaluations.fetch_add(evals, Ordering::Relaxed);
            out.extend(counts);
        }
        out
    }

    fn persist(&self) -> Option<PersistedEngine> {
        Some(PersistedEngine::Grid(PersistedGrid {
            metric: self.metric,
            cell_side: self.cell_side,
            dim: self.data.dim() as u32,
            cells: self
                .cells
                .iter()
                .map(|c| PersistedCell {
                    coords: c.coords.clone(),
                    points: c.points.clone(),
                })
                .collect(),
        }))
    }

    fn distance_evaluations(&self) -> u64 {
        self.evaluations.load(Ordering::Relaxed)
    }

    fn reset_distance_evaluations(&self) {
        self.evaluations.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::LinearScan;
    use laf_synth::EmbeddingMixtureConfig;

    fn sample_data(dim: usize) -> Dataset {
        EmbeddingMixtureConfig {
            n_points: 300,
            dim,
            clusters: 5,
            noise_fraction: 0.2,
            seed: 31,
            ..Default::default()
        }
        .generate()
        .unwrap()
        .0
    }

    #[test]
    fn range_matches_linear_scan_cosine() {
        let data = sample_data(12);
        // Cell side ≈ eps_euc / sqrt(d)
        let eps = 0.3f32;
        let side = cosine_to_euclidean(eps) / (12.0f32).sqrt();
        let grid = GridIndex::new(&data, Metric::Cosine, side);
        let oracle = LinearScan::new(&data, Metric::Cosine);
        for &q in &[0usize, 50, 299] {
            let expected = oracle.range(data.row(q), eps);
            let got = grid.range(data.row(q), eps);
            assert_eq!(got, expected, "q={q}");
        }
    }

    #[test]
    fn range_matches_linear_scan_euclidean_low_dim() {
        let data = sample_data(3);
        let grid = GridIndex::new(&data, Metric::Euclidean, 0.1);
        let oracle = LinearScan::new(&data, Metric::Euclidean);
        for &q in &[1usize, 100, 200] {
            for &eps in &[0.1f32, 0.4, 1.0] {
                assert_eq!(
                    grid.range(data.row(q), eps),
                    oracle.range(data.row(q), eps),
                    "q={q} eps={eps}"
                );
            }
        }
    }

    #[test]
    fn low_dim_grid_prunes_work() {
        let data = sample_data(3);
        let grid = GridIndex::new(&data, Metric::Euclidean, 0.05);
        grid.reset_distance_evaluations();
        let _ = grid.range(data.row(0), 0.1);
        assert!(
            grid.distance_evaluations() < data.len() as u64,
            "low-dimensional grid should prune: {}",
            grid.distance_evaluations()
        );
    }

    #[test]
    fn high_dim_grid_degenerates_to_one_point_per_cell() {
        let data = sample_data(48);
        let side = cosine_to_euclidean(0.3) / (48.0f32).sqrt();
        let grid = GridIndex::new(&data, Metric::Cosine, side);
        // The curse of dimensionality: almost every point gets its own cell.
        assert!(
            grid.cell_count() as f64 > data.len() as f64 * 0.9,
            "cells={} points={}",
            grid.cell_count(),
            data.len()
        );
    }

    #[test]
    fn knn_matches_linear_scan() {
        let data = sample_data(8);
        let grid = GridIndex::new(&data, Metric::Cosine, 0.1);
        let oracle = LinearScan::new(&data, Metric::Cosine);
        for &q in &[3usize, 77, 250] {
            let expected = oracle.knn(data.row(q), 7);
            let got = grid.knn(data.row(q), 7);
            assert_eq!(got.len(), 7);
            for (e, g) in expected.iter().zip(&got) {
                assert!((e.dist - g.dist).abs() < 1e-3, "q={q}");
            }
        }
    }

    #[test]
    fn cell_mates_contains_the_point_itself() {
        let data = sample_data(6);
        let grid = GridIndex::new(&data, Metric::Cosine, 0.2);
        for q in [0usize, 10, 200] {
            let mates = grid.cell_mates(data.row(q));
            assert!(mates.contains(&(q as u32)));
        }
    }

    #[test]
    fn degenerate_cell_side_is_clamped() {
        let data = sample_data(4);
        for degenerate in [0.0f32, -1.0, f32::NAN, f32::INFINITY, 1e-9] {
            let grid = GridIndex::new(&data, Metric::Cosine, degenerate);
            assert_eq!(grid.cell_side(), MIN_CELL_SIDE, "input {degenerate}");
            assert_eq!(grid.num_points(), data.len());
        }
        // A tiny-but-valid side is honored exactly, not swapped for a coarser
        // fallback geometry.
        let tiny = 2e-6f32;
        let grid = GridIndex::new(&data, Metric::Cosine, tiny);
        assert_eq!(grid.cell_side(), tiny);
    }

    #[test]
    fn sub_i16_cell_side_does_not_saturate_quantization() {
        // Cell side below 1/32767: quantized coordinates of unit-norm points
        // overflow i16. With saturating i16 coordinates the points collapse
        // into boundary cells whose bounding boxes lie far away from them,
        // and box-distance pruning then skips cells holding true neighbors.
        let data = sample_data(3);
        let side = 1e-5f32; // |x| near 1 quantizes to ~1e5 >> 32767
        let grid = GridIndex::new(&data, Metric::Euclidean, side);
        assert_eq!(grid.cell_side(), side);
        let oracle = LinearScan::new(&data, Metric::Euclidean);
        for q in 0..data.len() {
            let hits = grid.range(data.row(q), 0.1);
            assert!(
                hits.contains(&(q as u32)),
                "query {q} must find itself at a sub-1/32767 cell side"
            );
            assert_eq!(
                hits,
                oracle.range(data.row(q), 0.1),
                "query {q} disagrees with the exact scan"
            );
        }
    }

    #[test]
    fn knn_k_zero_is_empty() {
        let data = sample_data(4);
        let grid = GridIndex::new(&data, Metric::Cosine, 0.1);
        assert!(grid.knn(data.row(0), 0).is_empty());
    }
}
