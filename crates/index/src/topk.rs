//! Reusable NaN-safe bounded top-k selection.
//!
//! Extracted from `LinearScan::knn`'s open-coded heap so the per-shard knn
//! paths and the scatter-gather merge of [`crate::ShardedEngine`] share one
//! certified implementation. The selector keeps the `k` smallest
//! [`Neighbor`]s under their total order (distance via [`f32::total_cmp`],
//! row index as tie-breaker — see [`crate::TotalDist`]), so NaN distances
//! sort after every finite value instead of poisoning the comparison, and
//! duplicate distances resolve deterministically by index.
//!
//! By construction [`TopK::into_sorted`] equals truncating a full
//! collect-then-sort of the same candidates: both retain exactly the `k`
//! smallest elements of one total order and emit them ascending (the
//! property test in this module and the shard-merge equivalence tests pin
//! this down, NaNs and ties included).

use crate::engine::Neighbor;
use std::collections::BinaryHeap;

/// A bounded max-heap keeping the `k` smallest [`Neighbor`]s pushed so far.
#[derive(Debug, Clone)]
pub struct TopK {
    k: usize,
    heap: BinaryHeap<Neighbor>,
}

impl TopK {
    /// A selector for the `k` best neighbors. `k == 0` accepts nothing.
    pub fn new(k: usize) -> Self {
        Self {
            k,
            // +1 so the push-then-pop of a full heap never reallocates.
            heap: BinaryHeap::with_capacity(k.saturating_add(1).min(4096)),
        }
    }

    /// The bound this selector was created with.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of neighbors currently retained (`<= k`).
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` when no neighbor has been retained yet.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Offer one candidate: kept if fewer than `k` are held or if it beats
    /// the current worst under the total order.
    #[inline]
    pub fn push(&mut self, n: Neighbor) {
        if self.heap.len() < self.k {
            self.heap.push(n);
        } else if let Some(worst) = self.heap.peek() {
            if n < *worst {
                self.heap.pop();
                self.heap.push(n);
            }
        }
    }

    /// Offer every candidate in `batch` (e.g. one shard's local top-k during
    /// a scatter-gather merge).
    pub fn extend<I: IntoIterator<Item = Neighbor>>(&mut self, batch: I) {
        for n in batch {
            self.push(n);
        }
    }

    /// Finish: the retained neighbors, ascending under the total order.
    pub fn into_sorted(self) -> Vec<Neighbor> {
        self.heap.into_sorted_vec()
    }
}

/// Reference implementation the heap is certified against: keep everything,
/// sort under the same total order, truncate to `k`.
pub fn select_by_sort(mut candidates: Vec<Neighbor>, k: usize) -> Vec<Neighbor> {
    candidates.sort_unstable();
    candidates.truncate(k);
    candidates
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn assert_bit_identical(got: &[Neighbor], expected: &[Neighbor], ctx: &str) {
        assert_eq!(got.len(), expected.len(), "{ctx}: length");
        for (i, (g, e)) in got.iter().zip(expected).enumerate() {
            assert_eq!(g.index, e.index, "{ctx}: index at {i}");
            assert_eq!(g.dist.to_bits(), e.dist.to_bits(), "{ctx}: dist at {i}");
        }
    }

    #[test]
    fn keeps_the_k_smallest_ascending() {
        let mut top = TopK::new(3);
        assert_eq!(top.k(), 3);
        assert!(top.is_empty());
        for (i, d) in [5.0f32, 1.0, 4.0, 2.0, 3.0].iter().enumerate() {
            top.push(Neighbor::new(i as u32, *d));
        }
        assert_eq!(top.len(), 3);
        let got = top.into_sorted();
        let dists: Vec<f32> = got.iter().map(|n| n.dist).collect();
        assert_eq!(dists, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn zero_k_accepts_nothing() {
        let mut top = TopK::new(0);
        top.push(Neighbor::new(0, 1.0));
        assert!(top.into_sorted().is_empty());
    }

    #[test]
    fn nan_distances_lose_to_every_finite_candidate() {
        let mut top = TopK::new(2);
        top.extend([
            Neighbor::new(0, f32::NAN),
            Neighbor::new(1, 10.0),
            Neighbor::new(2, f32::NAN),
            Neighbor::new(3, 1.0),
        ]);
        let got = top.into_sorted();
        assert_eq!(got[0].index, 3);
        assert_eq!(got[1].index, 1);
    }

    #[test]
    fn ties_resolve_by_index_exactly_like_the_sort() {
        let candidates: Vec<Neighbor> = [(4u32, 1.0f32), (2, 1.0), (9, 1.0), (1, 2.0), (3, 1.0)]
            .iter()
            .map(|&(i, d)| Neighbor::new(i, d))
            .collect();
        for k in 0..=candidates.len() + 1 {
            let mut top = TopK::new(k);
            top.extend(candidates.iter().copied());
            assert_bit_identical(
                &top.into_sorted(),
                &select_by_sort(candidates.clone(), k),
                &format!("k={k}"),
            );
        }
    }

    proptest! {
        /// The satellite's property: against arbitrary candidate streams —
        /// duplicate distances, NaN payloads with different bit patterns,
        /// signed zeros, infinities — the bounded heap is bit-identical to
        /// collect-all-then-sort for every k.
        #[test]
        fn heap_matches_collect_then_sort(
            raw in proptest::collection::vec((0u32..64, -8i8..=8), 0..48),
            k in 0usize..12,
        ) {
            let candidates: Vec<Neighbor> = raw
                .iter()
                .map(|&(i, d)| {
                    let dist = match d {
                        8 => f32::NAN,
                        -8 => f32::INFINITY,
                        7 => -0.0f32,
                        -7 => f32::NEG_INFINITY,
                        v => v as f32 / 2.0,
                    };
                    Neighbor::new(i, dist)
                })
                .collect();
            let mut top = TopK::new(k);
            top.extend(candidates.iter().copied());
            assert_bit_identical(
                &top.into_sorted(),
                &select_by_sort(candidates, k),
                &format!("k={k}"),
            );
        }
    }
}
