//! IVF (inverted-file) index.
//!
//! The paper's introduction motivates LAF with embedding-retrieval systems
//! that pair clustering with approximate search structures; the inverted
//! file — a flat k-means coarse quantizer whose posting lists are probed
//! closest-first — is the workhorse of that world (FAISS' `IVFFlat`). It is
//! included here as an additional engine for the substrate ablation: unlike
//! the cover tree it gives up exactness, and unlike the k-means *tree* its
//! recall knob is the **number of probed lists** rather than a leaf ratio.

use crate::engine::{KernelMode, Neighbor, RangeQueryEngine, TotalDist};
use crate::persist::{PersistError, PersistedEngine, PersistedIvf, PersistedIvfList};
use laf_vector::{ops, Dataset, Metric, MetricKernel};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicU64, Ordering};

const KMEANS_ITERS: usize = 8;

/// Inverted-file index with a k-means coarse quantizer.
pub struct IvfIndex<'a> {
    data: &'a Dataset,
    metric: Metric,
    kernel: MetricKernel,
    mode: KernelMode,
    centroids: Vec<Vec<f32>>,
    /// L2 norm of each centroid (`ops::norm`), kept in lockstep with
    /// `centroids` so probe ordering needs one dot per centroid.
    centroid_norms: Vec<f32>,
    lists: Vec<Vec<u32>>,
    nprobe: usize,
    evaluations: AtomicU64,
}

fn norms_of(centroids: &[Vec<f32>]) -> Vec<f32> {
    centroids.iter().map(|c| ops::norm(c)).collect()
}

impl<'a> IvfIndex<'a> {
    /// Build an IVF index with `nlist` coarse centroids; queries probe the
    /// `nprobe` closest lists. Both are clamped to sane ranges.
    pub fn new(data: &'a Dataset, metric: Metric, nlist: usize, nprobe: usize, seed: u64) -> Self {
        Self::with_kernel_mode(data, metric, nlist, nprobe, seed, KernelMode::default())
    }

    /// [`IvfIndex::new`] with an explicit [`KernelMode`] for the coarse
    /// training, probe ordering and list verification loops.
    pub fn with_kernel_mode(
        data: &'a Dataset,
        metric: Metric,
        nlist: usize,
        nprobe: usize,
        seed: u64,
        mode: KernelMode,
    ) -> Self {
        let nlist = nlist.clamp(1, data.len().max(1));
        let nprobe = nprobe.clamp(1, nlist);
        let mut index = Self {
            data,
            metric,
            kernel: MetricKernel::new(metric),
            mode,
            centroids: Vec::new(),
            centroid_norms: Vec::new(),
            lists: Vec::new(),
            nprobe,
            evaluations: AtomicU64::new(0),
        };
        if data.is_empty() {
            return index;
        }
        index.train(nlist, seed);
        index
    }

    /// The kernel mode the scan loops run on.
    pub fn kernel_mode(&self) -> KernelMode {
        self.mode
    }

    /// Rebuild an index from a [persisted structure](PersistedIvf), skipping
    /// the coarse-quantizer k-means training. The caller is expected to have
    /// [validated](PersistedEngine::validate) the structure against `data`.
    ///
    /// # Errors
    /// Returns [`PersistError`] when `nprobe` falls outside the valid range
    /// for the persisted list count over a non-empty dataset.
    pub fn from_persisted(data: &'a Dataset, p: &PersistedIvf) -> Result<Self, PersistError> {
        if !data.is_empty() && (p.nprobe == 0 || p.nprobe as usize > p.lists.len()) {
            return Err(PersistError::new(format!(
                "nprobe {} outside 1..={} lists",
                p.nprobe,
                p.lists.len()
            )));
        }
        let centroids: Vec<Vec<f32>> = p.lists.iter().map(|l| l.centroid.clone()).collect();
        let centroid_norms = norms_of(&centroids);
        Ok(Self {
            data,
            metric: p.metric,
            kernel: MetricKernel::new(p.metric),
            mode: KernelMode::default(),
            centroids,
            centroid_norms,
            lists: p.lists.iter().map(|l| l.points.clone()).collect(),
            nprobe: p.nprobe as usize,
            evaluations: AtomicU64::new(0),
        })
    }

    /// Number of posting lists.
    pub fn nlist(&self) -> usize {
        self.lists.len()
    }

    /// Number of lists probed per query.
    pub fn nprobe(&self) -> usize {
        self.nprobe
    }

    fn train(&mut self, nlist: usize, seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = self.data.len();
        let dim = self.data.dim();
        // k-means++ style seeding kept simple: random distinct rows.
        let mut ids: Vec<usize> = (0..n).collect();
        for i in 0..nlist {
            let j = rng.gen_range(i..n);
            ids.swap(i, j);
        }
        let mut centroids: Vec<Vec<f32>> = ids[..nlist]
            .iter()
            .map(|&i| self.data.row(i).to_vec())
            .collect();
        let mut assignment = vec![0usize; n];
        // Norm cache only in specialized mode — the generic arm stays the
        // true pre-kernel baseline.
        let row_norms = match self.mode {
            KernelMode::Specialized => Some(self.data.row_norms()),
            KernelMode::Generic => None,
        };
        for _ in 0..KMEANS_ITERS {
            // Centroid norms are recomputed once per Lloyd iteration (the
            // centroids just moved); row norms come from the dataset cache.
            // Assignment distances are bit-identical between modes, so the
            // trained structure does not depend on the kernel mode.
            let iter_norms = match self.mode {
                KernelMode::Specialized => norms_of(&centroids),
                KernelMode::Generic => Vec::new(),
            };
            for (i, row) in self.data.rows().enumerate() {
                let mut best = 0usize;
                let mut best_d = f32::INFINITY;
                match row_norms {
                    None => {
                        for (c, centroid) in centroids.iter().enumerate() {
                            let d = self.metric.dist(row, centroid);
                            if d < best_d {
                                best_d = d;
                                best = c;
                            }
                        }
                    }
                    Some(row_norms) => {
                        let prep = self.kernel.prepare_with_norm(row, row_norms.norm(i));
                        for (c, centroid) in centroids.iter().enumerate() {
                            let d = self.kernel.dist(&prep, centroid, iter_norms[c]);
                            if d < best_d {
                                best_d = d;
                                best = c;
                            }
                        }
                    }
                }
                assignment[i] = best;
            }
            let mut sums = vec![vec![0.0f32; dim]; nlist];
            let mut counts = vec![0usize; nlist];
            for (i, row) in self.data.rows().enumerate() {
                ops::axpy(1.0, row, &mut sums[assignment[i]]);
                counts[assignment[i]] += 1;
            }
            for (c, sum) in sums.into_iter().enumerate() {
                if counts[c] > 0 {
                    let mut centroid = sum;
                    ops::scale_in_place(&mut centroid, 1.0 / counts[c] as f32);
                    centroids[c] = centroid;
                }
            }
        }
        let mut lists = vec![Vec::new(); nlist];
        for (i, &a) in assignment.iter().enumerate() {
            lists[a].push(i as u32);
        }
        // Drop empty lists (their centroids are meaningless).
        let mut kept_centroids = Vec::new();
        let mut kept_lists = Vec::new();
        for (centroid, list) in centroids.into_iter().zip(lists) {
            if !list.is_empty() {
                kept_centroids.push(centroid);
                kept_lists.push(list);
            }
        }
        self.nprobe = self.nprobe.min(kept_lists.len().max(1));
        self.centroid_norms = norms_of(&kept_centroids);
        self.centroids = kept_centroids;
        self.lists = kept_lists;
    }

    /// The posting lists to probe for a query, closest centroid first.
    fn probe_order(&self, q: &[f32]) -> Vec<usize> {
        self.evaluations
            .fetch_add(self.centroids.len() as u64, Ordering::Relaxed);
        let mut order: Vec<(TotalDist, usize)> = match self.mode {
            KernelMode::Generic => self
                .centroids
                .iter()
                .enumerate()
                .map(|(i, c)| (TotalDist(self.metric.dist(q, c)), i))
                .collect(),
            KernelMode::Specialized => {
                let prep = self.kernel.prepare(q);
                self.centroids
                    .iter()
                    .enumerate()
                    .map(|(i, c)| {
                        (
                            TotalDist(self.kernel.dist(&prep, c, self.centroid_norms[i])),
                            i,
                        )
                    })
                    .collect()
            }
        };
        order.sort_unstable();
        order.truncate(self.nprobe);
        order.into_iter().map(|(_, i)| i).collect()
    }
}

impl RangeQueryEngine for IvfIndex<'_> {
    fn num_points(&self) -> usize {
        self.data.len()
    }

    fn metric(&self) -> Metric {
        self.metric
    }

    fn range(&self, q: &[f32], eps: f32) -> Vec<u32> {
        if self.lists.is_empty() {
            return Vec::new();
        }
        let mut out = Vec::new();
        match self.mode {
            KernelMode::Generic => {
                for list_id in self.probe_order(q) {
                    for &p in &self.lists[list_id] {
                        self.evaluations.fetch_add(1, Ordering::Relaxed);
                        if self.metric.dist(q, self.data.row(p as usize)) < eps {
                            out.push(p);
                        }
                    }
                }
            }
            KernelMode::Specialized => {
                let norms = self.data.row_norms();
                let probe = self.kernel.probe(q, eps);
                for list_id in self.probe_order(q) {
                    for &p in &self.lists[list_id] {
                        self.evaluations.fetch_add(1, Ordering::Relaxed);
                        let i = p as usize;
                        if self
                            .kernel
                            .within(&probe, self.data.row(i), norms.norm(i), norms.sq(i))
                        {
                            out.push(p);
                        }
                    }
                }
            }
        }
        out.sort_unstable();
        out
    }

    fn knn(&self, q: &[f32], k: usize) -> Vec<Neighbor> {
        if k == 0 || self.lists.is_empty() {
            return Vec::new();
        }
        // Query prep + norm cache only in specialized mode.
        let spec = match self.mode {
            KernelMode::Specialized => Some((self.data.row_norms(), self.kernel.prepare(q))),
            KernelMode::Generic => None,
        };
        let mut best: Vec<Neighbor> = Vec::with_capacity(k + 1);
        for list_id in self.probe_order(q) {
            for &p in &self.lists[list_id] {
                self.evaluations.fetch_add(1, Ordering::Relaxed);
                let i = p as usize;
                let d = match &spec {
                    None => self.metric.dist(q, self.data.row(i)),
                    Some((norms, prep)) => self.kernel.dist(prep, self.data.row(i), norms.norm(i)),
                };
                if best.len() < k || d < best.last().map(|n| n.dist).unwrap_or(f32::INFINITY) {
                    best.push(Neighbor::new(p, d));
                    best.sort_unstable();
                    best.truncate(k);
                }
            }
        }
        best
    }

    fn persist(&self) -> Option<PersistedEngine> {
        Some(PersistedEngine::Ivf(PersistedIvf {
            metric: self.metric,
            nprobe: self.nprobe as u32,
            dim: self.data.dim() as u32,
            lists: self
                .centroids
                .iter()
                .zip(&self.lists)
                .map(|(centroid, points)| PersistedIvfList {
                    centroid: centroid.clone(),
                    points: points.clone(),
                })
                .collect(),
        }))
    }

    fn distance_evaluations(&self) -> u64 {
        self.evaluations.load(Ordering::Relaxed)
    }

    fn reset_distance_evaluations(&self) {
        self.evaluations.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::LinearScan;
    use laf_synth::EmbeddingMixtureConfig;

    fn sample_data() -> Dataset {
        EmbeddingMixtureConfig {
            n_points: 400,
            dim: 16,
            clusters: 8,
            noise_fraction: 0.2,
            seed: 37,
            ..Default::default()
        }
        .generate()
        .unwrap()
        .0
    }

    #[test]
    fn empty_dataset() {
        let data = Dataset::new(4).unwrap();
        let ivf = IvfIndex::new(&data, Metric::Cosine, 8, 2, 1);
        assert_eq!(ivf.num_points(), 0);
        assert!(ivf.range(&[1.0, 0.0, 0.0, 0.0], 0.5).is_empty());
        assert!(ivf.knn(&[1.0, 0.0, 0.0, 0.0], 3).is_empty());
    }

    #[test]
    fn probing_all_lists_is_exact() {
        let data = sample_data();
        let ivf = IvfIndex::new(&data, Metric::Cosine, 10, 10, 5);
        let oracle = LinearScan::new(&data, Metric::Cosine);
        for &q in &[0usize, 133, 399] {
            for &eps in &[0.1f32, 0.3] {
                assert_eq!(
                    ivf.range(data.row(q), eps),
                    oracle.range(data.row(q), eps),
                    "q={q} eps={eps}"
                );
            }
        }
    }

    #[test]
    fn partial_probing_has_no_false_positives_and_decent_recall() {
        let data = sample_data();
        let ivf = IvfIndex::new(&data, Metric::Cosine, 16, 4, 5);
        let oracle = LinearScan::new(&data, Metric::Cosine);
        let mut found = 0usize;
        let mut total = 0usize;
        for q in (0..data.len()).step_by(20) {
            let exact = oracle.range(data.row(q), 0.15);
            let approx = ivf.range(data.row(q), 0.15);
            for a in &approx {
                assert!(exact.contains(a));
            }
            found += approx.len();
            total += exact.len();
        }
        assert!(total > 0);
        assert!(
            found as f64 / total as f64 > 0.6,
            "recall {}",
            found as f64 / total as f64
        );
    }

    #[test]
    fn fewer_probes_means_less_work() {
        let data = sample_data();
        let narrow = IvfIndex::new(&data, Metric::Cosine, 16, 1, 5);
        let wide = IvfIndex::new(&data, Metric::Cosine, 16, 16, 5);
        narrow.reset_distance_evaluations();
        wide.reset_distance_evaluations();
        let _ = narrow.range(data.row(7), 0.3);
        let _ = wide.range(data.row(7), 0.3);
        assert!(narrow.distance_evaluations() < wide.distance_evaluations());
        assert!(narrow.nprobe() < wide.nprobe());
        assert!(narrow.nlist() >= 2);
    }

    #[test]
    fn knn_self_is_first_with_full_probing() {
        let data = sample_data();
        let ivf = IvfIndex::new(&data, Metric::Cosine, 8, 8, 3);
        let knn = ivf.knn(data.row(42), 5);
        assert_eq!(knn.len(), 5);
        assert_eq!(knn[0].index, 42);
        assert!(knn.windows(2).all(|w| w[0].dist <= w[1].dist));
    }

    #[test]
    fn degenerate_parameters_are_clamped() {
        let data = sample_data();
        let ivf = IvfIndex::new(&data, Metric::Cosine, 0, 0, 1);
        assert!(ivf.nlist() >= 1);
        assert!(ivf.nprobe() >= 1);
        let huge = IvfIndex::new(&data, Metric::Cosine, 10_000, 10_000, 1);
        assert!(huge.nlist() <= data.len());
    }
}
