//! Exact brute-force range queries.
//!
//! This is the substrate of the original DBSCAN, DBSCAN++ and the LAF
//! variants in the paper (their cost model is "one range query = one full
//! scan"), and it is the correctness oracle every other engine is tested
//! against.

use crate::engine::{Neighbor, RangeQueryEngine};
use crate::persist::PersistedEngine;
use laf_vector::{Dataset, Metric};
use rayon::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};

/// Number of queries processed per cache block in the batched kernels: each
/// dataset row is loaded from memory once and scored against a whole block of
/// queries while it is hot, amortizing the dominant memory traffic of a
/// brute-force scan across the block.
const QUERY_BLOCK: usize = 16;

/// Exact linear-scan engine.
pub struct LinearScan<'a> {
    data: &'a Dataset,
    metric: Metric,
    evaluations: AtomicU64,
}

impl<'a> LinearScan<'a> {
    /// Index `data` under `metric`.
    pub fn new(data: &'a Dataset, metric: Metric) -> Self {
        Self {
            data,
            metric,
            evaluations: AtomicU64::new(0),
        }
    }

    /// The indexed dataset.
    pub fn dataset(&self) -> &Dataset {
        self.data
    }

    /// Exact range query executed in parallel across the **dataset rows**.
    /// Produces the same result as [`RangeQueryEngine::range`]; used when a
    /// single query dominates wall-clock time — the batch kernels cannot
    /// help there because they parallelize across *queries*.
    pub fn par_range(&self, q: &[f32], eps: f32) -> Vec<u32> {
        self.evaluations
            .fetch_add(self.data.len() as u64, Ordering::Relaxed);
        let mut hits: Vec<u32> = (0..self.data.len())
            .into_par_iter()
            .filter(|&i| self.metric.dist(q, self.data.row(i)) < eps)
            .map(|i| i as u32)
            .collect();
        hits.sort_unstable();
        hits
    }

    /// Exact range queries for a batch of dataset rows. Returns one neighbor
    /// list per requested row index. Thin wrapper over the blocked
    /// [`RangeQueryEngine::range_batch`] kernel.
    pub fn batch_range_rows(&self, rows: &[usize], eps: f32) -> Vec<Vec<u32>> {
        let queries: Vec<&[f32]> = rows.iter().map(|&r| self.data.row(r)).collect();
        self.range_batch(&queries, eps)
    }
}

impl RangeQueryEngine for LinearScan<'_> {
    fn num_points(&self) -> usize {
        self.data.len()
    }

    fn metric(&self) -> Metric {
        self.metric
    }

    fn range(&self, q: &[f32], eps: f32) -> Vec<u32> {
        self.evaluations
            .fetch_add(self.data.len() as u64, Ordering::Relaxed);
        let mut hits = Vec::new();
        for (i, row) in self.data.rows().enumerate() {
            if self.metric.dist(q, row) < eps {
                hits.push(i as u32);
            }
        }
        hits
    }

    fn range_count(&self, q: &[f32], eps: f32) -> usize {
        self.evaluations
            .fetch_add(self.data.len() as u64, Ordering::Relaxed);
        self.data
            .rows()
            .filter(|row| self.metric.dist(q, row) < eps)
            .count()
    }

    fn knn(&self, q: &[f32], k: usize) -> Vec<Neighbor> {
        self.evaluations
            .fetch_add(self.data.len() as u64, Ordering::Relaxed);
        let mut all: Vec<Neighbor> = self
            .data
            .rows()
            .enumerate()
            .map(|(i, row)| Neighbor::new(i as u32, self.metric.dist(q, row)))
            .collect();
        all.sort_unstable();
        all.truncate(k.min(self.data.len()));
        all
    }

    fn range_batch(&self, queries: &[&[f32]], eps: f32) -> Vec<Vec<u32>> {
        // Below one cache block there is nothing to amortize; fan the
        // queries out individually so small batches still parallelize.
        if queries.len() < QUERY_BLOCK {
            return queries.par_iter().map(|q| self.range(q, eps)).collect();
        }
        self.evaluations.fetch_add(
            (queries.len() as u64) * (self.data.len() as u64),
            Ordering::Relaxed,
        );
        let per_block: Vec<Vec<Vec<u32>>> = queries
            .par_chunks(QUERY_BLOCK)
            .map(|block| {
                let mut hits: Vec<Vec<u32>> = vec![Vec::new(); block.len()];
                for (i, row) in self.data.rows().enumerate() {
                    for (slot, q) in block.iter().enumerate() {
                        if self.metric.dist(q, row) < eps {
                            hits[slot].push(i as u32);
                        }
                    }
                }
                hits
            })
            .collect();
        per_block.into_iter().flatten().collect()
    }

    fn range_count_batch(&self, queries: &[&[f32]], eps: f32) -> Vec<usize> {
        if queries.len() < QUERY_BLOCK {
            return queries
                .par_iter()
                .map(|q| self.range_count(q, eps))
                .collect();
        }
        self.evaluations.fetch_add(
            (queries.len() as u64) * (self.data.len() as u64),
            Ordering::Relaxed,
        );
        let per_block: Vec<Vec<usize>> = queries
            .par_chunks(QUERY_BLOCK)
            .map(|block| {
                let mut counts = vec![0usize; block.len()];
                for row in self.data.rows() {
                    for (slot, q) in block.iter().enumerate() {
                        if self.metric.dist(q, row) < eps {
                            counts[slot] += 1;
                        }
                    }
                }
                counts
            })
            .collect();
        per_block.into_iter().flatten().collect()
    }

    fn knn_batch(&self, queries: &[&[f32]], k: usize) -> Vec<Vec<Neighbor>> {
        self.evaluations.fetch_add(
            (queries.len() as u64) * (self.data.len() as u64),
            Ordering::Relaxed,
        );
        queries
            .par_iter()
            .map(|q| {
                let mut all: Vec<Neighbor> = self
                    .data
                    .rows()
                    .enumerate()
                    .map(|(i, row)| Neighbor::new(i as u32, self.metric.dist(q, row)))
                    .collect();
                all.sort_unstable();
                all.truncate(k.min(self.data.len()));
                all
            })
            .collect()
    }

    fn persist(&self) -> Option<PersistedEngine> {
        // Nothing to save — the marker just records that the engine was a
        // linear scan so warm starts skip the config-rebuild fallback.
        Some(PersistedEngine::Linear {
            metric: self.metric,
        })
    }

    fn distance_evaluations(&self) -> u64 {
        self.evaluations.load(Ordering::Relaxed)
    }

    fn reset_distance_evaluations(&self) {
        self.evaluations.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use laf_vector::ops;

    fn toy() -> Dataset {
        // Points on the unit circle at known angles.
        let angles = [0.0f32, 0.05, 0.1, 1.0, 2.0, 3.1];
        let rows: Vec<Vec<f32>> = angles.iter().map(|a| vec![a.cos(), a.sin()]).collect();
        Dataset::from_rows(rows).unwrap()
    }

    #[test]
    fn range_finds_exactly_the_close_points() {
        let data = toy();
        let engine = LinearScan::new(&data, Metric::Cosine);
        // Cosine distance 1-cos(angle). For angle 0.1, d ≈ 0.005.
        let hits = engine.range(data.row(0), 0.01);
        assert_eq!(hits, vec![0, 1, 2]);
        let count = engine.range_count(data.row(0), 0.01);
        assert_eq!(count, 3);
    }

    #[test]
    fn knn_orders_by_distance_and_clamps_k() {
        let data = toy();
        let engine = LinearScan::new(&data, Metric::Cosine);
        let knn = engine.knn(data.row(0), 3);
        assert_eq!(knn.len(), 3);
        assert_eq!(knn[0].index, 0);
        assert!(knn[0].dist <= knn[1].dist && knn[1].dist <= knn[2].dist);
        let all = engine.knn(data.row(0), 100);
        assert_eq!(all.len(), data.len());
    }

    #[test]
    fn par_range_matches_serial_range() {
        let data = toy();
        let engine = LinearScan::new(&data, Metric::Cosine);
        for eps in [0.01f32, 0.2, 1.0, 2.0] {
            let mut serial = engine.range(data.row(2), eps);
            serial.sort_unstable();
            assert_eq!(engine.par_range(data.row(2), eps), serial);
        }
    }

    #[test]
    fn batch_range_rows_matches_individual_queries() {
        let data = toy();
        let engine = LinearScan::new(&data, Metric::Cosine);
        let batch = engine.batch_range_rows(&[0, 3, 5], 0.5);
        assert_eq!(batch.len(), 3);
        for (slot, &row) in [0usize, 3, 5].iter().enumerate() {
            assert_eq!(batch[slot], engine.range(data.row(row), 0.5));
        }
    }

    #[test]
    fn distance_evaluation_counter_tracks_work() {
        let data = toy();
        let engine = LinearScan::new(&data, Metric::Cosine);
        assert_eq!(engine.distance_evaluations(), 0);
        engine.range(data.row(0), 0.5);
        assert_eq!(engine.distance_evaluations(), data.len() as u64);
        engine.knn(data.row(0), 2);
        assert_eq!(engine.distance_evaluations(), 2 * data.len() as u64);
        engine.reset_distance_evaluations();
        assert_eq!(engine.distance_evaluations(), 0);
    }

    #[test]
    fn works_with_euclidean_metric_and_off_dataset_queries() {
        let data = toy();
        let engine = LinearScan::new(&data, Metric::Euclidean);
        assert_eq!(engine.metric(), Metric::Euclidean);
        let mut q = vec![0.999f32, 0.001];
        ops::normalize_in_place(&mut q);
        let hits = engine.range(&q, 0.2);
        assert!(hits.contains(&0));
        assert!(!hits.contains(&5));
        assert_eq!(engine.num_points(), 6);
        assert_eq!(engine.dataset().len(), 6);
    }
}
