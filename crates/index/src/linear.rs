//! Exact brute-force range queries.
//!
//! This is the substrate of the original DBSCAN, DBSCAN++ and the LAF
//! variants in the paper (their cost model is "one range query = one full
//! scan"), and it is the correctness oracle every other engine is tested
//! against.
//!
//! The scan loops run on the metric-specialized kernels of
//! [`laf_vector::kernel`] by default: the query norm is computed once per
//! query, row norms come from the dataset's lazily-built cache, and the
//! batched paths score four queries per row load through the
//! [`laf_vector::ops::dot4`] mini-GEMM tile. Results are bit-identical to the
//! generic [`Metric::dist`] evaluation (available via
//! [`KernelMode::Generic`], which the kernel benchmarks use as baseline).

use crate::engine::{KernelMode, Neighbor, RangeQueryEngine};
use crate::persist::PersistedEngine;
use crate::topk::TopK;
use laf_vector::{Dataset, Metric, MetricKernel};
use rayon::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};

/// Number of queries processed per cache block in the batched kernels: each
/// dataset row is loaded from memory once and scored against a whole block of
/// queries while it is hot, amortizing the dominant memory traffic of a
/// brute-force scan across the block.
const QUERY_BLOCK: usize = 16;

/// Exact linear-scan engine.
pub struct LinearScan<'a> {
    data: &'a Dataset,
    metric: Metric,
    kernel: MetricKernel,
    mode: KernelMode,
    evaluations: AtomicU64,
}

impl<'a> LinearScan<'a> {
    /// Index `data` under `metric` with the default (specialized) kernels.
    pub fn new(data: &'a Dataset, metric: Metric) -> Self {
        Self::with_kernel_mode(data, metric, KernelMode::default())
    }

    /// Index `data` under `metric` with an explicit [`KernelMode`].
    pub fn with_kernel_mode(data: &'a Dataset, metric: Metric, mode: KernelMode) -> Self {
        Self {
            data,
            metric,
            kernel: MetricKernel::new(metric),
            mode,
            evaluations: AtomicU64::new(0),
        }
    }

    /// The indexed dataset.
    pub fn dataset(&self) -> &Dataset {
        self.data
    }

    /// The kernel mode the scan loops run on.
    pub fn kernel_mode(&self) -> KernelMode {
        self.mode
    }

    /// Exact range query executed in parallel across the **dataset rows**.
    /// Produces the same result as [`RangeQueryEngine::range`]; used when a
    /// single query dominates wall-clock time — the batch kernels cannot
    /// help there because they parallelize across *queries*.
    pub fn par_range(&self, q: &[f32], eps: f32) -> Vec<u32> {
        self.evaluations
            .fetch_add(self.data.len() as u64, Ordering::Relaxed);
        let mut hits: Vec<u32> = match self.mode {
            KernelMode::Generic => (0..self.data.len())
                .into_par_iter()
                .filter(|&i| self.metric.dist(q, self.data.row(i)) < eps)
                .map(|i| i as u32)
                .collect(),
            KernelMode::Specialized => {
                let norms = self.data.row_norms();
                let probe = self.kernel.probe(q, eps);
                (0..self.data.len())
                    .into_par_iter()
                    .filter(|&i| {
                        self.kernel
                            .within(&probe, self.data.row(i), norms.norm(i), norms.sq(i))
                    })
                    .map(|i| i as u32)
                    .collect()
            }
        };
        hits.sort_unstable();
        hits
    }

    /// Exact range queries for a batch of dataset rows. Returns one neighbor
    /// list per requested row index. Thin wrapper over the blocked
    /// [`RangeQueryEngine::range_batch`] kernel.
    pub fn batch_range_rows(&self, rows: &[usize], eps: f32) -> Vec<Vec<u32>> {
        let queries: Vec<&[f32]> = rows.iter().map(|&r| self.data.row(r)).collect();
        self.range_batch(&queries, eps)
    }

    /// One full-scan range query without touching the evaluation counter
    /// (the batch entry points account for the whole batch up front).
    fn range_uncounted(&self, q: &[f32], eps: f32) -> Vec<u32> {
        let mut hits = Vec::new();
        match self.mode {
            KernelMode::Generic => {
                for (i, row) in self.data.rows().enumerate() {
                    if self.metric.dist(q, row) < eps {
                        hits.push(i as u32);
                    }
                }
            }
            KernelMode::Specialized => {
                let norms = self.data.row_norms();
                let probe = self.kernel.probe(q, eps);
                for (i, row) in self.data.rows().enumerate() {
                    if self.kernel.within(&probe, row, norms.norm(i), norms.sq(i)) {
                        hits.push(i as u32);
                    }
                }
            }
        }
        hits
    }

    /// Uncounted variant of [`RangeQueryEngine::range_count`].
    fn range_count_uncounted(&self, q: &[f32], eps: f32) -> usize {
        match self.mode {
            KernelMode::Generic => self
                .data
                .rows()
                .filter(|row| self.metric.dist(q, row) < eps)
                .count(),
            KernelMode::Specialized => {
                let norms = self.data.row_norms();
                let probe = self.kernel.probe(q, eps);
                self.data
                    .rows()
                    .enumerate()
                    .filter(|(i, row)| {
                        self.kernel
                            .within(&probe, row, norms.norm(*i), norms.sq(*i))
                    })
                    .count()
            }
        }
    }

    /// Uncounted top-k scan through the shared bounded selector
    /// ([`crate::topk::TopK`]): the k best neighbors seen so far are kept
    /// under `Neighbor`'s total order (distance then index, NaN-safe)
    /// instead of materializing and sorting all `n` candidates. Equivalent to
    /// collect-all-then-sort by construction: both retain exactly the
    /// k smallest elements of the same total order, emitted ascending.
    fn knn_uncounted(&self, q: &[f32], k: usize) -> Vec<Neighbor> {
        let k = k.min(self.data.len());
        if k == 0 {
            return Vec::new();
        }
        let mut top = TopK::new(k);
        match self.mode {
            KernelMode::Generic => {
                for (i, row) in self.data.rows().enumerate() {
                    top.push(Neighbor::new(i as u32, self.metric.dist(q, row)));
                }
            }
            KernelMode::Specialized => {
                let norms = self.data.row_norms();
                let prep = self.kernel.prepare(q);
                for (i, row) in self.data.rows().enumerate() {
                    top.push(Neighbor::new(
                        i as u32,
                        self.kernel.dist(&prep, row, norms.norm(i)),
                    ));
                }
            }
        }
        top.into_sorted()
    }

    /// Blocked range scan for up to [`QUERY_BLOCK`] queries: rows outer,
    /// queries inner, four queries per row load through the mini-GEMM tile.
    fn range_block(&self, block: &[&[f32]], eps: f32) -> Vec<Vec<u32>> {
        let mut hits: Vec<Vec<u32>> = vec![Vec::new(); block.len()];
        match self.mode {
            KernelMode::Generic => {
                for (i, row) in self.data.rows().enumerate() {
                    for (slot, q) in block.iter().enumerate() {
                        if self.metric.dist(q, row) < eps {
                            hits[slot].push(i as u32);
                        }
                    }
                }
            }
            KernelMode::Specialized => {
                let norms = self.data.row_norms();
                let probes: Vec<_> = block.iter().map(|q| self.kernel.probe(q, eps)).collect();
                let (tiles, rest) = probes.split_at(probes.len() / 4 * 4);
                for (i, row) in self.data.rows().enumerate() {
                    for (t, tile) in tiles.chunks_exact(4).enumerate() {
                        let tile: &[_; 4] = tile.try_into().expect("chunks_exact(4)");
                        let lanes = self.kernel.within4(tile, row, norms.norm(i), norms.sq(i));
                        for (lane, &hit) in lanes.iter().enumerate() {
                            if hit {
                                hits[t * 4 + lane].push(i as u32);
                            }
                        }
                    }
                    for (r, probe) in rest.iter().enumerate() {
                        if self.kernel.within(probe, row, norms.norm(i), norms.sq(i)) {
                            hits[tiles.len() + r].push(i as u32);
                        }
                    }
                }
            }
        }
        hits
    }

    /// Blocked counting scan, same structure as [`LinearScan::range_block`].
    fn range_count_block(&self, block: &[&[f32]], eps: f32) -> Vec<usize> {
        let mut counts = vec![0usize; block.len()];
        match self.mode {
            KernelMode::Generic => {
                for row in self.data.rows() {
                    for (slot, q) in block.iter().enumerate() {
                        if self.metric.dist(q, row) < eps {
                            counts[slot] += 1;
                        }
                    }
                }
            }
            KernelMode::Specialized => {
                let norms = self.data.row_norms();
                let probes: Vec<_> = block.iter().map(|q| self.kernel.probe(q, eps)).collect();
                let (tiles, rest) = probes.split_at(probes.len() / 4 * 4);
                for (i, row) in self.data.rows().enumerate() {
                    for (t, tile) in tiles.chunks_exact(4).enumerate() {
                        let tile: &[_; 4] = tile.try_into().expect("chunks_exact(4)");
                        let lanes = self.kernel.within4(tile, row, norms.norm(i), norms.sq(i));
                        for (lane, &hit) in lanes.iter().enumerate() {
                            if hit {
                                counts[t * 4 + lane] += 1;
                            }
                        }
                    }
                    for (r, probe) in rest.iter().enumerate() {
                        if self.kernel.within(probe, row, norms.norm(i), norms.sq(i)) {
                            counts[tiles.len() + r] += 1;
                        }
                    }
                }
            }
        }
        counts
    }
}

impl RangeQueryEngine for LinearScan<'_> {
    fn num_points(&self) -> usize {
        self.data.len()
    }

    fn metric(&self) -> Metric {
        self.metric
    }

    fn range(&self, q: &[f32], eps: f32) -> Vec<u32> {
        self.evaluations
            .fetch_add(self.data.len() as u64, Ordering::Relaxed);
        self.range_uncounted(q, eps)
    }

    fn range_count(&self, q: &[f32], eps: f32) -> usize {
        self.evaluations
            .fetch_add(self.data.len() as u64, Ordering::Relaxed);
        self.range_count_uncounted(q, eps)
    }

    fn knn(&self, q: &[f32], k: usize) -> Vec<Neighbor> {
        self.evaluations
            .fetch_add(self.data.len() as u64, Ordering::Relaxed);
        self.knn_uncounted(q, k)
    }

    fn range_batch(&self, queries: &[&[f32]], eps: f32) -> Vec<Vec<u32>> {
        // One batch-level bump regardless of batch size, so the accounting is
        // identical between the small-batch fan-out and the blocked path
        // (previously the small path counted once per query instead).
        self.evaluations.fetch_add(
            (queries.len() as u64) * (self.data.len() as u64),
            Ordering::Relaxed,
        );
        // Below one cache block there is nothing to amortize; fan the
        // queries out individually so small batches still parallelize.
        if queries.len() < QUERY_BLOCK {
            return queries
                .par_iter()
                .map(|q| self.range_uncounted(q, eps))
                .collect();
        }
        let per_block: Vec<Vec<Vec<u32>>> = queries
            .par_chunks(QUERY_BLOCK)
            .map(|block| self.range_block(block, eps))
            .collect();
        per_block.into_iter().flatten().collect()
    }

    fn range_count_batch(&self, queries: &[&[f32]], eps: f32) -> Vec<usize> {
        self.evaluations.fetch_add(
            (queries.len() as u64) * (self.data.len() as u64),
            Ordering::Relaxed,
        );
        if queries.len() < QUERY_BLOCK {
            return queries
                .par_iter()
                .map(|q| self.range_count_uncounted(q, eps))
                .collect();
        }
        let per_block: Vec<Vec<usize>> = queries
            .par_chunks(QUERY_BLOCK)
            .map(|block| self.range_count_block(block, eps))
            .collect();
        per_block.into_iter().flatten().collect()
    }

    fn knn_batch(&self, queries: &[&[f32]], k: usize) -> Vec<Vec<Neighbor>> {
        self.evaluations.fetch_add(
            (queries.len() as u64) * (self.data.len() as u64),
            Ordering::Relaxed,
        );
        queries
            .par_iter()
            .map(|q| self.knn_uncounted(q, k))
            .collect()
    }

    fn persist(&self) -> Option<PersistedEngine> {
        // Nothing to save — the marker just records that the engine was a
        // linear scan so warm starts skip the config-rebuild fallback.
        Some(PersistedEngine::Linear {
            metric: self.metric,
        })
    }

    fn distance_evaluations(&self) -> u64 {
        self.evaluations.load(Ordering::Relaxed)
    }

    fn reset_distance_evaluations(&self) {
        self.evaluations.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use laf_vector::ops;

    fn toy() -> Dataset {
        // Points on the unit circle at known angles.
        let angles = [0.0f32, 0.05, 0.1, 1.0, 2.0, 3.1];
        let rows: Vec<Vec<f32>> = angles.iter().map(|a| vec![a.cos(), a.sin()]).collect();
        Dataset::from_rows(rows).unwrap()
    }

    #[test]
    fn range_finds_exactly_the_close_points() {
        let data = toy();
        let engine = LinearScan::new(&data, Metric::Cosine);
        // Cosine distance 1-cos(angle). For angle 0.1, d ≈ 0.005.
        let hits = engine.range(data.row(0), 0.01);
        assert_eq!(hits, vec![0, 1, 2]);
        let count = engine.range_count(data.row(0), 0.01);
        assert_eq!(count, 3);
    }

    #[test]
    fn knn_orders_by_distance_and_clamps_k() {
        let data = toy();
        let engine = LinearScan::new(&data, Metric::Cosine);
        let knn = engine.knn(data.row(0), 3);
        assert_eq!(knn.len(), 3);
        assert_eq!(knn[0].index, 0);
        assert!(knn[0].dist <= knn[1].dist && knn[1].dist <= knn[2].dist);
        let all = engine.knn(data.row(0), 100);
        assert_eq!(all.len(), data.len());
        assert!(engine.knn(data.row(0), 0).is_empty());
    }

    #[test]
    fn knn_heap_matches_collect_then_sort_including_nan_ties() {
        // Dataset with exact duplicates (distance ties resolved by index) and
        // a NaN row (NaN distances sort last under the total order).
        let mut rows: Vec<Vec<f32>> = vec![
            vec![1.0, 0.0],
            vec![0.6, 0.8],
            vec![1.0, 0.0], // duplicate of row 0
            vec![0.0, 1.0],
            vec![0.6, 0.8], // duplicate of row 1
        ];
        rows.push(vec![f32::NAN, 0.0]);
        let data = Dataset::from_rows(rows).unwrap();
        for metric in [Metric::Cosine, Metric::Euclidean, Metric::NegDot] {
            let engine = LinearScan::new(&data, metric);
            let q = [0.8f32, 0.6];
            for k in 0..=data.len() + 2 {
                // Reference: the old algorithm.
                let mut all: Vec<Neighbor> = data
                    .rows()
                    .enumerate()
                    .map(|(i, row)| Neighbor::new(i as u32, metric.dist(&q, row)))
                    .collect();
                all.sort_unstable();
                all.truncate(k.min(data.len()));
                let got = engine.knn(&q, k);
                assert_eq!(got.len(), all.len(), "{metric:?} k={k}");
                for (g, e) in got.iter().zip(&all) {
                    assert_eq!(g.index, e.index, "{metric:?} k={k}");
                    assert_eq!(g.dist.to_bits(), e.dist.to_bits(), "{metric:?} k={k}");
                }
            }
        }
    }

    #[test]
    fn par_range_matches_serial_range() {
        let data = toy();
        let engine = LinearScan::new(&data, Metric::Cosine);
        for eps in [0.01f32, 0.2, 1.0, 2.0] {
            let mut serial = engine.range(data.row(2), eps);
            serial.sort_unstable();
            assert_eq!(engine.par_range(data.row(2), eps), serial);
        }
    }

    #[test]
    fn batch_range_rows_matches_individual_queries() {
        let data = toy();
        let engine = LinearScan::new(&data, Metric::Cosine);
        let batch = engine.batch_range_rows(&[0, 3, 5], 0.5);
        assert_eq!(batch.len(), 3);
        for (slot, &row) in [0usize, 3, 5].iter().enumerate() {
            assert_eq!(batch[slot], engine.range(data.row(row), 0.5));
        }
    }

    #[test]
    fn generic_and_specialized_modes_agree_bitwise() {
        let data = toy();
        for metric in [
            Metric::Cosine,
            Metric::Angular,
            Metric::Euclidean,
            Metric::SquaredEuclidean,
            Metric::NegDot,
        ] {
            let spec = LinearScan::new(&data, metric);
            let gen = LinearScan::with_kernel_mode(&data, metric, KernelMode::Generic);
            assert_eq!(spec.kernel_mode(), KernelMode::Specialized);
            assert_eq!(gen.kernel_mode(), KernelMode::Generic);
            let queries: Vec<&[f32]> = (0..data.len()).map(|i| data.row(i)).collect();
            for eps in [0.01f32, 0.3, 1.5] {
                let eps = if metric == Metric::NegDot {
                    eps - 1.0
                } else {
                    eps
                };
                assert_eq!(
                    spec.range_batch(&queries, eps),
                    gen.range_batch(&queries, eps),
                    "{metric:?} eps={eps}"
                );
                assert_eq!(
                    spec.range_count_batch(&queries, eps),
                    gen.range_count_batch(&queries, eps),
                    "{metric:?} eps={eps}"
                );
                for q in &queries {
                    assert_eq!(spec.range(q, eps), gen.range(q, eps));
                }
            }
            for (a, b) in spec
                .knn_batch(&queries, 4)
                .iter()
                .zip(gen.knn_batch(&queries, 4))
            {
                for (x, y) in a.iter().zip(&b) {
                    assert_eq!(x.index, y.index);
                    assert_eq!(x.dist.to_bits(), y.dist.to_bits());
                }
            }
        }
    }

    #[test]
    fn batch_accounting_is_identical_for_small_and_blocked_batches() {
        // The invariant: every batch entry point adds exactly
        // queries.len() * data.len() evaluations, whether the batch takes the
        // small fan-out path (< QUERY_BLOCK) or the blocked path.
        let data = toy();
        for mode in [KernelMode::Specialized, KernelMode::Generic] {
            let engine = LinearScan::with_kernel_mode(&data, Metric::Cosine, mode);
            let small: Vec<&[f32]> = (0..QUERY_BLOCK - 1)
                .map(|i| data.row(i % data.len()))
                .collect();
            let large: Vec<&[f32]> = (0..3 * QUERY_BLOCK)
                .map(|i| data.row(i % data.len()))
                .collect();

            engine.reset_distance_evaluations();
            let _ = engine.range_batch(&small, 0.3);
            assert_eq!(
                engine.distance_evaluations(),
                (small.len() * data.len()) as u64,
                "{mode:?} small range_batch"
            );

            engine.reset_distance_evaluations();
            let _ = engine.range_batch(&large, 0.3);
            assert_eq!(
                engine.distance_evaluations(),
                (large.len() * data.len()) as u64,
                "{mode:?} blocked range_batch"
            );

            engine.reset_distance_evaluations();
            let _ = engine.range_count_batch(&small, 0.3);
            let _ = engine.range_count_batch(&large, 0.3);
            assert_eq!(
                engine.distance_evaluations(),
                ((small.len() + large.len()) * data.len()) as u64,
                "{mode:?} range_count_batch"
            );

            engine.reset_distance_evaluations();
            let _ = engine.knn_batch(&small, 2);
            assert_eq!(
                engine.distance_evaluations(),
                (small.len() * data.len()) as u64,
                "{mode:?} knn_batch"
            );
        }
    }

    #[test]
    fn distance_evaluation_counter_tracks_work() {
        let data = toy();
        let engine = LinearScan::new(&data, Metric::Cosine);
        assert_eq!(engine.distance_evaluations(), 0);
        engine.range(data.row(0), 0.5);
        assert_eq!(engine.distance_evaluations(), data.len() as u64);
        engine.knn(data.row(0), 2);
        assert_eq!(engine.distance_evaluations(), 2 * data.len() as u64);
        engine.reset_distance_evaluations();
        assert_eq!(engine.distance_evaluations(), 0);
    }

    #[test]
    fn works_with_euclidean_metric_and_off_dataset_queries() {
        let data = toy();
        let engine = LinearScan::new(&data, Metric::Euclidean);
        assert_eq!(engine.metric(), Metric::Euclidean);
        let mut q = vec![0.999f32, 0.001];
        ops::normalize_in_place(&mut q);
        let hits = engine.range(&q, 0.2);
        assert!(hits.contains(&0));
        assert!(!hits.contains(&5));
        assert_eq!(engine.num_points(), 6);
        assert_eq!(engine.dataset().len(), 6);
    }
}
