//! Parallel scatter-gather over per-shard engines.
//!
//! [`ShardedEngine`] presents N engines — each indexing one contiguous slice
//! of a logical dataset — as a single [`RangeQueryEngine`]. Queries fan out
//! across the shards in parallel (rayon) and the per-shard answers are
//! merged so every result is **bit-identical** to the unsharded engine over
//! the concatenated dataset:
//!
//! * `range` — every shard reports its hits ascending in shard-local row
//!   ids; rebasing by the shard's global start offset and concatenating in
//!   shard order therefore reproduces the globally ascending hit list of the
//!   unsharded scan, element for element.
//! * `range_count` — the sum of per-shard counts.
//! * `knn` — each shard returns its local top-k; the local ids are rebased
//!   to global row ids **before** the lists are merged through the shared
//!   NaN-safe bounded selector ([`crate::topk::TopK`]), so duplicate-distance
//!   ties resolve by global index exactly as a single scan would.
//! * `distance_evaluations` — the sum over shards (each shard scans only its
//!   own rows, so the total equals the unsharded count for exact engines).
//!
//! The merge relies on every engine in this crate emitting `range` hits in
//! ascending row order (they all do — it is part of the engine contract the
//! agreement tests pin down) and on row-id rebasing being a strictly
//! monotone map from (shard, local) to global ids, which
//! [`laf_vector::ShardMap`] guarantees for contiguous slices.

use crate::engine::{Neighbor, RangeQueryEngine};
use crate::topk::TopK;
use laf_vector::{Metric, ShardMap, VectorError};
use rayon::prelude::*;

/// A scatter-gather [`RangeQueryEngine`] over per-shard engines.
///
/// Construction validates the fan-out invariants once (at least one shard,
/// uniform metric, engine sizes matching the [`ShardMap`]), so the query
/// paths can merge without re-checking.
pub struct ShardedEngine<'a> {
    shards: Vec<Box<dyn RangeQueryEngine + 'a>>,
    map: ShardMap,
}

impl<'a> ShardedEngine<'a> {
    /// Assemble a sharded engine from per-shard engines and the row layout
    /// they were built over.
    ///
    /// # Errors
    /// Returns [`VectorError::InvalidParameter`] when `shards` is empty,
    /// when the shard count or any shard's point count disagrees with
    /// `map`, or when the shards disagree on the metric.
    pub fn new(
        shards: Vec<Box<dyn RangeQueryEngine + 'a>>,
        map: ShardMap,
    ) -> Result<Self, VectorError> {
        if shards.is_empty() {
            return Err(VectorError::InvalidParameter(
                "a sharded engine needs at least one shard".to_string(),
            ));
        }
        if shards.len() != map.n_shards() {
            return Err(VectorError::InvalidParameter(format!(
                "{} shard engines but the shard map describes {} shards",
                shards.len(),
                map.n_shards()
            )));
        }
        let metric = shards[0].metric();
        for (s, engine) in shards.iter().enumerate() {
            if engine.metric() != metric {
                return Err(VectorError::InvalidParameter(format!(
                    "shard {s} answers under {:?} but shard 0 answers under {metric:?}",
                    engine.metric()
                )));
            }
            if engine.num_points() != map.shard_len(s) {
                return Err(VectorError::InvalidParameter(format!(
                    "shard {s} indexes {} points but the shard map assigns it {}",
                    engine.num_points(),
                    map.shard_len(s)
                )));
            }
        }
        Ok(Self { shards, map })
    }

    /// Number of shards queries fan out across.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// The global row layout of the shards.
    pub fn shard_map(&self) -> &ShardMap {
        &self.map
    }

    /// Rebase one shard's local hit list into global row ids.
    #[inline]
    fn rebase(&self, shard: usize, hits: Vec<u32>) -> Vec<u32> {
        let start = self.map.start(shard) as u32;
        hits.into_iter().map(|i| i + start).collect()
    }
}

impl RangeQueryEngine for ShardedEngine<'_> {
    fn num_points(&self) -> usize {
        self.map.total_rows()
    }

    fn metric(&self) -> Metric {
        self.shards[0].metric()
    }

    fn range(&self, q: &[f32], eps: f32) -> Vec<u32> {
        let per_shard: Vec<Vec<u32>> = (0..self.shards.len())
            .into_par_iter()
            .map(|s| self.rebase(s, self.shards[s].range(q, eps)))
            .collect();
        let total = per_shard.iter().map(Vec::len).sum();
        let mut merged = Vec::with_capacity(total);
        for hits in per_shard {
            merged.extend(hits);
        }
        merged
    }

    fn range_count(&self, q: &[f32], eps: f32) -> usize {
        self.shards
            .par_iter()
            .map(|engine| engine.range_count(q, eps))
            .sum()
    }

    fn knn(&self, q: &[f32], k: usize) -> Vec<Neighbor> {
        let per_shard: Vec<Vec<Neighbor>> = (0..self.shards.len())
            .into_par_iter()
            .map(|s| {
                let start = self.map.start(s) as u32;
                self.shards[s]
                    .knn(q, k)
                    .into_iter()
                    .map(|n| Neighbor::new(n.index + start, n.dist))
                    .collect()
            })
            .collect();
        let mut top = TopK::new(k.min(self.num_points()));
        for local in per_shard {
            top.extend(local);
        }
        top.into_sorted()
    }

    // `persist` stays `None`: the per-shard structures are persisted
    // individually by the snapshot layer (one engine section per shard), so
    // there is no single-engine structure to save here.

    fn distance_evaluations(&self) -> u64 {
        self.shards
            .iter()
            .map(|engine| engine.distance_evaluations())
            .sum()
    }

    fn reset_distance_evaluations(&self) {
        for engine in &self.shards {
            engine.reset_distance_evaluations();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{build_engine, EngineChoice};
    use crate::linear::LinearScan;
    use laf_vector::Dataset;

    fn clustered(n: usize, dim: usize, seed: u64) -> Dataset {
        // Small deterministic blob mixture, unit-normalized.
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f32 / (1u64 << 53) as f32 - 0.5
        };
        let rows: Vec<Vec<f32>> = (0..n)
            .map(|i| {
                let center = (i % 3) as f32;
                let mut row: Vec<f32> = (0..dim).map(|d| center + (d as f32) * 0.1).collect();
                for v in row.iter_mut() {
                    *v += next() * 0.3;
                }
                laf_vector::ops::normalize_in_place(&mut row);
                row
            })
            .collect();
        Dataset::from_rows(rows).unwrap()
    }

    /// Build a sharded engine over shard slices of `data`.
    fn build_sharded<'a>(
        shard_data: &'a [Dataset],
        map: &ShardMap,
        choice: EngineChoice,
        metric: Metric,
        eps: f32,
    ) -> ShardedEngine<'a> {
        let engines = shard_data
            .iter()
            .map(|d| build_engine(choice, d, metric, eps))
            .collect();
        ShardedEngine::new(engines, map.clone()).unwrap()
    }

    fn shard_slices(data: &Dataset, map: &ShardMap) -> Vec<Dataset> {
        let shared = data.clone().into_shared();
        (0..map.n_shards())
            .map(|s| shared.slice_rows(map.start(s), map.shard_len(s)).unwrap())
            .collect()
    }

    #[test]
    fn scatter_gather_matches_the_unsharded_oracle_bitwise() {
        let data = clustered(61, 6, 9);
        let eps = 0.25f32;
        for metric in [Metric::Cosine, Metric::Euclidean] {
            let oracle = LinearScan::new(&data, metric);
            for n in [1usize, 2, 3, 7] {
                let map = ShardMap::even_split(data.len(), n);
                let slices = shard_slices(&data, &map);
                let sharded = build_sharded(&slices, &map, EngineChoice::Linear, metric, eps);
                assert_eq!(sharded.num_points(), data.len());
                assert_eq!(sharded.metric(), metric);
                assert_eq!(sharded.n_shards(), n.min(data.len()));
                for qi in [0usize, 17, 42, 60] {
                    let q = data.row(qi);
                    assert_eq!(
                        sharded.range(q, eps),
                        oracle.range(q, eps),
                        "{metric:?} n={n} q={qi}: range must be bit-identical"
                    );
                    assert_eq!(sharded.range_count(q, eps), oracle.range_count(q, eps));
                    for k in [0usize, 1, 5, 61, 100] {
                        let got = sharded.knn(q, k);
                        let expected = oracle.knn(q, k);
                        assert_eq!(got.len(), expected.len(), "{metric:?} n={n} k={k}");
                        for (g, e) in got.iter().zip(&expected) {
                            assert_eq!(g.index, e.index, "{metric:?} n={n} k={k}");
                            assert_eq!(g.dist.to_bits(), e.dist.to_bits());
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn batch_defaults_agree_with_per_query_calls() {
        let data = clustered(40, 5, 3);
        let map = ShardMap::even_split(data.len(), 3);
        let slices = shard_slices(&data, &map);
        let sharded = build_sharded(&slices, &map, EngineChoice::Linear, Metric::Cosine, 0.3);
        let queries: Vec<&[f32]> = (0..8).map(|i| data.row(i * 3)).collect();
        let batch = sharded.range_batch(&queries, 0.3);
        let counts = sharded.range_count_batch(&queries, 0.3);
        let knns = sharded.knn_batch(&queries, 4);
        for (i, q) in queries.iter().enumerate() {
            assert_eq!(batch[i], sharded.range(q, 0.3));
            assert_eq!(counts[i], sharded.range_count(q, 0.3));
            assert_eq!(knns[i], sharded.knn(q, 4));
        }
    }

    #[test]
    fn evaluation_accounting_sums_over_shards() {
        let data = clustered(30, 4, 5);
        let map = ShardMap::even_split(data.len(), 2);
        let slices = shard_slices(&data, &map);
        let sharded = build_sharded(&slices, &map, EngineChoice::Linear, Metric::Cosine, 0.3);
        assert_eq!(sharded.distance_evaluations(), 0);
        sharded.range(data.row(0), 0.3);
        // A linear scan touches every row exactly once, shard by shard.
        assert_eq!(sharded.distance_evaluations(), data.len() as u64);
        sharded.reset_distance_evaluations();
        assert_eq!(sharded.distance_evaluations(), 0);
    }

    #[test]
    fn sharded_engine_does_not_persist_as_a_single_structure() {
        let data = clustered(20, 4, 7);
        let map = ShardMap::even_split(data.len(), 2);
        let slices = shard_slices(&data, &map);
        let sharded = build_sharded(&slices, &map, EngineChoice::Linear, Metric::Cosine, 0.3);
        assert!(sharded.persist().is_none());
    }

    #[test]
    fn construction_validates_the_fan_out_invariants() {
        let data = clustered(20, 4, 11);
        let map = ShardMap::even_split(data.len(), 2);
        let slices = shard_slices(&data, &map);

        // No shards at all.
        assert!(ShardedEngine::new(Vec::new(), map.clone()).is_err());

        // Shard count disagreeing with the map.
        let one: Vec<Box<dyn RangeQueryEngine>> =
            vec![Box::new(LinearScan::new(&slices[0], Metric::Cosine))];
        assert!(ShardedEngine::new(one, map.clone()).is_err());

        // Metric mismatch across shards.
        let mixed: Vec<Box<dyn RangeQueryEngine>> = vec![
            Box::new(LinearScan::new(&slices[0], Metric::Cosine)),
            Box::new(LinearScan::new(&slices[1], Metric::Euclidean)),
        ];
        assert!(ShardedEngine::new(mixed, map.clone()).is_err());

        // Engine size disagreeing with the map's layout.
        let short = slices[1].slice_rows(0, slices[1].len() - 1).unwrap();
        let wrong_size: Vec<Box<dyn RangeQueryEngine>> = vec![
            Box::new(LinearScan::new(&slices[0], Metric::Cosine)),
            Box::new(LinearScan::new(&short, Metric::Cosine)),
        ];
        assert!(ShardedEngine::new(wrong_size, map).is_err());
    }

    #[test]
    fn sharded_engine_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ShardedEngine<'static>>();
    }
}
