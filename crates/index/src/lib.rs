//! # laf-index
//!
//! Range-query and nearest-neighbor engines used by every clustering
//! algorithm in the LAF-DBSCAN reproduction.
//!
//! DBSCAN's cost is dominated by ε-range queries; the approximate baselines
//! the paper compares against differ mostly in *which neighbor-search
//! substrate they use*:
//!
//! * original DBSCAN, DBSCAN++ and LAF-DBSCAN issue exact range queries —
//!   [`LinearScan`] here;
//! * BLOCK-DBSCAN relies on a cover tree — [`CoverTree`];
//! * KNN-BLOCK DBSCAN relies on a FLANN-style k-means tree for approximate
//!   k-nearest-neighbor queries — [`KMeansTree`];
//! * ρ-approximate DBSCAN relies on an ε-grid — [`GridIndex`].
//!
//! All engines implement [`RangeQueryEngine`] so the clustering layer can be
//! written once and benchmarked against any substrate, and all engines count
//! the number of distance evaluations they perform
//! ([`RangeQueryEngine::distance_evaluations`]) so the benchmark harness can
//! report *work saved* in addition to wall-clock time.
//!
//! For datasets split into shards, [`ShardedEngine`] fans each query out
//! across per-shard engines in parallel and merges the answers
//! bit-identically to the unsharded path (row-id rebasing for `range`,
//! summation for `range_count`, a NaN-safe [`TopK`] merge for `knn`).

#![warn(missing_docs)]

pub mod cover_tree;
pub mod engine;
pub mod grid;
pub mod ivf;
pub mod kmeans_tree;
pub mod linear;
pub mod persist;
pub mod sharded;
pub mod topk;

pub use cover_tree::CoverTree;
pub use engine::{
    build_engine, build_engine_with_mode, EngineChoice, KernelMode, Neighbor, RangeQueryEngine,
    TotalDist,
};
pub use grid::{GridIndex, MIN_CELL_SIDE};
pub use ivf::IvfIndex;
pub use kmeans_tree::KMeansTree;
pub use linear::LinearScan;
pub use persist::{
    restore_engine, PersistError, PersistedCoverTree, PersistedCtNode, PersistedEngine,
};
pub use sharded::ShardedEngine;
pub use topk::TopK;
