//! Owned, serializable forms of the built range-query engines.
//!
//! Every engine in this crate indexes a **borrowed** [`Dataset`], so the
//! engines themselves cannot be stored in a snapshot. What *can* be stored is
//! the expensive part of their construction — grid cell assignments, k-means
//! tree nodes, IVF posting lists — as plain owned data. This module defines
//! those owned forms ([`PersistedEngine`] and its per-engine payloads), a
//! compact little-endian binary codec for them, and [`restore_engine`], which
//! re-attaches a persisted structure to a dataset without re-running the
//! bucketing / k-means work a fresh [`crate::build_engine`] would pay.
//!
//! Extraction is exposed through [`crate::RangeQueryEngine::persist`]: every
//! engine kind returns `Some(structure)` — the cover tree's node arena is
//! flattened like the k-means tree's ([`PersistedCoverTree`]) — so snapshots
//! never fall back to rebuilding from the [`crate::EngineChoice`] unless the
//! snapshot predates structure persistence (format v1).
//!
//! # Wire format (engine structure version 1)
//!
//! All integers little-endian:
//!
//! ```text
//! magic      4 bytes   b"LAFE"
//! version    u32       currently 1
//! kind       u32       0 = linear, 1 = grid, 2 = k-means tree, 3 = IVF,
//!                      4 = cover tree
//! metric     u8        0 cosine, 1 angular, 2 euclidean, 3 squared, 4 negdot
//! body       kind-specific (see the `encode_into` source)
//! ```
//!
//! The decoder validates every element count against the number of bytes
//! actually remaining **before** allocating, so a corrupted or hostile header
//! cannot request a multi-gigabyte allocation from a kilobyte payload (the
//! same discipline as the dataset decoder in `laf_vector::io`). Integrity is
//! the containing snapshot's job (per-section CRC-32 in format v2);
//! consistency with the dataset the structure is restored over is checked by
//! [`PersistedEngine::validate`].

use crate::cover_tree::CoverTree;
use crate::engine::{EngineChoice, RangeQueryEngine};
use crate::grid::GridIndex;
use crate::ivf::IvfIndex;
use crate::kmeans_tree::KMeansTree;
use crate::linear::LinearScan;
use bytes::{Buf, BufMut};
use laf_vector::{Dataset, Metric};
use std::fmt;

/// Magic bytes prefixing an encoded engine structure.
pub const ENGINE_MAGIC: &[u8; 4] = b"LAFE";
/// Current engine-structure format version. The decoder rejects any other.
pub const ENGINE_FORMAT_VERSION: u32 = 1;

const KIND_LINEAR: u32 = 0;
const KIND_GRID: u32 = 1;
const KIND_KMEANS_TREE: u32 = 2;
const KIND_IVF: u32 = 3;
const KIND_COVER: u32 = 4;

/// Error produced while encoding, decoding or restoring a persisted engine
/// structure.
#[derive(Debug)]
pub struct PersistError(String);

impl PersistError {
    pub(crate) fn new(msg: impl Into<String>) -> Self {
        Self(msg.into())
    }
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "persisted engine: {}", self.0)
    }
}

impl std::error::Error for PersistError {}

fn metric_tag(metric: Metric) -> u8 {
    match metric {
        Metric::Cosine => 0,
        Metric::Angular => 1,
        Metric::Euclidean => 2,
        Metric::SquaredEuclidean => 3,
        Metric::NegDot => 4,
    }
}

fn metric_from_tag(tag: u8) -> Result<Metric, PersistError> {
    Ok(match tag {
        0 => Metric::Cosine,
        1 => Metric::Angular,
        2 => Metric::Euclidean,
        3 => Metric::SquaredEuclidean,
        4 => Metric::NegDot,
        other => return Err(PersistError::new(format!("unknown metric tag {other}"))),
    })
}

/// Guard against allocation-bomb headers: `count` elements of at least
/// `min_bytes` each must fit in the bytes actually remaining.
fn check_count(
    count: u64,
    min_bytes: usize,
    remaining: usize,
    what: &str,
) -> Result<usize, PersistError> {
    let need = count
        .checked_mul(min_bytes as u64)
        .ok_or_else(|| PersistError::new(format!("{what} count {count} overflows")))?;
    if need > remaining as u64 {
        return Err(PersistError::new(format!(
            "{what} count {count} needs at least {need} bytes but only {remaining} remain"
        )));
    }
    Ok(count as usize)
}

/// One populated grid cell: quantized coordinates plus the dataset rows that
/// fall inside it.
#[derive(Debug, Clone, PartialEq)]
pub struct PersistedCell {
    /// Quantized cell coordinates, one entry per dimension.
    pub coords: Vec<i32>,
    /// Dataset rows bucketed into this cell.
    pub points: Vec<u32>,
}

/// The built structure of a [`GridIndex`]: the bucketing that
/// [`GridIndex::new`] computes by quantizing every row.
#[derive(Debug, Clone, PartialEq)]
pub struct PersistedGrid {
    /// Metric the grid answers queries under.
    pub metric: Metric,
    /// Cell side length in internal Euclidean units.
    pub cell_side: f32,
    /// Dimensionality of the indexed dataset (and of every cell coordinate).
    pub dim: u32,
    /// All populated cells, in construction order (the query kernels iterate
    /// cells in this order, so preserving it keeps answers byte-identical).
    pub cells: Vec<PersistedCell>,
}

/// One k-means tree node. Leaves carry points and no children; internal
/// nodes carry children and no points.
#[derive(Debug, Clone, PartialEq)]
pub struct PersistedKmNode {
    /// Mean of the points below this node.
    pub centroid: Vec<f32>,
    /// Child node ids (empty for leaves).
    pub children: Vec<u32>,
    /// Dataset rows stored at this node (leaves only).
    pub points: Vec<u32>,
}

/// The built structure of a [`KMeansTree`]: everything the recursive k-means
/// construction produces.
#[derive(Debug, Clone, PartialEq)]
pub struct PersistedKMeansTree {
    /// Metric the tree answers queries under.
    pub metric: Metric,
    /// Branching factor the tree was built with.
    pub branching: u32,
    /// Fraction of leaves each query visits.
    pub leaf_ratio: f64,
    /// Root node id (`None` only for an empty dataset).
    pub root: Option<u32>,
    /// Flat node arena; child ids index into it.
    pub nodes: Vec<PersistedKmNode>,
}

/// One IVF posting list with its coarse centroid.
#[derive(Debug, Clone, PartialEq)]
pub struct PersistedIvfList {
    /// Coarse quantizer centroid of this list.
    pub centroid: Vec<f32>,
    /// Dataset rows assigned to this list.
    pub points: Vec<u32>,
}

/// The built structure of an [`IvfIndex`]: the trained coarse quantizer and
/// its posting lists.
#[derive(Debug, Clone, PartialEq)]
pub struct PersistedIvf {
    /// Metric the index answers queries under.
    pub metric: Metric,
    /// Number of posting lists probed per query.
    pub nprobe: u32,
    /// Dimensionality of the centroids (and the indexed dataset).
    pub dim: u32,
    /// Non-empty posting lists.
    pub lists: Vec<PersistedIvfList>,
}

/// One cover-tree node. Leaves carry points and no children; internal nodes
/// carry children and no points (their center row is owned by one of the
/// child subtrees).
#[derive(Debug, Clone, PartialEq)]
pub struct PersistedCtNode {
    /// Dataset row index of this node's center.
    pub center: u32,
    /// Covering radius in the tree's internal Euclidean space.
    pub radius: f32,
    /// Child node ids (empty for leaves).
    pub children: Vec<u32>,
    /// Dataset rows stored at this node (leaves only).
    pub points: Vec<u32>,
}

/// The built structure of a [`CoverTree`]: the flat node arena the
/// farthest-point-sampling construction produces, plus the basis knob.
#[derive(Debug, Clone, PartialEq)]
pub struct PersistedCoverTree {
    /// Metric the tree answers queries under (internally the tree works in
    /// Euclidean space and converts thresholds; see [`crate::cover_tree`]).
    pub metric: Metric,
    /// Basis the tree was built with (strictly greater than 1).
    pub basis: f32,
    /// Root node id (`None` only for an empty dataset).
    pub root: Option<u32>,
    /// Flat node arena; child ids index into it.
    pub nodes: Vec<PersistedCtNode>,
}

/// An owned, serializable engine structure, extracted from a built engine via
/// [`RangeQueryEngine::persist`] and re-attached to a dataset via
/// [`restore_engine`].
///
/// The `Linear` variant is a deliberate no-op marker: a [`LinearScan`] has no
/// construction cost worth persisting, but recording it lets a snapshot say
/// "the engine was linear" without falling back to the config-rebuild path.
#[derive(Debug, Clone, PartialEq)]
pub enum PersistedEngine {
    /// Marker for an exact [`LinearScan`] (nothing to persist beyond the
    /// metric).
    Linear {
        /// Metric the scan answers queries under.
        metric: Metric,
    },
    /// A built [`GridIndex`].
    Grid(PersistedGrid),
    /// A built [`KMeansTree`].
    KMeansTree(PersistedKMeansTree),
    /// A built [`IvfIndex`].
    Ivf(PersistedIvf),
    /// A built [`CoverTree`].
    CoverTree(PersistedCoverTree),
}

impl PersistedEngine {
    /// Human-readable engine kind, used in error messages and bench reports.
    pub fn kind(&self) -> &'static str {
        match self {
            PersistedEngine::Linear { .. } => "linear",
            PersistedEngine::Grid(_) => "grid",
            PersistedEngine::KMeansTree(_) => "kmeans_tree",
            PersistedEngine::Ivf(_) => "ivf",
            PersistedEngine::CoverTree(_) => "cover_tree",
        }
    }

    /// Metric the persisted structure answers queries under.
    pub fn metric(&self) -> Metric {
        match self {
            PersistedEngine::Linear { metric } => *metric,
            PersistedEngine::Grid(g) => g.metric,
            PersistedEngine::KMeansTree(t) => t.metric,
            PersistedEngine::Ivf(i) => i.metric,
            PersistedEngine::CoverTree(t) => t.metric,
        }
    }

    /// Whether this structure is the built form of the given
    /// [`EngineChoice`] variant (kind comparison only; parameters such as the
    /// cell side are carried by the structure itself).
    pub fn matches_choice(&self, choice: &EngineChoice) -> bool {
        matches!(
            (self, choice),
            (PersistedEngine::Linear { .. }, EngineChoice::Linear)
                | (PersistedEngine::Grid(_), EngineChoice::Grid { .. })
                | (
                    PersistedEngine::KMeansTree(_),
                    EngineChoice::KMeansTree { .. }
                )
                | (PersistedEngine::Ivf(_), EngineChoice::Ivf { .. })
                | (
                    PersistedEngine::CoverTree(_),
                    EngineChoice::CoverTree { .. }
                )
        )
    }

    /// Append the binary encoding (see the [module docs](self)) to `buf`.
    pub fn encode_into(&self, buf: &mut impl BufMut) {
        buf.put_slice(ENGINE_MAGIC);
        buf.put_u32_le(ENGINE_FORMAT_VERSION);
        match self {
            PersistedEngine::Linear { metric } => {
                buf.put_u32_le(KIND_LINEAR);
                buf.put_u8(metric_tag(*metric));
            }
            PersistedEngine::Grid(g) => {
                buf.put_u32_le(KIND_GRID);
                buf.put_u8(metric_tag(g.metric));
                buf.put_f32_le(g.cell_side);
                buf.put_u32_le(g.dim);
                buf.put_u64_le(g.cells.len() as u64);
                for cell in &g.cells {
                    for &c in &cell.coords {
                        buf.put_i32_le(c);
                    }
                    buf.put_u32_le(cell.points.len() as u32);
                    for &p in &cell.points {
                        buf.put_u32_le(p);
                    }
                }
            }
            PersistedEngine::KMeansTree(t) => {
                buf.put_u32_le(KIND_KMEANS_TREE);
                buf.put_u8(metric_tag(t.metric));
                buf.put_u32_le(t.branching);
                buf.put_f64_le(t.leaf_ratio);
                match t.root {
                    Some(root) => {
                        buf.put_u8(1);
                        buf.put_u32_le(root);
                    }
                    None => {
                        buf.put_u8(0);
                        buf.put_u32_le(0);
                    }
                }
                let dim = t.nodes.first().map_or(0, |n| n.centroid.len());
                buf.put_u32_le(dim as u32);
                buf.put_u64_le(t.nodes.len() as u64);
                for node in &t.nodes {
                    for &x in &node.centroid {
                        buf.put_f32_le(x);
                    }
                    buf.put_u32_le(node.children.len() as u32);
                    for &c in &node.children {
                        buf.put_u32_le(c);
                    }
                    buf.put_u32_le(node.points.len() as u32);
                    for &p in &node.points {
                        buf.put_u32_le(p);
                    }
                }
            }
            PersistedEngine::Ivf(i) => {
                buf.put_u32_le(KIND_IVF);
                buf.put_u8(metric_tag(i.metric));
                buf.put_u32_le(i.nprobe);
                buf.put_u32_le(i.dim);
                buf.put_u64_le(i.lists.len() as u64);
                for list in &i.lists {
                    for &x in &list.centroid {
                        buf.put_f32_le(x);
                    }
                    buf.put_u32_le(list.points.len() as u32);
                    for &p in &list.points {
                        buf.put_u32_le(p);
                    }
                }
            }
            PersistedEngine::CoverTree(t) => {
                buf.put_u32_le(KIND_COVER);
                buf.put_u8(metric_tag(t.metric));
                buf.put_f32_le(t.basis);
                match t.root {
                    Some(root) => {
                        buf.put_u8(1);
                        buf.put_u32_le(root);
                    }
                    None => {
                        buf.put_u8(0);
                        buf.put_u32_le(0);
                    }
                }
                buf.put_u64_le(t.nodes.len() as u64);
                for node in &t.nodes {
                    buf.put_u32_le(node.center);
                    buf.put_f32_le(node.radius);
                    buf.put_u32_le(node.children.len() as u32);
                    for &c in &node.children {
                        buf.put_u32_le(c);
                    }
                    buf.put_u32_le(node.points.len() as u32);
                    for &p in &node.points {
                        buf.put_u32_le(p);
                    }
                }
            }
        }
    }

    /// Encode into a fresh byte vector (convenience over
    /// [`PersistedEngine::encode_into`]).
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        self.encode_into(&mut buf);
        buf
    }

    /// Decode a structure produced by [`PersistedEngine::encode_into`].
    ///
    /// # Errors
    /// Returns [`PersistError`] on bad magic, an unsupported version, an
    /// unknown kind or metric tag, element counts that exceed the remaining
    /// payload (allocation-bomb guard), truncation, or trailing bytes.
    pub fn decode(mut bytes: &[u8]) -> Result<Self, PersistError> {
        if bytes.remaining() < 13 {
            return Err(PersistError::new(format!(
                "{} bytes is shorter than the fixed header",
                bytes.remaining()
            )));
        }
        let mut magic = [0u8; 4];
        bytes.copy_to_slice(&mut magic);
        if &magic != ENGINE_MAGIC {
            return Err(PersistError::new(format!("bad magic {magic:?}")));
        }
        let version = bytes.get_u32_le();
        if version != ENGINE_FORMAT_VERSION {
            return Err(PersistError::new(format!(
                "unsupported engine structure version {version} (this reader supports {ENGINE_FORMAT_VERSION})"
            )));
        }
        let kind = bytes.get_u32_le();
        let metric = metric_from_tag(bytes.get_u8())?;
        let engine = match kind {
            KIND_LINEAR => PersistedEngine::Linear { metric },
            KIND_GRID => PersistedEngine::Grid(Self::decode_grid(&mut bytes, metric)?),
            KIND_KMEANS_TREE => {
                PersistedEngine::KMeansTree(Self::decode_kmeans_tree(&mut bytes, metric)?)
            }
            KIND_IVF => PersistedEngine::Ivf(Self::decode_ivf(&mut bytes, metric)?),
            KIND_COVER => PersistedEngine::CoverTree(Self::decode_cover(&mut bytes, metric)?),
            other => return Err(PersistError::new(format!("unknown engine kind {other}"))),
        };
        if bytes.remaining() != 0 {
            return Err(PersistError::new(format!(
                "{} trailing bytes after the engine structure",
                bytes.remaining()
            )));
        }
        Ok(engine)
    }

    fn decode_grid(bytes: &mut &[u8], metric: Metric) -> Result<PersistedGrid, PersistError> {
        if bytes.remaining() < 16 {
            return Err(PersistError::new("grid header truncated"));
        }
        let cell_side = bytes.get_f32_le();
        let dim = bytes.get_u32_le();
        let n_cells = bytes.get_u64_le();
        // Each cell carries at least `dim` i32 coordinates and a point count.
        let min_cell = (dim as usize).saturating_mul(4).saturating_add(4);
        let n_cells = check_count(n_cells, min_cell.max(4), bytes.remaining(), "grid cell")?;
        let mut cells = Vec::with_capacity(n_cells);
        for _ in 0..n_cells {
            if bytes.remaining() < dim as usize * 4 + 4 {
                return Err(PersistError::new("grid cell truncated"));
            }
            let mut coords = Vec::with_capacity(dim as usize);
            for _ in 0..dim {
                coords.push(bytes.get_i32_le());
            }
            let n_points = bytes.get_u32_le() as u64;
            let n_points = check_count(n_points, 4, bytes.remaining(), "grid cell point")?;
            let mut points = Vec::with_capacity(n_points);
            for _ in 0..n_points {
                points.push(bytes.get_u32_le());
            }
            cells.push(PersistedCell { coords, points });
        }
        Ok(PersistedGrid {
            metric,
            cell_side,
            dim,
            cells,
        })
    }

    fn decode_kmeans_tree(
        bytes: &mut &[u8],
        metric: Metric,
    ) -> Result<PersistedKMeansTree, PersistError> {
        if bytes.remaining() < 29 {
            return Err(PersistError::new("k-means tree header truncated"));
        }
        let branching = bytes.get_u32_le();
        let leaf_ratio = bytes.get_f64_le();
        let has_root = bytes.get_u8();
        let root_id = bytes.get_u32_le();
        let root = match has_root {
            0 => None,
            1 => Some(root_id),
            other => {
                return Err(PersistError::new(format!(
                    "invalid root presence flag {other}"
                )))
            }
        };
        let dim = bytes.get_u32_le() as usize;
        let n_nodes = bytes.get_u64_le();
        // Each node carries at least its centroid and two counts.
        let min_node = dim.saturating_mul(4).saturating_add(8);
        let n_nodes = check_count(n_nodes, min_node.max(8), bytes.remaining(), "k-means node")?;
        let mut nodes = Vec::with_capacity(n_nodes);
        for _ in 0..n_nodes {
            if bytes.remaining() < dim * 4 + 4 {
                return Err(PersistError::new("k-means node truncated"));
            }
            let mut centroid = Vec::with_capacity(dim);
            for _ in 0..dim {
                centroid.push(bytes.get_f32_le());
            }
            let n_children = bytes.get_u32_le() as u64;
            let n_children = check_count(n_children, 4, bytes.remaining(), "k-means child")?;
            let mut children = Vec::with_capacity(n_children);
            for _ in 0..n_children {
                children.push(bytes.get_u32_le());
            }
            if bytes.remaining() < 4 {
                return Err(PersistError::new("k-means node truncated"));
            }
            let n_points = bytes.get_u32_le() as u64;
            let n_points = check_count(n_points, 4, bytes.remaining(), "k-means leaf point")?;
            let mut points = Vec::with_capacity(n_points);
            for _ in 0..n_points {
                points.push(bytes.get_u32_le());
            }
            nodes.push(PersistedKmNode {
                centroid,
                children,
                points,
            });
        }
        Ok(PersistedKMeansTree {
            metric,
            branching,
            leaf_ratio,
            root,
            nodes,
        })
    }

    fn decode_ivf(bytes: &mut &[u8], metric: Metric) -> Result<PersistedIvf, PersistError> {
        if bytes.remaining() < 16 {
            return Err(PersistError::new("IVF header truncated"));
        }
        let nprobe = bytes.get_u32_le();
        let dim = bytes.get_u32_le();
        let n_lists = bytes.get_u64_le();
        let min_list = (dim as usize).saturating_mul(4).saturating_add(4);
        let n_lists = check_count(n_lists, min_list.max(4), bytes.remaining(), "IVF list")?;
        let mut lists = Vec::with_capacity(n_lists);
        for _ in 0..n_lists {
            if bytes.remaining() < dim as usize * 4 + 4 {
                return Err(PersistError::new("IVF list truncated"));
            }
            let mut centroid = Vec::with_capacity(dim as usize);
            for _ in 0..dim {
                centroid.push(bytes.get_f32_le());
            }
            let n_points = bytes.get_u32_le() as u64;
            let n_points = check_count(n_points, 4, bytes.remaining(), "IVF list point")?;
            let mut points = Vec::with_capacity(n_points);
            for _ in 0..n_points {
                points.push(bytes.get_u32_le());
            }
            lists.push(PersistedIvfList { centroid, points });
        }
        Ok(PersistedIvf {
            metric,
            nprobe,
            dim,
            lists,
        })
    }

    fn decode_cover(bytes: &mut &[u8], metric: Metric) -> Result<PersistedCoverTree, PersistError> {
        if bytes.remaining() < 17 {
            return Err(PersistError::new("cover tree header truncated"));
        }
        let basis = bytes.get_f32_le();
        let has_root = bytes.get_u8();
        let root_id = bytes.get_u32_le();
        let root = match has_root {
            0 => None,
            1 => Some(root_id),
            other => {
                return Err(PersistError::new(format!(
                    "invalid root presence flag {other}"
                )))
            }
        };
        let n_nodes = bytes.get_u64_le();
        // Each node carries at least its center, radius and two counts.
        let n_nodes = check_count(n_nodes, 16, bytes.remaining(), "cover-tree node")?;
        let mut nodes = Vec::with_capacity(n_nodes);
        for _ in 0..n_nodes {
            if bytes.remaining() < 12 {
                return Err(PersistError::new("cover-tree node truncated"));
            }
            let center = bytes.get_u32_le();
            let radius = bytes.get_f32_le();
            let n_children = bytes.get_u32_le() as u64;
            let n_children = check_count(n_children, 4, bytes.remaining(), "cover-tree child")?;
            let mut children = Vec::with_capacity(n_children);
            for _ in 0..n_children {
                children.push(bytes.get_u32_le());
            }
            if bytes.remaining() < 4 {
                return Err(PersistError::new("cover-tree node truncated"));
            }
            let n_points = bytes.get_u32_le() as u64;
            let n_points = check_count(n_points, 4, bytes.remaining(), "cover-tree leaf point")?;
            let mut points = Vec::with_capacity(n_points);
            for _ in 0..n_points {
                points.push(bytes.get_u32_le());
            }
            nodes.push(PersistedCtNode {
                center,
                radius,
                children,
                points,
            });
        }
        Ok(PersistedCoverTree {
            metric,
            basis,
            root,
            nodes,
        })
    }

    /// Check the structure is consistent with a dataset of `n_points` rows in
    /// `dim` dimensions: coordinate/centroid dimensionalities match, every
    /// point index is in range, every row is bucketed **exactly once** (a
    /// duplicated index cannot mask an omitted row), the k-means and cover
    /// tree arenas are single well-formed trees (so traversal terminates and
    /// visits each leaf at most once), and the structural parameters are in
    /// their valid domains.
    ///
    /// # Errors
    /// Returns [`PersistError`] naming the first inconsistency found.
    pub fn validate(&self, n_points: usize, dim: usize) -> Result<(), PersistError> {
        // Marks each bucketed row; a row seen twice is rejected immediately,
        // so the final exactly-once check reduces to comparing counts.
        fn mark_rows(
            points: &[u32],
            seen: &mut [bool],
            covered: &mut u64,
        ) -> Result<(), PersistError> {
            for &p in points {
                let Some(slot) = seen.get_mut(p as usize) else {
                    return Err(PersistError::new(format!(
                        "point index {p} out of range for {} dataset rows",
                        seen.len()
                    )));
                };
                if *slot {
                    return Err(PersistError::new(format!(
                        "point index {p} is bucketed more than once"
                    )));
                }
                *slot = true;
                *covered += 1;
            }
            Ok(())
        }
        let check_coverage = |covered: u64| -> Result<(), PersistError> {
            if covered != n_points as u64 {
                return Err(PersistError::new(format!(
                    "structure buckets {covered} points but the dataset has {n_points} rows"
                )));
            }
            Ok(())
        };
        let mut seen = vec![false; n_points];
        match self {
            PersistedEngine::Linear { .. } => Ok(()),
            PersistedEngine::Grid(g) => {
                if !g.cell_side.is_finite() || g.cell_side < crate::grid::MIN_CELL_SIDE {
                    return Err(PersistError::new(format!(
                        "grid cell side {} below the minimum {}",
                        g.cell_side,
                        crate::grid::MIN_CELL_SIDE
                    )));
                }
                if g.dim as usize != dim {
                    return Err(PersistError::new(format!(
                        "grid is {}-dimensional but the dataset is {dim}-dimensional",
                        g.dim
                    )));
                }
                let mut covered = 0u64;
                for cell in &g.cells {
                    if cell.coords.len() != dim {
                        return Err(PersistError::new("grid cell coordinate dimension mismatch"));
                    }
                    if cell.points.is_empty() {
                        return Err(PersistError::new("grid holds an empty cell"));
                    }
                    mark_rows(&cell.points, &mut seen, &mut covered)?;
                }
                check_coverage(covered)
            }
            PersistedEngine::KMeansTree(t) => {
                if t.branching < 2 {
                    return Err(PersistError::new(format!(
                        "branching {} below the minimum of 2",
                        t.branching
                    )));
                }
                if !(t.leaf_ratio > 0.0 && t.leaf_ratio <= 1.0) {
                    return Err(PersistError::new(format!(
                        "leaf ratio {} outside (0, 1]",
                        t.leaf_ratio
                    )));
                }
                let root = match t.root {
                    Some(root) if (root as usize) < t.nodes.len() => root as usize,
                    Some(root) => {
                        return Err(PersistError::new(format!(
                            "root id {root} out of range for {} nodes",
                            t.nodes.len()
                        )))
                    }
                    None if t.nodes.is_empty() && n_points == 0 => return Ok(()),
                    None => {
                        return Err(PersistError::new(
                            "tree has nodes or points but no root".to_string(),
                        ))
                    }
                };
                // The builder pushes children before their parent, so a
                // well-formed arena has every child id strictly below its
                // parent's and every node referenced by exactly one parent
                // (the root, pushed last, by none). Enforcing that shape
                // rules out cycles and shared subtrees — without it a
                // CRC-valid crafted section could make `traverse` loop
                // forever or visit a leaf twice.
                let mut has_parent = vec![false; t.nodes.len()];
                let mut covered = 0u64;
                for (id, node) in t.nodes.iter().enumerate() {
                    if node.centroid.len() != dim {
                        return Err(PersistError::new(
                            "k-means centroid dimension mismatch".to_string(),
                        ));
                    }
                    // Points live on leaves only: `traverse` never visits an
                    // internal node's point list, so points stored there
                    // would pass the coverage count yet be unreachable.
                    if !node.children.is_empty() && !node.points.is_empty() {
                        return Err(PersistError::new(format!(
                            "internal node {id} carries {} points (points belong to leaves)",
                            node.points.len()
                        )));
                    }
                    for &c in &node.children {
                        let c = c as usize;
                        if c >= id {
                            return Err(PersistError::new(format!(
                                "child id {c} is not strictly below its parent node {id}"
                            )));
                        }
                        if has_parent[c] {
                            return Err(PersistError::new(format!(
                                "node {c} is referenced by more than one parent"
                            )));
                        }
                        has_parent[c] = true;
                    }
                    mark_rows(&node.points, &mut seen, &mut covered)?;
                }
                // Exactly one parentless node — and it must be the root:
                // every other node then chains parent-to-parent (indices
                // strictly increasing) up to it, so the whole arena is
                // reachable from the root.
                if has_parent[root] {
                    return Err(PersistError::new(format!(
                        "root node {root} is referenced as another node's child"
                    )));
                }
                if let Some(orphan) = (0..t.nodes.len()).find(|&i| i != root && !has_parent[i]) {
                    return Err(PersistError::new(format!(
                        "node {orphan} is unreachable from the root"
                    )));
                }
                check_coverage(covered)
            }
            PersistedEngine::Ivf(i) => {
                if i.dim as usize != dim {
                    return Err(PersistError::new(format!(
                        "IVF centroids are {}-dimensional but the dataset is {dim}-dimensional",
                        i.dim
                    )));
                }
                if n_points > 0 && (i.nprobe == 0 || i.nprobe as usize > i.lists.len()) {
                    return Err(PersistError::new(format!(
                        "nprobe {} outside 1..={} lists",
                        i.nprobe,
                        i.lists.len()
                    )));
                }
                let mut covered = 0u64;
                for list in &i.lists {
                    if list.centroid.len() != dim {
                        return Err(PersistError::new(
                            "IVF centroid dimension mismatch".to_string(),
                        ));
                    }
                    if list.points.is_empty() {
                        return Err(PersistError::new("IVF holds an empty posting list"));
                    }
                    mark_rows(&list.points, &mut seen, &mut covered)?;
                }
                check_coverage(covered)
            }
            PersistedEngine::CoverTree(t) => {
                if !(t.basis.is_finite() && t.basis > 1.0) {
                    return Err(PersistError::new(format!(
                        "cover-tree basis {} is not greater than 1",
                        t.basis
                    )));
                }
                let root = match t.root {
                    Some(root) if (root as usize) < t.nodes.len() => root as usize,
                    Some(root) => {
                        return Err(PersistError::new(format!(
                            "root id {root} out of range for {} nodes",
                            t.nodes.len()
                        )))
                    }
                    None if t.nodes.is_empty() && n_points == 0 => return Ok(()),
                    None => {
                        return Err(PersistError::new(
                            "tree has nodes or points but no root".to_string(),
                        ))
                    }
                };
                // Same shape discipline as the k-means arena (children are
                // pushed before their parent): child ids strictly below the
                // parent's and exactly one parentless node, the root — this
                // rules out cycles and shared subtrees, so the recursive
                // range/knn traversals terminate and visit each leaf once.
                let mut has_parent = vec![false; t.nodes.len()];
                let mut covered = 0u64;
                for (id, node) in t.nodes.iter().enumerate() {
                    if node.center as usize >= n_points {
                        return Err(PersistError::new(format!(
                            "node {id} center {} out of range for {n_points} dataset rows",
                            node.center
                        )));
                    }
                    if !(node.radius.is_finite() && node.radius >= 0.0) {
                        return Err(PersistError::new(format!(
                            "node {id} radius {} is not a finite non-negative value",
                            node.radius
                        )));
                    }
                    // Points live on leaves only: the traversals never read
                    // an internal node's point list, so points stored there
                    // would pass the coverage count yet be unreachable.
                    if !node.children.is_empty() && !node.points.is_empty() {
                        return Err(PersistError::new(format!(
                            "internal node {id} carries {} points (points belong to leaves)",
                            node.points.len()
                        )));
                    }
                    for &c in &node.children {
                        let c = c as usize;
                        if c >= id {
                            return Err(PersistError::new(format!(
                                "child id {c} is not strictly below its parent node {id}"
                            )));
                        }
                        if has_parent[c] {
                            return Err(PersistError::new(format!(
                                "node {c} is referenced by more than one parent"
                            )));
                        }
                        has_parent[c] = true;
                    }
                    mark_rows(&node.points, &mut seen, &mut covered)?;
                }
                if has_parent[root] {
                    return Err(PersistError::new(format!(
                        "root node {root} is referenced as another node's child"
                    )));
                }
                if let Some(orphan) = (0..t.nodes.len()).find(|&i| i != root && !has_parent[i]) {
                    return Err(PersistError::new(format!(
                        "node {orphan} is unreachable from the root"
                    )));
                }
                check_coverage(covered)
            }
        }
    }
}

/// Re-attach a persisted engine structure to `data`, skipping the
/// construction work a fresh [`crate::build_engine`] would repeat. The
/// structure is [validated](PersistedEngine::validate) against the dataset
/// first; the resulting engine answers every query byte-identically to the
/// engine the structure was extracted from.
///
/// # Errors
/// Returns [`PersistError`] when the structure is inconsistent with `data`.
pub fn restore_engine<'a>(
    persisted: &PersistedEngine,
    data: &'a Dataset,
) -> Result<Box<dyn RangeQueryEngine + 'a>, PersistError> {
    persisted.validate(data.len(), data.dim())?;
    Ok(match persisted {
        PersistedEngine::Linear { metric } => Box::new(LinearScan::new(data, *metric)),
        PersistedEngine::Grid(g) => Box::new(GridIndex::from_persisted(data, g)?),
        PersistedEngine::KMeansTree(t) => Box::new(KMeansTree::from_persisted(data, t)?),
        PersistedEngine::Ivf(i) => Box::new(IvfIndex::from_persisted(data, i)?),
        PersistedEngine::CoverTree(t) => Box::new(CoverTree::from_persisted(data, t)?),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::build_engine;
    use laf_synth::EmbeddingMixtureConfig;

    fn sample_data() -> Dataset {
        EmbeddingMixtureConfig {
            n_points: 260,
            dim: 10,
            clusters: 4,
            noise_fraction: 0.2,
            seed: 91,
            ..Default::default()
        }
        .generate()
        .unwrap()
        .0
    }

    fn choices() -> Vec<EngineChoice> {
        vec![
            EngineChoice::Linear,
            EngineChoice::Grid { cell_side: 0.5 },
            EngineChoice::KMeansTree {
                branching: 4,
                leaf_ratio: 0.6,
            },
            EngineChoice::Ivf {
                nlist: 8,
                nprobe: 3,
            },
            EngineChoice::CoverTree { basis: 2.0 },
        ]
    }

    #[test]
    fn every_persistable_engine_round_trips_byte_identically() {
        let data = sample_data();
        for choice in choices() {
            let built = build_engine(choice, &data, Metric::Cosine, 0.3);
            let persisted = built.persist().expect("persistable engine");
            assert!(persisted.matches_choice(&choice), "{choice:?}");
            let bytes = persisted.encode();
            let decoded = PersistedEngine::decode(&bytes).unwrap();
            assert_eq!(decoded, persisted, "{choice:?}");
            let restored = restore_engine(&decoded, &data).unwrap();
            assert_eq!(restored.num_points(), data.len());
            assert_eq!(restored.metric(), Metric::Cosine);
            for &q in &[0usize, 100, 259] {
                assert_eq!(
                    restored.range(data.row(q), 0.3),
                    built.range(data.row(q), 0.3),
                    "{choice:?} q={q}"
                );
                let a = restored.knn(data.row(q), 5);
                let b = built.knn(data.row(q), 5);
                assert_eq!(a.len(), b.len(), "{choice:?} q={q}");
                for (x, y) in a.iter().zip(&b) {
                    assert_eq!(x.index, y.index, "{choice:?} q={q}");
                    assert_eq!(x.dist.to_bits(), y.dist.to_bits(), "{choice:?} q={q}");
                }
            }
        }
    }

    #[test]
    fn every_engine_kind_is_persistable() {
        let data = sample_data();
        let built = build_engine(
            EngineChoice::CoverTree { basis: 2.0 },
            &data,
            Metric::Cosine,
            0.3,
        );
        assert!(built.persist().is_some(), "cover tree flattens its arena");
        assert!(EngineChoice::CoverTree { basis: 2.0 }.persistable());
        assert!(EngineChoice::Linear.persistable());
    }

    #[test]
    fn decode_rejects_bad_magic_version_kind_and_metric() {
        let data = sample_data();
        let engine = build_engine(EngineChoice::Linear, &data, Metric::Cosine, 0.3);
        let bytes = engine.persist().unwrap().encode();
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(PersistedEngine::decode(&bad).is_err());
        let mut bad = bytes.clone();
        bad[4] = 99;
        assert!(PersistedEngine::decode(&bad)
            .unwrap_err()
            .to_string()
            .contains("version 99"));
        let mut bad = bytes.clone();
        bad[8] = 200;
        assert!(PersistedEngine::decode(&bad)
            .unwrap_err()
            .to_string()
            .contains("kind"));
        let mut bad = bytes.clone();
        bad[12] = 77;
        assert!(PersistedEngine::decode(&bad)
            .unwrap_err()
            .to_string()
            .contains("metric tag"));
        assert!(PersistedEngine::decode(&bytes[..6]).is_err());
        let mut extended = bytes;
        extended.push(0);
        assert!(PersistedEngine::decode(&extended)
            .unwrap_err()
            .to_string()
            .contains("trailing"));
    }

    #[test]
    fn allocation_bomb_headers_are_rejected_before_allocating() {
        let data = sample_data();
        for choice in [
            EngineChoice::Grid { cell_side: 0.5 },
            EngineChoice::KMeansTree {
                branching: 4,
                leaf_ratio: 0.6,
            },
            EngineChoice::Ivf {
                nlist: 8,
                nprobe: 3,
            },
        ] {
            let built = build_engine(choice, &data, Metric::Cosine, 0.3);
            let mut bytes = built.persist().unwrap().encode();
            // The element-count u64 sits right after the kind-specific fixed
            // header; overwrite it with u64::MAX at every plausible offset and
            // demand a clean error rather than an OOM / capacity panic.
            for offset in 13..bytes.len().min(64) {
                let mut bomb = bytes.clone();
                if offset + 8 > bomb.len() {
                    break;
                }
                bomb[offset..offset + 8].copy_from_slice(&u64::MAX.to_le_bytes());
                // Any outcome but a panic/OOM is acceptable; most offsets must
                // error out on the count-vs-remaining check.
                let _ = PersistedEngine::decode(&bomb);
            }
            // Targeted: the documented count field itself.
            let count_offset = match choice {
                EngineChoice::Grid { .. } => 21, // magic4 ver4 kind4 metric1 side4 dim4
                EngineChoice::KMeansTree { .. } => 34, // ... branching4 ratio8 root5 dim4
                EngineChoice::Ivf { .. } => 21,  // ... nprobe4 dim4
                _ => unreachable!(),
            };
            bytes[count_offset..count_offset + 8].copy_from_slice(&u64::MAX.to_le_bytes());
            let err = PersistedEngine::decode(&bytes).unwrap_err().to_string();
            assert!(
                err.contains("count") || err.contains("overflow"),
                "{choice:?}: {err}"
            );
        }
    }

    #[test]
    fn validate_rejects_out_of_range_points_and_bad_coverage() {
        let data = sample_data();
        let built = build_engine(
            EngineChoice::Ivf {
                nlist: 8,
                nprobe: 3,
            },
            &data,
            Metric::Cosine,
            0.3,
        );
        let persisted = built.persist().unwrap();
        // Consistent with its own dataset…
        persisted.validate(data.len(), data.dim()).unwrap();
        // …but not with a smaller or differently-shaped one.
        assert!(persisted.validate(10, data.dim()).is_err());
        assert!(persisted.validate(data.len(), data.dim() + 1).is_err());
        if let PersistedEngine::Ivf(mut ivf) = persisted {
            ivf.lists[0].points[0] = u32::MAX;
            assert!(PersistedEngine::Ivf(ivf)
                .validate(data.len(), data.dim())
                .unwrap_err()
                .to_string()
                .contains("out of range"));
        } else {
            unreachable!();
        }
    }

    #[test]
    fn validate_rejects_duplicated_rows_that_mask_omitted_ones() {
        // A duplicated index keeps the total count right, so a plain counter
        // would accept a structure that can never return the omitted row.
        let data = sample_data();
        let built = build_engine(
            EngineChoice::Ivf {
                nlist: 8,
                nprobe: 3,
            },
            &data,
            Metric::Cosine,
            0.3,
        );
        let PersistedEngine::Ivf(mut ivf) = built.persist().unwrap() else {
            unreachable!();
        };
        let dup = ivf.lists[1].points[0];
        ivf.lists[0].points[0] = dup;
        let err = PersistedEngine::Ivf(ivf)
            .validate(data.len(), data.dim())
            .unwrap_err()
            .to_string();
        assert!(err.contains("more than once"), "{err}");
    }

    #[test]
    fn validate_rejects_malformed_tree_arenas() {
        // A CRC-valid but cyclic / shared / disconnected arena must be
        // rejected at validation time — `traverse` would otherwise loop
        // forever or visit leaves twice while serving.
        let data = sample_data();
        let built = build_engine(
            EngineChoice::KMeansTree {
                branching: 4,
                leaf_ratio: 0.6,
            },
            &data,
            Metric::Cosine,
            0.3,
        );
        let PersistedEngine::KMeansTree(tree) = built.persist().unwrap() else {
            unreachable!();
        };
        let internal = tree
            .nodes
            .iter()
            .position(|n| !n.children.is_empty())
            .expect("tree has an internal node") as u32;

        // Self-referencing child (the minimal cycle).
        let mut cyclic = tree.clone();
        cyclic.nodes[internal as usize].children[0] = internal;
        let err = PersistedEngine::KMeansTree(cyclic)
            .validate(data.len(), data.dim())
            .unwrap_err()
            .to_string();
        assert!(err.contains("not strictly below"), "{err}");

        // Shared subtree: two parents pointing at the same child.
        let mut shared = tree.clone();
        let child = shared.nodes[internal as usize].children[0];
        *shared.nodes[internal as usize].children.last_mut().unwrap() = child;
        let err = PersistedEngine::KMeansTree(shared)
            .validate(data.len(), data.dim())
            .unwrap_err()
            .to_string();
        assert!(err.contains("more than one parent"), "{err}");

        // Disconnected node: drop a child edge, its subtree becomes orphaned.
        let mut orphaned = tree.clone();
        orphaned.nodes[internal as usize].children.pop();
        let err = PersistedEngine::KMeansTree(orphaned)
            .validate(data.len(), data.dim())
            .unwrap_err()
            .to_string();
        assert!(err.contains("unreachable"), "{err}");

        // Points on an internal node: coverage would still add up, but
        // `traverse` only visits leaf point lists, so those rows could never
        // be returned by a query.
        let mut misplaced = tree.clone();
        let leaf = misplaced
            .nodes
            .iter()
            .position(|n| n.children.is_empty() && !n.points.is_empty())
            .expect("tree has a populated leaf");
        let moved = std::mem::take(&mut misplaced.nodes[leaf].points);
        misplaced.nodes[internal as usize].points = moved;
        let err = PersistedEngine::KMeansTree(misplaced)
            .validate(data.len(), data.dim())
            .unwrap_err()
            .to_string();
        assert!(err.contains("points belong to leaves"), "{err}");
    }

    #[test]
    fn restore_preserves_tuning_parameters() {
        let data = sample_data();
        let tree = KMeansTree::new(&data, Metric::Cosine, 7, 0.35, 0xC0FFEE);
        let persisted = RangeQueryEngine::persist(&tree).unwrap();
        if let PersistedEngine::KMeansTree(p) = &persisted {
            let restored = KMeansTree::from_persisted(&data, p).unwrap();
            assert_eq!(restored.branching(), tree.branching());
            assert_eq!(restored.leaf_ratio(), tree.leaf_ratio());
            assert_eq!(restored.leaf_count(), tree.leaf_count());
        } else {
            unreachable!();
        }

        let ivf = IvfIndex::new(&data, Metric::Cosine, 9, 4, 0xC0FFEE);
        let persisted = RangeQueryEngine::persist(&ivf).unwrap();
        if let PersistedEngine::Ivf(p) = &persisted {
            let restored = IvfIndex::from_persisted(&data, p).unwrap();
            assert_eq!(restored.nlist(), ivf.nlist());
            assert_eq!(restored.nprobe(), ivf.nprobe());
        } else {
            unreachable!();
        }

        let grid = GridIndex::new(&data, Metric::Cosine, 0.07);
        let persisted = RangeQueryEngine::persist(&grid).unwrap();
        if let PersistedEngine::Grid(p) = &persisted {
            let restored = GridIndex::from_persisted(&data, p).unwrap();
            assert_eq!(restored.cell_side(), grid.cell_side());
            assert_eq!(restored.cell_count(), grid.cell_count());
        } else {
            unreachable!();
        }
    }

    #[test]
    fn empty_dataset_structures_round_trip() {
        let empty = Dataset::new(5).unwrap();
        let tree = KMeansTree::new(&empty, Metric::Cosine, 4, 0.5, 1);
        let persisted = RangeQueryEngine::persist(&tree).unwrap();
        let bytes = persisted.encode();
        let decoded = PersistedEngine::decode(&bytes).unwrap();
        let restored = restore_engine(&decoded, &empty).unwrap();
        assert_eq!(restored.num_points(), 0);
        assert!(restored.range(&[0.0; 5], 0.5).is_empty());
    }
}
