//! FLANN-style hierarchical k-means tree (the KNN-BLOCK DBSCAN substrate).
//!
//! KNN-BLOCK DBSCAN prunes DBSCAN's distance computations using approximate
//! k-nearest-neighbor queries answered by a k-means tree, tuned by two
//! parameters the paper controls explicitly: the **branching factor** (set to
//! 10) and the **ratio of leaves to check** (set to 0.6; swept 0.001–0.3 in
//! the trade-off study). This module implements that index: the dataset is
//! recursively partitioned by k-means into `branching` children per node, and
//! queries perform a best-bin-first traversal that stops after visiting
//! `leaf_ratio` of the leaves — so both knobs have exactly the paper's
//! semantics (smaller ratio ⇒ faster and less accurate).
//!
//! Queries are therefore **approximate**: `range` and `knn` may miss
//! neighbors that live in unvisited leaves. The exact-oracle comparison lives
//! in the tests, which check recall rather than equality.

use crate::engine::{KernelMode, Neighbor, RangeQueryEngine, TotalDist};
use crate::persist::{PersistError, PersistedEngine, PersistedKMeansTree, PersistedKmNode};
use laf_vector::{ops, Dataset, Metric, MetricKernel};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicU64, Ordering};

const LEAF_SIZE: usize = 24;
const KMEANS_ITERS: usize = 6;

#[derive(Debug)]
struct KmNode {
    centroid: Vec<f32>,
    /// `ops::norm(centroid)`, cached at construction for the specialized
    /// traversal kernel.
    centroid_norm: f32,
    children: Vec<u32>,
    /// Points stored at this node (leaves only).
    points: Vec<u32>,
}

/// Hierarchical k-means tree for approximate neighbor search.
pub struct KMeansTree<'a> {
    data: &'a Dataset,
    metric: Metric,
    kernel: MetricKernel,
    mode: KernelMode,
    branching: usize,
    leaf_ratio: f64,
    nodes: Vec<KmNode>,
    root: Option<u32>,
    n_leaves: usize,
    evaluations: AtomicU64,
}

impl<'a> KMeansTree<'a> {
    /// Build a k-means tree over `data`.
    ///
    /// `branching` is clamped to at least 2; `leaf_ratio` is clamped into
    /// `(0, 1]`.
    pub fn new(
        data: &'a Dataset,
        metric: Metric,
        branching: usize,
        leaf_ratio: f64,
        seed: u64,
    ) -> Self {
        Self::with_kernel_mode(
            data,
            metric,
            branching,
            leaf_ratio,
            seed,
            KernelMode::default(),
        )
    }

    /// [`KMeansTree::new`] with an explicit [`KernelMode`] for the k-means
    /// construction, best-bin-first traversal and leaf verification loops.
    pub fn with_kernel_mode(
        data: &'a Dataset,
        metric: Metric,
        branching: usize,
        leaf_ratio: f64,
        seed: u64,
        mode: KernelMode,
    ) -> Self {
        let branching = branching.max(2);
        let leaf_ratio = if leaf_ratio <= 0.0 {
            0.01
        } else {
            leaf_ratio.min(1.0)
        };
        let mut tree = Self {
            data,
            metric,
            kernel: MetricKernel::new(metric),
            mode,
            branching,
            leaf_ratio,
            nodes: Vec::new(),
            root: None,
            n_leaves: 0,
            evaluations: AtomicU64::new(0),
        };
        if !data.is_empty() {
            let mut rng = StdRng::seed_from_u64(seed);
            let all: Vec<u32> = (0..data.len() as u32).collect();
            let root = tree.build(all, &mut rng);
            tree.root = Some(root);
        }
        tree
    }

    /// The kernel mode the scan loops run on.
    pub fn kernel_mode(&self) -> KernelMode {
        self.mode
    }

    /// Rebuild a tree from a [persisted structure](PersistedKMeansTree),
    /// skipping every k-means iteration the original construction ran. The
    /// leaf count is recomputed from the node arena; the caller is expected to
    /// have [validated](PersistedEngine::validate) the structure against
    /// `data`.
    ///
    /// # Errors
    /// Returns [`PersistError`] when the clamped-parameter invariants of
    /// [`KMeansTree::new`] do not hold (branching < 2, leaf ratio outside
    /// `(0, 1]`).
    pub fn from_persisted(
        data: &'a Dataset,
        p: &PersistedKMeansTree,
    ) -> Result<Self, PersistError> {
        if p.branching < 2 {
            return Err(PersistError::new(format!(
                "branching {} below the minimum of 2",
                p.branching
            )));
        }
        if !(p.leaf_ratio > 0.0 && p.leaf_ratio <= 1.0) {
            return Err(PersistError::new(format!(
                "leaf ratio {} outside (0, 1]",
                p.leaf_ratio
            )));
        }
        let nodes: Vec<KmNode> = p
            .nodes
            .iter()
            .map(|n| KmNode {
                centroid: n.centroid.clone(),
                centroid_norm: ops::norm(&n.centroid),
                children: n.children.clone(),
                points: n.points.clone(),
            })
            .collect();
        let n_leaves = nodes.iter().filter(|n| n.children.is_empty()).count();
        Ok(Self {
            data,
            metric: p.metric,
            kernel: MetricKernel::new(p.metric),
            mode: KernelMode::default(),
            branching: p.branching as usize,
            leaf_ratio: p.leaf_ratio,
            nodes,
            root: p.root,
            n_leaves,
            evaluations: AtomicU64::new(0),
        })
    }

    /// The branching factor the tree was built with.
    pub fn branching(&self) -> usize {
        self.branching
    }

    /// The fraction of leaves each query visits.
    pub fn leaf_ratio(&self) -> f64 {
        self.leaf_ratio
    }

    /// Number of leaves (diagnostics / tests).
    pub fn leaf_count(&self) -> usize {
        self.n_leaves
    }

    #[inline]
    fn dist(&self, a: &[f32], b: &[f32]) -> f32 {
        self.evaluations.fetch_add(1, Ordering::Relaxed);
        self.metric.dist(a, b)
    }

    fn build(&mut self, points: Vec<u32>, rng: &mut StdRng) -> u32 {
        let centroid = ops::mean(
            points.iter().map(|&p| self.data.row(p as usize)),
            self.data.dim(),
        )
        .expect("build is never called with an empty point set");

        if points.len() <= LEAF_SIZE.max(self.branching) {
            let id = self.nodes.len() as u32;
            let centroid_norm = ops::norm(&centroid);
            self.nodes.push(KmNode {
                centroid,
                centroid_norm,
                children: Vec::new(),
                points,
            });
            self.n_leaves += 1;
            return id;
        }

        let assignment = self.kmeans(&points, rng);
        let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); self.branching];
        for (&p, &a) in points.iter().zip(&assignment) {
            buckets[a].push(p);
        }
        let non_empty: Vec<Vec<u32>> = buckets.into_iter().filter(|b| !b.is_empty()).collect();
        if non_empty.len() <= 1 {
            // k-means failed to split (identical points); make a leaf.
            let id = self.nodes.len() as u32;
            let centroid_norm = ops::norm(&centroid);
            self.nodes.push(KmNode {
                centroid,
                centroid_norm,
                children: Vec::new(),
                points,
            });
            self.n_leaves += 1;
            return id;
        }

        let children: Vec<u32> = non_empty.into_iter().map(|b| self.build(b, rng)).collect();
        let id = self.nodes.len() as u32;
        let centroid_norm = ops::norm(&centroid);
        self.nodes.push(KmNode {
            centroid,
            centroid_norm,
            children,
            points: Vec::new(),
        });
        id
    }

    /// A few Lloyd iterations over the given subset; returns the per-point
    /// cluster assignment in `0..branching`.
    fn kmeans(&self, points: &[u32], rng: &mut StdRng) -> Vec<usize> {
        let k = self.branching.min(points.len());
        let dim = self.data.dim();
        // Initialize centroids from random distinct points.
        let mut centroid_ids: Vec<usize> = (0..points.len()).collect();
        for i in 0..k {
            let j = rng.gen_range(i..points.len());
            centroid_ids.swap(i, j);
        }
        let mut centroids: Vec<Vec<f32>> = centroid_ids[..k]
            .iter()
            .map(|&i| self.data.row(points[i] as usize).to_vec())
            .collect();
        let mut assignment = vec![0usize; points.len()];
        // Norm cache only in specialized mode — the generic arm stays the
        // true pre-kernel baseline.
        let row_norms = match self.mode {
            KernelMode::Specialized => Some(self.data.row_norms()),
            KernelMode::Generic => None,
        };
        for _ in 0..KMEANS_ITERS {
            // Assign. The specialized arm reads row norms from the dataset
            // cache and recomputes centroid norms once per Lloyd iteration;
            // distances are bit-identical to the generic arm, so the built
            // tree does not depend on the kernel mode.
            let iter_norms: Vec<f32> = match self.mode {
                KernelMode::Specialized => centroids.iter().map(|c| ops::norm(c)).collect(),
                KernelMode::Generic => Vec::new(),
            };
            for (slot, &p) in points.iter().enumerate() {
                let row = self.data.row(p as usize);
                let mut best = 0usize;
                let mut best_d = f32::INFINITY;
                match row_norms {
                    None => {
                        for (c_idx, c) in centroids.iter().enumerate() {
                            let d = self.dist(row, c);
                            if d < best_d {
                                best_d = d;
                                best = c_idx;
                            }
                        }
                    }
                    Some(row_norms) => {
                        let prep = self
                            .kernel
                            .prepare_with_norm(row, row_norms.norm(p as usize));
                        for (c_idx, c) in centroids.iter().enumerate() {
                            self.evaluations.fetch_add(1, Ordering::Relaxed);
                            let d = self.kernel.dist(&prep, c, iter_norms[c_idx]);
                            if d < best_d {
                                best_d = d;
                                best = c_idx;
                            }
                        }
                    }
                }
                assignment[slot] = best;
            }
            // Update.
            let mut sums = vec![vec![0.0f32; dim]; k];
            let mut counts = vec![0usize; k];
            for (slot, &p) in points.iter().enumerate() {
                let a = assignment[slot];
                ops::axpy(1.0, self.data.row(p as usize), &mut sums[a]);
                counts[a] += 1;
            }
            for (c_idx, sum) in sums.into_iter().enumerate() {
                if counts[c_idx] > 0 {
                    let mut c = sum;
                    ops::scale_in_place(&mut c, 1.0 / counts[c_idx] as f32);
                    centroids[c_idx] = c;
                }
            }
        }
        assignment
    }

    /// Best-bin-first traversal visiting up to `leaf_budget` leaves; calls
    /// `visit` with each leaf's point list. The query is prepared once; every
    /// centroid comparison then costs a single dot product in specialized
    /// mode (centroid norms are cached on the nodes).
    fn traverse<F: FnMut(&[u32])>(&self, q: &[f32], mut visit: F) {
        let Some(root) = self.root else { return };
        // Query prep only in specialized mode.
        let prep = match self.mode {
            KernelMode::Specialized => Some(self.kernel.prepare(q)),
            KernelMode::Generic => None,
        };
        let leaf_budget = ((self.n_leaves as f64) * self.leaf_ratio).ceil().max(1.0) as usize;
        let mut visited = 0usize;
        let mut pq: BinaryHeap<Reverse<(TotalDist, u32)>> = BinaryHeap::new();
        pq.push(Reverse((TotalDist(0.0), root)));
        while let Some(Reverse((_, node_id))) = pq.pop() {
            if visited >= leaf_budget {
                break;
            }
            let node = &self.nodes[node_id as usize];
            if node.children.is_empty() {
                visit(&node.points);
                visited += 1;
                continue;
            }
            for &child in &node.children {
                let c = &self.nodes[child as usize];
                let d = match &prep {
                    None => self.dist(q, &c.centroid),
                    Some(prep) => {
                        self.evaluations.fetch_add(1, Ordering::Relaxed);
                        self.kernel.dist(prep, &c.centroid, c.centroid_norm)
                    }
                };
                pq.push(Reverse((TotalDist(d), child)));
            }
        }
    }
}

impl RangeQueryEngine for KMeansTree<'_> {
    fn num_points(&self) -> usize {
        self.data.len()
    }

    fn metric(&self) -> Metric {
        self.metric
    }

    fn range(&self, q: &[f32], eps: f32) -> Vec<u32> {
        let mut out = Vec::new();
        match self.mode {
            KernelMode::Generic => self.traverse(q, |points| {
                for &p in points {
                    if self.dist(q, self.data.row(p as usize)) < eps {
                        out.push(p);
                    }
                }
            }),
            KernelMode::Specialized => {
                let norms = self.data.row_norms();
                let probe = self.kernel.probe(q, eps);
                self.traverse(q, |points| {
                    for &p in points {
                        self.evaluations.fetch_add(1, Ordering::Relaxed);
                        let i = p as usize;
                        if self
                            .kernel
                            .within(&probe, self.data.row(i), norms.norm(i), norms.sq(i))
                        {
                            out.push(p);
                        }
                    }
                });
            }
        }
        out.sort_unstable();
        out
    }

    fn knn(&self, q: &[f32], k: usize) -> Vec<Neighbor> {
        if k == 0 {
            return Vec::new();
        }
        let mut best: Vec<Neighbor> = Vec::with_capacity(k + 1);
        // Query prep + norm cache only in specialized mode.
        let spec = match self.mode {
            KernelMode::Specialized => Some((self.data.row_norms(), self.kernel.prepare(q))),
            KernelMode::Generic => None,
        };
        self.traverse(q, |points| {
            for &p in points {
                let i = p as usize;
                let d = match &spec {
                    None => self.dist(q, self.data.row(i)),
                    Some((norms, prep)) => {
                        self.evaluations.fetch_add(1, Ordering::Relaxed);
                        self.kernel.dist(prep, self.data.row(i), norms.norm(i))
                    }
                };
                if best.len() < k || d < best.last().map(|n| n.dist).unwrap_or(f32::INFINITY) {
                    best.push(Neighbor::new(p, d));
                    best.sort_unstable();
                    best.truncate(k);
                }
            }
        });
        best
    }

    fn persist(&self) -> Option<PersistedEngine> {
        Some(PersistedEngine::KMeansTree(PersistedKMeansTree {
            metric: self.metric,
            branching: self.branching as u32,
            leaf_ratio: self.leaf_ratio,
            root: self.root,
            nodes: self
                .nodes
                .iter()
                .map(|n| PersistedKmNode {
                    centroid: n.centroid.clone(),
                    children: n.children.clone(),
                    points: n.points.clone(),
                })
                .collect(),
        }))
    }

    fn distance_evaluations(&self) -> u64 {
        self.evaluations.load(Ordering::Relaxed)
    }

    fn reset_distance_evaluations(&self) {
        self.evaluations.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::LinearScan;
    use laf_synth::EmbeddingMixtureConfig;

    fn sample_data() -> Dataset {
        EmbeddingMixtureConfig {
            n_points: 500,
            dim: 16,
            clusters: 8,
            noise_fraction: 0.2,
            seed: 23,
            ..Default::default()
        }
        .generate()
        .unwrap()
        .0
    }

    #[test]
    fn empty_dataset() {
        let data = Dataset::new(3).unwrap();
        let tree = KMeansTree::new(&data, Metric::Cosine, 4, 0.5, 1);
        assert!(tree.range(&[1.0, 0.0, 0.0], 0.5).is_empty());
        assert!(tree.knn(&[1.0, 0.0, 0.0], 5).is_empty());
        assert_eq!(tree.num_points(), 0);
    }

    #[test]
    fn parameters_are_clamped() {
        let data = sample_data();
        let tree = KMeansTree::new(&data, Metric::Cosine, 0, -1.0, 1);
        assert!(tree.branching() >= 2);
        assert!(tree.leaf_ratio() > 0.0 && tree.leaf_ratio() <= 1.0);
        let tree = KMeansTree::new(&data, Metric::Cosine, 4, 5.0, 1);
        assert_eq!(tree.leaf_ratio(), 1.0);
    }

    #[test]
    fn full_leaf_ratio_matches_exact_range() {
        let data = sample_data();
        let tree = KMeansTree::new(&data, Metric::Cosine, 5, 1.0, 7);
        let oracle = LinearScan::new(&data, Metric::Cosine);
        for &q in &[0usize, 111, 499] {
            for &eps in &[0.1f32, 0.3] {
                let expected = oracle.range(data.row(q), eps);
                let got = tree.range(data.row(q), eps);
                assert_eq!(got, expected, "q={q} eps={eps}");
            }
        }
    }

    #[test]
    fn partial_leaf_ratio_has_reasonable_recall_and_no_false_positives() {
        let data = sample_data();
        let tree = KMeansTree::new(&data, Metric::Cosine, 8, 0.4, 7);
        let oracle = LinearScan::new(&data, Metric::Cosine);
        let mut found = 0usize;
        let mut total = 0usize;
        for q in (0..data.len()).step_by(25) {
            let expected = oracle.range(data.row(q), 0.15);
            let got = tree.range(data.row(q), 0.15);
            for g in &got {
                assert!(expected.contains(g), "false positive neighbor {g}");
            }
            found += got.len();
            total += expected.len();
        }
        assert!(total > 0);
        let recall = found as f64 / total as f64;
        assert!(recall > 0.5, "recall too low: {recall}");
    }

    #[test]
    fn knn_self_is_nearest_with_full_budget() {
        let data = sample_data();
        let tree = KMeansTree::new(&data, Metric::Cosine, 6, 1.0, 3);
        for &q in &[1usize, 250, 499] {
            let knn = tree.knn(data.row(q), 5);
            assert_eq!(knn.len(), 5);
            assert_eq!(knn[0].index as usize, q);
            assert!(knn[0].dist < 1e-4);
            assert!(knn.windows(2).all(|w| w[0].dist <= w[1].dist));
        }
    }

    #[test]
    fn smaller_leaf_ratio_visits_fewer_points() {
        let data = sample_data();
        let fast = KMeansTree::new(&data, Metric::Cosine, 8, 0.05, 7);
        let slow = KMeansTree::new(&data, Metric::Cosine, 8, 1.0, 7);
        fast.reset_distance_evaluations();
        slow.reset_distance_evaluations();
        let _ = fast.range(data.row(10), 0.2);
        let _ = slow.range(data.row(10), 0.2);
        assert!(fast.distance_evaluations() < slow.distance_evaluations());
    }

    #[test]
    fn knn_k_zero_and_leaf_count() {
        let data = sample_data();
        let tree = KMeansTree::new(&data, Metric::Cosine, 4, 0.5, 11);
        assert!(tree.knn(data.row(0), 0).is_empty());
        assert!(tree.leaf_count() >= 2);
    }
}
