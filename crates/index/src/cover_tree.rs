//! Cover-tree style metric index (the BLOCK-DBSCAN substrate).
//!
//! BLOCK-DBSCAN accelerates DBSCAN with cover-tree based range queries whose
//! behaviour is controlled by a *basis* parameter (the paper sets it to 2 and
//! sweeps 1.1–5 in the trade-off study). This module implements a
//! hierarchical ball cover with the same role and the same knob: every node
//! covers its descendants within `radius`, and children shrink the covering
//! radius by roughly a factor of `basis` per level. Range queries prune whole
//! subtrees with the triangle inequality, and wholesale-accept subtrees that
//! are entirely inside the query ball.
//!
//! Cosine distance is not a metric, so — exactly like the paper does for its
//! Euclidean-only baselines — the tree operates internally in Euclidean space
//! over the (unit-normalized) vectors and converts thresholds through
//! Equation (1). Results are reported back in the engine's public metric.

use crate::engine::{Neighbor, RangeQueryEngine, TotalDist};
use crate::persist::{PersistError, PersistedCoverTree, PersistedCtNode, PersistedEngine};
use laf_vector::distance::DistanceMetric;
use laf_vector::{cosine_to_euclidean, euclidean_to_cosine, Dataset, EuclideanDistance, Metric};
use std::sync::atomic::{AtomicU64, Ordering};

const LEAF_SIZE: usize = 16;
const MAX_CHILDREN: usize = 24;

#[derive(Debug)]
struct Node {
    /// Dataset row index of this node's center.
    center: u32,
    /// Covering radius: every point in the subtree is within `radius` of the
    /// center (internal Euclidean distance).
    radius: f32,
    /// Child node ids (empty for leaves).
    children: Vec<u32>,
    /// Points owned directly by this node (all points for leaves, just the
    /// center for internal nodes).
    points: Vec<u32>,
}

/// Hierarchical ball-cover index with triangle-inequality pruning.
pub struct CoverTree<'a> {
    data: &'a Dataset,
    metric: Metric,
    basis: f32,
    nodes: Vec<Node>,
    root: Option<u32>,
    evaluations: AtomicU64,
}

impl<'a> CoverTree<'a> {
    /// Build a cover tree over `data`.
    ///
    /// `basis` must be greater than 1; values ≤ 1 are clamped to 1.1. Larger
    /// bases give shallower trees with coarser pruning (the paper's
    /// trade-off sweep varies exactly this knob).
    pub fn new(data: &'a Dataset, metric: Metric, basis: f32) -> Self {
        let basis = if basis <= 1.0 { 1.1 } else { basis };
        let mut tree = Self {
            data,
            metric,
            basis,
            nodes: Vec::new(),
            root: None,
            evaluations: AtomicU64::new(0),
        };
        if !data.is_empty() {
            let all: Vec<u32> = (0..data.len() as u32).collect();
            let root = tree.build(all);
            tree.root = Some(root);
        }
        tree
    }

    /// Re-attach a persisted node arena to `data`, skipping the
    /// farthest-point-sampling construction. Callers normally go through
    /// [`crate::restore_engine`], which validates the structure against the
    /// dataset first; the restored tree answers every query byte-identically
    /// to the tree the structure was extracted from (the arena determines
    /// the traversal completely).
    ///
    /// # Errors
    /// Returns [`PersistError`] when the structural parameters are outside
    /// their valid domains (deep consistency with the dataset is
    /// [`PersistedEngine::validate`]'s job).
    pub fn from_persisted(data: &'a Dataset, p: &PersistedCoverTree) -> Result<Self, PersistError> {
        if !(p.basis.is_finite() && p.basis > 1.0) {
            return Err(PersistError::new(format!(
                "cover-tree basis {} is not greater than 1",
                p.basis
            )));
        }
        match p.root {
            Some(root) if (root as usize) >= p.nodes.len() => {
                return Err(PersistError::new(format!(
                    "root id {root} out of range for {} nodes",
                    p.nodes.len()
                )));
            }
            None if !p.nodes.is_empty() => {
                return Err(PersistError::new("tree has nodes but no root".to_string()));
            }
            _ => {}
        }
        Ok(Self {
            data,
            metric: p.metric,
            basis: p.basis,
            nodes: p
                .nodes
                .iter()
                .map(|n| Node {
                    center: n.center,
                    radius: n.radius,
                    children: n.children.clone(),
                    points: n.points.clone(),
                })
                .collect(),
            root: p.root,
            evaluations: AtomicU64::new(0),
        })
    }

    /// The basis this tree was built with.
    pub fn basis(&self) -> f32 {
        self.basis
    }

    /// Number of nodes in the tree (diagnostics / tests).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    #[inline]
    fn euc(&self, a: &[f32], b: &[f32]) -> f32 {
        // Internal distances use Euclidean geometry; the public metric only
        // affects threshold conversion.
        EuclideanDistance.dist(a, b)
    }

    /// Convert a public-metric threshold into the internal Euclidean one.
    fn eps_to_internal(&self, eps: f32) -> f32 {
        match self.metric {
            Metric::Euclidean => eps,
            Metric::SquaredEuclidean => eps.max(0.0).sqrt(),
            Metric::Cosine => cosine_to_euclidean(eps),
            Metric::Angular => {
                // angular a = acos(1 - d_cos)/π  ⇒  d_cos = 1 - cos(aπ)
                let d_cos = 1.0 - (eps.clamp(0.0, 1.0) * std::f32::consts::PI).cos();
                cosine_to_euclidean(d_cos)
            }
            Metric::NegDot => {
                // For unit vectors -dot = d_cos - 1.
                cosine_to_euclidean(eps + 1.0)
            }
        }
    }

    /// Convert an internal Euclidean distance back to the public metric.
    fn dist_to_public(&self, d_euc: f32) -> f32 {
        match self.metric {
            Metric::Euclidean => d_euc,
            Metric::SquaredEuclidean => d_euc * d_euc,
            Metric::Cosine => euclidean_to_cosine(d_euc),
            Metric::Angular => {
                let d_cos = euclidean_to_cosine(d_euc);
                (1.0 - d_cos).clamp(-1.0, 1.0).acos() / std::f32::consts::PI
            }
            Metric::NegDot => euclidean_to_cosine(d_euc) - 1.0,
        }
    }

    fn build(&mut self, points: Vec<u32>) -> u32 {
        debug_assert!(!points.is_empty());
        let center = points[0];
        let center_row = self.data.row(center as usize);
        let radius = points
            .iter()
            .map(|&p| self.euc(center_row, self.data.row(p as usize)))
            .fold(0.0f32, f32::max);

        if points.len() <= LEAF_SIZE || radius <= 1e-7 {
            let id = self.nodes.len() as u32;
            self.nodes.push(Node {
                center,
                radius,
                children: Vec::new(),
                points,
            });
            return id;
        }

        // Farthest-point sampling of child centers until every point is
        // within radius/basis of some center (or we hit the fanout cap).
        let target = radius / self.basis;
        let mut centers: Vec<u32> = vec![center];
        // dist_to_nearest_center[i] tracks the distance of points[i] to its
        // closest chosen center.
        let mut nearest: Vec<f32> = points
            .iter()
            .map(|&p| self.euc(center_row, self.data.row(p as usize)))
            .collect();
        while centers.len() < MAX_CHILDREN {
            let (far_pos, &far_dist) = nearest
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .expect("non-empty");
            if far_dist <= target {
                break;
            }
            let new_center = points[far_pos];
            centers.push(new_center);
            let new_row = self.data.row(new_center as usize);
            for (i, &p) in points.iter().enumerate() {
                let d = self.euc(new_row, self.data.row(p as usize));
                if d < nearest[i] {
                    nearest[i] = d;
                }
            }
        }

        // Assign each point to its nearest center.
        let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); centers.len()];
        for &p in &points {
            let row = self.data.row(p as usize);
            let mut best = 0usize;
            let mut best_d = f32::INFINITY;
            for (c_idx, &c) in centers.iter().enumerate() {
                let d = self.euc(row, self.data.row(c as usize));
                if d < best_d {
                    best_d = d;
                    best = c_idx;
                }
            }
            buckets[best].push(p);
        }

        // Degenerate split (all points landed in one bucket): make a leaf to
        // guarantee termination.
        if buckets.iter().filter(|b| !b.is_empty()).count() <= 1 {
            let id = self.nodes.len() as u32;
            self.nodes.push(Node {
                center,
                radius,
                children: Vec::new(),
                points,
            });
            return id;
        }

        let children: Vec<u32> = buckets
            .into_iter()
            .filter(|b| !b.is_empty())
            .map(|b| self.build(b))
            .collect();

        let id = self.nodes.len() as u32;
        self.nodes.push(Node {
            center,
            radius,
            children,
            // The center is also a member of one of the child buckets, so the
            // subtree below already accounts for it; internal nodes own no
            // points of their own.
            points: Vec::new(),
        });
        id
    }

    /// Recursive range query in internal (Euclidean) space.
    fn range_rec(&self, node_id: u32, q: &[f32], eps_euc: f32, out: &mut Vec<u32>) {
        let node = &self.nodes[node_id as usize];
        let center_row = self.data.row(node.center as usize);
        self.evaluations.fetch_add(1, Ordering::Relaxed);
        let d_center = self.euc(q, center_row);

        // Entire subtree outside the query ball.
        if d_center - node.radius >= eps_euc {
            return;
        }

        if node.children.is_empty() {
            // Leaf: check owned points individually.
            for &p in &node.points {
                let d = if p == node.center {
                    d_center
                } else {
                    self.evaluations.fetch_add(1, Ordering::Relaxed);
                    self.euc(q, self.data.row(p as usize))
                };
                if d < eps_euc {
                    out.push(p);
                }
            }
            return;
        }

        // Internal node: its center lives in one of the children, so only the
        // children need to be visited.
        for &child in &node.children {
            self.range_rec(child, q, eps_euc, out);
        }
    }

    fn knn_rec(&self, node_id: u32, q: &[f32], heap: &mut Vec<Neighbor>, k: usize) {
        let node = &self.nodes[node_id as usize];
        let center_row = self.data.row(node.center as usize);
        self.evaluations.fetch_add(1, Ordering::Relaxed);
        let d_center = self.euc(q, center_row);

        let worst = if heap.len() < k {
            f32::INFINITY
        } else {
            heap.last().map(|n| n.dist).unwrap_or(f32::INFINITY)
        };
        if d_center - node.radius >= worst {
            return;
        }

        let push = |idx: u32, dist: f32, heap: &mut Vec<Neighbor>| {
            if heap.len() < k || dist < heap.last().map(|n| n.dist).unwrap_or(f32::INFINITY) {
                heap.push(Neighbor::new(idx, dist));
                heap.sort_unstable();
                heap.truncate(k);
            }
        };

        if node.children.is_empty() {
            for &p in &node.points {
                let d = if p == node.center {
                    d_center
                } else {
                    self.evaluations.fetch_add(1, Ordering::Relaxed);
                    self.euc(q, self.data.row(p as usize))
                };
                push(p, d, heap);
            }
            return;
        }

        // Visit children closest-first for better pruning (the center is a
        // member of one child's subtree, so it is not pushed here).
        let mut order: Vec<(TotalDist, u32)> = node
            .children
            .iter()
            .map(|&c| {
                let cn = &self.nodes[c as usize];
                self.evaluations.fetch_add(1, Ordering::Relaxed);
                (TotalDist(self.euc(q, self.data.row(cn.center as usize))), c)
            })
            .collect();
        order.sort_unstable();
        for (_, c) in order {
            self.knn_rec(c, q, heap, k);
        }
    }
}

impl RangeQueryEngine for CoverTree<'_> {
    fn num_points(&self) -> usize {
        self.data.len()
    }

    fn metric(&self) -> Metric {
        self.metric
    }

    fn range(&self, q: &[f32], eps: f32) -> Vec<u32> {
        let Some(root) = self.root else {
            return Vec::new();
        };
        let eps_euc = self.eps_to_internal(eps);
        let mut out = Vec::new();
        self.range_rec(root, q, eps_euc, &mut out);
        out.sort_unstable();
        out
    }

    fn knn(&self, q: &[f32], k: usize) -> Vec<Neighbor> {
        let Some(root) = self.root else {
            return Vec::new();
        };
        if k == 0 {
            return Vec::new();
        }
        let mut heap = Vec::with_capacity(k + 1);
        self.knn_rec(root, q, &mut heap, k.min(self.data.len()));
        for n in heap.iter_mut() {
            n.dist = self.dist_to_public(n.dist);
        }
        heap
    }

    fn persist(&self) -> Option<PersistedEngine> {
        Some(PersistedEngine::CoverTree(PersistedCoverTree {
            metric: self.metric,
            basis: self.basis,
            root: self.root,
            nodes: self
                .nodes
                .iter()
                .map(|n| PersistedCtNode {
                    center: n.center,
                    radius: n.radius,
                    children: n.children.clone(),
                    points: n.points.clone(),
                })
                .collect(),
        }))
    }

    fn distance_evaluations(&self) -> u64 {
        self.evaluations.load(Ordering::Relaxed)
    }

    fn reset_distance_evaluations(&self) {
        self.evaluations.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::LinearScan;
    use laf_synth::EmbeddingMixtureConfig;

    fn sample_data() -> Dataset {
        let cfg = EmbeddingMixtureConfig {
            n_points: 400,
            dim: 24,
            clusters: 6,
            noise_fraction: 0.2,
            seed: 17,
            ..Default::default()
        };
        cfg.generate().unwrap().0
    }

    #[test]
    fn empty_dataset_yields_empty_results() {
        let data = Dataset::new(4).unwrap();
        let tree = CoverTree::new(&data, Metric::Cosine, 2.0);
        assert_eq!(tree.num_points(), 0);
        assert!(tree.range(&[1.0, 0.0, 0.0, 0.0], 0.5).is_empty());
        assert!(tree.knn(&[1.0, 0.0, 0.0, 0.0], 3).is_empty());
    }

    #[test]
    fn basis_is_clamped() {
        let data = sample_data();
        let tree = CoverTree::new(&data, Metric::Cosine, 0.5);
        assert!(tree.basis() > 1.0);
    }

    #[test]
    fn range_matches_linear_scan_cosine() {
        let data = sample_data();
        let tree = CoverTree::new(&data, Metric::Cosine, 2.0);
        let oracle = LinearScan::new(&data, Metric::Cosine);
        for &q in &[0usize, 17, 99, 333] {
            for &eps in &[0.05f32, 0.2, 0.5] {
                let mut expected = oracle.range(data.row(q), eps);
                expected.sort_unstable();
                let got = tree.range(data.row(q), eps);
                assert_eq!(got, expected, "q={q} eps={eps}");
            }
        }
    }

    #[test]
    fn range_matches_linear_scan_euclidean() {
        let data = sample_data();
        let tree = CoverTree::new(&data, Metric::Euclidean, 1.5);
        let oracle = LinearScan::new(&data, Metric::Euclidean);
        for &q in &[3usize, 42, 250] {
            for &eps in &[0.2f32, 0.6, 1.2] {
                let mut expected = oracle.range(data.row(q), eps);
                expected.sort_unstable();
                assert_eq!(tree.range(data.row(q), eps), expected, "q={q} eps={eps}");
            }
        }
    }

    #[test]
    fn knn_matches_linear_scan() {
        let data = sample_data();
        let tree = CoverTree::new(&data, Metric::Cosine, 2.0);
        let oracle = LinearScan::new(&data, Metric::Cosine);
        for &q in &[5usize, 123, 399] {
            let expected = oracle.knn(data.row(q), 10);
            let got = tree.knn(data.row(q), 10);
            assert_eq!(got.len(), 10);
            let exp_idx: Vec<u32> = expected.iter().map(|n| n.index).collect();
            let got_idx: Vec<u32> = got.iter().map(|n| n.index).collect();
            // Distances must agree; ties may permute indices.
            for (e, g) in expected.iter().zip(&got) {
                assert!(
                    (e.dist - g.dist).abs() < 1e-4,
                    "q={q} {exp_idx:?} vs {got_idx:?}"
                );
            }
        }
    }

    #[test]
    fn pruning_saves_distance_evaluations_for_small_eps() {
        let data = sample_data();
        let tree = CoverTree::new(&data, Metric::Cosine, 2.0);
        tree.reset_distance_evaluations();
        let _ = tree.range(data.row(0), 0.02);
        let tree_evals = tree.distance_evaluations();
        assert!(
            tree_evals < data.len() as u64,
            "cover tree should prune: {tree_evals} >= {}",
            data.len()
        );
    }

    #[test]
    fn basis_changes_tree_structure_but_not_results() {
        let data = sample_data();
        let fine = CoverTree::new(&data, Metric::Cosine, 1.2);
        let coarse = CoverTree::new(&data, Metric::Cosine, 4.0);
        assert!(fine.node_count() > 1);
        assert!(coarse.node_count() > 1);
        assert_ne!(fine.node_count(), coarse.node_count());
        for &q in &[0usize, 57, 311] {
            assert_eq!(
                fine.range(data.row(q), 0.25),
                coarse.range(data.row(q), 0.25)
            );
        }
    }

    #[test]
    fn knn_k_zero_is_empty() {
        let data = sample_data();
        let tree = CoverTree::new(&data, Metric::Cosine, 2.0);
        assert!(tree.knn(data.row(0), 0).is_empty());
    }

    #[test]
    fn persisted_arena_round_trips_bit_identically() {
        let data = sample_data();
        let tree = CoverTree::new(&data, Metric::Cosine, 2.0);
        let persisted = tree.persist().expect("cover tree persists its arena");
        persisted.validate(data.len(), data.dim()).unwrap();
        let bytes = persisted.encode();
        let decoded = PersistedEngine::decode(&bytes).unwrap();
        assert_eq!(decoded, persisted, "codec round trip");
        let restored = crate::persist::restore_engine(&decoded, &data).unwrap();
        for &q in &[0usize, 17, 99, 333] {
            for &eps in &[0.05f32, 0.2, 0.5] {
                assert_eq!(
                    restored.range(data.row(q), eps),
                    tree.range(data.row(q), eps)
                );
            }
            assert_eq!(restored.knn(data.row(q), 10), tree.knn(data.row(q), 10));
        }
    }

    #[test]
    fn persisted_arena_rejects_inconsistent_structures() {
        let data = sample_data();
        let tree = CoverTree::new(&data, Metric::Cosine, 2.0);
        let PersistedEngine::CoverTree(good) = tree.persist().unwrap() else {
            panic!("wrong persisted kind");
        };
        // A center out of range.
        let mut bad = good.clone();
        bad.nodes[0].center = data.len() as u32;
        assert!(PersistedEngine::CoverTree(bad)
            .validate(data.len(), data.dim())
            .is_err());
        // A basis that would not have been accepted at construction.
        let mut bad = good.clone();
        bad.basis = 1.0;
        assert!(PersistedEngine::CoverTree(bad)
            .validate(data.len(), data.dim())
            .is_err());
        // Dropping a leaf's points breaks exactly-once coverage.
        let mut bad = good.clone();
        let leaf = bad
            .nodes
            .iter()
            .position(|n| !n.points.is_empty())
            .expect("tree has a leaf");
        bad.nodes[leaf].points.pop();
        assert!(PersistedEngine::CoverTree(bad)
            .validate(data.len(), data.dim())
            .is_err());
        // The pristine structure still validates.
        assert!(PersistedEngine::CoverTree(good)
            .validate(data.len(), data.dim())
            .is_ok());
    }
}
