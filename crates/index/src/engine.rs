//! The [`RangeQueryEngine`] abstraction and engine selection.

use laf_vector::{Dataset, Metric};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// NaN-safe total order over `f32` distances (IEEE 754 `totalOrder`, via
/// [`f32::total_cmp`]). Wrapping a distance in `TotalDist` makes it usable as
/// a sort key or inside [`Ord`]-requiring collections; NaNs sort after every
/// finite value instead of poisoning the comparison.
///
/// Equality follows the same total order (so `-0.0 != 0.0` and
/// `NaN == NaN`), keeping the `Eq`/`Ord` contract `a == b ⟺ cmp == Equal`
/// that derived IEEE `PartialEq` would violate.
#[derive(Debug, Clone, Copy)]
pub struct TotalDist(pub f32);

impl PartialEq for TotalDist {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}

impl Eq for TotalDist {}

impl PartialOrd for TotalDist {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for TotalDist {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// A neighbor returned by a k-nearest-neighbor query.
#[derive(Debug, Clone, Copy)]
pub struct Neighbor {
    /// Row index of the neighbor in the indexed dataset.
    pub index: u32,
    /// Distance from the query to the neighbor under the engine's metric.
    pub dist: f32,
}

impl Neighbor {
    /// Convenience constructor.
    pub fn new(index: u32, dist: f32) -> Self {
        Self { index, dist }
    }
}

// Neighbors order by distance (NaN-safe, through [`TotalDist`]) with the row
// index as tie-breaker, so `sort`/`sort_unstable` on a neighbor list is
// total, deterministic, and equivalent to the stable by-distance sorts the
// knn paths previously open-coded (candidates are generated in index order).
// Equality is defined through the same total order so the `Eq`/`Ord`
// contract holds even for NaN / signed-zero distances.
impl PartialEq for Neighbor {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}

impl Eq for Neighbor {}

impl PartialOrd for Neighbor {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Neighbor {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        TotalDist(self.dist)
            .cmp(&TotalDist(other.dist))
            .then_with(|| self.index.cmp(&other.index))
    }
}

/// Common interface of every neighbor-search substrate.
///
/// Engines are built over a borrowed [`Dataset`] and answer queries for
/// arbitrary query vectors (not only dataset rows), because LAF's cardinality
/// estimator is trained on held-out query points.
pub trait RangeQueryEngine: Send + Sync {
    /// Number of indexed points.
    fn num_points(&self) -> usize;

    /// The distance metric the engine answers queries under.
    fn metric(&self) -> Metric;

    /// Exact or approximate ε-range query: indices of all indexed points `x`
    /// with `dist(q, x) < eps`.
    ///
    /// Whether the result is exact depends on the engine; see each engine's
    /// documentation.
    fn range(&self, q: &[f32], eps: f32) -> Vec<u32>;

    /// Number of points within `eps` of `q`. Engines override this when they
    /// can count more cheaply than materializing the neighbor list.
    fn range_count(&self, q: &[f32], eps: f32) -> usize {
        self.range(q, eps).len()
    }

    /// k-nearest-neighbor query, closest first. `k` is clamped to the number
    /// of indexed points.
    fn knn(&self, q: &[f32], k: usize) -> Vec<Neighbor>;

    /// Batched ε-range query: one neighbor list per query, identical to
    /// calling [`RangeQueryEngine::range`] per query.
    ///
    /// The default implementation fans the queries out over the current
    /// rayon thread pool (engines are `Sync`, so concurrent `&self` queries
    /// are safe); `linear` and `grid` override it with cache-blocked kernels
    /// that additionally amortize dataset traversal across queries.
    fn range_batch(&self, queries: &[&[f32]], eps: f32) -> Vec<Vec<u32>> {
        queries.par_iter().map(|q| self.range(q, eps)).collect()
    }

    /// Batched neighbor count: one count per query, identical to calling
    /// [`RangeQueryEngine::range_count`] per query. Parallel by default, see
    /// [`RangeQueryEngine::range_batch`].
    fn range_count_batch(&self, queries: &[&[f32]], eps: f32) -> Vec<usize> {
        queries
            .par_iter()
            .map(|q| self.range_count(q, eps))
            .collect()
    }

    /// Batched k-nearest-neighbor query: one neighbor list per query,
    /// identical to calling [`RangeQueryEngine::knn`] per query. Parallel by
    /// default, see [`RangeQueryEngine::range_batch`].
    fn knn_batch(&self, queries: &[&[f32]], k: usize) -> Vec<Vec<Neighbor>> {
        queries.par_iter().map(|q| self.knn(q, k)).collect()
    }

    /// Extract the engine's built structure as owned, serializable data (see
    /// [`crate::persist`]), or `None` for engines whose construction is not
    /// worth persisting. The default is `None`; engines with an expensive
    /// build phase (grid bucketing, k-means tree construction, IVF training)
    /// override it so snapshots can skip the rebuild on warm starts via
    /// [`crate::restore_engine`].
    fn persist(&self) -> Option<crate::persist::PersistedEngine> {
        None
    }

    /// Total number of query-to-point distance evaluations performed so far.
    /// Used by the benchmark harness to report computation saved.
    fn distance_evaluations(&self) -> u64;

    /// Reset the distance-evaluation counter.
    fn reset_distance_evaluations(&self);
}

/// Which distance-kernel implementation an engine's scan loops run on.
///
/// Both modes produce **bit-identical results** (the specialized kernels are
/// certified against the generic evaluation — see [`laf_vector::kernel`]);
/// the generic mode exists for custom `DistanceMetric` implementations and as
/// the baseline arm of the kernel benchmarks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum KernelMode {
    /// Norm-cached, metric-specialized kernels ([`laf_vector::MetricKernel`])
    /// with the query-major mini-GEMM batch path. The default.
    #[default]
    Specialized,
    /// Plain per-call [`Metric::dist`] dispatch (the pre-kernel behavior).
    Generic,
}

/// Declarative engine selection, used in clusterer configs, CLI flags and
/// ablation benchmarks.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case", tag = "kind")]
#[derive(Default)]
pub enum EngineChoice {
    /// Exact brute-force scan.
    #[default]
    Linear,
    /// Cover-tree style metric tree. `basis` mirrors BLOCK-DBSCAN's cover
    /// tree basis parameter (paper default 2.0).
    CoverTree {
        /// Radius decay basis (> 1).
        basis: f32,
    },
    /// FLANN-style k-means tree for approximate search. `branching` and
    /// `leaf_ratio` mirror the two knobs the paper tunes for KNN-BLOCK
    /// DBSCAN (branching factor 10, ratio of leaves to check 0.6).
    KMeansTree {
        /// Fanout of each internal node.
        branching: usize,
        /// Fraction of leaves visited per query, in (0, 1].
        leaf_ratio: f64,
    },
    /// ε-grid index as used by ρ-approximate DBSCAN.
    Grid {
        /// Grid cell side length as a fraction of ε (Gan & Tao use ε/√d).
        cell_side: f32,
    },
    /// Inverted-file index (k-means coarse quantizer, probe the closest
    /// `nprobe` of `nlist` posting lists). Approximate.
    Ivf {
        /// Number of posting lists.
        nlist: usize,
        /// Number of lists probed per query.
        nprobe: usize,
    },
}

impl EngineChoice {
    /// Whether engines of this kind support structure persistence
    /// ([`RangeQueryEngine::persist`] returns `Some`). Every kind now does —
    /// the cover tree's arena flattening was the last to land — but the
    /// method is kept so callers stay robust to future non-persistable
    /// engines (and so older call sites keep compiling).
    pub fn persistable(&self) -> bool {
        true
    }
}

/// Build the engine described by `choice` over `data` under `metric`.
///
/// The grid engine additionally needs the query radius ε at construction
/// time; `eps_hint` provides it (ignored by the other engines).
pub fn build_engine<'a>(
    choice: EngineChoice,
    data: &'a Dataset,
    metric: Metric,
    eps_hint: f32,
) -> Box<dyn RangeQueryEngine + 'a> {
    build_engine_with_mode(choice, data, metric, eps_hint, KernelMode::default())
}

/// [`build_engine`] with an explicit [`KernelMode`]. The cover tree has no
/// specialized scan loop (its traversal is not a row scan), so the mode only
/// affects the row-scanning engines.
pub fn build_engine_with_mode<'a>(
    choice: EngineChoice,
    data: &'a Dataset,
    metric: Metric,
    eps_hint: f32,
    mode: KernelMode,
) -> Box<dyn RangeQueryEngine + 'a> {
    match choice {
        EngineChoice::Linear => Box::new(crate::linear::LinearScan::with_kernel_mode(
            data, metric, mode,
        )),
        EngineChoice::CoverTree { basis } => {
            Box::new(crate::cover_tree::CoverTree::new(data, metric, basis))
        }
        EngineChoice::KMeansTree {
            branching,
            leaf_ratio,
        } => Box::new(crate::kmeans_tree::KMeansTree::with_kernel_mode(
            data, metric, branching, leaf_ratio, 0xC0FFEE, mode,
        )),
        // The product is passed through unguarded: the single degenerate
        // cell-side guard lives in `GridIndex::new` (see
        // `crate::grid::MIN_CELL_SIDE`), so a tiny-but-valid product keeps
        // its requested geometry instead of being silently coarsened.
        EngineChoice::Grid { cell_side } => Box::new(crate::grid::GridIndex::with_kernel_mode(
            data,
            metric,
            eps_hint * cell_side,
            mode,
        )),
        EngineChoice::Ivf { nlist, nprobe } => Box::new(crate::ivf::IvfIndex::with_kernel_mode(
            data, metric, nlist, nprobe, 0xC0FFEE, mode,
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use laf_vector::Dataset;

    fn toy() -> Dataset {
        let mut d = Dataset::from_rows(vec![
            vec![1.0f32, 0.0],
            vec![0.9, 0.1],
            vec![0.0, 1.0],
            vec![-1.0, 0.0],
        ])
        .unwrap();
        d.normalize();
        d
    }

    #[test]
    fn neighbor_constructor() {
        let n = Neighbor::new(3, 0.25);
        assert_eq!(n.index, 3);
        assert_eq!(n.dist, 0.25);
    }

    #[test]
    fn default_choice_is_linear() {
        assert_eq!(EngineChoice::default(), EngineChoice::Linear);
    }

    #[test]
    fn build_engine_constructs_every_variant() {
        let data = toy();
        let choices = [
            EngineChoice::Linear,
            EngineChoice::CoverTree { basis: 2.0 },
            EngineChoice::KMeansTree {
                branching: 2,
                leaf_ratio: 1.0,
            },
            EngineChoice::Grid { cell_side: 0.5 },
            EngineChoice::Ivf {
                nlist: 2,
                nprobe: 2,
            },
        ];
        for c in choices {
            let engine = build_engine(c, &data, Metric::Cosine, 0.5);
            assert_eq!(engine.num_points(), 4, "engine {c:?}");
            assert_eq!(engine.metric(), Metric::Cosine);
            // Every engine must find the query point's duplicate region.
            let hits = engine.range(data.row(0), 0.2);
            assert!(hits.contains(&0), "engine {c:?} missed exact duplicate");
        }
    }

    #[test]
    fn engine_choice_serde_round_trip() {
        let c = EngineChoice::KMeansTree {
            branching: 10,
            leaf_ratio: 0.6,
        };
        let json = serde_json::to_string(&c).unwrap();
        let back: EngineChoice = serde_json::from_str(&json).unwrap();
        assert_eq!(c, back);
    }
}
