//! Property tests: every exact engine agrees with the brute-force oracle,
//! and approximate engines never report false positives.

use laf_index::{CoverTree, GridIndex, KMeansTree, LinearScan, RangeQueryEngine};
use laf_vector::{cosine_to_euclidean, ops, Dataset, Metric};
use proptest::prelude::*;

fn unit_rows(dim: usize, max_rows: usize) -> impl Strategy<Value = Vec<Vec<f32>>> {
    prop::collection::vec(
        prop::collection::vec(-1.0f32..1.0, dim).prop_filter("non-zero", |v| ops::norm(v) > 1e-3),
        4..max_rows,
    )
    .prop_map(|rows| {
        rows.into_iter()
            .map(|mut r| {
                ops::normalize_in_place(&mut r);
                r
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn cover_tree_agrees_with_linear_scan(
        rows in unit_rows(8, 60),
        eps in 0.05f32..1.5,
        q_pick in 0usize..60
    ) {
        let data = Dataset::from_rows(rows).unwrap();
        let q = q_pick % data.len();
        let oracle = LinearScan::new(&data, Metric::Cosine);
        let tree = CoverTree::new(&data, Metric::Cosine, 2.0);
        let mut expected = oracle.range(data.row(q), eps);
        expected.sort_unstable();
        prop_assert_eq!(tree.range(data.row(q), eps), expected);
        prop_assert_eq!(
            tree.range_count(data.row(q), eps),
            oracle.range_count(data.row(q), eps)
        );
    }

    #[test]
    fn grid_agrees_with_linear_scan(
        rows in unit_rows(6, 50),
        eps in 0.05f32..1.0,
        q_pick in 0usize..50
    ) {
        let data = Dataset::from_rows(rows).unwrap();
        let q = q_pick % data.len();
        let oracle = LinearScan::new(&data, Metric::Cosine);
        let side = cosine_to_euclidean(eps) / (data.dim() as f32).sqrt();
        let grid = GridIndex::new(&data, Metric::Cosine, side);
        let mut expected = oracle.range(data.row(q), eps);
        expected.sort_unstable();
        prop_assert_eq!(grid.range(data.row(q), eps), expected);
    }

    #[test]
    fn kmeans_tree_full_budget_agrees_and_partial_budget_is_sound(
        rows in unit_rows(8, 60),
        eps in 0.05f32..1.0,
        q_pick in 0usize..60
    ) {
        let data = Dataset::from_rows(rows).unwrap();
        let q = q_pick % data.len();
        let oracle = LinearScan::new(&data, Metric::Cosine);
        let mut expected = oracle.range(data.row(q), eps);
        expected.sort_unstable();

        let full = KMeansTree::new(&data, Metric::Cosine, 4, 1.0, 5);
        prop_assert_eq!(full.range(data.row(q), eps), expected.clone());

        let partial = KMeansTree::new(&data, Metric::Cosine, 4, 0.3, 5);
        let got = partial.range(data.row(q), eps);
        for g in &got {
            prop_assert!(expected.contains(g), "false positive {}", g);
        }
    }

    #[test]
    fn knn_first_neighbor_is_self_for_all_engines(
        rows in unit_rows(8, 40),
        q_pick in 0usize..40
    ) {
        let data = Dataset::from_rows(rows).unwrap();
        let q = q_pick % data.len();
        let engines: Vec<Box<dyn RangeQueryEngine>> = vec![
            Box::new(LinearScan::new(&data, Metric::Cosine)),
            Box::new(CoverTree::new(&data, Metric::Cosine, 2.0)),
            Box::new(KMeansTree::new(&data, Metric::Cosine, 3, 1.0, 9)),
            Box::new(GridIndex::new(&data, Metric::Cosine, 0.2)),
        ];
        for engine in &engines {
            let knn = engine.knn(data.row(q), 1);
            prop_assert_eq!(knn.len(), 1);
            prop_assert!(knn[0].dist < 1e-3, "self distance {}", knn[0].dist);
        }
    }
}
