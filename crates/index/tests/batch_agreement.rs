//! Cross-engine batch/sequential agreement and concurrency properties.
//!
//! * For **every** [`EngineChoice`], the batched entry points
//!   (`range_batch`, `range_count_batch`, `knn_batch`) must return exactly
//!   what the per-query calls return — the batched kernels are pure
//!   reorganizations of the same arithmetic.
//! * Engines are queried concurrently through `&self`; the atomic
//!   distance-evaluation counters must account for every evaluation exactly
//!   once regardless of the thread count.

use laf_index::{build_engine, EngineChoice, LinearScan, RangeQueryEngine};
use laf_vector::{ops, Dataset, Metric};
use proptest::prelude::*;

/// All engine variants, with parameters small enough for property-sized data.
fn all_choices() -> [EngineChoice; 5] {
    [
        EngineChoice::Linear,
        EngineChoice::CoverTree { basis: 2.0 },
        EngineChoice::KMeansTree {
            branching: 4,
            leaf_ratio: 1.0,
        },
        EngineChoice::Grid { cell_side: 0.4 },
        EngineChoice::Ivf {
            nlist: 4,
            nprobe: 4,
        },
    ]
}

fn unit_rows(dim: usize, max_rows: usize) -> impl Strategy<Value = Vec<Vec<f32>>> {
    prop::collection::vec(
        prop::collection::vec(-1.0f32..1.0, dim).prop_filter("non-zero", |v| ops::norm(v) > 1e-3),
        8..max_rows,
    )
    .prop_map(|rows| {
        rows.into_iter()
            .map(|mut r| {
                ops::normalize_in_place(&mut r);
                r
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn batched_queries_match_per_query_results_on_every_engine(
        rows in unit_rows(8, 48),
        eps in 0.05f32..1.2,
        k in 1usize..8
    ) {
        let data = Dataset::from_rows(rows).unwrap();
        // Mix of dataset rows and perturbed off-dataset queries, more
        // queries than one batch block so the blocked kernels split.
        let mut query_storage: Vec<Vec<f32>> = Vec::new();
        for i in 0..data.len() {
            query_storage.push(data.row(i).to_vec());
            if i % 3 == 0 {
                let mut q: Vec<f32> = data.row(i).iter().map(|x| x * 0.9 + 0.01).collect();
                ops::normalize_in_place(&mut q);
                query_storage.push(q);
            }
        }
        let queries: Vec<&[f32]> = query_storage.iter().map(Vec::as_slice).collect();

        for choice in all_choices() {
            let engine = build_engine(choice, &data, Metric::Cosine, eps);

            let batch_ranges = engine.range_batch(&queries, eps);
            let batch_counts = engine.range_count_batch(&queries, eps);
            let batch_knns = engine.knn_batch(&queries, k);
            prop_assert_eq!(batch_ranges.len(), queries.len());
            prop_assert_eq!(batch_counts.len(), queries.len());
            prop_assert_eq!(batch_knns.len(), queries.len());

            for (qi, q) in queries.iter().enumerate() {
                prop_assert_eq!(
                    &batch_ranges[qi],
                    &engine.range(q, eps),
                    "range_batch disagrees, engine {:?} query {}",
                    choice,
                    qi
                );
                prop_assert_eq!(
                    batch_counts[qi],
                    engine.range_count(q, eps),
                    "range_count_batch disagrees, engine {:?} query {}",
                    choice,
                    qi
                );
                prop_assert_eq!(
                    &batch_knns[qi],
                    &engine.knn(q, k),
                    "knn_batch disagrees, engine {:?} query {}",
                    choice,
                    qi
                );
            }
        }
    }
}

/// Deterministic unit-vector fan used by the concurrency tests.
fn fan_dataset(n: usize) -> Dataset {
    let rows: Vec<Vec<f32>> = (0..n)
        .map(|i| {
            let a = i as f32 * 0.013;
            vec![a.cos(), a.sin()]
        })
        .collect();
    Dataset::from_rows(rows).unwrap()
}

#[test]
fn two_threads_sharing_one_engine_count_every_evaluation() {
    let data = fan_dataset(400);
    let engine = LinearScan::new(&data, Metric::Cosine);

    // Single-threaded reference total for the whole workload.
    let workload = |engine: &LinearScan, lo: usize, hi: usize| {
        for i in lo..hi {
            std::hint::black_box(engine.range(data.row(i), 0.3));
            std::hint::black_box(engine.range_count(data.row(i), 0.2));
            std::hint::black_box(engine.knn(data.row(i), 5));
        }
    };
    workload(&engine, 0, data.len());
    let single_threaded_total = engine.distance_evaluations();
    engine.reset_distance_evaluations();

    // Same workload split across two threads hammering the shared engine.
    let n = data.len();
    std::thread::scope(|scope| {
        let engine = &engine;
        let mid = n / 2;
        let a = scope.spawn(move || workload(engine, 0, mid));
        let b = scope.spawn(move || workload(engine, mid, n));
        a.join().unwrap();
        b.join().unwrap();
    });
    assert_eq!(
        engine.distance_evaluations(),
        single_threaded_total,
        "atomic counters must not lose evaluations under concurrency"
    );
}

#[test]
fn parallel_batch_kernels_count_every_evaluation() {
    let data = fan_dataset(300);
    let queries: Vec<&[f32]> = (0..data.len()).map(|i| data.row(i)).collect();

    for choice in all_choices() {
        let engine = build_engine(choice, &data, Metric::Cosine, 0.3);
        // Construction itself may evaluate distances (k-means, cover sets);
        // only query-time work is compared.
        engine.reset_distance_evaluations();

        // Sequential reference.
        for q in &queries {
            std::hint::black_box(engine.range(q, 0.3));
        }
        let sequential = engine.distance_evaluations();
        engine.reset_distance_evaluations();

        let _ = engine.range_batch(&queries, 0.3);
        assert_eq!(
            engine.distance_evaluations(),
            sequential,
            "batched kernel must perform (and count) the same work, engine {choice:?}"
        );
    }
}
