//! Property test: the ε-grid is **exact** at every cell side.
//!
//! The grid prunes with per-cell bounding boxes, so its correctness must not
//! depend on the cell geometry — only its speed may. This test sweeps cell
//! sides across six orders of magnitude (including sides far below `1/32767`,
//! the regime where the old saturating `i16` quantization collapsed distinct
//! points into boundary cells and pruned away their true neighbors) and
//! checks `range`/`range_count` against the brute-force scan on random
//! normalized datasets.

use laf_index::{GridIndex, LinearScan, RangeQueryEngine, MIN_CELL_SIDE};
use laf_vector::{ops, Dataset, Metric};
use proptest::prelude::*;

fn unit_rows(dim: usize, max_rows: usize) -> impl Strategy<Value = Vec<Vec<f32>>> {
    prop::collection::vec(
        prop::collection::vec(-1.0f32..1.0, dim).prop_filter("non-zero", |v| ops::norm(v) > 1e-3),
        8..max_rows,
    )
    .prop_map(|rows| {
        rows.into_iter()
            .map(|mut r| {
                ops::normalize_in_place(&mut r);
                r
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn grid_range_agrees_with_linear_scan_across_extreme_cell_sides(
        rows in unit_rows(6, 40),
        eps in 0.05f32..1.2,
        side_exp in -6i32..1,
        metric_pick in 0usize..2,
    ) {
        let data = Dataset::from_rows(rows).unwrap();
        let metric = [Metric::Cosine, Metric::Euclidean][metric_pick];
        // Cell sides from 1e-6 (each point its own micro-cell, quantized
        // coordinates ~1e6) up to 1.0 (everything in a handful of cells).
        let side = 10f32.powi(side_exp);
        let grid = GridIndex::new(&data, metric, side);
        let oracle = LinearScan::new(&data, metric);
        for q in 0..data.len() {
            let query = data.row(q);
            let expected = oracle.range(query, eps);
            prop_assert_eq!(
                grid.range(query, eps),
                expected.clone(),
                "range disagrees: side={} metric={:?} q={}",
                side, metric, q
            );
            prop_assert_eq!(
                grid.range_count(query, eps),
                expected.len(),
                "range_count disagrees: side={} metric={:?} q={}",
                side, metric, q
            );
        }
    }

    #[test]
    fn degenerate_sides_are_clamped_and_stay_exact(
        rows in unit_rows(4, 24),
        bad_side in -1.0f32..0.0,
    ) {
        // Non-positive sides hit the single MIN_CELL_SIDE guard; the clamped
        // grid must still answer exactly.
        let data = Dataset::from_rows(rows).unwrap();
        let grid = GridIndex::new(&data, Metric::Cosine, bad_side);
        prop_assert_eq!(grid.cell_side(), MIN_CELL_SIDE);
        let oracle = LinearScan::new(&data, Metric::Cosine);
        for q in 0..data.len() {
            prop_assert_eq!(
                grid.range(data.row(q), 0.4),
                oracle.range(data.row(q), 0.4),
                "q={}", q
            );
        }
    }
}
