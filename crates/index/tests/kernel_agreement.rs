//! Generic-vs-specialized kernel agreement across every row-scanning engine.
//!
//! [`KernelMode::Specialized`] must be a pure performance change: for every
//! engine, metric, query shape and dataset backing, the results (hit lists,
//! counts, knn lists — down to the distance bits) must equal the
//! [`KernelMode::Generic`] baseline.

use laf_index::{build_engine_with_mode, EngineChoice, KernelMode};
use laf_synth::EmbeddingMixtureConfig;
use laf_vector::{Dataset, Metric};

/// A threshold that admits a meaningful neighborhood under each metric
/// (cosine eps 0.3 translated through the metric's own scale; the data is
/// unit-normalized, so Equation (1) applies).
fn eps_for(metric: Metric) -> f32 {
    metric.equivalent_threshold(0.3)
}

fn sample_data(n: usize, dim: usize, seed: u64) -> Dataset {
    EmbeddingMixtureConfig {
        n_points: n,
        dim,
        clusters: 6,
        noise_fraction: 0.25,
        seed,
        ..Default::default()
    }
    .generate()
    .unwrap()
    .0
}

fn engine_choices(dim: usize) -> Vec<EngineChoice> {
    vec![
        EngineChoice::Linear,
        EngineChoice::Grid {
            cell_side: 1.0 / (dim as f32).sqrt(),
        },
        EngineChoice::KMeansTree {
            branching: 4,
            leaf_ratio: 0.7,
        },
        EngineChoice::Ivf {
            nlist: 8,
            nprobe: 3,
        },
    ]
}

fn assert_engines_agree(data: &Dataset, label: &str) {
    // Odd batch sizes cover both the small fan-out path and the blocked
    // mini-GEMM path (including 4-lane tiles with a remainder).
    let batch_sizes = [1usize, 3, 17, 37];
    for metric in Metric::ALL {
        let eps = eps_for(metric);
        for choice in engine_choices(data.dim()) {
            let spec = build_engine_with_mode(choice, data, metric, eps, KernelMode::Specialized);
            let generic = build_engine_with_mode(choice, data, metric, eps, KernelMode::Generic);
            for &bs in &batch_sizes {
                let queries: Vec<&[f32]> = (0..bs.min(data.len()))
                    .map(|i| data.row(i * 7 % data.len()))
                    .collect();
                assert_eq!(
                    spec.range_batch(&queries, eps),
                    generic.range_batch(&queries, eps),
                    "{label} {metric:?} {choice:?} range_batch bs={bs}"
                );
                assert_eq!(
                    spec.range_count_batch(&queries, eps),
                    generic.range_count_batch(&queries, eps),
                    "{label} {metric:?} {choice:?} range_count_batch bs={bs}"
                );
                let spec_knn = spec.knn_batch(&queries, 5);
                let generic_knn = generic.knn_batch(&queries, 5);
                for (a, b) in spec_knn.iter().zip(&generic_knn) {
                    assert_eq!(a.len(), b.len());
                    for (x, y) in a.iter().zip(b) {
                        assert_eq!(x.index, y.index, "{label} {metric:?} {choice:?} knn");
                        assert_eq!(
                            x.dist.to_bits(),
                            y.dist.to_bits(),
                            "{label} {metric:?} {choice:?} knn dist"
                        );
                    }
                }
            }
            for q in (0..data.len()).step_by(29) {
                assert_eq!(
                    spec.range(data.row(q), eps),
                    generic.range(data.row(q), eps),
                    "{label} {metric:?} {choice:?} range q={q}"
                );
                assert_eq!(
                    spec.range_count(data.row(q), eps),
                    generic.range_count(data.row(q), eps),
                    "{label} {metric:?} {choice:?} range_count q={q}"
                );
            }
        }
    }
}

#[test]
fn specialized_kernels_match_generic_on_owned_backing() {
    let data = sample_data(250, 12, 41);
    assert_engines_agree(&data, "owned dim=12");
    // Odd dimension: tail handling of the unrolled kernels.
    let data = sample_data(180, 13, 43);
    assert_engines_agree(&data, "owned dim=13");
}

#[test]
fn specialized_kernels_match_generic_on_mapped_backing() {
    use std::io::Write;
    let owned = sample_data(200, 11, 47);
    let path = std::env::temp_dir().join(format!(
        "laf_index_kernel_mapped_{}.bin",
        std::process::id()
    ));
    std::fs::File::create(&path)
        .unwrap()
        .write_all(&laf_vector::io::encode(&owned))
        .unwrap();
    let map = laf_vector::mapped::map_file(&path).unwrap();
    let mapped = laf_vector::mapped::dataset_from_map(&map, 0, map.len()).unwrap();
    assert!(cfg!(target_endian = "big") || mapped.is_mapped());
    assert_engines_agree(&mapped, "mapped dim=11");
    // Mapped vs owned cross-check on the linear oracle: the backing itself
    // must not change any specialized result.
    for metric in Metric::ALL {
        let eps = eps_for(metric);
        let spec_owned = build_engine_with_mode(
            EngineChoice::Linear,
            &owned,
            metric,
            eps,
            KernelMode::Specialized,
        );
        let spec_mapped = build_engine_with_mode(
            EngineChoice::Linear,
            &mapped,
            metric,
            eps,
            KernelMode::Specialized,
        );
        for q in (0..owned.len()).step_by(13) {
            assert_eq!(
                spec_owned.range(owned.row(q), eps),
                spec_mapped.range(mapped.row(q), eps),
                "{metric:?} q={q}"
            );
        }
    }
    std::fs::remove_file(path).ok();
}

#[test]
fn unnormalized_data_agrees_too() {
    // The norm cache and degenerate-vector semantics must hold off the unit
    // sphere as well: scale rows by wildly varying factors and add an exact
    // zero row.
    let base = sample_data(120, 9, 53);
    let mut rows: Vec<Vec<f32>> = base
        .rows()
        .enumerate()
        .map(|(i, r)| {
            let scale = 0.001 + (i % 17) as f32 * 3.7;
            r.iter().map(|x| x * scale).collect()
        })
        .collect();
    rows.push(vec![0.0; 9]);
    let data = Dataset::from_rows(rows).unwrap();
    assert_engines_agree(&data, "unnormalized dim=9");
}
