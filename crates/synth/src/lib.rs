//! # laf-synth
//!
//! Synthetic workload generators for the LAF-DBSCAN reproduction.
//!
//! The paper evaluates on three proprietary-to-download-and-heavy corpora:
//! NYTimes bag-of-words vectors (random-projected to 256-d), 200-d GloVe
//! tweet embeddings, and 768-d MS MARCO passage embeddings produced by a
//! BERT-style dual encoder. None of those can be bundled here, so this crate
//! generates **synthetic stand-ins** that (a) share the statistical features
//! that matter to angular-distance DBSCAN — unit-normalized vectors,
//! directional clusters of skewed sizes, a tunable noise fraction, matching
//! dimensionality — and (b) run through the *same preprocessing pipeline*
//! the paper uses (Gaussian random projection + L2 normalization for the
//! bag-of-words family).
//!
//! The three generator families are:
//!
//! * [`EmbeddingMixtureConfig`] — a mixture of anisotropic Gaussian bumps on
//!   the unit sphere (a practical stand-in for von Mises–Fisher mixtures),
//!   used for the GloVe-like and MS MARCO-like presets.
//! * [`BagOfWordsConfig`] — Zipf-distributed sparse term counts over planted
//!   topics, Gaussian-random-projected and normalized, used for the
//!   NYTimes-like preset.
//! * [`catalog`] — named presets (`nyt_150k`, `glove_150k`, `ms_50k`,
//!   `ms_100k`, `ms_150k`) mirroring Table 1 of the paper, each scalable by a
//!   single factor so the full experiment suite stays laptop-feasible.
//!
//! Every generator is deterministic given its seed.

#![warn(missing_docs)]

pub mod bow;
pub mod catalog;
pub mod mixture;

pub use bow::BagOfWordsConfig;
pub use catalog::{DatasetCatalog, DatasetSpec, SyntheticDataset};
pub use mixture::EmbeddingMixtureConfig;

/// Ground-truth labels as assigned by a generator: `Some(cluster)` for points
/// drawn from a planted cluster, `None` for noise points.
///
/// Note the paper's evaluation never uses generator labels — it treats the
/// output of exact DBSCAN as ground truth — but the planted labels are
/// invaluable for testing the clustering stack itself.
pub type GeneratorLabels = Vec<Option<usize>>;
