//! Bag-of-words generator (NYTimes stand-in).
//!
//! The paper's NYT-150k dataset is built by sampling 150k NYTimes
//! bag-of-words vectors, Gaussian-random-projecting them to 256 dimensions
//! and L2-normalizing (the ANN-benchmark recipe). This module synthesizes
//! documents with the statistical features that matter for that pipeline:
//!
//! * a Zipf-distributed vocabulary (few very common words, long tail);
//! * planted topics, each with its own preferred vocabulary slice, so the
//!   projected vectors form directional clusters;
//! * Poisson-ish document lengths;
//! * a fraction of "off-topic" documents that act as noise.
//!
//! The output is produced by running the sparse counts through the *same*
//! [`GaussianRandomProjection`] + normalization code used for real data.

use crate::GeneratorLabels;
use laf_vector::{Dataset, GaussianRandomProjection, VectorError};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, Zipf};
use serde::{Deserialize, Serialize};

/// Configuration for the synthetic bag-of-words corpus.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BagOfWordsConfig {
    /// Number of documents to generate.
    pub n_docs: usize,
    /// Vocabulary size (dimensionality of the sparse count vectors).
    pub vocab_size: usize,
    /// Output dimensionality after Gaussian random projection
    /// (the paper projects NYTimes to 256).
    pub projected_dim: usize,
    /// Number of planted topics.
    pub topics: usize,
    /// Average number of word occurrences per document.
    pub avg_doc_len: usize,
    /// Probability that a word in an on-topic document is drawn from the
    /// topic's preferred vocabulary slice rather than the global background.
    pub topic_affinity: f64,
    /// Fraction of documents that are drawn purely from the background
    /// distribution (acting as noise), in `[0, 1)`.
    pub offtopic_fraction: f64,
    /// Zipf exponent for the word-frequency distribution.
    pub zipf_exponent: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for BagOfWordsConfig {
    fn default() -> Self {
        Self {
            n_docs: 2_000,
            vocab_size: 5_000,
            projected_dim: 256,
            topics: 15,
            avg_doc_len: 120,
            topic_affinity: 0.85,
            offtopic_fraction: 0.25,
            zipf_exponent: 1.1,
            seed: 7,
        }
    }
}

impl BagOfWordsConfig {
    /// Validate the configuration.
    ///
    /// # Errors
    /// Returns [`VectorError::InvalidParameter`] when any field is outside
    /// its legal range.
    pub fn validate(&self) -> Result<(), VectorError> {
        if self.n_docs == 0 || self.vocab_size == 0 || self.projected_dim == 0 {
            return Err(VectorError::InvalidParameter(
                "n_docs, vocab_size and projected_dim must be positive".into(),
            ));
        }
        if self.topics == 0 || self.topics > self.vocab_size {
            return Err(VectorError::InvalidParameter(
                "topics must be in 1..=vocab_size".into(),
            ));
        }
        if self.avg_doc_len == 0 {
            return Err(VectorError::InvalidParameter(
                "avg_doc_len must be positive".into(),
            ));
        }
        if !(0.0..=1.0).contains(&self.topic_affinity) {
            return Err(VectorError::InvalidParameter(
                "topic_affinity must be in [0, 1]".into(),
            ));
        }
        if !(0.0..1.0).contains(&self.offtopic_fraction) {
            return Err(VectorError::InvalidParameter(
                "offtopic_fraction must be in [0, 1)".into(),
            ));
        }
        if self.zipf_exponent <= 0.0 {
            return Err(VectorError::InvalidParameter(
                "zipf_exponent must be positive".into(),
            ));
        }
        Ok(())
    }

    /// Generate the projected, normalized dataset together with planted
    /// topic labels (`None` for off-topic / noise documents).
    ///
    /// # Errors
    /// Propagates validation errors and projection dimension errors.
    pub fn generate(&self) -> Result<(Dataset, GeneratorLabels), VectorError> {
        self.validate()?;
        let mut rng = StdRng::seed_from_u64(self.seed);
        let zipf = Zipf::new(self.vocab_size as u64, self.zipf_exponent)
            .map_err(|e| VectorError::InvalidParameter(format!("zipf: {e}")))?;

        // Each topic prefers a contiguous slice of the vocabulary (after a
        // random permutation, so slices are arbitrary word groups).
        let mut permutation: Vec<usize> = (0..self.vocab_size).collect();
        for i in (1..permutation.len()).rev() {
            let j = rng.gen_range(0..=i);
            permutation.swap(i, j);
        }
        let slice_len = (self.vocab_size / self.topics).max(1);

        let projection =
            GaussianRandomProjection::new(self.vocab_size, self.projected_dim, &mut rng)?;

        let mut sparse_rows: Vec<Vec<f32>> = Vec::with_capacity(self.n_docs);
        let mut labels: GeneratorLabels = Vec::with_capacity(self.n_docs);

        for _ in 0..self.n_docs {
            let off_topic = rng.gen_bool(self.offtopic_fraction);
            let topic = if off_topic {
                None
            } else {
                Some(rng.gen_range(0..self.topics))
            };
            let doc_len = sample_doc_len(self.avg_doc_len, &mut rng);
            let mut counts = vec![0.0f32; self.vocab_size];
            for _ in 0..doc_len {
                let word = match topic {
                    Some(t) if rng.gen_bool(self.topic_affinity) => {
                        // Word from the topic's preferred slice, Zipf-ranked
                        // within the slice.
                        let rank = (zipf.sample(&mut rng) as usize - 1) % slice_len;
                        permutation[(t * slice_len + rank) % self.vocab_size]
                    }
                    _ => {
                        // Background word, Zipf-ranked over the whole vocab.
                        let rank = (zipf.sample(&mut rng) as usize - 1) % self.vocab_size;
                        permutation[rank]
                    }
                };
                counts[word] += 1.0;
            }
            sparse_rows.push(counts);
            labels.push(topic);
        }

        let sparse = Dataset::from_rows(sparse_rows)?;
        let projected = projection.project_dataset(&sparse, true)?;
        Ok((projected, labels))
    }
}

/// Geometric-ish document length with the requested mean, at least 1.
fn sample_doc_len<R: Rng>(avg: usize, rng: &mut R) -> usize {
    // Uniform on [avg/2, 3*avg/2] is a good-enough length model and avoids
    // pathological short documents.
    let lo = (avg / 2).max(1);
    let hi = (3 * avg / 2).max(lo + 1);
    rng.gen_range(lo..hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use laf_vector::{CosineDistance, DistanceMetric};

    fn small() -> BagOfWordsConfig {
        BagOfWordsConfig {
            n_docs: 300,
            vocab_size: 800,
            projected_dim: 64,
            topics: 6,
            avg_doc_len: 60,
            seed: 13,
            ..Default::default()
        }
    }

    #[test]
    fn default_config_is_valid() {
        assert!(BagOfWordsConfig::default().validate().is_ok());
    }

    #[test]
    fn invalid_configs_rejected() {
        let base = small();
        for cfg in [
            BagOfWordsConfig {
                n_docs: 0,
                ..base.clone()
            },
            BagOfWordsConfig {
                vocab_size: 0,
                ..base.clone()
            },
            BagOfWordsConfig {
                projected_dim: 0,
                ..base.clone()
            },
            BagOfWordsConfig {
                topics: 0,
                ..base.clone()
            },
            BagOfWordsConfig {
                topics: 10_000,
                ..base.clone()
            },
            BagOfWordsConfig {
                avg_doc_len: 0,
                ..base.clone()
            },
            BagOfWordsConfig {
                topic_affinity: 1.5,
                ..base.clone()
            },
            BagOfWordsConfig {
                offtopic_fraction: 1.0,
                ..base.clone()
            },
            BagOfWordsConfig {
                zipf_exponent: 0.0,
                ..base
            },
        ] {
            assert!(cfg.generate().is_err(), "should reject {cfg:?}");
        }
    }

    #[test]
    fn generates_projected_normalized_documents() {
        let cfg = small();
        let (data, labels) = cfg.generate().unwrap();
        assert_eq!(data.len(), 300);
        assert_eq!(data.dim(), 64);
        assert_eq!(labels.len(), 300);
        assert!(data.is_normalized(1e-3));
        // Some documents should be off-topic and some on-topic.
        assert!(labels.iter().any(|l| l.is_none()));
        assert!(labels.iter().any(|l| l.is_some()));
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = small();
        let (a, la) = cfg.generate().unwrap();
        let (b, lb) = cfg.generate().unwrap();
        assert_eq!(a, b);
        assert_eq!(la, lb);
    }

    #[test]
    fn same_topic_documents_are_angularly_closer() {
        let cfg = BagOfWordsConfig {
            n_docs: 400,
            topics: 4,
            topic_affinity: 0.95,
            offtopic_fraction: 0.05,
            ..small()
        };
        let (data, labels) = cfg.generate().unwrap();
        let mut intra = Vec::new();
        let mut inter = Vec::new();
        for i in (0..data.len()).step_by(3) {
            for j in (i + 1..data.len()).step_by(5) {
                let d = CosineDistance.dist(data.row(i), data.row(j));
                match (labels[i], labels[j]) {
                    (Some(a), Some(b)) if a == b => intra.push(d),
                    (Some(_), Some(_)) => inter.push(d),
                    _ => {}
                }
            }
        }
        let mean = |v: &[f32]| v.iter().sum::<f32>() / v.len().max(1) as f32;
        assert!(!intra.is_empty() && !inter.is_empty());
        assert!(
            mean(&intra) < mean(&inter),
            "intra {} < inter {} expected",
            mean(&intra),
            mean(&inter)
        );
    }

    #[test]
    fn doc_len_sampler_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..100 {
            let l = sample_doc_len(10, &mut rng);
            assert!((5..15).contains(&l));
        }
        assert!(sample_doc_len(1, &mut rng) >= 1);
    }
}
