//! Directional Gaussian-mixture generator.
//!
//! Embedding spaces produced by neural encoders are, for the purposes of
//! angular-distance DBSCAN, well modelled by a mixture of directional
//! clusters on the unit sphere plus a fraction of isotropic "noise"
//! directions. This module draws such mixtures:
//!
//! 1. sample `clusters` unit-norm centers uniformly on the sphere;
//! 2. assign cluster sizes with a configurable Zipf-like skew (real corpora
//!    have a few dominant topics and a long tail of small ones);
//! 3. draw each member as `center + N(0, spread^2 I)` re-normalized to the
//!    sphere — equivalent in practice to a von Mises–Fisher draw with
//!    concentration `~ 1/spread^2`;
//! 4. draw `noise_fraction` of the points as uniform directions.

use crate::GeneratorLabels;
use laf_vector::{ops, Dataset, VectorError};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, Normal};
use serde::{Deserialize, Serialize};

/// Configuration for the directional mixture generator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EmbeddingMixtureConfig {
    /// Total number of points to generate (clustered + noise).
    pub n_points: usize,
    /// Dimensionality of the embedding space.
    pub dim: usize,
    /// Number of planted clusters.
    pub clusters: usize,
    /// Standard deviation of the per-coordinate Gaussian perturbation added
    /// to a cluster center before re-normalization. Larger values produce
    /// more diffuse, harder-to-separate clusters.
    pub spread: f32,
    /// Fraction of points drawn as uniform-direction noise, in `[0, 1)`.
    pub noise_fraction: f64,
    /// Skew of the cluster-size distribution: cluster `k` (0-based) receives
    /// weight `(k + 1)^{-skew}`. `0.0` gives equal sizes; `1.0` is a
    /// Zipf-like long tail.
    pub size_skew: f64,
    /// Fraction of coordinates in which each cluster is "active". Lower
    /// values give clusters confined to axis-aligned subspaces, mimicking
    /// the higher intrinsic dimensionality variation of passage embeddings.
    pub subspace_fraction: f64,
    /// RNG seed; the generator is fully deterministic given the config.
    pub seed: u64,
}

impl Default for EmbeddingMixtureConfig {
    fn default() -> Self {
        Self {
            n_points: 2_000,
            dim: 64,
            clusters: 20,
            spread: 0.08,
            noise_fraction: 0.3,
            size_skew: 0.7,
            subspace_fraction: 1.0,
            seed: 42,
        }
    }
}

impl EmbeddingMixtureConfig {
    /// Validate the configuration.
    ///
    /// # Errors
    /// Returns [`VectorError::InvalidParameter`] when any field is outside
    /// its legal range.
    pub fn validate(&self) -> Result<(), VectorError> {
        if self.n_points == 0 {
            return Err(VectorError::InvalidParameter(
                "n_points must be positive".into(),
            ));
        }
        if self.dim == 0 {
            return Err(VectorError::InvalidParameter("dim must be positive".into()));
        }
        if self.clusters == 0 {
            return Err(VectorError::InvalidParameter(
                "clusters must be positive".into(),
            ));
        }
        if !(0.0..1.0).contains(&self.noise_fraction) {
            return Err(VectorError::InvalidParameter(
                "noise_fraction must be in [0, 1)".into(),
            ));
        }
        if self.spread <= 0.0 || !self.spread.is_finite() {
            return Err(VectorError::InvalidParameter(
                "spread must be positive and finite".into(),
            ));
        }
        if !(0.0..=1.0).contains(&self.subspace_fraction) || self.subspace_fraction == 0.0 {
            return Err(VectorError::InvalidParameter(
                "subspace_fraction must be in (0, 1]".into(),
            ));
        }
        if self.size_skew < 0.0 {
            return Err(VectorError::InvalidParameter(
                "size_skew must be non-negative".into(),
            ));
        }
        Ok(())
    }

    /// Generate the dataset and the planted labels.
    ///
    /// # Errors
    /// Propagates [`VectorError::InvalidParameter`] from [`Self::validate`].
    pub fn generate(&self) -> Result<(Dataset, GeneratorLabels), VectorError> {
        self.validate()?;
        let mut rng = StdRng::seed_from_u64(self.seed);
        let normal = Normal::new(0.0f64, 1.0).expect("unit normal is valid");

        let n_noise = (self.n_points as f64 * self.noise_fraction).round() as usize;
        let n_clustered = self.n_points - n_noise;

        // Cluster centers: uniform directions.
        let centers: Vec<Vec<f32>> = (0..self.clusters)
            .map(|_| sample_unit_direction(self.dim, &normal, &mut rng))
            .collect();

        // Optional axis-aligned active subspace per cluster.
        let active_dims = ((self.dim as f64) * self.subspace_fraction).ceil() as usize;
        let subspaces: Vec<Vec<usize>> = (0..self.clusters)
            .map(|_| {
                let mut dims: Vec<usize> = (0..self.dim).collect();
                partial_shuffle(&mut dims, active_dims.max(1), &mut rng);
                dims.truncate(active_dims.max(1));
                dims
            })
            .collect();

        // Cluster sizes from the skewed weights.
        let sizes = skewed_sizes(n_clustered, self.clusters, self.size_skew);

        let mut data = Dataset::with_capacity(self.dim, self.n_points)?;
        let mut labels: GeneratorLabels = Vec::with_capacity(self.n_points);

        for (cluster_id, (&size, center)) in sizes.iter().zip(&centers).enumerate() {
            for _ in 0..size {
                let mut point = center.clone();
                for &d in &subspaces[cluster_id] {
                    point[d] += (normal.sample(&mut rng) as f32) * self.spread;
                }
                ops::normalize_in_place(&mut point);
                data.push(&point)?;
                labels.push(Some(cluster_id));
            }
        }

        for _ in 0..n_noise {
            let point = sample_unit_direction(self.dim, &normal, &mut rng);
            data.push(&point)?;
            labels.push(None);
        }

        // Shuffle so that cluster membership is not encoded in row order.
        let mut order: Vec<usize> = (0..data.len()).collect();
        for i in (1..order.len()).rev() {
            let j = rng.gen_range(0..=i);
            order.swap(i, j);
        }
        let shuffled = data.select(&order)?;
        let shuffled_labels = order.iter().map(|&i| labels[i]).collect();
        Ok((shuffled, shuffled_labels))
    }
}

/// Sample a uniform direction on the unit sphere in `dim` dimensions.
fn sample_unit_direction<R: Rng>(dim: usize, normal: &Normal<f64>, rng: &mut R) -> Vec<f32> {
    loop {
        let mut v: Vec<f32> = (0..dim).map(|_| normal.sample(rng) as f32).collect();
        if ops::normalize_in_place(&mut v) > 1e-9 {
            return v;
        }
    }
}

/// Fisher–Yates prefix shuffle: after the call the first `k` elements are a
/// uniform random sample of the slice.
fn partial_shuffle<T, R: Rng>(items: &mut [T], k: usize, rng: &mut R) {
    let n = items.len();
    for i in 0..k.min(n.saturating_sub(1)) {
        let j = rng.gen_range(i..n);
        items.swap(i, j);
    }
}

/// Split `total` points over `clusters` clusters with weights `(k+1)^-skew`,
/// guaranteeing every cluster receives at least one point when
/// `total >= clusters`.
fn skewed_sizes(total: usize, clusters: usize, skew: f64) -> Vec<usize> {
    if total == 0 {
        return vec![0; clusters];
    }
    let weights: Vec<f64> = (0..clusters)
        .map(|k| ((k + 1) as f64).powf(-skew))
        .collect();
    let weight_sum: f64 = weights.iter().sum();
    let mut sizes: Vec<usize> = weights
        .iter()
        .map(|w| ((w / weight_sum) * total as f64).floor() as usize)
        .collect();
    // Ensure minimum of one point per cluster where possible.
    if total >= clusters {
        for s in sizes.iter_mut() {
            if *s == 0 {
                *s = 1;
            }
        }
    }
    // Fix up rounding so the sizes sum to exactly `total`.
    let mut assigned: usize = sizes.iter().sum();
    let mut k = 0usize;
    while assigned < total {
        sizes[k % clusters] += 1;
        assigned += 1;
        k += 1;
    }
    while assigned > total {
        let idx = sizes
            .iter()
            .enumerate()
            .filter(|(_, &s)| s > 1)
            .map(|(i, _)| i)
            .next_back()
            .unwrap_or(0);
        if sizes[idx] == 0 {
            break;
        }
        sizes[idx] -= 1;
        assigned -= 1;
    }
    sizes
}

#[cfg(test)]
mod tests {
    use super::*;
    use laf_vector::{CosineDistance, DistanceMetric};

    #[test]
    fn default_config_is_valid() {
        assert!(EmbeddingMixtureConfig::default().validate().is_ok());
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let base = EmbeddingMixtureConfig::default();
        for cfg in [
            EmbeddingMixtureConfig {
                n_points: 0,
                ..base.clone()
            },
            EmbeddingMixtureConfig {
                dim: 0,
                ..base.clone()
            },
            EmbeddingMixtureConfig {
                clusters: 0,
                ..base.clone()
            },
            EmbeddingMixtureConfig {
                noise_fraction: 1.0,
                ..base.clone()
            },
            EmbeddingMixtureConfig {
                noise_fraction: -0.1,
                ..base.clone()
            },
            EmbeddingMixtureConfig {
                spread: 0.0,
                ..base.clone()
            },
            EmbeddingMixtureConfig {
                spread: f32::NAN,
                ..base.clone()
            },
            EmbeddingMixtureConfig {
                subspace_fraction: 0.0,
                ..base.clone()
            },
            EmbeddingMixtureConfig {
                subspace_fraction: 1.5,
                ..base.clone()
            },
            EmbeddingMixtureConfig {
                size_skew: -1.0,
                ..base
            },
        ] {
            assert!(
                cfg.generate().is_err(),
                "config should be rejected: {cfg:?}"
            );
        }
    }

    #[test]
    fn generates_requested_shape_and_normalization() {
        let cfg = EmbeddingMixtureConfig {
            n_points: 500,
            dim: 32,
            clusters: 8,
            noise_fraction: 0.2,
            seed: 1,
            ..Default::default()
        };
        let (data, labels) = cfg.generate().unwrap();
        assert_eq!(data.len(), 500);
        assert_eq!(data.dim(), 32);
        assert_eq!(labels.len(), 500);
        assert!(data.is_normalized(1e-3));
        let n_noise = labels.iter().filter(|l| l.is_none()).count();
        assert_eq!(n_noise, 100);
        let max_label = labels.iter().flatten().max().copied().unwrap();
        assert!(max_label < 8);
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let cfg = EmbeddingMixtureConfig {
            n_points: 200,
            dim: 16,
            seed: 99,
            ..Default::default()
        };
        let (a, la) = cfg.generate().unwrap();
        let (b, lb) = cfg.generate().unwrap();
        assert_eq!(a, b);
        assert_eq!(la, lb);
        let cfg2 = EmbeddingMixtureConfig { seed: 100, ..cfg };
        let (c, _) = cfg2.generate().unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn intra_cluster_distances_are_smaller_than_inter_cluster() {
        let cfg = EmbeddingMixtureConfig {
            n_points: 600,
            dim: 48,
            clusters: 6,
            spread: 0.05,
            noise_fraction: 0.1,
            size_skew: 0.0,
            seed: 5,
            ..Default::default()
        };
        let (data, labels) = cfg.generate().unwrap();
        let mut intra = Vec::new();
        let mut inter = Vec::new();
        for i in (0..data.len()).step_by(7) {
            for j in (i + 1..data.len()).step_by(11) {
                let d = CosineDistance.dist(data.row(i), data.row(j));
                match (labels[i], labels[j]) {
                    (Some(a), Some(b)) if a == b => intra.push(d),
                    (Some(_), Some(_)) => inter.push(d),
                    _ => {}
                }
            }
        }
        let mean = |v: &[f32]| v.iter().sum::<f32>() / v.len().max(1) as f32;
        assert!(!intra.is_empty() && !inter.is_empty());
        assert!(
            mean(&intra) * 3.0 < mean(&inter),
            "intra {} should be much smaller than inter {}",
            mean(&intra),
            mean(&inter)
        );
    }

    #[test]
    fn skewed_sizes_sum_and_cover() {
        for (total, clusters, skew) in [(100, 7, 0.0), (100, 7, 1.2), (23, 23, 2.0), (5, 10, 1.0)] {
            let sizes = skewed_sizes(total, clusters, skew);
            assert_eq!(sizes.len(), clusters);
            assert_eq!(sizes.iter().sum::<usize>(), total);
            if total >= clusters {
                assert!(sizes.iter().all(|&s| s >= 1));
            }
        }
        assert_eq!(skewed_sizes(0, 4, 1.0), vec![0; 4]);
    }

    #[test]
    fn size_skew_produces_unequal_clusters() {
        let sizes = skewed_sizes(1_000, 10, 1.5);
        assert!(sizes[0] > sizes[9] * 3);
    }

    #[test]
    fn subspace_fraction_limits_perturbed_dimensions() {
        let cfg = EmbeddingMixtureConfig {
            n_points: 50,
            dim: 64,
            clusters: 2,
            subspace_fraction: 0.1,
            noise_fraction: 0.0,
            seed: 3,
            ..Default::default()
        };
        let (data, labels) = cfg.generate().unwrap();
        assert_eq!(data.len(), 50);
        assert!(labels.iter().all(|l| l.is_some()));
    }
}
