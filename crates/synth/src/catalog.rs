//! Named dataset presets mirroring Table 1 of the paper.
//!
//! | Name       | #Points (paper) | Dim | α (paper) | Type              |
//! |------------|-----------------|-----|-----------|-------------------|
//! | NYT-150k   | 150,000         | 256 | 1.15      | Bag-of-words      |
//! | Glove-150k | 150,000         | 200 | 2.0       | Word embedding    |
//! | MS-150k    | 152,185         | 768 | 7.7       | Passage embedding |
//! | MS-100k    | 107,400         | 768 | 2.0       | Passage embedding |
//! | MS-50k     |  53,700         | 768 | 1.5       | Passage embedding |
//!
//! Real corpora are replaced by the synthetic generators in this crate (see
//! DESIGN.md §4). A [`DatasetCatalog`] carries a single `scale` factor in
//! `(0, 1]`: `scale = 1.0` generates the paper-sized datasets (slow!), the
//! default `scale = 0.02` generates proportionally smaller ones so the full
//! experiment suite runs on a laptop.

use crate::bow::BagOfWordsConfig;
use crate::mixture::EmbeddingMixtureConfig;
use crate::GeneratorLabels;
use laf_vector::{Dataset, VectorError};
use serde::{Deserialize, Serialize};

/// The kind of vectors a preset models (the "Type" column of Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum VectorType {
    /// Projected bag-of-words counts (NYTimes family).
    BagOfWords,
    /// Word embeddings (GloVe family).
    WordEmbedding,
    /// Passage embeddings (MS MARCO family).
    PassageEmbedding,
}

impl VectorType {
    /// Human-readable label matching the paper's Table 1.
    pub fn label(&self) -> &'static str {
        match self {
            VectorType::BagOfWords => "Bag-of-words",
            VectorType::WordEmbedding => "Word embedding",
            VectorType::PassageEmbedding => "Passage embedding",
        }
    }
}

/// Static description of one dataset preset (the row of Table 1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetSpec {
    /// Preset name, e.g. `"MS-150k"`.
    pub name: &'static str,
    /// Number of points the paper's dataset contains.
    pub paper_points: usize,
    /// Dimensionality.
    pub dim: usize,
    /// Error factor α the paper uses for LAF-DBSCAN on this dataset (Table 1).
    pub paper_alpha: f32,
    /// Vector type.
    pub vector_type: VectorType,
}

/// All five presets of Table 1, in the paper's order.
pub const SPECS: [DatasetSpec; 5] = [
    DatasetSpec {
        name: "NYT-150k",
        paper_points: 150_000,
        dim: 256,
        paper_alpha: 1.15,
        vector_type: VectorType::BagOfWords,
    },
    DatasetSpec {
        name: "Glove-150k",
        paper_points: 150_000,
        dim: 200,
        paper_alpha: 2.0,
        vector_type: VectorType::WordEmbedding,
    },
    DatasetSpec {
        name: "MS-150k",
        paper_points: 152_185,
        dim: 768,
        paper_alpha: 7.7,
        vector_type: VectorType::PassageEmbedding,
    },
    DatasetSpec {
        name: "MS-100k",
        paper_points: 107_400,
        dim: 768,
        paper_alpha: 2.0,
        vector_type: VectorType::PassageEmbedding,
    },
    DatasetSpec {
        name: "MS-50k",
        paper_points: 53_700,
        dim: 768,
        paper_alpha: 1.5,
        vector_type: VectorType::PassageEmbedding,
    },
];

/// A generated synthetic dataset with its provenance.
#[derive(Debug, Clone)]
pub struct SyntheticDataset {
    /// The preset this dataset was generated from.
    pub spec: DatasetSpec,
    /// Actual number of points generated (`paper_points * scale`).
    pub n_points: usize,
    /// The generated, unit-normalized vectors.
    pub data: Dataset,
    /// Planted generator labels (for tests; the paper uses DBSCAN as truth).
    pub labels: GeneratorLabels,
}

/// Factory for the five presets at a common scale.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetCatalog {
    /// Fraction of the paper's dataset size to generate, in `(0, 1]`.
    pub scale: f64,
    /// Base RNG seed; each preset derives its own seed from this.
    pub seed: u64,
    /// Cap on the dimensionality of generated data. The paper's MS MARCO
    /// family is 768-dimensional; generating and clustering that at full
    /// width is expensive, so tests use a smaller cap. `None` keeps the
    /// paper's dimensions.
    pub dim_cap: Option<usize>,
}

impl Default for DatasetCatalog {
    fn default() -> Self {
        Self {
            scale: 0.02,
            seed: 20230206, // arXiv submission date of the paper
            dim_cap: None,
        }
    }
}

impl DatasetCatalog {
    /// A catalog at an explicit scale with the default seed.
    pub fn with_scale(scale: f64) -> Self {
        Self {
            scale,
            ..Default::default()
        }
    }

    /// Tiny catalog for unit/integration tests: a few hundred points,
    /// dimensionality capped at 48.
    pub fn tiny() -> Self {
        Self {
            scale: 0.002,
            seed: 99,
            dim_cap: Some(48),
        }
    }

    /// Validate the scale factor.
    fn validate(&self) -> Result<(), VectorError> {
        if !(self.scale > 0.0 && self.scale <= 1.0) {
            return Err(VectorError::InvalidParameter(
                "catalog scale must be in (0, 1]".into(),
            ));
        }
        Ok(())
    }

    fn scaled_points(&self, spec: &DatasetSpec) -> usize {
        ((spec.paper_points as f64) * self.scale).round().max(50.0) as usize
    }

    fn capped_dim(&self, dim: usize) -> usize {
        match self.dim_cap {
            Some(cap) => dim.min(cap),
            None => dim,
        }
    }

    /// Look up a preset spec by (case-insensitive) name.
    pub fn spec(name: &str) -> Option<&'static DatasetSpec> {
        SPECS.iter().find(|s| s.name.eq_ignore_ascii_case(name))
    }

    /// Generate a preset by name (`"NYT-150k"`, `"Glove-150k"`, `"MS-150k"`,
    /// `"MS-100k"`, `"MS-50k"`).
    ///
    /// # Errors
    /// Returns [`VectorError::InvalidParameter`] for an unknown name or an
    /// invalid scale, and propagates generator errors.
    pub fn generate(&self, name: &str) -> Result<SyntheticDataset, VectorError> {
        self.validate()?;
        let spec = Self::spec(name).ok_or_else(|| {
            VectorError::InvalidParameter(format!("unknown dataset preset '{name}'"))
        })?;
        let n_points = self.scaled_points(spec);
        let dim = self.capped_dim(spec.dim);
        let seed = self
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(spec.name.len() as u64 + spec.dim as u64);

        let (data, labels) = match spec.vector_type {
            VectorType::BagOfWords => {
                let cfg = BagOfWordsConfig {
                    n_docs: n_points,
                    vocab_size: (dim * 20).max(500),
                    projected_dim: dim,
                    topics: (n_points / 40).clamp(8, 60),
                    avg_doc_len: 120,
                    topic_affinity: 0.85,
                    offtopic_fraction: 0.3,
                    zipf_exponent: 1.1,
                    seed,
                };
                cfg.generate()?
            }
            VectorType::WordEmbedding => {
                let cfg = EmbeddingMixtureConfig {
                    n_points,
                    dim,
                    clusters: (n_points / 30).clamp(10, 80),
                    spread: 0.09,
                    noise_fraction: 0.30,
                    size_skew: 0.8,
                    subspace_fraction: 1.0,
                    seed,
                };
                cfg.generate()?
            }
            VectorType::PassageEmbedding => {
                // Higher dimension, more and smaller clusters, wider spread:
                // this reproduces the paper's "MS is the hardest family"
                // observation (more false negatives, lower absolute scores).
                let cfg = EmbeddingMixtureConfig {
                    n_points,
                    dim,
                    clusters: (n_points / 20).clamp(15, 150),
                    spread: 0.14,
                    noise_fraction: 0.40,
                    size_skew: 1.0,
                    subspace_fraction: 0.6,
                    seed,
                };
                cfg.generate()?
            }
        };

        Ok(SyntheticDataset {
            spec: spec.clone(),
            n_points: data.len(),
            data,
            labels,
        })
    }

    /// Generate the three largest datasets used in the paper's efficiency /
    /// effectiveness evaluation (NYT-150k, Glove-150k, MS-150k).
    pub fn largest_three(&self) -> Result<Vec<SyntheticDataset>, VectorError> {
        ["NYT-150k", "Glove-150k", "MS-150k"]
            .iter()
            .map(|n| self.generate(n))
            .collect()
    }

    /// Generate the MS MARCO scale family (MS-50k, MS-100k, MS-150k), used in
    /// the paper's scalability evaluation.
    pub fn ms_family(&self) -> Result<Vec<SyntheticDataset>, VectorError> {
        ["MS-50k", "MS-100k", "MS-150k"]
            .iter()
            .map(|n| self.generate(n))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_match_table_1() {
        assert_eq!(SPECS.len(), 5);
        let ms150 = DatasetCatalog::spec("ms-150k").unwrap();
        assert_eq!(ms150.dim, 768);
        assert_eq!(ms150.paper_points, 152_185);
        assert!((ms150.paper_alpha - 7.7).abs() < 1e-6);
        let nyt = DatasetCatalog::spec("NYT-150k").unwrap();
        assert_eq!(nyt.dim, 256);
        assert_eq!(nyt.vector_type, VectorType::BagOfWords);
        assert_eq!(nyt.vector_type.label(), "Bag-of-words");
        assert!(DatasetCatalog::spec("bogus").is_none());
    }

    #[test]
    fn invalid_scale_is_rejected() {
        let cat = DatasetCatalog {
            scale: 0.0,
            ..Default::default()
        };
        assert!(cat.generate("MS-50k").is_err());
        let cat = DatasetCatalog {
            scale: 1.5,
            ..Default::default()
        };
        assert!(cat.generate("MS-50k").is_err());
    }

    #[test]
    fn unknown_preset_is_rejected() {
        assert!(DatasetCatalog::tiny().generate("MS-1M").is_err());
    }

    #[test]
    fn tiny_catalog_generates_all_presets() {
        let cat = DatasetCatalog::tiny();
        for spec in &SPECS {
            let ds = cat.generate(spec.name).unwrap();
            assert!(ds.n_points >= 50, "{} too small", spec.name);
            assert_eq!(ds.data.len(), ds.labels.len());
            assert!(ds.data.is_normalized(1e-3), "{} not normalized", spec.name);
            assert!(ds.data.dim() <= 48);
            assert_eq!(ds.spec.name, spec.name);
        }
    }

    #[test]
    fn scale_controls_size_monotonically() {
        let small = DatasetCatalog {
            scale: 0.002,
            dim_cap: Some(32),
            ..Default::default()
        };
        let larger = DatasetCatalog {
            scale: 0.004,
            dim_cap: Some(32),
            ..Default::default()
        };
        let a = small.generate("Glove-150k").unwrap();
        let b = larger.generate("Glove-150k").unwrap();
        assert!(b.n_points > a.n_points);
    }

    #[test]
    fn ms_family_sizes_increase() {
        let cat = DatasetCatalog {
            scale: 0.003,
            dim_cap: Some(32),
            ..Default::default()
        };
        let family = cat.ms_family().unwrap();
        assert_eq!(family.len(), 3);
        assert!(family[0].n_points < family[1].n_points);
        assert!(family[1].n_points < family[2].n_points);
    }

    #[test]
    fn largest_three_names() {
        let cat = DatasetCatalog::tiny();
        let three = cat.largest_three().unwrap();
        let names: Vec<_> = three.iter().map(|d| d.spec.name).collect();
        assert_eq!(names, vec!["NYT-150k", "Glove-150k", "MS-150k"]);
    }

    #[test]
    fn generation_is_deterministic() {
        let cat = DatasetCatalog::tiny();
        let a = cat.generate("MS-50k").unwrap();
        let b = cat.generate("MS-50k").unwrap();
        assert_eq!(a.data, b.data);
        assert_eq!(a.labels, b.labels);
    }

    #[test]
    fn dim_cap_none_keeps_paper_dims() {
        let cat = DatasetCatalog {
            scale: 0.001,
            seed: 1,
            dim_cap: None,
        };
        let nyt = cat.generate("NYT-150k").unwrap();
        assert_eq!(nyt.data.dim(), 256);
    }
}
