//! Cold-vs-warm startup benchmark for the snapshot subsystem.
//!
//! The train-once/serve-many story only holds if warm startup (load a
//! snapshot, cluster) is materially cheaper than cold startup (build the
//! training set, train the estimator, save, cluster). This experiment
//! measures both paths end-to-end, verifies the warm pipeline is bit-exact
//! with the cold one (labels, [`laf_core::LafStats`] and per-point
//! estimates), measures **rebuild-vs-restore** for every persistable
//! range-query engine (format v2 stores the built structure — see
//! [`laf_index::persist`]), and writes `<results_dir>/BENCH_snapshot.json`.

use crate::harness::HarnessConfig;
use crate::report::{format_seconds, print_table, write_json};
use laf_cardest::{MlpEstimator, TrainingSetBuilder};
use laf_core::{LafConfig, LafPipeline, Snapshot};
use laf_index::{build_engine, restore_engine, EngineChoice, PersistedEngine};
use laf_synth::EmbeddingMixtureConfig;
use laf_vector::{Dataset, Metric};
use serde::Serialize;
use std::time::Instant;

/// Wall-clock breakdown of one startup path.
#[derive(Debug, Clone, Copy, Default, Serialize)]
pub struct PhaseTimings {
    /// Training-set construction + estimator fitting (cold path only).
    pub train_seconds: f64,
    /// Snapshot encode + write (cold) or read + decode (warm).
    pub snapshot_seconds: f64,
    /// First clustering run after startup.
    pub first_cluster_seconds: f64,
    /// Sum of the above: time from process start to first served result.
    pub total_seconds: f64,
}

/// Bit-exactness verdict between the cold and warm pipelines.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct BitExactness {
    /// Cluster labels byte-identical.
    pub labels: bool,
    /// `LafStats` counters identical.
    pub stats: bool,
    /// Per-point estimates bit-identical (compared as raw `f32` bits).
    pub estimates: bool,
}

/// Rebuild-vs-restore comparison for one engine kind: the cost of
/// constructing the engine from scratch versus decoding + re-attaching its
/// persisted structure (what a v2 warm start pays).
#[derive(Debug, Clone, Serialize)]
pub struct EngineStartup {
    /// Engine kind (`linear`, `grid`, `kmeans_tree`, `ivf`).
    pub engine: String,
    /// Seconds to build the engine from the raw dataset.
    pub build_seconds: f64,
    /// Seconds to decode the persisted structure and restore the engine.
    pub restore_seconds: f64,
    /// `build_seconds / restore_seconds` — what persistence saves per warm
    /// start for this engine.
    pub restore_speedup: f64,
    /// Encoded structure size in bytes (the engine section's payload).
    pub encoded_bytes: u64,
    /// Whether the restored engine answered probe queries identically to the
    /// engine it was extracted from (must be `true`).
    pub agree: bool,
}

/// Mmap-vs-decode warm-start comparison at one dataset scale: what the
/// format-v3 zero-copy load ([`Snapshot::open_mmap`]) saves over the
/// copying decode ([`Snapshot::load`]) for the same snapshot file.
#[derive(Debug, Clone, Serialize)]
pub struct MmapStartup {
    /// Dataset rows at this scale.
    pub n_points: usize,
    /// Snapshot file size in bytes.
    pub snapshot_bytes: u64,
    /// Best-of-N seconds for read + copying decode (`Snapshot::load`).
    pub decode_seconds: f64,
    /// Best-of-N seconds for mmap + checksum + in-place load
    /// (`Snapshot::open_mmap`).
    pub mmap_seconds: f64,
    /// `decode_seconds / mmap_seconds`.
    pub mmap_speedup: f64,
    /// Whether the mapped load actually served the dataset in place (false
    /// only on big-endian hosts or misaligned files — never for files this
    /// writer produced on the CI targets).
    pub dataset_mapped: bool,
    /// Labels and stats byte-identical between the owned-backed and
    /// mapped-backed pipelines (must be `true`).
    pub identical: bool,
}

/// The full experiment record written to `BENCH_snapshot.json`.
#[derive(Debug, Clone, Serialize)]
pub struct SnapshotBenchReport {
    /// Dataset rows.
    pub n_points: usize,
    /// Dataset dimensionality.
    pub dim: usize,
    /// Encoded snapshot size in bytes.
    pub snapshot_bytes: u64,
    /// Cold path: train → save → first clustering.
    pub cold: PhaseTimings,
    /// Warm path: load → first clustering.
    pub warm: PhaseTimings,
    /// `cold.total_seconds / warm.total_seconds` — the startup amortization
    /// a serving fleet gains per process after one training run.
    pub warm_startup_speedup: f64,
    /// Cold-vs-warm result comparison (all must be `true`).
    pub bit_exact: BitExactness,
    /// Rebuild-vs-restore comparison per persistable engine kind.
    pub engines: Vec<EngineStartup>,
    /// Mmap-vs-decode warm starts at increasing dataset scales (last row is
    /// the default scale, the one the regression gate applies to).
    pub mmap: Vec<MmapStartup>,
}

/// Measure build-from-scratch vs decode-and-restore for every persistable
/// engine kind over `data`.
fn engine_startup_matrix(data: &Dataset, eps: f32) -> Vec<EngineStartup> {
    let dim = data.dim() as f32;
    let choices = [
        EngineChoice::Linear,
        // Gan & Tao's ε/√d cell side, relative to build_engine's eps_hint.
        EngineChoice::Grid {
            cell_side: 1.0 / dim.sqrt(),
        },
        // The paper's KNN-BLOCK DBSCAN tuning (branching 10, ratio 0.6).
        EngineChoice::KMeansTree {
            branching: 10,
            leaf_ratio: 0.6,
        },
        EngineChoice::Ivf {
            nlist: 32,
            nprobe: 8,
        },
    ];
    let mut out = Vec::with_capacity(choices.len());
    for choice in choices {
        let t = Instant::now();
        let built = build_engine(choice, data, Metric::Cosine, eps);
        let build_seconds = t.elapsed().as_secs_f64();

        let encoded = built
            .persist()
            .expect("every engine in the matrix is persistable")
            .encode();

        let t = Instant::now();
        let decoded = PersistedEngine::decode(&encoded).expect("round trip");
        let restored = restore_engine(&decoded, data).expect("restore over the same dataset");
        let restore_seconds = t.elapsed().as_secs_f64();

        let agree = (0..data.len())
            .step_by((data.len() / 8).max(1))
            .all(|q| built.range(data.row(q), eps) == restored.range(data.row(q), eps));

        out.push(EngineStartup {
            engine: decoded.kind().to_string(),
            build_seconds,
            restore_seconds,
            restore_speedup: if restore_seconds > 0.0 {
                build_seconds / restore_seconds
            } else {
                0.0
            },
            encoded_bytes: encoded.len() as u64,
            agree,
        });
    }
    out
}

/// Bit-exact estimator clone via the binary codec (the estimator type is
/// deliberately not `Clone`; the snapshot weight codec is its round-trip).
fn clone_estimator(estimator: &MlpEstimator) -> MlpEstimator {
    let mut bytes: Vec<u8> = Vec::new();
    estimator.encode_binary(&mut bytes);
    MlpEstimator::decode_binary(&mut bytes.as_slice()).expect("bit-exact estimator round trip")
}

/// Measure mmap-vs-decode warm starts for one snapshot over `data`, timing
/// each loader best-of-3 and verifying the two pipelines cluster
/// identically.
fn mmap_startup_row(config: &LafConfig, data: Dataset, estimator: MlpEstimator) -> MmapStartup {
    let n_points = data.len();
    let path = std::env::temp_dir().join(format!(
        "laf_bench_mmap_{n_points}_{}.lafs",
        std::process::id()
    ));
    let snapshot = Snapshot {
        config: config.clone(),
        data,
        estimator,
        calibration: None,
        engine: None,
        shards: Vec::new(),
    };
    snapshot.save(&path).expect("snapshot save");
    let snapshot_bytes = std::fs::metadata(&path).map_or(0, |m| m.len());

    let best_of = |load: &dyn Fn() -> Snapshot| -> f64 {
        (0..3)
            .map(|_| {
                let t = Instant::now();
                let snap = load();
                let elapsed = t.elapsed().as_secs_f64();
                drop(snap);
                elapsed
            })
            .fold(f64::INFINITY, f64::min)
    };
    let decode_seconds = best_of(&|| Snapshot::load(&path).expect("copying load"));
    let mmap_seconds = best_of(&|| Snapshot::open_mmap(&path).expect("mapped load"));

    let owned = LafPipeline::from_snapshot(Snapshot::load(&path).expect("copying load"));
    let mapped = LafPipeline::from_snapshot(Snapshot::open_mmap(&path).expect("mapped load"));
    let dataset_mapped = mapped.data().is_mapped();
    let (owned_clustering, owned_stats) = owned.cluster_with_stats();
    let (mapped_clustering, mapped_stats) = mapped.cluster_with_stats();
    let identical = owned_clustering.labels() == mapped_clustering.labels()
        && owned_stats == mapped_stats
        && owned.data() == mapped.data();
    drop(mapped);
    std::fs::remove_file(&path).ok();

    MmapStartup {
        n_points,
        snapshot_bytes,
        decode_seconds,
        mmap_seconds,
        mmap_speedup: if mmap_seconds > 0.0 {
            decode_seconds / mmap_seconds
        } else {
            0.0
        },
        dataset_mapped,
        identical,
    }
}

fn bench_dataset(cfg: &HarnessConfig) -> Dataset {
    let n_points = ((1_000_000.0 * cfg.scale) as usize).clamp(500, 24_000);
    let dim = cfg.dim_cap.unwrap_or(64).clamp(8, 128);
    EmbeddingMixtureConfig {
        n_points,
        dim,
        clusters: 12,
        noise_fraction: 0.2,
        seed: cfg.seed,
        ..Default::default()
    }
    .generate()
    .expect("valid benchmark dataset config")
    .0
}

/// Run the cold and warm paths and write `BENCH_snapshot.json`.
pub fn run(cfg: &HarnessConfig) -> SnapshotBenchReport {
    let data = bench_dataset(cfg);
    let n_points = data.len();
    let dim = data.dim();
    let laf_config = LafConfig::new(0.35, 4, 1.0);
    let snapshot_path = std::env::temp_dir().join(format!(
        "laf_bench_snapshot_{n_points}x{dim}_{}.lafs",
        std::process::id()
    ));
    println!("\nsnapshot cold-vs-warm startup: {n_points} points x {dim} dims");

    // --- Cold path: train, save, first clustering --------------------------
    let t = Instant::now();
    let cold_pipeline = LafPipeline::builder(laf_config.clone())
        .net(cfg.net.clone())
        .training(TrainingSetBuilder {
            max_queries: Some(cfg.train_queries),
            ..Default::default()
        })
        .train(data)
        .expect("cold training");
    let cold_train = t.elapsed().as_secs_f64();

    let t = Instant::now();
    cold_pipeline
        .save(&snapshot_path)
        .expect("snapshot save must succeed");
    let cold_save = t.elapsed().as_secs_f64();
    let snapshot_bytes = std::fs::metadata(&snapshot_path).map_or(0, |m| m.len());

    let t = Instant::now();
    let (cold_clustering, cold_stats) = cold_pipeline.cluster_with_stats();
    let cold_cluster = t.elapsed().as_secs_f64();

    // --- Warm path: load, first clustering ---------------------------------
    let t = Instant::now();
    let warm_pipeline = LafPipeline::load(&snapshot_path).expect("snapshot load must succeed");
    let warm_load = t.elapsed().as_secs_f64();

    let t = Instant::now();
    let (warm_clustering, warm_stats) = warm_pipeline.cluster_with_stats();
    let warm_cluster = t.elapsed().as_secs_f64();
    std::fs::remove_file(&snapshot_path).ok();

    // --- Rebuild vs restore, per persistable engine --------------------------
    let engines = engine_startup_matrix(cold_pipeline.data(), laf_config.eps);

    // --- Mmap vs copying decode, quarter scale then default scale ----------
    // Same trained estimator at both scales (cloned bit-exactly through the
    // weight codec), so the rows differ only in the dataset section the two
    // loaders handle differently.
    let small_cfg = HarnessConfig {
        scale: cfg.scale / 4.0,
        ..cfg.clone()
    };
    let mmap = vec![
        mmap_startup_row(
            &laf_config,
            bench_dataset(&small_cfg),
            clone_estimator(cold_pipeline.estimator()),
        ),
        mmap_startup_row(
            &laf_config,
            cold_pipeline.data().clone(),
            clone_estimator(cold_pipeline.estimator()),
        ),
    ];

    // --- Bit-exactness -----------------------------------------------------
    let rows: Vec<&[f32]> = cold_pipeline.data().rows().collect();
    let cold_estimates = cold_pipeline.estimate_batch(&rows, laf_config.eps);
    let warm_rows: Vec<&[f32]> = warm_pipeline.data().rows().collect();
    let warm_estimates = warm_pipeline.estimate_batch(&warm_rows, laf_config.eps);
    let bit_exact = BitExactness {
        labels: cold_clustering.labels() == warm_clustering.labels(),
        stats: cold_stats == warm_stats,
        estimates: cold_estimates.len() == warm_estimates.len()
            && cold_estimates
                .iter()
                .zip(&warm_estimates)
                .all(|(a, b)| a.to_bits() == b.to_bits()),
    };

    let cold = PhaseTimings {
        train_seconds: cold_train,
        snapshot_seconds: cold_save,
        first_cluster_seconds: cold_cluster,
        total_seconds: cold_train + cold_save + cold_cluster,
    };
    let warm = PhaseTimings {
        train_seconds: 0.0,
        snapshot_seconds: warm_load,
        first_cluster_seconds: warm_cluster,
        total_seconds: warm_load + warm_cluster,
    };
    let report = SnapshotBenchReport {
        n_points,
        dim,
        snapshot_bytes,
        cold,
        warm,
        warm_startup_speedup: if warm.total_seconds > 0.0 {
            cold.total_seconds / warm.total_seconds
        } else {
            0.0
        },
        bit_exact,
        engines,
        mmap,
    };

    let rows = vec![
        vec![
            "cold (train+save+cluster)".to_string(),
            format_seconds(cold.train_seconds),
            format_seconds(cold.snapshot_seconds),
            format_seconds(cold.first_cluster_seconds),
            format_seconds(cold.total_seconds),
        ],
        vec![
            "warm (load+cluster)".to_string(),
            "-".to_string(),
            format_seconds(warm.snapshot_seconds),
            format_seconds(warm.first_cluster_seconds),
            format_seconds(warm.total_seconds),
        ],
    ];
    print_table(
        "Snapshot: cold vs warm startup to first served clustering",
        &["path", "train", "snapshot", "cluster", "total"],
        &rows,
    );
    println!(
        "snapshot size {} bytes; warm startup speedup {:.1}x; bit-exact: labels={} stats={} estimates={}",
        report.snapshot_bytes,
        report.warm_startup_speedup,
        bit_exact.labels,
        bit_exact.stats,
        bit_exact.estimates,
    );

    let engine_rows: Vec<Vec<String>> = report
        .engines
        .iter()
        .map(|e| {
            vec![
                e.engine.clone(),
                format_seconds(e.build_seconds),
                format_seconds(e.restore_seconds),
                format!("{:.1}x", e.restore_speedup),
                e.encoded_bytes.to_string(),
                e.agree.to_string(),
            ]
        })
        .collect();
    print_table(
        "Engine structure persistence: rebuild vs restore (format v2+)",
        &["engine", "build", "restore", "speedup", "bytes", "agree"],
        &engine_rows,
    );

    let mmap_rows: Vec<Vec<String>> = report
        .mmap
        .iter()
        .map(|m| {
            vec![
                m.n_points.to_string(),
                m.snapshot_bytes.to_string(),
                format_seconds(m.decode_seconds),
                format_seconds(m.mmap_seconds),
                format!("{:.1}x", m.mmap_speedup),
                m.dataset_mapped.to_string(),
                m.identical.to_string(),
            ]
        })
        .collect();
    print_table(
        "Zero-copy warm start: mmap+checksum vs read+copying decode (format v3)",
        &[
            "points",
            "bytes",
            "decode",
            "mmap",
            "speedup",
            "mapped",
            "identical",
        ],
        &mmap_rows,
    );
    if let [small, big] = report.mmap.as_slice() {
        println!(
            "load-cost growth {} -> {} points ({:.1}x data): decode {:.1}x, mmap {:.1}x",
            small.n_points,
            big.n_points,
            big.n_points as f64 / small.n_points.max(1) as f64,
            big.decode_seconds / small.decode_seconds.max(f64::EPSILON),
            big.mmap_seconds / small.mmap_seconds.max(f64::EPSILON),
        );
    }

    write_json(&cfg.results_dir, "BENCH_snapshot", &report);
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use laf_cardest::NetConfig;

    #[test]
    fn cold_and_warm_paths_are_measured_and_bit_exact() {
        let cfg = HarnessConfig {
            scale: 0.001,
            dim_cap: Some(12),
            train_queries: 60,
            net: NetConfig::tiny(),
            results_dir: std::env::temp_dir().join("laf_bench_snapshot_test"),
            ..Default::default()
        };
        let report = run(&cfg);
        assert!(report.snapshot_bytes > 0);
        assert!(report.cold.train_seconds > 0.0);
        assert!(report.warm.total_seconds > 0.0);
        // The acceptance bar of the whole subsystem: a loaded pipeline is
        // indistinguishable from the one that trained.
        assert!(report.bit_exact.labels, "labels must be byte-identical");
        assert!(report.bit_exact.stats, "stats must be identical");
        assert!(
            report.bit_exact.estimates,
            "estimates must be bit-identical"
        );
        // The per-engine matrix covers every persistable kind and every
        // restored engine answers probe queries identically to its builder.
        let kinds: Vec<&str> = report.engines.iter().map(|e| e.engine.as_str()).collect();
        assert_eq!(kinds, ["linear", "grid", "kmeans_tree", "ivf"]);
        for e in &report.engines {
            assert!(e.agree, "{}: restored engine diverged", e.engine);
            assert!(e.encoded_bytes > 0, "{}", e.engine);
        }
        // Two mmap-vs-decode rows (quarter scale, default scale), each with
        // the mapped pipeline clustering identically to the owned one.
        assert_eq!(report.mmap.len(), 2);
        assert!(report.mmap[0].n_points <= report.mmap[1].n_points);
        for m in &report.mmap {
            assert!(m.identical, "{} points: mapped load diverged", m.n_points);
            assert!(m.snapshot_bytes > 0);
            assert!(
                cfg!(target_endian = "big") || m.dataset_mapped,
                "{} points: dataset must be served from the mapping",
                m.n_points
            );
        }
        assert!(cfg.results_dir.join("BENCH_snapshot.json").exists());
    }
}
