//! One function per table/figure of the paper. Each function prints the
//! reproduction of that exhibit and writes a JSON record under the results
//! directory, so the binaries in `src/bin/` stay one-liners and `run_all`
//! can regenerate everything in a single process.

use crate::harness::{
    evaluate_setting, missed_cluster_analysis, run_method, tradeoff_sweep, HarnessConfig, Method,
    MethodOutcome, SettingOutcome,
};
use crate::report::{format_seconds, print_table, write_json};
use laf_clustering::{Clusterer, Dbscan, RhoApproxDbscan};
use laf_metrics::ClusteringStats;
use serde::Serialize;
use std::time::Instant;

/// The three (ε, τ) settings the paper reports throughout its evaluation.
pub const PAPER_SETTINGS: [(f32, usize); 3] = [(0.5, 3), (0.55, 5), (0.6, 5)];

/// Table 2 — (noise ratio, number of clusters) of plain DBSCAN over the
/// (ε, τ) grid, on the MS scale family.
pub fn table2(cfg: &HarnessConfig) -> Vec<SettingStats> {
    let datasets = cfg.prepare_ms_family();
    let grid: [(f32, usize); 5] = [(0.5, 3), (0.5, 5), (0.55, 5), (0.6, 5), (0.7, 5)];
    let mut records = Vec::new();
    let mut rows = Vec::new();
    for &(eps, tau) in &grid {
        let mut row = vec![format!("({eps}, {tau})")];
        for prepared in &datasets {
            let clustering = Dbscan::with_params(eps, tau).cluster(&prepared.test);
            let stats = clustering.stats();
            row.push(format!(
                "({:.2}, {})",
                stats.noise_ratio(),
                stats.n_clusters
            ));
            records.push(SettingStats {
                dataset: prepared.name.clone(),
                eps,
                tau,
                noise_ratio: stats.noise_ratio(),
                n_clusters: stats.n_clusters,
                proper: stats.is_proper(0.6, 20),
            });
        }
        rows.push(row);
    }
    let mut headers = vec!["(eps, tau)"];
    let names: Vec<String> = datasets.iter().map(|d| d.name.clone()).collect();
    headers.extend(names.iter().map(String::as_str));
    print_table(
        "Table 2: (noise ratio, #clusters) of DBSCAN over the (eps, tau) grid",
        &headers,
        &rows,
    );
    println!(
        "(the paper keeps settings with noise ratio < 0.6 and enough clusters; \
         the same trend — noise falls and clusters merge as eps grows — holds here.)"
    );
    write_json(&cfg.results_dir, "table2", &records);
    records
}

/// One Table 2 cell.
#[derive(Debug, Clone, Serialize)]
pub struct SettingStats {
    /// Dataset name.
    pub dataset: String,
    /// Distance threshold.
    pub eps: f32,
    /// Neighbor threshold.
    pub tau: usize,
    /// Noise ratio of the DBSCAN clustering.
    pub noise_ratio: f64,
    /// Number of clusters.
    pub n_clusters: usize,
    /// Whether the paper's "proper setting" criterion holds.
    pub proper: bool,
}

/// Table 3 — ARI and AMI of the approximate methods on the three largest
/// datasets at the three paper settings. Returns every setting outcome.
pub fn table3(cfg: &HarnessConfig) -> Vec<SettingOutcome> {
    let datasets = cfg.prepare_largest_three();
    let mut all = Vec::new();
    for &(eps, tau) in &PAPER_SETTINGS {
        for prepared in &datasets {
            all.push(evaluate_setting(cfg, prepared, eps, tau, &Method::TABLE3));
        }
    }
    for metric in ["ARI", "AMI"] {
        let mut rows = Vec::new();
        for &(eps, tau) in &PAPER_SETTINGS {
            for method in Method::TABLE3 {
                let mut row = vec![format!("({eps},{tau})"), method.label().to_string()];
                for prepared in &datasets {
                    let setting = all
                        .iter()
                        .find(|s| s.dataset == prepared.name && s.eps == eps && s.tau == tau)
                        .expect("setting was evaluated");
                    let outcome = setting
                        .outcomes
                        .iter()
                        .find(|o| o.method == method.label())
                        .expect("method was evaluated");
                    let v = if metric == "ARI" {
                        outcome.ari
                    } else {
                        outcome.ami
                    };
                    row.push(format!("{v:.4}"));
                }
                rows.push(row);
            }
        }
        let mut headers = vec!["(eps,tau)", "Method"];
        let names: Vec<String> = datasets.iter().map(|d| d.name.clone()).collect();
        headers.extend(names.iter().map(String::as_str));
        print_table(
            &format!("Table 3 ({metric}): clustering quality on the three largest datasets"),
            &headers,
            &rows,
        );
    }
    write_json(&cfg.results_dir, "table3", &all);
    all
}

/// Table 4 — ρ-approximate DBSCAN vs DBSCAN clustering time on the MS scale
/// family.
pub fn table4(cfg: &HarnessConfig) -> Vec<MethodOutcome> {
    let datasets = cfg.prepare_ms_family();
    let mut outcomes = Vec::new();
    let mut rows = Vec::new();
    for &(eps, tau) in &PAPER_SETTINGS {
        let mut row = vec![format!("({eps}, {tau})")];
        for prepared in &datasets {
            let started = Instant::now();
            let _rho = RhoApproxDbscan::with_params(eps, tau).cluster(&prepared.test);
            let rho_seconds = started.elapsed().as_secs_f64();
            let started = Instant::now();
            let _db = Dbscan::with_params(eps, tau).cluster(&prepared.test);
            let db_seconds = started.elapsed().as_secs_f64();
            row.push(format!(
                "{} / {}",
                format_seconds(rho_seconds),
                format_seconds(db_seconds)
            ));
            let (rho_outcome, _) =
                run_method(cfg, Method::RhoApprox, prepared, eps, tau, None, None);
            outcomes.push(MethodOutcome {
                seconds: rho_seconds,
                ..rho_outcome
            });
            outcomes.push(MethodOutcome {
                method: "DBSCAN".to_string(),
                dataset: prepared.name.clone(),
                eps,
                tau,
                seconds: db_seconds,
                ari: 1.0,
                ami: 1.0,
                n_clusters: 0,
                noise_ratio: 0.0,
                range_queries: 0,
                skipped_range_queries: 0,
                knob: 0.0,
            });
        }
        rows.push(row);
    }
    let mut headers = vec!["(eps, tau)"];
    let names: Vec<String> = datasets.iter().map(|d| d.name.clone()).collect();
    headers.extend(names.iter().map(String::as_str));
    print_table(
        "Table 4: rho-approximate DBSCAN time / DBSCAN time",
        &headers,
        &rows,
    );
    println!(
        "(the paper's point: in high dimension the grid bookkeeping makes rho-approximate \
         DBSCAN slower than plain DBSCAN, so it is excluded from the other experiments.)"
    );
    write_json(&cfg.results_dir, "table4", &outcomes);
    outcomes
}

/// Table 5 — quality of the approximate methods across the MS scale family
/// at (ε, τ) = (0.55, 5).
pub fn table5(cfg: &HarnessConfig) -> Vec<SettingOutcome> {
    let datasets = cfg.prepare_ms_family();
    let (eps, tau) = (0.55f32, 5usize);
    let all: Vec<SettingOutcome> = datasets
        .iter()
        .map(|p| evaluate_setting(cfg, p, eps, tau, &Method::TABLE3))
        .collect();
    for metric in ["ARI", "AMI"] {
        let mut rows = Vec::new();
        for method in Method::TABLE3 {
            let mut row = vec![method.label().to_string()];
            for setting in &all {
                let outcome = setting
                    .outcomes
                    .iter()
                    .find(|o| o.method == method.label())
                    .expect("method evaluated");
                let v = if metric == "ARI" {
                    outcome.ari
                } else {
                    outcome.ami
                };
                row.push(format!("{v:.4}"));
            }
            rows.push(row);
        }
        let mut headers = vec!["Method"];
        let names: Vec<String> = all.iter().map(|s| s.dataset.clone()).collect();
        headers.extend(names.iter().map(String::as_str));
        print_table(
            &format!("Table 5 ({metric}): quality across dataset scales (eps=0.55, tau=5)"),
            &headers,
            &rows,
        );
    }
    write_json(&cfg.results_dir, "table5", &all);
    all
}

/// Table 6 — fully-missed-cluster statistics of LAF-DBSCAN in its
/// worst-quality settings.
pub fn table6(cfg: &HarnessConfig) -> Vec<serde_json::Value> {
    let cases = [
        ("NYT-150k", 0.5f32, 3usize),
        ("Glove-150k", 0.55, 5),
        ("MS-150k", 0.55, 5),
    ];
    let mut rows = Vec::new();
    let mut records = Vec::new();
    for (name, eps, tau) in cases {
        let prepared = cfg.prepare(name);
        let (report, _) = missed_cluster_analysis(cfg, &prepared, eps, tau);
        rows.push(vec![
            format!("({eps}, {tau})"),
            name.to_string(),
            format!("{}/{}", report.missed_clusters, report.total_clusters),
            format!("{}/{}", report.missed_points, report.total_clustered_points),
            format!("{:.2}", report.avg_missed_cluster_size),
        ]);
        records.push(serde_json::json!({
            "dataset": name,
            "eps": eps,
            "tau": tau,
            "missed_clusters": report.missed_clusters,
            "total_clusters": report.total_clusters,
            "missed_points": report.missed_points,
            "total_clustered_points": report.total_clustered_points,
            "avg_missed_cluster_size": report.avg_missed_cluster_size,
        }));
    }
    print_table(
        "Table 6: fully missed clusters of LAF-DBSCAN (MC/TC, MP/TPC, ASMC)",
        &["(eps, tau)", "Dataset", "MC/TC", "MP/TPC", "ASMC"],
        &rows,
    );
    println!(
        "(the paper's observation: missed clusters can be numerous but are tiny, so their \
         impact on overall quality is negligible.)"
    );
    write_json(&cfg.results_dir, "table6", &records);
    records
}

/// Figure 1 — clustering time of every method on the three largest datasets
/// at each paper setting.
pub fn fig1(cfg: &HarnessConfig) -> Vec<SettingOutcome> {
    let datasets = cfg.prepare_largest_three();
    let mut methods = vec![Method::Dbscan];
    methods.extend(Method::TABLE3);
    let mut all = Vec::new();
    for &(eps, tau) in &PAPER_SETTINGS {
        let mut rows = Vec::new();
        for prepared in &datasets {
            let setting = evaluate_setting(cfg, prepared, eps, tau, &Method::TABLE3);
            for m in &methods {
                let outcome = setting
                    .outcomes
                    .iter()
                    .find(|o| o.method == m.label())
                    .expect("method evaluated");
                rows.push(vec![
                    prepared.name.clone(),
                    m.label().to_string(),
                    format_seconds(outcome.seconds),
                    outcome.range_queries.to_string(),
                    outcome.skipped_range_queries.to_string(),
                ]);
            }
            all.push(setting);
        }
        print_table(
            &format!("Figure 1: clustering time (eps={eps}, tau={tau})"),
            &["Dataset", "Method", "Time", "RangeQueries", "Skipped"],
            &rows,
        );
    }
    write_json(&cfg.results_dir, "fig1", &all);
    all
}

/// Figures 2 and 3 — speed–quality trade-off curves. `dataset` is
/// `"MS-150k"` for Figure 2 and `"Glove-150k"` for Figure 3.
pub fn fig_tradeoff(cfg: &HarnessConfig, dataset: &str, figure: &str) -> Vec<MethodOutcome> {
    let prepared = cfg.prepare(dataset);
    let (eps, tau) = (0.5f32, 3usize);
    let points = tradeoff_sweep(cfg, &prepared, eps, tau);
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.method.clone(),
                format!("{:.3}", p.knob),
                format_seconds(p.seconds),
                format!("{:.4}", p.ami),
                format!("{:.4}", p.ari),
            ]
        })
        .collect();
    print_table(
        &format!("{figure}: speed-quality trade-off on {dataset} (eps=0.5, tau=3)"),
        &["Method", "Knob", "Time", "AMI", "ARI"],
        &rows,
    );
    println!(
        "(read as the paper's scatter plot: for a given AMI, the LAF rows should sit at \
         lower times in the high-quality region.)"
    );
    write_json(&cfg.results_dir, figure, &points);
    points
}

/// Figure 4 — scalability: clustering time of every method across the MS
/// scale family at (ε, τ) = (0.55, 5).
pub fn fig4(cfg: &HarnessConfig) -> Vec<SettingOutcome> {
    let datasets = cfg.prepare_ms_family();
    let (eps, tau) = (0.55f32, 5usize);
    let mut methods = vec![Method::Dbscan];
    methods.extend(Method::TABLE3);
    let mut all = Vec::new();
    let mut rows = Vec::new();
    for prepared in &datasets {
        let setting = evaluate_setting(cfg, prepared, eps, tau, &Method::TABLE3);
        for m in &methods {
            let outcome = setting
                .outcomes
                .iter()
                .find(|o| o.method == m.label())
                .expect("method evaluated");
            rows.push(vec![
                prepared.name.clone(),
                format!("{}", prepared.test.len()),
                m.label().to_string(),
                format_seconds(outcome.seconds),
            ]);
        }
        all.push(setting);
    }
    print_table(
        "Figure 4: clustering time across dataset scales (eps=0.55, tau=5)",
        &["Dataset", "#Points", "Method", "Time"],
        &rows,
    );
    write_json(&cfg.results_dir, "fig4", &all);
    all
}

/// Sanity statistics helper shared by a couple of binaries.
pub fn describe(labels: &[i64]) -> ClusteringStats {
    ClusteringStats::from_labels(labels)
}
