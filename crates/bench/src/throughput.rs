//! Throughput experiment for the batched, parallel query pipeline.
//!
//! Not a paper exhibit: this measures the systems contribution of this
//! repository — queries/second of the batched range kernels
//! ([`laf_index::RangeQueryEngine::range_count_batch`],
//! [`laf_index::RangeQueryEngine::range_batch`]) and of batched estimator
//! inference ([`laf_cardest::CardinalityEstimator::estimate_batch`]) as a
//! function of **batch size** and **thread count**, against the one-point-
//! at-a-time baselines the seed implementation used.
//!
//! Results are printed as a table and written to
//! `<results_dir>/BENCH_throughput.json`.

use crate::harness::HarnessConfig;
use crate::report::{print_table, write_json};
use laf_cardest::{CardinalityEstimator, MlpEstimator, TrainingSetBuilder};
use laf_index::{LinearScan, RangeQueryEngine};
use laf_synth::EmbeddingMixtureConfig;
use laf_vector::{Dataset, Metric};
use serde::Serialize;
use std::time::Instant;

/// One measured configuration.
#[derive(Debug, Clone, Serialize)]
pub struct ThroughputRecord {
    /// What was measured (`linear.range_count`, `mlp.estimate`, ...).
    pub kernel: String,
    /// `per_query` for the point-at-a-time baseline, `batch` for the
    /// batched kernel.
    pub mode: String,
    /// Queries handed to one batched call (1 for the per-query baseline).
    pub batch_size: usize,
    /// Worker threads installed for the call.
    pub threads: usize,
    /// Total queries executed during the measurement.
    pub queries: u64,
    /// Wall-clock seconds of the measurement.
    pub seconds: f64,
    /// Queries per second.
    pub queries_per_sec: f64,
    /// Speedup over this kernel's 1-thread per-query baseline.
    pub speedup: f64,
}

/// Thread counts swept by the experiment.
pub const THREAD_SWEEP: [usize; 4] = [1, 2, 4, 8];
/// Batch sizes swept by the experiment.
pub const BATCH_SWEEP: [usize; 3] = [16, 64, 256];

fn bench_dataset(cfg: &HarnessConfig) -> Dataset {
    // Sized so that at the default LAF_SCALE (0.008) the scan working set is
    // ~16k x 64 dims ≈ 4 MB — large enough to stream from memory rather than
    // cache, the regime the blocked kernels target. Smaller LAF_SCALE values
    // shrink it proportionally (the unit test relies on this to stay fast in
    // debug builds); the cap keeps large-scale runs to a few seconds.
    let n_points = ((2_000_000.0 * cfg.scale) as usize).clamp(1_000, 48_000);
    let dim = cfg.dim_cap.unwrap_or(64).clamp(8, 128);
    EmbeddingMixtureConfig {
        n_points,
        dim,
        clusters: 16,
        noise_fraction: 0.2,
        seed: cfg.seed,
        ..Default::default()
    }
    .generate()
    .expect("valid benchmark dataset config")
    .0
}

/// Time `work` (which executes `queries_per_round` queries per call) by
/// repeating it until ~0.2 s have elapsed; returns (queries, seconds).
fn measure(queries_per_round: u64, mut work: impl FnMut()) -> (u64, f64) {
    // One untimed warm-up round.
    work();
    let started = Instant::now();
    let mut queries = 0u64;
    while started.elapsed().as_secs_f64() < 0.2 {
        work();
        queries += queries_per_round;
    }
    (queries, started.elapsed().as_secs_f64())
}

fn record(
    kernel: &str,
    mode: &str,
    batch_size: usize,
    threads: usize,
    queries: u64,
    seconds: f64,
    baseline_qps: f64,
) -> ThroughputRecord {
    let qps = queries as f64 / seconds;
    ThroughputRecord {
        kernel: kernel.to_string(),
        mode: mode.to_string(),
        batch_size,
        threads,
        queries,
        seconds,
        queries_per_sec: qps,
        speedup: if baseline_qps > 0.0 {
            qps / baseline_qps
        } else {
            0.0
        },
    }
}

/// Run the sweep and write `BENCH_throughput.json`.
pub fn run(cfg: &HarnessConfig) -> Vec<ThroughputRecord> {
    let data = bench_dataset(cfg);
    let eps = 0.35f32;
    let n_queries = 256.min(data.len());
    let queries: Vec<&[f32]> = (0..n_queries).map(|i| data.row(i)).collect();
    println!(
        "\nthroughput sweep: {} points x {} dims, {} queries, eps {eps} \
         ({} host cores)",
        data.len(),
        data.dim(),
        n_queries,
        std::thread::available_parallelism().map_or(1, |n| n.get()),
    );

    let mut records = Vec::new();

    // --- Engine kernel: LinearScan::range_count ---------------------------
    let scan = LinearScan::new(&data, Metric::Cosine);
    let (q, s) = measure(n_queries as u64, || {
        for query in &queries {
            std::hint::black_box(scan.range_count(query, eps));
        }
    });
    let baseline_qps = q as f64 / s;
    records.push(record(
        "linear.range_count",
        "per_query",
        1,
        1,
        q,
        s,
        baseline_qps,
    ));

    for &threads in &THREAD_SWEEP {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("pool");
        for &batch in &BATCH_SWEEP {
            let (q, s) = measure(n_queries as u64, || {
                pool.install(|| {
                    for group in queries.chunks(batch) {
                        std::hint::black_box(scan.range_count_batch(group, eps));
                    }
                })
            });
            records.push(record(
                "linear.range_count",
                "batch",
                batch,
                threads,
                q,
                s,
                baseline_qps,
            ));
        }
    }

    // --- Estimator kernel: MLP estimate ----------------------------------
    let training = TrainingSetBuilder {
        max_queries: Some(cfg.train_queries.min(200)),
        ..Default::default()
    }
    .build(&data, &data)
    .expect("training set");
    let mlp = MlpEstimator::train(&training, &cfg.net);
    let (q, s) = measure(n_queries as u64, || {
        for query in &queries {
            std::hint::black_box(mlp.estimate(query, eps));
        }
    });
    let mlp_baseline_qps = q as f64 / s;
    records.push(record(
        "mlp.estimate",
        "per_query",
        1,
        1,
        q,
        s,
        mlp_baseline_qps,
    ));

    for &threads in &THREAD_SWEEP {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("pool");
        for &batch in &BATCH_SWEEP {
            let (q, s) = measure(n_queries as u64, || {
                pool.install(|| {
                    for group in queries.chunks(batch) {
                        std::hint::black_box(mlp.estimate_batch(group, eps));
                    }
                })
            });
            records.push(record(
                "mlp.estimate",
                "batch",
                batch,
                threads,
                q,
                s,
                mlp_baseline_qps,
            ));
        }
    }

    let rows: Vec<Vec<String>> = records
        .iter()
        .map(|r| {
            vec![
                r.kernel.clone(),
                r.mode.clone(),
                r.batch_size.to_string(),
                r.threads.to_string(),
                format!("{:.0}", r.queries_per_sec),
                format!("{:.2}x", r.speedup),
            ]
        })
        .collect();
    print_table(
        "Throughput: batched parallel kernels vs one-point-at-a-time baselines",
        &["kernel", "mode", "batch", "threads", "queries/s", "speedup"],
        &rows,
    );
    write_json(&cfg.results_dir, "BENCH_throughput", &records);
    records
}

#[cfg(test)]
mod tests {
    use super::*;
    use laf_cardest::NetConfig;

    #[test]
    fn sweep_produces_complete_well_formed_records() {
        let cfg = HarnessConfig {
            scale: 0.0005,
            dim_cap: Some(16),
            train_queries: 40,
            net: NetConfig::tiny(),
            results_dir: std::env::temp_dir().join("laf_bench_throughput_test"),
            ..Default::default()
        };
        let records = run(&cfg);
        // 1 per-query baseline + threads x batches records, per kernel.
        // Wall-clock *magnitudes* are deliberately not asserted — timing
        // assertions flake on contended CI runners; the performance evidence
        // lives in BENCH_throughput.json, not in the test suite.
        let expected_per_kernel = 1 + THREAD_SWEEP.len() * BATCH_SWEEP.len();
        assert_eq!(records.len(), 2 * expected_per_kernel);
        assert!(records
            .iter()
            .all(|r| r.queries_per_sec > 0.0 && r.speedup > 0.0 && r.queries > 0));
        assert!(cfg.results_dir.join("BENCH_throughput.json").exists());
    }
}
