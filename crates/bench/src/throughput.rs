//! Throughput experiment for the batched, parallel query pipeline.
//!
//! Not a paper exhibit: this measures the systems contribution of this
//! repository — queries/second of the batched range kernels
//! ([`laf_index::RangeQueryEngine::range_count_batch`],
//! [`laf_index::RangeQueryEngine::range_batch`]) and of batched estimator
//! inference ([`laf_cardest::CardinalityEstimator::estimate_batch`]) as a
//! function of **batch size** and **thread count**, against the one-point-
//! at-a-time baselines the seed implementation used — plus the **kernel
//! matrix**: generic vs specialized distance kernels, per metric, per
//! engine, scalar and batch, with a clustering-label equality check for
//! every engine/metric combination (the specialized kernels' bit-exactness
//! contract, enforced end to end).
//!
//! Results are printed as tables and written to
//! `<results_dir>/BENCH_throughput.json`. The `exp_throughput` binary exits
//! non-zero when the specialized cosine linear-scan kernel falls below 2x
//! the generic one or when any label check diverges.

use crate::harness::HarnessConfig;
use crate::report::{print_table, write_json};
use laf_cardest::{CardinalityEstimator, MlpEstimator, TrainingSetBuilder};
use laf_clustering::Dbscan;
use laf_index::{build_engine_with_mode, EngineChoice, KernelMode, LinearScan, RangeQueryEngine};
use laf_synth::EmbeddingMixtureConfig;
use laf_vector::{Dataset, Metric};
use serde::Serialize;
use std::time::Instant;

/// One measured configuration.
#[derive(Debug, Clone, Serialize)]
pub struct ThroughputRecord {
    /// What was measured (`linear.range_count`, `mlp.estimate`, ...).
    pub kernel: String,
    /// `per_query` for the point-at-a-time baseline, `batch` for the
    /// batched kernel.
    pub mode: String,
    /// Queries handed to one batched call (1 for the per-query baseline).
    pub batch_size: usize,
    /// Worker threads installed for the call.
    pub threads: usize,
    /// Total queries executed during the measurement.
    pub queries: u64,
    /// Wall-clock seconds of the measurement.
    pub seconds: f64,
    /// Queries per second.
    pub queries_per_sec: f64,
    /// Speedup over this kernel's 1-thread per-query baseline.
    pub speedup: f64,
}

/// One cell of the kernel matrix: a (engine, metric, scalar/batch,
/// generic/specialized) combination.
#[derive(Debug, Clone, Serialize)]
pub struct KernelMatrixRecord {
    /// Engine under test (`linear`, `grid`).
    pub engine: String,
    /// Metric name ([`Metric::name`]).
    pub metric: String,
    /// `scalar` (one `range_count` per query) or `batch`
    /// (`range_count_batch` over the whole query set).
    pub mode: String,
    /// `generic` or `specialized` ([`KernelMode`]).
    pub kernel: String,
    /// Total queries executed during the measurement.
    pub queries: u64,
    /// Wall-clock seconds of the measurement.
    pub seconds: f64,
    /// Queries per second.
    pub queries_per_sec: f64,
    /// Speedup over the generic kernel of the same (engine, metric, mode)
    /// cell (1.0 for the generic rows themselves).
    pub speedup_vs_generic: f64,
}

/// One clustering-label equality check between the kernel modes.
#[derive(Debug, Clone, Serialize)]
pub struct LabelCheckRecord {
    /// Engine under test.
    pub engine: String,
    /// Metric name.
    pub metric: String,
    /// Points clustered.
    pub n_points: usize,
    /// `true` when the generic and specialized runs produced byte-identical
    /// labels.
    pub identical: bool,
}

/// Everything the throughput experiment measures, persisted as one JSON
/// object.
#[derive(Debug, Clone, Serialize)]
pub struct ThroughputReport {
    /// The batch-size / thread-count sweep of the batched pipeline.
    pub records: Vec<ThroughputRecord>,
    /// Generic-vs-specialized kernel comparison per engine/metric/mode.
    pub kernel_matrix: Vec<KernelMatrixRecord>,
    /// Clustering label equality per engine/metric.
    pub label_checks: Vec<LabelCheckRecord>,
}

impl ThroughputReport {
    /// Speedup of the specialized cosine linear-scan scalar kernel over the
    /// generic one — the headline number the CI gate enforces.
    pub fn cosine_linear_scalar_speedup(&self) -> f64 {
        self.kernel_matrix
            .iter()
            .find(|r| {
                r.engine == "linear"
                    && r.metric == "cosine"
                    && r.mode == "scalar"
                    && r.kernel == "specialized"
            })
            .map(|r| r.speedup_vs_generic)
            .unwrap_or(0.0)
    }

    /// `true` when every engine/metric label check was byte-identical.
    pub fn labels_identical_everywhere(&self) -> bool {
        !self.label_checks.is_empty() && self.label_checks.iter().all(|c| c.identical)
    }
}

/// Thread counts swept by the experiment.
pub const THREAD_SWEEP: [usize; 4] = [1, 2, 4, 8];
/// Batch sizes swept by the experiment.
pub const BATCH_SWEEP: [usize; 3] = [16, 64, 256];
/// Metrics covered by the kernel matrix and the label checks.
pub const KERNEL_METRICS: [Metric; 5] = Metric::ALL;

/// A range threshold equivalent to cosine-distance 0.3 under each metric
/// (the benchmark data is unit-normalized, so Equation (1) applies).
fn eps_for(metric: Metric) -> f32 {
    metric.equivalent_threshold(0.3)
}

fn bench_dataset(cfg: &HarnessConfig) -> Dataset {
    // Sized so that at the default LAF_SCALE (0.008) the scan working set is
    // ~16k x 64 dims ≈ 4 MB — large enough to stream from memory rather than
    // cache, the regime the blocked kernels target. Smaller LAF_SCALE values
    // shrink it proportionally (the unit test relies on this to stay fast in
    // debug builds); the cap keeps large-scale runs to a few seconds.
    let n_points = ((2_000_000.0 * cfg.scale) as usize).clamp(1_000, 48_000);
    let dim = cfg.dim_cap.unwrap_or(64).clamp(8, 128);
    EmbeddingMixtureConfig {
        n_points,
        dim,
        clusters: 16,
        noise_fraction: 0.2,
        seed: cfg.seed,
        ..Default::default()
    }
    .generate()
    .expect("valid benchmark dataset config")
    .0
}

/// Time `work` (which executes `queries_per_round` queries per call) by
/// repeating it until ~0.2 s have elapsed; returns (queries, seconds).
fn measure(queries_per_round: u64, mut work: impl FnMut()) -> (u64, f64) {
    // One untimed warm-up round.
    work();
    let started = Instant::now();
    let mut queries = 0u64;
    while started.elapsed().as_secs_f64() < 0.2 {
        work();
        queries += queries_per_round;
    }
    (queries, started.elapsed().as_secs_f64())
}

fn record(
    kernel: &str,
    mode: &str,
    batch_size: usize,
    threads: usize,
    queries: u64,
    seconds: f64,
    baseline_qps: f64,
) -> ThroughputRecord {
    let qps = queries as f64 / seconds;
    ThroughputRecord {
        kernel: kernel.to_string(),
        mode: mode.to_string(),
        batch_size,
        threads,
        queries,
        seconds,
        queries_per_sec: qps,
        speedup: if baseline_qps > 0.0 {
            qps / baseline_qps
        } else {
            0.0
        },
    }
}

/// Measure one kernel-matrix cell: queries/sec of `engine` answering the
/// query set in the given mode, single-threaded so the comparison isolates
/// the kernel itself rather than pool scheduling.
fn measure_matrix_cell(
    engine: &dyn RangeQueryEngine,
    queries: &[&[f32]],
    eps: f32,
    batch: bool,
) -> (u64, f64) {
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(1)
        .build()
        .expect("pool");
    measure(queries.len() as u64, || {
        pool.install(|| {
            if batch {
                std::hint::black_box(engine.range_count_batch(queries, eps));
            } else {
                for q in queries {
                    std::hint::black_box(engine.range_count(q, eps));
                }
            }
        })
    })
}

/// The generic-vs-specialized kernel matrix over the row-scanning engines.
fn kernel_matrix(data: &Dataset, queries: &[&[f32]]) -> Vec<KernelMatrixRecord> {
    let engines: [(&str, EngineChoice); 2] = [
        ("linear", EngineChoice::Linear),
        (
            "grid",
            EngineChoice::Grid {
                cell_side: 1.0 / (data.dim() as f32).sqrt(),
            },
        ),
    ];
    let mut records = Vec::new();
    for (engine_name, choice) in engines {
        for metric in KERNEL_METRICS {
            let eps = eps_for(metric);
            let generic = build_engine_with_mode(choice, data, metric, eps, KernelMode::Generic);
            let specialized =
                build_engine_with_mode(choice, data, metric, eps, KernelMode::Specialized);
            for (mode_name, batch) in [("scalar", false), ("batch", true)] {
                let (gq, gs) = measure_matrix_cell(generic.as_ref(), queries, eps, batch);
                let generic_qps = gq as f64 / gs;
                records.push(KernelMatrixRecord {
                    engine: engine_name.to_string(),
                    metric: metric.name().to_string(),
                    mode: mode_name.to_string(),
                    kernel: "generic".to_string(),
                    queries: gq,
                    seconds: gs,
                    queries_per_sec: generic_qps,
                    speedup_vs_generic: 1.0,
                });
                let (sq, ss) = measure_matrix_cell(specialized.as_ref(), queries, eps, batch);
                let specialized_qps = sq as f64 / ss;
                records.push(KernelMatrixRecord {
                    engine: engine_name.to_string(),
                    metric: metric.name().to_string(),
                    mode: mode_name.to_string(),
                    kernel: "specialized".to_string(),
                    queries: sq,
                    seconds: ss,
                    queries_per_sec: specialized_qps,
                    speedup_vs_generic: if generic_qps > 0.0 {
                        specialized_qps / generic_qps
                    } else {
                        0.0
                    },
                });
            }
        }
    }
    records
}

/// Full-DBSCAN label equality between the kernel modes for every
/// engine/metric combination (run on a subsample so the quadratic scan
/// stays affordable at every scale).
fn label_checks(data: &Dataset) -> Vec<LabelCheckRecord> {
    let n = data.len().min(1_200);
    let subset = data
        .select(&(0..n).collect::<Vec<_>>())
        .expect("prefix indices are valid");
    let choices: [(&str, EngineChoice); 4] = [
        ("linear", EngineChoice::Linear),
        (
            "grid",
            EngineChoice::Grid {
                cell_side: 1.0 / (subset.dim() as f32).sqrt(),
            },
        ),
        (
            "kmeans_tree",
            EngineChoice::KMeansTree {
                branching: 8,
                leaf_ratio: 0.6,
            },
        ),
        (
            "ivf",
            EngineChoice::Ivf {
                nlist: 16,
                nprobe: 4,
            },
        ),
    ];
    let mut checks = Vec::new();
    for (engine_name, choice) in choices {
        for metric in KERNEL_METRICS {
            let eps = eps_for(metric);
            let mut dbscan = Dbscan::with_params(eps, 4);
            dbscan.config.metric = metric;
            dbscan.config.engine = choice;
            let generic_engine =
                build_engine_with_mode(choice, &subset, metric, eps, KernelMode::Generic);
            let specialized_engine =
                build_engine_with_mode(choice, &subset, metric, eps, KernelMode::Specialized);
            let generic = dbscan.cluster_with_engine(&subset, generic_engine.as_ref());
            let specialized = dbscan.cluster_with_engine(&subset, specialized_engine.as_ref());
            checks.push(LabelCheckRecord {
                engine: engine_name.to_string(),
                metric: metric.name().to_string(),
                n_points: subset.len(),
                identical: generic.labels() == specialized.labels(),
            });
        }
    }
    checks
}

/// Run the sweep and write `BENCH_throughput.json`.
pub fn run(cfg: &HarnessConfig) -> ThroughputReport {
    let data = bench_dataset(cfg);
    let eps = 0.35f32;
    let n_queries = 256.min(data.len());
    let queries: Vec<&[f32]> = (0..n_queries).map(|i| data.row(i)).collect();
    println!(
        "\nthroughput sweep: {} points x {} dims, {} queries, eps {eps} \
         ({} host cores)",
        data.len(),
        data.dim(),
        n_queries,
        std::thread::available_parallelism().map_or(1, |n| n.get()),
    );

    let mut records = Vec::new();

    // --- Engine kernel: LinearScan::range_count ---------------------------
    let scan = LinearScan::new(&data, Metric::Cosine);
    let (q, s) = measure(n_queries as u64, || {
        for query in &queries {
            std::hint::black_box(scan.range_count(query, eps));
        }
    });
    let baseline_qps = q as f64 / s;
    records.push(record(
        "linear.range_count",
        "per_query",
        1,
        1,
        q,
        s,
        baseline_qps,
    ));

    for &threads in &THREAD_SWEEP {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("pool");
        for &batch in &BATCH_SWEEP {
            let (q, s) = measure(n_queries as u64, || {
                pool.install(|| {
                    for group in queries.chunks(batch) {
                        std::hint::black_box(scan.range_count_batch(group, eps));
                    }
                })
            });
            records.push(record(
                "linear.range_count",
                "batch",
                batch,
                threads,
                q,
                s,
                baseline_qps,
            ));
        }
    }

    // --- Estimator kernel: MLP estimate ----------------------------------
    let training = TrainingSetBuilder {
        max_queries: Some(cfg.train_queries.min(200)),
        ..Default::default()
    }
    .build(&data, &data)
    .expect("training set");
    let mlp = MlpEstimator::train(&training, &cfg.net);
    let (q, s) = measure(n_queries as u64, || {
        for query in &queries {
            std::hint::black_box(mlp.estimate(query, eps));
        }
    });
    let mlp_baseline_qps = q as f64 / s;
    records.push(record(
        "mlp.estimate",
        "per_query",
        1,
        1,
        q,
        s,
        mlp_baseline_qps,
    ));

    for &threads in &THREAD_SWEEP {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("pool");
        for &batch in &BATCH_SWEEP {
            let (q, s) = measure(n_queries as u64, || {
                pool.install(|| {
                    for group in queries.chunks(batch) {
                        std::hint::black_box(mlp.estimate_batch(group, eps));
                    }
                })
            });
            records.push(record(
                "mlp.estimate",
                "batch",
                batch,
                threads,
                q,
                s,
                mlp_baseline_qps,
            ));
        }
    }

    let rows: Vec<Vec<String>> = records
        .iter()
        .map(|r| {
            vec![
                r.kernel.clone(),
                r.mode.clone(),
                r.batch_size.to_string(),
                r.threads.to_string(),
                format!("{:.0}", r.queries_per_sec),
                format!("{:.2}x", r.speedup),
            ]
        })
        .collect();
    print_table(
        "Throughput: batched parallel kernels vs one-point-at-a-time baselines",
        &["kernel", "mode", "batch", "threads", "queries/s", "speedup"],
        &rows,
    );

    // --- Kernel matrix: generic vs specialized, per metric, per engine ----
    let matrix = kernel_matrix(&data, &queries);
    let matrix_rows: Vec<Vec<String>> = matrix
        .iter()
        .map(|r| {
            vec![
                r.engine.clone(),
                r.metric.clone(),
                r.mode.clone(),
                r.kernel.clone(),
                format!("{:.0}", r.queries_per_sec),
                format!("{:.2}x", r.speedup_vs_generic),
            ]
        })
        .collect();
    print_table(
        "Kernel matrix: specialized (norm-cached, dot-only) vs generic dispatch",
        &["engine", "metric", "mode", "kernel", "queries/s", "speedup"],
        &matrix_rows,
    );

    // --- Label checks: bit-exactness enforced end to end ------------------
    let checks = label_checks(&data);
    let check_rows: Vec<Vec<String>> = checks
        .iter()
        .map(|c| {
            vec![
                c.engine.clone(),
                c.metric.clone(),
                c.n_points.to_string(),
                if c.identical { "ok" } else { "DIVERGED" }.to_string(),
            ]
        })
        .collect();
    print_table(
        "Clustering labels: generic vs specialized kernels",
        &["engine", "metric", "points", "labels"],
        &check_rows,
    );

    let report = ThroughputReport {
        records,
        kernel_matrix: matrix,
        label_checks: checks,
    };
    println!(
        "\nspecialized cosine linear scan: {:.2}x the generic kernel (gate: >= 2x)",
        report.cosine_linear_scalar_speedup()
    );
    write_json(&cfg.results_dir, "BENCH_throughput", &report);
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use laf_cardest::NetConfig;

    #[test]
    fn sweep_produces_complete_well_formed_records() {
        let cfg = HarnessConfig {
            scale: 0.0005,
            dim_cap: Some(16),
            train_queries: 40,
            net: NetConfig::tiny(),
            results_dir: std::env::temp_dir().join("laf_bench_throughput_test"),
            ..Default::default()
        };
        let report = run(&cfg);
        // 1 per-query baseline + threads x batches records, per kernel.
        // Wall-clock *magnitudes* are deliberately not asserted — timing
        // assertions flake on contended CI runners; the performance evidence
        // lives in BENCH_throughput.json, not in the test suite.
        let expected_per_kernel = 1 + THREAD_SWEEP.len() * BATCH_SWEEP.len();
        assert_eq!(report.records.len(), 2 * expected_per_kernel);
        assert!(report
            .records
            .iter()
            .all(|r| r.queries_per_sec > 0.0 && r.speedup > 0.0 && r.queries > 0));
        // Kernel matrix: 2 engines x metrics x {scalar,batch} x
        // {generic,specialized}.
        assert_eq!(report.kernel_matrix.len(), 2 * KERNEL_METRICS.len() * 2 * 2);
        assert!(report
            .kernel_matrix
            .iter()
            .all(|r| r.queries_per_sec > 0.0 && r.queries > 0));
        assert!(report.cosine_linear_scalar_speedup() > 0.0);
        // Label checks: 4 engines x metrics, and correctness (unlike speed)
        // is asserted even at smoke scale — the specialized kernels are
        // bit-exact by contract, on any machine.
        assert_eq!(report.label_checks.len(), 4 * KERNEL_METRICS.len());
        assert!(
            report.labels_identical_everywhere(),
            "kernel modes produced diverging labels: {:?}",
            report
                .label_checks
                .iter()
                .filter(|c| !c.identical)
                .collect::<Vec<_>>()
        );
        assert!(cfg.results_dir.join("BENCH_throughput.json").exists());
    }
}
