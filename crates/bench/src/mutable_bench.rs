//! Mutable-plane benchmark: WAL-backed write throughput, the read-side
//! price of the delta segment, and crash-recovery (replay) time.
//!
//! The mutable serving plane only earns its keep if (a) writes through the
//! write-ahead log are cheap, (b) reads over base + delta stay close to the
//! frozen-base path they replace, and (c) reopening after a crash is fast
//! and loses nothing. This experiment measures all three, then runs the
//! subsystem's acceptance gate: after a compaction folds the delta and
//! tombstones into a fresh base, the compacted pipeline must cluster
//! **bit-identically** to a from-scratch pipeline built over the same live
//! rows with the same estimator. Writes `<results_dir>/BENCH_mutable.json`.

use crate::harness::HarnessConfig;
use crate::report::{format_seconds, print_table, write_json};
use laf_cardest::TrainingSetBuilder;
use laf_core::{LafConfig, LafPipeline, MutablePipeline};
use laf_synth::EmbeddingMixtureConfig;
use laf_vector::Dataset;
use serde::Serialize;
use std::time::Instant;

/// Insert throughput under one durability policy.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct InsertThroughput {
    /// Rows inserted.
    pub rows: usize,
    /// `fdatasync` calls issued over those rows.
    pub syncs: usize,
    /// Wall-clock seconds for the whole batch, including its syncs.
    pub wall_seconds: f64,
    /// `rows / wall_seconds`.
    pub rows_per_second: f64,
}

/// Read latency of the merged base+delta path against the frozen base it
/// replaces, for one query kind.
#[derive(Debug, Clone, Serialize)]
pub struct ReadOverhead {
    /// `range_count` or `knn`.
    pub query_kind: String,
    /// Queries per measured pass.
    pub queries: usize,
    /// Best-of-3 seconds for the pass on the frozen base engine.
    pub base_seconds: f64,
    /// Best-of-3 seconds for the pass on the mutable pipeline (base engine
    /// + delta scan + tombstone masking).
    pub mutable_seconds: f64,
    /// `mutable_seconds / base_seconds` — the delta's read tax.
    pub overhead_ratio: f64,
}

/// Crash-recovery measurement: drop the pipeline, reopen the directory,
/// replay the log.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct RecoveryTiming {
    /// WAL records replayed on reopen.
    pub wal_records: usize,
    /// WAL size in bytes at the drop point.
    pub wal_bytes: u64,
    /// Seconds for [`MutablePipeline::open`] (manifest read, base mmap, full
    /// replay).
    pub reopen_seconds: f64,
    /// Live rows after reopen bit-identical to the rows before the drop
    /// (must be `true`).
    pub state_bit_identical: bool,
}

/// The post-compaction acceptance gate.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct CompactionVerdict {
    /// Delta rows + tombstones folded by the compaction.
    pub folded_ops: usize,
    /// Seconds for [`MutablePipeline::compact`] (fold, save, manifest flip,
    /// WAL truncate, base reload).
    pub compact_seconds: f64,
    /// Generation after the compaction.
    pub generation: u64,
    /// Compacted base clusters label-identically to a from-scratch pipeline
    /// over the same live rows and estimator (must be `true`).
    pub labels_identical: bool,
    /// Same for the [`laf_core::LafStats`] counters (must be `true`).
    pub stats_identical: bool,
}

/// The full experiment record written to `BENCH_mutable.json`.
#[derive(Debug, Clone, Serialize)]
pub struct MutableBenchReport {
    /// Base dataset rows.
    pub n_points: usize,
    /// Dataset dimensionality.
    pub dim: usize,
    /// Delta rows as a fraction of the base at read-measurement time.
    pub delta_fraction: f64,
    /// Tombstoned rows at read-measurement time.
    pub deletes: usize,
    /// Inserts with one `fdatasync` for the whole batch (the serving
    /// front's group commit).
    pub group_commit: InsertThroughput,
    /// Inserts with an `fdatasync` after every row (the worst-case
    /// durability policy).
    pub per_op_sync: InsertThroughput,
    /// Merged-read overhead per query kind.
    pub reads: Vec<ReadOverhead>,
    /// Reopen-and-replay measurement.
    pub recovery: RecoveryTiming,
    /// The bit-exactness gate.
    pub compaction: CompactionVerdict,
}

fn bench_dataset(cfg: &HarnessConfig, seed_salt: u64, n_points: usize) -> Dataset {
    let dim = cfg.dim_cap.unwrap_or(64).clamp(8, 128);
    EmbeddingMixtureConfig {
        n_points,
        dim,
        clusters: 12,
        noise_fraction: 0.2,
        seed: cfg.seed ^ seed_salt,
        ..Default::default()
    }
    .generate()
    .expect("valid benchmark dataset config")
    .0
}

/// Bits of every live row, for exact state comparison across a reopen.
fn live_bits(pipeline: &MutablePipeline) -> Vec<u32> {
    let data = pipeline.live_dataset().expect("live rows materialize");
    data.as_flat().iter().map(|v| v.to_bits()).collect()
}

fn best_of_3(mut pass: impl FnMut() -> u64) -> (f64, u64) {
    let mut best = f64::INFINITY;
    let mut checksum = 0;
    for _ in 0..3 {
        let t = Instant::now();
        checksum = pass();
        best = best.min(t.elapsed().as_secs_f64());
    }
    (best, checksum)
}

/// Run the mutable-plane measurements and write `BENCH_mutable.json`.
pub fn run(cfg: &HarnessConfig) -> MutableBenchReport {
    let n_points = ((1_000_000.0 * cfg.scale) as usize).clamp(500, 24_000);
    let data = bench_dataset(cfg, 0, n_points);
    let n_points = data.len();
    let dim = data.dim();
    let laf_config = LafConfig::new(0.35, 4, 1.0);
    println!("\nmutable plane: {n_points} base points x {dim} dims");

    let base_pipeline = LafPipeline::builder(laf_config)
        .net(cfg.net.clone())
        .training(TrainingSetBuilder {
            max_queries: Some(cfg.train_queries),
            ..Default::default()
        })
        .train(data)
        .expect("base training");
    let dir = std::env::temp_dir().join(format!(
        "laf_bench_mutable_{n_points}x{dim}_{}",
        std::process::id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    let mut mutable = MutablePipeline::create(&dir, &base_pipeline).expect("mutable create");
    drop(base_pipeline); // serve from the mmap'd base, like a real reopen

    // --- Insert throughput: group commit vs sync-every-op ------------------
    let group_rows = (n_points / 8).max(32);
    let per_op_rows = group_rows.min(64);
    let extra = bench_dataset(cfg, 0xD17A, group_rows + per_op_rows);

    let t = Instant::now();
    for i in 0..group_rows {
        mutable.insert(extra.row(i)).expect("logged insert");
    }
    mutable.sync().expect("group-commit sync");
    let group_seconds = t.elapsed().as_secs_f64();
    let group_commit = InsertThroughput {
        rows: group_rows,
        syncs: 1,
        wall_seconds: group_seconds,
        rows_per_second: group_rows as f64 / group_seconds.max(f64::EPSILON),
    };

    let t = Instant::now();
    for i in group_rows..group_rows + per_op_rows {
        mutable.insert(extra.row(i)).expect("logged insert");
        mutable.sync().expect("per-op sync");
    }
    let per_op_seconds = t.elapsed().as_secs_f64();
    let per_op_sync = InsertThroughput {
        rows: per_op_rows,
        syncs: per_op_rows,
        wall_seconds: per_op_seconds,
        rows_per_second: per_op_rows as f64 / per_op_seconds.max(f64::EPSILON),
    };

    // A spread of deletes so the masked (tombstone-aware) read paths are the
    // ones being measured, not the fast deleted==0 shortcut.
    let deletes = (n_points / 64).max(8);
    for i in 0..deletes {
        let target = (i * 131) % mutable.len();
        mutable.delete(target).expect("logged delete");
    }
    mutable.sync().expect("delete sync");
    let wal_records = group_rows + per_op_rows + deletes;
    let delta_fraction = mutable.delta_len() as f64 / n_points as f64;

    // --- Read overhead: frozen base engine vs merged base+delta ------------
    let eps = mutable.base().config().eps;
    let stride = (n_points / 64).max(1);
    let queries: Vec<Vec<f32>> = (0..64.min(n_points))
        .map(|i| mutable.base().data().row(i * stride).to_vec())
        .collect();
    let engine = mutable.base().engine();

    let (count_base, base_sum) = best_of_3(|| {
        queries
            .iter()
            .map(|q| engine.get().range_count(q, eps) as u64)
            .sum()
    });
    let (count_mutable, mutable_sum) = best_of_3(|| {
        queries
            .iter()
            .map(|q| mutable.range_count(q, eps) as u64)
            .sum()
    });
    let (knn_base, _) = best_of_3(|| {
        queries
            .iter()
            .map(|q| engine.get().knn(q, 10).len() as u64)
            .sum()
    });
    let (knn_mutable, _) = best_of_3(|| {
        queries
            .iter()
            .map(|q| mutable.knn(q, 10).len() as u64)
            .sum()
    });
    drop(engine);
    println!(
        "read passes: {} queries, base counted {base_sum} rows, merged counted {mutable_sum}",
        queries.len()
    );
    let reads = vec![
        ReadOverhead {
            query_kind: "range_count".to_string(),
            queries: queries.len(),
            base_seconds: count_base,
            mutable_seconds: count_mutable,
            overhead_ratio: count_mutable / count_base.max(f64::EPSILON),
        },
        ReadOverhead {
            query_kind: "knn".to_string(),
            queries: queries.len(),
            base_seconds: knn_base,
            mutable_seconds: knn_mutable,
            overhead_ratio: knn_mutable / knn_base.max(f64::EPSILON),
        },
    ];

    // --- Crash recovery: drop without ceremony, reopen, replay -------------
    let bits_before = live_bits(&mutable);
    let wal_bytes = mutable.wal_len_bytes();
    drop(mutable);
    let t = Instant::now();
    let mut mutable = MutablePipeline::open(&dir).expect("reopen replays the log");
    let reopen_seconds = t.elapsed().as_secs_f64();
    let recovery = RecoveryTiming {
        wal_records,
        wal_bytes,
        reopen_seconds,
        state_bit_identical: live_bits(&mutable) == bits_before,
    };

    // --- Compaction gate: fold, then race a from-scratch pipeline ----------
    let live = mutable.live_dataset().expect("live rows materialize");
    let estimator = mutable.base().estimator().clone();
    let scratch_config = mutable.base().config().clone();
    let folded_ops = mutable.pending_ops();
    let t = Instant::now();
    mutable.compact().expect("compaction");
    let compact_seconds = t.elapsed().as_secs_f64();
    let (compacted_clustering, compacted_stats) = mutable.base().cluster_with_stats();
    let scratch = LafPipeline::from_parts(scratch_config, live, estimator);
    let (scratch_clustering, scratch_stats) = scratch.cluster_with_stats();
    let compaction = CompactionVerdict {
        folded_ops,
        compact_seconds,
        generation: mutable.generation(),
        labels_identical: compacted_clustering.labels() == scratch_clustering.labels(),
        stats_identical: compacted_stats == scratch_stats,
    };
    drop(mutable);
    std::fs::remove_dir_all(&dir).ok();

    let report = MutableBenchReport {
        n_points,
        dim,
        delta_fraction,
        deletes,
        group_commit,
        per_op_sync,
        reads,
        recovery,
        compaction,
    };

    let write_rows = vec![
        vec![
            "group commit (1 sync)".to_string(),
            group_commit.rows.to_string(),
            group_commit.syncs.to_string(),
            format_seconds(group_commit.wall_seconds),
            format!("{:.0}", group_commit.rows_per_second),
        ],
        vec![
            "sync every op".to_string(),
            per_op_sync.rows.to_string(),
            per_op_sync.syncs.to_string(),
            format_seconds(per_op_sync.wall_seconds),
            format!("{:.0}", per_op_sync.rows_per_second),
        ],
    ];
    print_table(
        "Mutable plane: WAL insert throughput by durability policy",
        &["policy", "rows", "syncs", "wall", "rows/s"],
        &write_rows,
    );

    let read_rows: Vec<Vec<String>> = report
        .reads
        .iter()
        .map(|r| {
            vec![
                r.query_kind.clone(),
                r.queries.to_string(),
                format_seconds(r.base_seconds),
                format_seconds(r.mutable_seconds),
                format!("{:.2}x", r.overhead_ratio),
            ]
        })
        .collect();
    print_table(
        &format!(
            "Merged-read overhead at {:.1}% delta, {} tombstones",
            report.delta_fraction * 100.0,
            report.deletes
        ),
        &["query", "queries", "frozen base", "base+delta", "overhead"],
        &read_rows,
    );

    println!(
        "recovery: {} records / {} bytes replayed in {} (state bit-identical: {})",
        recovery.wal_records,
        recovery.wal_bytes,
        format_seconds(recovery.reopen_seconds),
        recovery.state_bit_identical
    );
    println!(
        "compaction: {} ops folded in {} -> generation {} (labels identical: {}, stats identical: {})",
        compaction.folded_ops,
        format_seconds(compaction.compact_seconds),
        compaction.generation,
        compaction.labels_identical,
        compaction.stats_identical
    );

    write_json(&cfg.results_dir, "BENCH_mutable", &report);
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use laf_cardest::NetConfig;

    #[test]
    fn mutable_plane_is_measured_and_bit_exact() {
        let cfg = HarnessConfig {
            scale: 0.001,
            dim_cap: Some(12),
            train_queries: 60,
            net: NetConfig::tiny(),
            results_dir: std::env::temp_dir().join("laf_bench_mutable_test"),
            ..Default::default()
        };
        let report = run(&cfg);
        assert!(report.group_commit.rows >= 32);
        assert!(report.group_commit.rows_per_second > 0.0);
        assert!(report.per_op_sync.syncs == report.per_op_sync.rows);
        assert_eq!(report.reads.len(), 2);
        for r in &report.reads {
            assert!(r.base_seconds > 0.0 && r.mutable_seconds > 0.0);
        }
        // The two acceptance bars of the subsystem: reopening after a crash
        // loses nothing, and a compacted base is indistinguishable from a
        // pipeline built from scratch over the same rows.
        assert!(report.recovery.state_bit_identical);
        assert!(report.recovery.wal_records > 0);
        assert!(report.compaction.labels_identical);
        assert!(report.compaction.stats_identical);
        assert_eq!(report.compaction.generation, 1);
        assert!(cfg.results_dir.join("BENCH_mutable.json").exists());
    }
}
