//! Serving experiment: coalesced vs one-at-a-time dispatch under
//! concurrent load.
//!
//! Not a paper exhibit: this measures the serving layer's contribution —
//! closed-loop clients issue pipelined range-count queries (the paper's
//! cardinality primitive) against a [`laf_serve::LafServer`] at several
//! offered loads (client counts), once with coalescing enabled (requests
//! merge into the query-major mini-GEMM batch kernels) and once with
//! `max_batch = 1` (every request dispatches alone, exactly as a
//! synchronous caller would run it). Each client keeps [`PIPELINE`]
//! requests in flight through the [`laf_serve::Ticket`] API — the standard
//! closed-loop serving-benchmark shape, and what gives the coalescing arm a
//! queue worth merging even at one client. Every served result is compared
//! against the precomputed synchronous answer, so the benchmark doubles as
//! an end-to-end bit-exactness check of the coalescing path.
//!
//! Results are printed as a table and written to
//! `<results_dir>/BENCH_serving.json` with p50/p99 latency, throughput,
//! batch-occupancy histograms and rejection counts per load. The
//! `exp_serving` binary exits non-zero when coalesced throughput at
//! saturation falls below 1.5x the one-at-a-time baseline or any served
//! result diverges.
//!
//! Note for single-core containers: the coalescing win measured here is
//! batch-kernel amortization (the blocked `range_count` scan scores every
//! cached row against a whole tile of queries) plus dispatch-overhead
//! amortization (one dispatcher wakeup, queue drain and kernel launch per
//! batch instead of per request) — not thread scaling. The recorded
//! `host_threads` lets multi-core hosts put their numbers in context.

use crate::harness::HarnessConfig;
use crate::report::{print_table, write_json};
use laf_cardest::{NetConfig, TrainingSetBuilder};
use laf_core::{LafConfig, LafPipeline};
use laf_serve::{LafServer, ServeConfig, ServeStatsReport, Ticket};
use laf_synth::EmbeddingMixtureConfig;
use laf_vector::Dataset;
use serde::Serialize;
use std::collections::VecDeque;
use std::time::{Duration, Instant};

/// Offered loads (closed-loop client counts) swept by the experiment. The
/// largest is the saturation point the CI gate is evaluated at.
pub const LOAD_SWEEP: [usize; 5] = [1, 2, 4, 8, 16];

/// Requests each client keeps in flight (ticket pipeline depth).
pub const PIPELINE: usize = 8;

/// Distinct query vectors cycled by the clients.
const N_QUERIES: usize = 64;

/// Untimed warm-up per (mode, load) arm, seconds.
const WARMUP_SECS: f64 = 0.08;

/// Timed measurement window, seconds.
const MEASURE_SECS: f64 = 0.25;

/// Measured windows per (mode, load) arm. The reported record is the
/// median-throughput window: this container shares a host, and a transient
/// CPU-contention spike inside a single window would otherwise decide the
/// CI gate. Correctness (mismatch counts) is still checked across *all*
/// windows.
const MEASURE_WINDOWS: usize = 5;

/// One measured (dispatch mode, offered load) arm.
#[derive(Debug, Clone, Serialize)]
pub struct ServingRecord {
    /// `coalesced` or `uncoalesced`.
    pub mode: String,
    /// Closed-loop client threads driving the server.
    pub clients: usize,
    /// Wall-clock seconds of the timed window.
    pub seconds: f64,
    /// Requests completed inside the timed window.
    pub completed: u64,
    /// Completed requests per second.
    pub throughput_qps: f64,
    /// Median served latency (submission to result), microseconds.
    pub p50_latency_us: f64,
    /// 99th-percentile served latency, microseconds.
    pub p99_latency_us: f64,
    /// Served results that differed from the synchronous path (must be 0).
    pub mismatches: u64,
    /// The server's own counters for the timed window: batch-occupancy
    /// histogram, rejections, peak queue depth, mean occupancy.
    pub stats: ServeStatsReport,
}

/// Everything the serving experiment measures, persisted as one JSON object.
#[derive(Debug, Clone, Serialize)]
pub struct ServingReport {
    /// The request kind the clients issue (`range_count`).
    pub workload: String,
    /// Points in the served dataset.
    pub n_points: usize,
    /// Data dimensionality.
    pub dim: usize,
    /// Range-query radius used by every client.
    pub eps: f32,
    /// Requests each client keeps in flight.
    pub pipeline_depth: usize,
    /// Host hardware threads (context for the single-core caveat above).
    pub host_threads: usize,
    /// The load sweep the records cover.
    pub loads: Vec<usize>,
    /// Client count the saturation gate is evaluated at.
    pub saturation_clients: usize,
    /// Coalesced / uncoalesced throughput ratio at saturation.
    pub saturation_speedup: f64,
    /// `true` when every served result matched the synchronous path.
    pub results_identical: bool,
    /// One record per (mode, load) arm.
    pub records: Vec<ServingRecord>,
}

impl ServingReport {
    /// Throughput of `mode` at `clients`, or 0.0 if that arm is missing.
    pub fn qps(&self, mode: &str, clients: usize) -> f64 {
        self.records
            .iter()
            .find(|r| r.mode == mode && r.clients == clients)
            .map(|r| r.throughput_qps)
            .unwrap_or(0.0)
    }
}

fn serving_dataset(cfg: &HarnessConfig) -> Dataset {
    // Sized so one scalar cosine count-scan costs single-digit microseconds
    // in release builds: enough work that the blocked kernel's amortization
    // is visible, small enough that per-request dispatch overhead — the
    // axis coalescing actually amortizes — dominates the budget.
    let n_points = ((50_000.0 * cfg.scale) as usize).clamp(400, 8_000);
    let dim = cfg.dim_cap.unwrap_or(32).clamp(8, 32);
    EmbeddingMixtureConfig {
        n_points,
        dim,
        clusters: 12,
        noise_fraction: 0.2,
        seed: cfg.seed,
        ..Default::default()
    }
    .generate()
    .expect("valid serving dataset config")
    .0
}

/// Per-client tallies from one driving window.
#[derive(Debug, Default)]
struct DriveOutcome {
    completed: u64,
    mismatches: u64,
    latencies_us: Vec<u64>,
}

/// Drive `clients` closed-loop threads against `server` for `seconds`, each
/// keeping up to [`PIPELINE`] tickets in flight. When `record` is false
/// (warm-up) nothing is tallied. Every in-flight ticket is drained before a
/// client exits, so no request outlives the drive.
fn drive(
    server: &LafServer,
    clients: usize,
    queries: &[Vec<f32>],
    expected: &[usize],
    eps: f32,
    seconds: f64,
    record: bool,
) -> DriveOutcome {
    let deadline = Instant::now() + Duration::from_secs_f64(seconds);
    let per_client: Vec<DriveOutcome> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                scope.spawn(move || {
                    let mut out = DriveOutcome::default();
                    // Staggered offsets so clients do not march in lockstep.
                    let mut i = (c * 17) % queries.len();
                    let mut inflight: VecDeque<(usize, Instant, Ticket<usize>)> =
                        VecDeque::with_capacity(PIPELINE);
                    loop {
                        if Instant::now() < deadline {
                            while inflight.len() < PIPELINE {
                                i = (i + 1) % queries.len();
                                let submitted = Instant::now();
                                match server.range_count_async(&queries[i], eps) {
                                    Ok(ticket) => inflight.push_back((i, submitted, ticket)),
                                    // The caller owns the retry policy; a
                                    // closed-loop client waits out its oldest
                                    // ticket (below), which itself drains the
                                    // queue that bounced this submission.
                                    Err(_) => break,
                                }
                            }
                        }
                        let Some((qi, submitted, ticket)) = inflight.pop_front() else {
                            break;
                        };
                        let served = ticket.wait();
                        if record {
                            out.latencies_us
                                .push(submitted.elapsed().as_micros() as u64);
                            out.completed += 1;
                            if served.value != expected[qi] {
                                out.mismatches += 1;
                            }
                        }
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect()
    });
    let mut merged = DriveOutcome::default();
    for out in per_client {
        merged.completed += out.completed;
        merged.mismatches += out.mismatches;
        merged.latencies_us.extend(out.latencies_us);
    }
    merged
}

/// `p`-quantile (0..=1) of an unsorted latency sample, microseconds.
fn percentile_us(latencies: &mut [u64], p: f64) -> f64 {
    if latencies.is_empty() {
        return 0.0;
    }
    latencies.sort_unstable();
    let idx = ((latencies.len() - 1) as f64 * p).round() as usize;
    latencies[idx] as f64
}

/// Run the sweep and write `BENCH_serving.json`.
pub fn run(cfg: &HarnessConfig) -> ServingReport {
    let data = serving_dataset(cfg);
    let eps = 0.2f32;
    let (n_points, dim) = (data.len(), data.dim());
    println!(
        "\nserving sweep: {n_points} points x {dim} dims, eps {eps}, loads {LOAD_SWEEP:?}, \
         pipeline depth {PIPELINE} ({} host threads)",
        std::thread::available_parallelism().map_or(1, |n| n.get()),
    );

    // One trained pipeline, re-decoded per arm from its snapshot bytes so
    // every server starts from an identical state (snapshots are bit-exact
    // by contract).
    let pipeline = LafPipeline::builder(LafConfig::new(eps, 4, 1.0))
        .net(NetConfig::tiny())
        .training(TrainingSetBuilder {
            max_queries: Some(cfg.train_queries.min(120)),
            ..Default::default()
        })
        .train(data)
        .expect("train serving pipeline");
    let snapshot_bytes = pipeline.to_snapshot_bytes().expect("encode snapshot");

    let stride = (pipeline.data().len() / N_QUERIES).max(1);
    let queries: Vec<Vec<f32>> = (0..N_QUERIES.min(pipeline.data().len()))
        .map(|i| pipeline.data().row(i * stride).to_vec())
        .collect();
    // The synchronous reference answers every served result is checked
    // against — computed on the scalar path, once.
    let engine = pipeline.engine();
    let expected: Vec<usize> = queries.iter().map(|q| engine.range_count(q, eps)).collect();
    drop(engine);
    drop(pipeline);

    let arms: [(&str, ServeConfig); 2] = [
        ("uncoalesced", ServeConfig::uncoalesced()),
        (
            "coalesced",
            ServeConfig {
                coalesce_window_us: 200,
                max_batch: 64,
                max_queue_depth: 512,
                ..ServeConfig::default()
            },
        ),
    ];

    let mut records = Vec::new();
    for (mode, serve_config) in arms {
        for clients in LOAD_SWEEP {
            let pipeline =
                LafPipeline::from_snapshot_bytes(&snapshot_bytes).expect("decode snapshot");
            let server = LafServer::start(pipeline, serve_config);
            drive(
                &server,
                clients,
                &queries,
                &expected,
                eps,
                WARMUP_SECS,
                false,
            );
            let mut windows: Vec<(DriveOutcome, f64, ServeStatsReport)> = (0..MEASURE_WINDOWS)
                .map(|_| {
                    server.stats().reset();
                    let started = Instant::now();
                    let outcome = drive(
                        &server,
                        clients,
                        &queries,
                        &expected,
                        eps,
                        MEASURE_SECS,
                        true,
                    );
                    let seconds = started.elapsed().as_secs_f64();
                    (outcome, seconds, server.stats_report())
                })
                .collect();
            server.shutdown();
            // Correctness must hold in every window; performance is reported
            // from the median-throughput window.
            let mismatches: u64 = windows.iter().map(|(o, _, _)| o.mismatches).sum();
            windows.sort_by(|a, b| {
                let qa = a.0.completed as f64 / a.1;
                let qb = b.0.completed as f64 / b.1;
                qa.total_cmp(&qb)
            });
            let (mut outcome, seconds, stats) = windows.swap_remove(MEASURE_WINDOWS / 2);
            let p50 = percentile_us(&mut outcome.latencies_us, 0.50);
            let p99 = percentile_us(&mut outcome.latencies_us, 0.99);
            records.push(ServingRecord {
                mode: mode.to_string(),
                clients,
                seconds,
                completed: outcome.completed,
                throughput_qps: outcome.completed as f64 / seconds,
                p50_latency_us: p50,
                p99_latency_us: p99,
                mismatches,
                stats,
            });
        }
    }

    let rows: Vec<Vec<String>> = records
        .iter()
        .map(|r| {
            vec![
                r.mode.clone(),
                r.clients.to_string(),
                format!("{:.0}", r.throughput_qps),
                format!("{:.0}", r.p50_latency_us),
                format!("{:.0}", r.p99_latency_us),
                format!("{:.2}", r.stats.mean_batch_occupancy),
                r.stats.rejected.to_string(),
                if r.mismatches == 0 { "ok" } else { "DIVERGED" }.to_string(),
            ]
        })
        .collect();
    print_table(
        "Serving: coalesced vs one-at-a-time dispatch under closed-loop load",
        &[
            "mode",
            "clients",
            "queries/s",
            "p50 us",
            "p99 us",
            "occupancy",
            "rejected",
            "results",
        ],
        &rows,
    );

    let saturation_clients = *LOAD_SWEEP.last().expect("non-empty sweep");
    let results_identical = records.iter().all(|r| r.mismatches == 0);
    let report = ServingReport {
        workload: "range_count".to_string(),
        n_points,
        dim,
        eps,
        pipeline_depth: PIPELINE,
        host_threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
        loads: LOAD_SWEEP.to_vec(),
        saturation_clients,
        saturation_speedup: 0.0,
        results_identical,
        records,
    };
    let saturation_speedup = {
        let baseline = report.qps("uncoalesced", saturation_clients);
        if baseline > 0.0 {
            report.qps("coalesced", saturation_clients) / baseline
        } else {
            0.0
        }
    };
    let report = ServingReport {
        saturation_speedup,
        ..report
    };
    println!(
        "\ncoalesced dispatch at {saturation_clients} clients: {saturation_speedup:.2}x \
         one-at-a-time throughput (gate: >= 1.5x); results {}",
        if results_identical {
            "bit-identical to the synchronous path"
        } else {
            "DIVERGED"
        }
    );
    write_json(&cfg.results_dir, "BENCH_serving", &report);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_produces_complete_well_formed_records() {
        let cfg = HarnessConfig {
            scale: 0.0025,
            dim_cap: Some(16),
            train_queries: 40,
            net: NetConfig::tiny(),
            results_dir: std::env::temp_dir().join("laf_bench_serving_test"),
            ..Default::default()
        };
        let report = run(&cfg);
        // 2 modes x loads. Wall-clock *magnitudes* (including the 1.5x
        // saturation gate) are deliberately not asserted — timing assertions
        // flake in debug builds and on contended CI runners; the release
        // `exp_serving` binary enforces the gate.
        assert_eq!(report.records.len(), 2 * LOAD_SWEEP.len());
        assert!(report
            .records
            .iter()
            .all(|r| r.completed > 0 && r.throughput_qps > 0.0 && r.p99_latency_us > 0.0));
        // Correctness (unlike speed) is asserted even at smoke scale: every
        // served result must match the synchronous path bit for bit.
        assert!(report.results_identical, "served results diverged");
        assert!(report
            .records
            .iter()
            .all(|r| r.stats.completed >= r.completed));
        assert!(report.saturation_speedup > 0.0);
        assert!(cfg.results_dir.join("BENCH_serving.json").exists());
    }
}
