//! Plain-text table rendering and JSON result persistence.

use serde::Serialize;
use std::fs;
use std::path::Path;

/// Render an ASCII table with left-aligned first column and right-aligned
/// numeric columns, mirroring how the paper's tables read.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    if headers.is_empty() {
        return;
    }
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let render = |cells: &[String]| -> String {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| {
                if i == 0 {
                    format!("{:<width$}", c, width = widths[i])
                } else {
                    format!("{:>width$}", c, width = widths[i])
                }
            })
            .collect::<Vec<_>>()
            .join("  ")
    };
    let header_cells: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
    println!("{}", render(&header_cells));
    println!(
        "{}",
        "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len())
    );
    for row in rows {
        println!("{}", render(row));
    }
}

/// Serialize `value` as pretty JSON under `dir/name.json` (the directory is
/// created if needed). Failures are reported but not fatal — experiments
/// should still print their tables when the filesystem is read-only.
pub fn write_json<T: Serialize>(dir: &Path, name: &str, value: &T) {
    if let Err(e) = fs::create_dir_all(dir) {
        eprintln!("warning: cannot create {}: {e}", dir.display());
        return;
    }
    let path = dir.join(format!("{name}.json"));
    match serde_json::to_string_pretty(value) {
        Ok(json) => {
            if let Err(e) = fs::write(&path, json) {
                eprintln!("warning: cannot write {}: {e}", path.display());
            } else {
                println!("(results written to {})", path.display());
            }
        }
        Err(e) => eprintln!("warning: cannot serialize {name}: {e}"),
    }
}

/// Human-friendly seconds formatting used across the tables.
pub fn format_seconds(seconds: f64) -> String {
    if seconds < 0.001 {
        format!("{:.1}us", seconds * 1e6)
    } else if seconds < 1.0 {
        format!("{:.1}ms", seconds * 1e3)
    } else {
        format!("{seconds:.2}s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn format_seconds_scales_units() {
        assert_eq!(format_seconds(0.0000005), "0.5us");
        assert_eq!(format_seconds(0.5), "500.0ms");
        assert_eq!(format_seconds(2.5), "2.50s");
    }

    #[test]
    fn print_table_does_not_panic_on_ragged_rows() {
        print_table(
            "demo",
            &["a", "b"],
            &[
                vec!["x".into(), "1".into()],
                vec!["yyyy".into(), "22".into()],
            ],
        );
        print_table("empty", &[], &[]);
    }

    #[test]
    fn write_json_creates_file() {
        let dir = std::env::temp_dir().join("laf_bench_report_test");
        write_json(&dir, "sample", &vec![1, 2, 3]);
        let path = dir.join("sample.json");
        assert!(path.exists());
        std::fs::remove_file(path).ok();
    }
}
