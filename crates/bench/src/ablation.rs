//! Ablation studies beyond the paper's headline tables.
//!
//! DESIGN.md calls out three design choices worth quantifying separately:
//!
//! 1. **Which estimator feeds the gate** (Section 3.1 of the paper fixes the
//!    RMI and explicitly leaves "which estimator is best" to future work) —
//!    [`estimator_ablation`] runs LAF-DBSCAN with the exact oracle, the RMI,
//!    a single MLP, the sampling estimator and the histogram estimator and
//!    reports quality, time and the false-negative counts of Section 3.3.
//! 2. **The post-processing module** — [`post_processing_ablation`] runs
//!    LAF-DBSCAN with the module on and off.
//! 3. **The range-query substrate under plain DBSCAN** —
//!    [`engine_ablation`] compares the linear scan, cover tree and IVF
//!    engines powering the same exact algorithm.

use crate::harness::{HarnessConfig, Method, PreparedDataset};
use crate::report::{format_seconds, print_table, write_json};
use laf_cardest::{
    CardinalityEstimator, EstimatorCalibrator, ExactEstimator, HistogramEstimator, MlpEstimator,
    SamplingEstimator, TrainingSetBuilder,
};
use laf_clustering::{Clusterer, Dbscan, DbscanConfig};
use laf_core::{LafConfig, LafDbscan};
use laf_index::EngineChoice;
use laf_metrics::{adjusted_mutual_information, adjusted_rand_index, VMeasure};
use laf_vector::Metric;
use serde::Serialize;
use std::time::Instant;

/// One row of an ablation table.
#[derive(Debug, Clone, Serialize)]
pub struct AblationRow {
    /// Which variant this row describes.
    pub variant: String,
    /// Dataset name.
    pub dataset: String,
    /// Clustering wall-clock seconds.
    pub seconds: f64,
    /// ARI against DBSCAN.
    pub ari: f64,
    /// AMI against DBSCAN.
    pub ami: f64,
    /// V-measure against DBSCAN.
    pub v_measure: f64,
    /// Range queries executed.
    pub range_queries: u64,
    /// Range queries skipped.
    pub skipped: u64,
    /// False negatives of the gate decision (estimator-level, Section 3.3).
    pub false_negatives: usize,
    /// False positives of the gate decision.
    pub false_positives: usize,
}

/// Estimator ablation on one prepared dataset at `(eps, tau, alpha)`.
pub fn estimator_ablation(
    cfg: &HarnessConfig,
    prepared: &PreparedDataset,
    eps: f32,
    tau: usize,
    alpha: f32,
) -> Vec<AblationRow> {
    let data = &prepared.test;
    let truth = Dbscan::with_params(eps, tau).cluster(data);
    let calibrator = EstimatorCalibrator::new(data, Metric::Cosine);

    // Train the alternative estimators on the same training split.
    let training = TrainingSetBuilder {
        max_queries: Some(cfg.train_queries),
        ..Default::default()
    }
    .build(&prepared.train, &prepared.train)
    .expect("training set");
    let mlp = MlpEstimator::train(&training, &cfg.net);
    let sampling = SamplingEstimator::new(
        &prepared.train,
        Metric::Cosine,
        (prepared.train.len() / 10).max(2),
        7,
    );
    let histogram = HistogramEstimator::from_training(&training);
    let exact = ExactEstimator::new(data, Metric::Cosine);

    let estimators: Vec<(&str, &dyn CardinalityEstimator)> = vec![
        ("exact oracle", &exact),
        ("RMI (paper)", &prepared.rmi),
        ("single MLP", &mlp),
        ("sampling", &sampling),
        ("histogram", &histogram),
    ];

    let mut rows = Vec::new();
    for (name, est) in estimators {
        let confusion = calibrator.core_prediction(est, data, eps, tau, alpha);
        let laf = LafDbscan::new(LafConfig::new(eps, tau, alpha), est);
        let started = Instant::now();
        let (c, stats) = laf.cluster_with_stats(data);
        let seconds = started.elapsed().as_secs_f64();
        rows.push(AblationRow {
            variant: name.to_string(),
            dataset: prepared.name.clone(),
            seconds,
            ari: adjusted_rand_index(truth.labels(), c.labels()),
            ami: adjusted_mutual_information(truth.labels(), c.labels()),
            v_measure: VMeasure::compute(truth.labels(), c.labels()).v_measure,
            range_queries: stats.executed_range_queries,
            skipped: stats.skipped_range_queries,
            false_negatives: confusion.false_negatives,
            false_positives: confusion.false_positives,
        });
    }
    rows
}

/// Post-processing on/off ablation on one prepared dataset.
pub fn post_processing_ablation(
    prepared: &PreparedDataset,
    eps: f32,
    tau: usize,
    alpha: f32,
) -> Vec<AblationRow> {
    let data = &prepared.test;
    let truth = Dbscan::with_params(eps, tau).cluster(data);
    let mut rows = Vec::new();
    for (name, post) in [
        ("with post-processing", true),
        ("without post-processing", false),
    ] {
        let laf = LafDbscan::new(
            LafConfig {
                post_processing: post,
                ..LafConfig::new(eps, tau, alpha)
            },
            &prepared.rmi,
        );
        let started = Instant::now();
        let (c, stats) = laf.cluster_with_stats(data);
        rows.push(AblationRow {
            variant: name.to_string(),
            dataset: prepared.name.clone(),
            seconds: started.elapsed().as_secs_f64(),
            ari: adjusted_rand_index(truth.labels(), c.labels()),
            ami: adjusted_mutual_information(truth.labels(), c.labels()),
            v_measure: VMeasure::compute(truth.labels(), c.labels()).v_measure,
            range_queries: stats.executed_range_queries,
            skipped: stats.skipped_range_queries,
            false_negatives: stats.detected_false_negatives as usize,
            false_positives: 0,
        });
    }
    rows
}

/// Range-engine ablation for exact DBSCAN on one prepared dataset.
pub fn engine_ablation(prepared: &PreparedDataset, eps: f32, tau: usize) -> Vec<AblationRow> {
    let data = &prepared.test;
    let truth = Dbscan::with_params(eps, tau).cluster(data);
    let engines = [
        ("linear scan", EngineChoice::Linear),
        ("cover tree", EngineChoice::CoverTree { basis: 2.0 }),
        (
            "k-means tree (full)",
            EngineChoice::KMeansTree {
                branching: 10,
                leaf_ratio: 1.0,
            },
        ),
        (
            "IVF nprobe=4/16",
            EngineChoice::Ivf {
                nlist: 16,
                nprobe: 4,
            },
        ),
    ];
    let mut rows = Vec::new();
    for (name, engine) in engines {
        let dbscan = Dbscan::new(DbscanConfig {
            eps,
            min_pts: tau,
            metric: Metric::Cosine,
            engine,
        });
        let started = Instant::now();
        let c = dbscan.cluster(data);
        rows.push(AblationRow {
            variant: name.to_string(),
            dataset: prepared.name.clone(),
            seconds: started.elapsed().as_secs_f64(),
            ari: adjusted_rand_index(truth.labels(), c.labels()),
            ami: adjusted_mutual_information(truth.labels(), c.labels()),
            v_measure: VMeasure::compute(truth.labels(), c.labels()).v_measure,
            range_queries: c.range_queries,
            skipped: 0,
            false_negatives: 0,
            false_positives: 0,
        });
    }
    rows
}

/// Run all three ablations on Glove-150k and MS-150k and print them.
pub fn run(cfg: &HarnessConfig) -> Vec<AblationRow> {
    let mut all = Vec::new();
    for preset in ["Glove-150k", "MS-150k"] {
        let prepared = cfg.prepare(preset);
        let (eps, tau) = (0.5f32, 3usize);
        let alpha = 1.5f32;

        let est_rows = estimator_ablation(cfg, &prepared, eps, tau, alpha);
        print_rows(
            &format!("Ablation A: estimator choice on {preset} (eps=0.5, tau=3, alpha=1.5)"),
            &est_rows,
        );
        all.extend(est_rows);

        let post_rows = post_processing_ablation(&prepared, eps, tau, alpha);
        print_rows(
            &format!("Ablation B: post-processing on {preset}"),
            &post_rows,
        );
        all.extend(post_rows);

        let engine_rows = engine_ablation(&prepared, eps, tau);
        print_rows(
            &format!("Ablation C: DBSCAN range-query engine on {preset}"),
            &engine_rows,
        );
        all.extend(engine_rows);
    }
    write_json(&cfg.results_dir, "ablation", &all);
    let _ = Method::TABLE3; // keep the harness link explicit for readers
    all
}

fn print_rows(title: &str, rows: &[AblationRow]) {
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.variant.clone(),
                format_seconds(r.seconds),
                format!("{:.4}", r.ari),
                format!("{:.4}", r.ami),
                format!("{:.4}", r.v_measure),
                r.range_queries.to_string(),
                r.skipped.to_string(),
                r.false_negatives.to_string(),
                r.false_positives.to_string(),
            ]
        })
        .collect();
    print_table(
        title,
        &[
            "Variant", "Time", "ARI", "AMI", "V", "Queries", "Skipped", "FN", "FP",
        ],
        &table,
    );
}
