//! Cold (train + save) vs warm (load) startup of the snapshot pipeline,
//! with a bit-exactness check between the two paths and a rebuild-vs-restore
//! matrix over every persistable engine. Writes `BENCH_snapshot.json`.
//!
//! Exits non-zero when any of the regression gates fail, so CI's bench-smoke
//! job can run this binary directly:
//!
//! * the warm pipeline must be bit-exact with the cold one;
//! * warm restore must be faster than cold training (the whole point of the
//!   train-once/serve-many split);
//! * restoring the persisted k-means tree / IVF structures must beat
//!   rebuilding them (the point of snapshot format v2). The linear and grid
//!   engines are not gated: linear has nothing to rebuild and the grid's
//!   build is already cheap enough to be timing noise at small scales;
//! * the mmap load (`Snapshot::open_mmap`, format v3) must be faster than
//!   the copying decode at the default scale, must actually serve the
//!   dataset from the mapping (on little-endian hosts), and the
//!   mapped-backed pipeline must cluster byte-identically to the
//!   owned-backed one at every measured scale (the point of format v3).

fn main() {
    let cfg = laf_bench::HarnessConfig::from_env();
    let report = laf_bench::snapshot_bench::run(&cfg);
    assert!(
        report.bit_exact.labels && report.bit_exact.stats && report.bit_exact.estimates,
        "warm pipeline diverged from the cold one: {:?}",
        report.bit_exact
    );
    // The first clustering runs on both paths and is identical work, so the
    // startup comparison is restore-vs-train (the phase persistence removes)
    // plus total-vs-total (which folds the equal clustering cost into both).
    assert!(
        report.warm.snapshot_seconds < report.cold.train_seconds,
        "warm restore ({:.3}s) must be faster than cold training ({:.3}s)",
        report.warm.snapshot_seconds,
        report.cold.train_seconds
    );
    assert!(
        report.warm.total_seconds < report.cold.total_seconds,
        "warm startup to first result ({:.3}s) must beat cold ({:.3}s)",
        report.warm.total_seconds,
        report.cold.total_seconds
    );
    for engine in &report.engines {
        assert!(engine.agree, "{}: restored engine diverged", engine.engine);
        if matches!(engine.engine.as_str(), "kmeans_tree" | "ivf") {
            assert!(
                engine.restore_seconds < engine.build_seconds,
                "{}: restore ({:.4}s) must beat rebuild ({:.4}s)",
                engine.engine,
                engine.restore_seconds,
                engine.build_seconds
            );
        }
    }
    for m in &report.mmap {
        assert!(
            m.identical,
            "{} points: mapped pipeline diverged from the owned one",
            m.n_points
        );
    }
    let default_scale = report
        .mmap
        .last()
        .expect("mmap matrix measures at least the default scale");
    assert!(
        cfg!(target_endian = "big") || default_scale.dataset_mapped,
        "the default-scale mmap load must serve the dataset in place"
    );
    assert!(
        default_scale.mmap_seconds < default_scale.decode_seconds,
        "mmap load ({:.4}s) must beat the copying decode ({:.4}s) at the default scale",
        default_scale.mmap_seconds,
        default_scale.decode_seconds
    );
}
