//! Cold (train + save) vs warm (load) startup of the snapshot pipeline,
//! with a bit-exactness check between the two paths. Writes
//! `BENCH_snapshot.json`.

fn main() {
    let cfg = laf_bench::HarnessConfig::from_env();
    let report = laf_bench::snapshot_bench::run(&cfg);
    assert!(
        report.bit_exact.labels && report.bit_exact.stats && report.bit_exact.estimates,
        "warm pipeline diverged from the cold one: {:?}",
        report.bit_exact
    );
}
