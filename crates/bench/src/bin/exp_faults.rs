//! Fault-model benchmark: the degraded-load matrix (one flipped bit per
//! snapshot section), cache scrub/quarantine timings, the supervised
//! self-healing matrix with mean-time-to-repair, and — when built with
//! `--features fault-injection` — a fixed-seed chaos replay with recovery
//! timings. Writes `BENCH_faults.json`.
//!
//! Exits non-zero when any robustness gate fails, so CI's chaos-smoke job
//! can run this binary directly:
//!
//! * a corrupt engine section must load degraded with cluster labels
//!   byte-identical to a clean load (the engine is pure redundancy);
//! * a corrupt estimator section must serve gate-off, labels identical to
//!   exact DBSCAN (degraded means slower, never wrong);
//! * corrupt dataset/config sections must be rejected with typed errors;
//! * the scrub must quarantine the corrupted tenant (typed on pin) and a
//!   repaired re-registration must lift the quarantine;
//! * the maintenance supervisor must heal every section of the corruption
//!   matrix from the clean replica, with a measured (non-zero) mean time
//!   to repair and no exhausted repairs;
//! * the chaos replay's recovery must land bit-identically on the
//!   acknowledged-write state.

fn main() {
    let cfg = laf_bench::HarnessConfig::from_env();
    let report = laf_bench::fault_bench::run(&cfg);

    let engine = &report.degraded[0];
    assert!(
        engine.degraded_ok && engine.labels_identical,
        "corrupt engine section must load degraded with labels identical to a clean load \
         (degraded ok: {}, labels identical: {}, report: {})",
        engine.degraded_ok,
        engine.labels_identical,
        engine.report
    );
    let estimator = &report.degraded[1];
    assert!(
        estimator.degraded_ok && estimator.labels_identical,
        "corrupt estimator section must serve gate-off with exact-DBSCAN labels \
         (degraded ok: {}, labels identical: {}, report: {})",
        estimator.degraded_ok,
        estimator.labels_identical,
        estimator.report
    );
    for fatal in &report.hard_fail {
        assert!(
            fatal.rejected,
            "corrupt `{}` section must hard-fail with a typed error, never serve",
            fatal.section
        );
    }
    assert!(
        report.scrub.quarantined == vec!["bad".to_string()]
            && report.scrub.quarantined_pin_is_typed
            && report.scrub.re_register_lifts_quarantine,
        "scrub must quarantine the corrupted tenant and a repair must lift it \
         (quarantined: {:?}, typed pin: {}, repair lifts: {})",
        report.scrub.quarantined,
        report.scrub.quarantined_pin_is_typed,
        report.scrub.re_register_lifts_quarantine
    );
    for case in &report.repair.cases {
        assert!(
            case.healed,
            "supervisor must heal the corrupt `{}` section from the clean replica \
             (ended {} after {} ticks)",
            case.section, case.health, case.ticks_to_heal
        );
    }
    assert!(
        report.repair.repairs_succeeded == report.repair.cases.len() as u64
            && report.repair.repairs_failed == 0,
        "every repair must publish a verified replica \
         (attempted: {}, succeeded: {}, failed: {})",
        report.repair.repairs_attempted,
        report.repair.repairs_succeeded,
        report.repair.repairs_failed
    );
    assert!(
        report.repair.mean_time_to_repair_us > 0.0,
        "mean time to repair must be measured and reported"
    );
    if let Some(chaos) = &report.chaos {
        assert!(
            chaos.state_bit_identical,
            "chaos replay (seed {}) recovered state diverged from the fault-free oracle",
            chaos.seed
        );
    }
}
