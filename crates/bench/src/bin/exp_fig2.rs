//! Reproduces the paper's Figure 2 (trade-off on MS-150k).

fn main() {
    let cfg = laf_bench::HarnessConfig::from_env();
    let _ = laf_bench::experiments::fig_tradeoff(&cfg, "MS-150k", "fig2");
}
