//! Sharding sweep: sharded scatter-gather fan-out timing at several shard
//! counts plus tenant-cache churn counters. Writes `BENCH_sharding.json`.
//!
//! Exits non-zero when the sharding regression gates fail, so CI's
//! bench-smoke job can run this binary directly:
//!
//! * every query result and cluster label served through a sharded
//!   snapshot must be bit-identical to the unsharded reference (the
//!   scatter-gather correctness contract);
//! * the snapshot cache's counters must balance — pins = hits + misses =
//!   unpins, resident bytes within the byte budget, and every reload
//!   beyond the resident set paid for by exactly one eviction.

fn main() {
    let cfg = laf_bench::HarnessConfig::from_env();
    let report = laf_bench::sharding::run(&cfg);
    assert!(
        report.results_identical,
        "sharded results diverged from the unsharded reference: {:?}",
        report
            .records
            .iter()
            .filter(|r| r.divergences > 0)
            .collect::<Vec<_>>()
    );
    assert!(
        report.cache_consistent,
        "snapshot cache accounting inconsistent: {:?}",
        report.cache
    );
    assert!(
        report.cache.evictions > 0,
        "the 1-snapshot budget must force evictions, none recorded: {:?}",
        report.cache
    );
}
