//! Reproduces the paper's Table2 — see `laf_bench::experiments::table2`.

fn main() {
    let cfg = laf_bench::HarnessConfig::from_env();
    let _ = laf_bench::experiments::table2(&cfg);
}
