//! Mutable-plane benchmark: WAL insert throughput under group commit vs
//! sync-every-op, merged base+delta read overhead against the frozen base,
//! crash-recovery (reopen + replay) time, and the post-compaction
//! bit-exactness gate. Writes `BENCH_mutable.json`.
//!
//! Exits non-zero when any of the regression gates fail, so CI's
//! bench-smoke job can run this binary directly:
//!
//! * reopening after an uncoordinated drop must recover the live rows
//!   bit-identically (the WAL replay contract);
//! * after compaction the served base must cluster label- and
//!   stats-identically to a from-scratch pipeline built over the same live
//!   rows with the same estimator (the mutable plane's acceptance bar);
//! * group commit must not be slower than syncing every operation — one
//!   `fdatasync` per batch is the whole point of the serving front's write
//!   batching.

fn main() {
    let cfg = laf_bench::HarnessConfig::from_env();
    let report = laf_bench::mutable_bench::run(&cfg);
    assert!(
        report.recovery.state_bit_identical,
        "reopen lost or corrupted committed writes ({} records, {} bytes)",
        report.recovery.wal_records, report.recovery.wal_bytes
    );
    assert!(
        report.compaction.labels_identical && report.compaction.stats_identical,
        "compacted base diverged from the from-scratch pipeline \
         (labels identical: {}, stats identical: {})",
        report.compaction.labels_identical,
        report.compaction.stats_identical
    );
    assert!(
        report.group_commit.rows_per_second >= report.per_op_sync.rows_per_second,
        "group commit ({:.0} rows/s) must not lose to sync-every-op ({:.0} rows/s)",
        report.group_commit.rows_per_second,
        report.per_op_sync.rows_per_second
    );
}
