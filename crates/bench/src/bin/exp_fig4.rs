//! Reproduces the paper's Figure 4 (scalability over the MS family).

fn main() {
    let cfg = laf_bench::HarnessConfig::from_env();
    let _ = laf_bench::experiments::fig4(&cfg);
}
