//! Reproduces the paper's Table4 — see `laf_bench::experiments::table4`.

fn main() {
    let cfg = laf_bench::HarnessConfig::from_env();
    let _ = laf_bench::experiments::table4(&cfg);
}
