//! Serving sweep: coalesced vs one-at-a-time dispatch at several offered
//! loads, with p50/p99 latency, batch-occupancy histograms and admission
//! rejections. Writes `BENCH_serving.json`.
//!
//! Exits non-zero when the serving-layer regression gates fail, so CI's
//! bench-smoke job can run this binary directly:
//!
//! * coalesced dispatch must reach at least 1.5x the throughput of
//!   one-request-at-a-time dispatch at the saturation load (losing that
//!   means request coalescing stopped reaching the batch kernels);
//! * every served result must be bit-identical to the synchronous
//!   `LafPipeline` path (the coalescing layer's correctness contract).

fn main() {
    let cfg = laf_bench::HarnessConfig::from_env();
    let report = laf_bench::serving::run(&cfg);
    assert!(
        report.results_identical,
        "served results diverged from the synchronous path: {:?}",
        report
            .records
            .iter()
            .filter(|r| r.mismatches > 0)
            .collect::<Vec<_>>()
    );
    let speedup = report.saturation_speedup;
    assert!(
        speedup >= 1.5,
        "coalesced dispatch must be >= 1.5x one-at-a-time at {} clients, measured {speedup:.2}x",
        report.saturation_clients
    );
}
