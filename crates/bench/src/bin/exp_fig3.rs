//! Reproduces the paper's Figure 3 (trade-off on Glove-150k).

fn main() {
    let cfg = laf_bench::HarnessConfig::from_env();
    let _ = laf_bench::experiments::fig_tradeoff(&cfg, "Glove-150k", "fig3");
}
