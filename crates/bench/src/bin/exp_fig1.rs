//! Reproduces the paper's Figure 1 — see `laf_bench::experiments::fig1`.

fn main() {
    let cfg = laf_bench::HarnessConfig::from_env();
    let _ = laf_bench::experiments::fig1(&cfg);
}
