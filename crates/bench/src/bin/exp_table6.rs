//! Reproduces the paper's Table6 — see `laf_bench::experiments::table6`.

fn main() {
    let cfg = laf_bench::HarnessConfig::from_env();
    let _ = laf_bench::experiments::table6(&cfg);
}
