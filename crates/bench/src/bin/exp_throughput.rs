//! Throughput sweep of the batched, parallel query pipeline (queries/sec vs
//! batch size vs threads). Writes `BENCH_throughput.json`.

fn main() {
    let cfg = laf_bench::HarnessConfig::from_env();
    let _ = laf_bench::throughput::run(&cfg);
}
