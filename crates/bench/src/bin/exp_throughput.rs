//! Throughput sweep of the batched, parallel query pipeline (queries/sec vs
//! batch size vs threads) plus the kernel matrix (generic vs specialized
//! distance kernels, per metric, per engine, scalar + batch) and the
//! clustering-label bit-exactness checks. Writes `BENCH_throughput.json`.
//!
//! Exits non-zero when the kernel-layer regression gates fail, so CI's
//! bench-smoke job can run this binary directly:
//!
//! * the specialized cosine linear-scan kernel must be at least 2x the
//!   generic one at the configured scale (the norm cache turns three dot
//!   products per distance into one — losing that means the kernel layer
//!   regressed);
//! * clustering labels must be byte-identical between the generic and
//!   specialized kernel paths for every engine/metric combination (the
//!   specialized kernels' correctness contract).

fn main() {
    let cfg = laf_bench::HarnessConfig::from_env();
    let report = laf_bench::throughput::run(&cfg);
    assert!(
        report.labels_identical_everywhere(),
        "clustering labels diverged between generic and specialized kernels: {:?}",
        report
            .label_checks
            .iter()
            .filter(|c| !c.identical)
            .collect::<Vec<_>>()
    );
    let speedup = report.cosine_linear_scalar_speedup();
    assert!(
        speedup >= 2.0,
        "specialized cosine linear scan must be >= 2x the generic kernel, measured {speedup:.2}x"
    );
}
