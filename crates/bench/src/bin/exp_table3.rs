//! Reproduces the paper's Table3 — see `laf_bench::experiments::table3`.

fn main() {
    let cfg = laf_bench::HarnessConfig::from_env();
    let _ = laf_bench::experiments::table3(&cfg);
}
