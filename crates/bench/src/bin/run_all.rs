//! Runs every table and figure reproduction in one process and writes all
//! JSON records into the results directory.

use std::time::Instant;

fn main() {
    let cfg = laf_bench::HarnessConfig::from_env();
    println!(
        "LAF-DBSCAN experiment suite (scale={}, dim_cap={:?}, train_queries={})",
        cfg.scale, cfg.dim_cap, cfg.train_queries
    );
    let started = Instant::now();
    let _ = laf_bench::experiments::table2(&cfg);
    let _ = laf_bench::experiments::table3(&cfg);
    let _ = laf_bench::experiments::table4(&cfg);
    let _ = laf_bench::experiments::table5(&cfg);
    let _ = laf_bench::experiments::table6(&cfg);
    let _ = laf_bench::experiments::fig1(&cfg);
    let _ = laf_bench::experiments::fig_tradeoff(&cfg, "MS-150k", "fig2");
    let _ = laf_bench::experiments::fig_tradeoff(&cfg, "Glove-150k", "fig3");
    let _ = laf_bench::experiments::fig4(&cfg);
    let _ = laf_bench::ablation::run(&cfg);
    let _ = laf_bench::throughput::run(&cfg);
    let _ = laf_bench::serving::run(&cfg);
    let _ = laf_bench::sharding::run(&cfg);
    let _ = laf_bench::mutable_bench::run(&cfg);
    println!(
        "\ncomplete experiment suite finished in {:.1?}",
        started.elapsed()
    );
}
