//! Reproduces the paper's Table5 — see `laf_bench::experiments::table5`.

fn main() {
    let cfg = laf_bench::HarnessConfig::from_env();
    let _ = laf_bench::experiments::table5(&cfg);
}
