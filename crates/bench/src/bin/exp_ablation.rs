//! Ablation studies: estimator choice, post-processing, range-query engine.
//! See `laf_bench::ablation`.

fn main() {
    let cfg = laf_bench::HarnessConfig::from_env();
    let _ = laf_bench::ablation::run(&cfg);
}
