//! Table 1 — evaluation dataset information.
//!
//! Prints the paper's dataset inventory next to the synthetic stand-ins this
//! reproduction actually generates at the configured scale.

use laf_bench::{print_table, write_json, HarnessConfig};
use laf_synth::catalog::SPECS;

fn main() {
    let cfg = HarnessConfig::from_env();
    let catalog = cfg.catalog();
    println!(
        "Table 1 reproduction (scale = {}, dim cap = {:?})",
        cfg.scale, cfg.dim_cap
    );

    let mut rows = Vec::new();
    let mut json = Vec::new();
    for spec in &SPECS {
        let generated = catalog.generate(spec.name).expect("preset generates");
        rows.push(vec![
            spec.name.to_string(),
            spec.paper_points.to_string(),
            generated.n_points.to_string(),
            spec.dim.to_string(),
            generated.data.dim().to_string(),
            format!("{:.2}", spec.paper_alpha),
            spec.vector_type.label().to_string(),
        ]);
        json.push(serde_json::json!({
            "name": spec.name,
            "paper_points": spec.paper_points,
            "generated_points": generated.n_points,
            "paper_dim": spec.dim,
            "generated_dim": generated.data.dim(),
            "paper_alpha": spec.paper_alpha,
            "type": spec.vector_type.label(),
        }));
    }
    print_table(
        "Table 1: evaluation dataset information",
        &[
            "Dataset",
            "#Points (paper)",
            "#Points (here)",
            "Dim (paper)",
            "Dim (here)",
            "alpha",
            "Type",
        ],
        &rows,
    );
    write_json(&cfg.results_dir, "table1", &json);
}
