//! Fault-model benchmark: degraded-load behavior on corrupt snapshot
//! sections, cache scrub/quarantine, and (with the `fault-injection`
//! feature) a seeded chaos replay with recovery timings.
//!
//! The robustness layer's contract has two halves and this experiment
//! measures both. The *degraded matrix*: flip a real byte inside each
//! snapshot section and record what a degraded load does — a corrupt
//! engine section must rebuild from the dataset with **byte-identical**
//! cluster labels, a corrupt estimator must serve gate-off (exact-only,
//! labels identical to exact DBSCAN), and a corrupt dataset/config must be
//! rejected with a typed error, never served. The *scrub arm*: a
//! background cache scrub must find a corrupted resident snapshot,
//! quarantine it with a typed error on pin, and lift the quarantine when a
//! repaired file is re-registered. The *repair arm* closes the loop
//! unattended: for every snapshot section, corrupt a registered resident
//! tenant's primary file and let a [`MaintenanceSupervisor`] heal it from
//! a clean replica, recording ticks-to-heal per section and the cache's
//! mean time to repair. When built with `fault-injection`, a *chaos arm*
//! replays a fixed-seed fault schedule against a mutable pipeline and
//! times recovery. Writes `<results_dir>/BENCH_faults.json`.

use crate::harness::HarnessConfig;
use crate::report::{format_seconds, print_table, write_json};
use laf_cardest::TrainingSetBuilder;
use laf_clustering::{Clusterer, Dbscan};
use laf_core::{section_id, LafConfig, LafPipeline};
use laf_serve::{
    CacheConfig, CacheError, MaintenanceConfig, MaintenanceSupervisor, ReplicaSet, SnapshotCache,
    SnapshotSource, TenantHealth,
};
use laf_synth::EmbeddingMixtureConfig;
use laf_vector::Dataset;
use serde::Serialize;
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

/// What a degraded load did with one corrupted section.
#[derive(Debug, Clone, Serialize)]
pub struct DegradedVerdict {
    /// Section whose body got the bit flip.
    pub section: String,
    /// Seconds for `LafPipeline::load_degraded` on the corrupt file.
    pub load_seconds: f64,
    /// The load succeeded and its report named exactly this section.
    pub degraded_ok: bool,
    /// Display form of the `DegradedLoad` report.
    pub report: String,
    /// Cluster labels of the degraded pipeline match `reference`.
    pub labels_identical: bool,
    /// What the labels were compared against.
    pub reference: String,
}

/// A section whose corruption must hard-fail the load, typed.
#[derive(Debug, Clone, Serialize)]
pub struct HardFailVerdict {
    /// Section whose body got the bit flip.
    pub section: String,
    /// The degraded load refused the file (must be `true`).
    pub rejected: bool,
    /// Display form of the typed error.
    pub typed_error: String,
}

/// The cache scrub/quarantine measurement.
#[derive(Debug, Clone, Serialize)]
pub struct ScrubArm {
    /// Resident tenants at scrub time.
    pub tenants: usize,
    /// Tenants whose snapshots re-verified clean.
    pub verified: usize,
    /// Tenants quarantined by the scrub (must name the corrupted one).
    pub quarantined: Vec<String>,
    /// Seconds for the full-file CRC re-verification pass.
    pub scrub_seconds: f64,
    /// Pinning the quarantined tenant failed with `CacheError::Quarantined`.
    pub quarantined_pin_is_typed: bool,
    /// Re-registering the repaired file lifted the quarantine.
    pub re_register_lifts_quarantine: bool,
}

/// One section of the self-healing matrix: the section was corrupted on a
/// registered, resident tenant and a [`MaintenanceSupervisor`] had to heal
/// it from a clean replica.
#[derive(Debug, Clone, Serialize)]
pub struct RepairCase {
    /// Section whose body got the bit flip on the tenant's primary file.
    pub section: String,
    /// The supervisor restored the tenant to `Healthy` and a pin succeeds.
    pub healed: bool,
    /// Maintenance ticks from corruption to `Healthy`.
    pub ticks_to_heal: usize,
    /// Final health state (debug form), `Healthy` when `healed`.
    pub health: String,
}

/// The supervised self-healing measurement across the corruption matrix.
#[derive(Debug, Clone, Serialize)]
pub struct RepairArm {
    /// One case per snapshot section.
    pub cases: Vec<RepairCase>,
    /// Repairs the supervisor started.
    pub repairs_attempted: u64,
    /// Repairs that published a verified replica.
    pub repairs_succeeded: u64,
    /// Repairs that exhausted every candidate.
    pub repairs_failed: u64,
    /// Mean microseconds from quarantine to the repaired publish.
    pub mean_time_to_repair_us: f64,
    /// Scrub passes the supervisor ran across the matrix.
    pub scrub_passes: u64,
}

/// One seeded chaos replay (only with the `fault-injection` feature).
#[derive(Debug, Clone, Serialize)]
pub struct ChaosArm {
    /// The `FaultPlan` seed — the whole schedule replays from it.
    pub seed: u64,
    /// Operations attempted against the store under faults.
    pub ops: usize,
    /// Failpoint trips across all sites.
    pub faults_tripped: u64,
    /// Operations that failed with a typed error.
    pub typed_errors: u64,
    /// Wall seconds for the schedule (including in-schedule recoveries).
    pub schedule_seconds: f64,
    /// Seconds for the final fault-free crash recovery (reopen + replay).
    pub recovery_seconds: f64,
    /// Recovered live rows bit-identical to the fault-free oracle's.
    pub state_bit_identical: bool,
}

/// The full experiment record written to `BENCH_faults.json`.
#[derive(Debug, Clone, Serialize)]
pub struct FaultBenchReport {
    /// Dataset rows.
    pub n_points: usize,
    /// Dataset dimensionality.
    pub dim: usize,
    /// The degraded-load matrix (corrupt section -> behavior).
    pub degraded: Vec<DegradedVerdict>,
    /// Sections whose corruption must hard-fail.
    pub hard_fail: Vec<HardFailVerdict>,
    /// The scrub/quarantine arm.
    pub scrub: ScrubArm,
    /// The supervised self-healing (mean-time-to-repair) arm.
    pub repair: RepairArm,
    /// The seeded chaos replay (`null` without `fault-injection`).
    pub chaos: Option<ChaosArm>,
}

fn bench_dataset(cfg: &HarnessConfig, n_points: usize) -> Dataset {
    let dim = cfg.dim_cap.unwrap_or(64).clamp(8, 128);
    EmbeddingMixtureConfig {
        n_points,
        dim,
        clusters: 8,
        noise_fraction: 0.2,
        seed: cfg.seed ^ 0xFA17,
        ..Default::default()
    }
    .generate()
    .expect("valid benchmark dataset config")
    .0
}

/// Absolute `(start, len)` of section `wanted`'s body inside an encoded
/// v2+ snapshot file, read from the header table.
fn section_span(bytes: &[u8], wanted: u32) -> Option<(usize, usize)> {
    let count = u32::from_le_bytes(bytes.get(8..12)?.try_into().ok()?) as usize;
    let header_len = 12 + count * 24;
    for entry in 0..count {
        let at = 12 + entry * 24;
        let id = u32::from_le_bytes(bytes.get(at..at + 4)?.try_into().ok()?);
        if id != wanted {
            continue;
        }
        let offset = u64::from_le_bytes(bytes.get(at + 4..at + 12)?.try_into().ok()?) as usize;
        let len = u64::from_le_bytes(bytes.get(at + 12..at + 20)?.try_into().ok()?) as usize;
        return Some((header_len + offset, len));
    }
    None
}

/// Copy `clean` to `out` with one bit flipped mid-body in section `id`.
fn corrupt_copy(clean: &Path, out: &Path, id: u32) {
    let mut bytes = std::fs::read(clean).expect("read clean snapshot");
    let (start, len) = section_span(&bytes, id).unwrap_or_else(|| {
        panic!(
            "section `{}` absent from the snapshot",
            section_id::name(id)
        )
    });
    assert!(len > 0, "section `{}` is empty", section_id::name(id));
    bytes[start + len / 2] ^= 0x01;
    std::fs::write(out, bytes).expect("write corrupt snapshot");
}

/// Corrupt each snapshot section in turn on a registered, resident tenant
/// and let a manually-ticked [`MaintenanceSupervisor`] heal it from a clean
/// replica. Needs no failpoints — the corruption is a real on-disk bit
/// flip — so the arm runs (and gates) in every build.
fn repair_arm(clean_path: &Path, dir: &Path) -> RepairArm {
    const HEAL_TICK_BUDGET: usize = 3;
    let cache = SnapshotCache::new(CacheConfig::default());
    let source = Arc::new(ReplicaSet::new());
    let supervisor = MaintenanceSupervisor::start(
        Arc::clone(&cache),
        Arc::clone(&source) as Arc<dyn SnapshotSource>,
        MaintenanceConfig {
            scrub_interval_us: 0, // manual ticks: one tick = one counted pass
            jitter_us: 0,
            max_concurrent_repairs: 1,
            repair_retries: 0,
            repair_backoff_us: 50,
        },
    );

    let mut cases = Vec::new();
    for id in [
        section_id::DATASET,
        section_id::ENGINE,
        section_id::ESTIMATOR,
        section_id::CALIBRATION,
        section_id::CONFIG,
    ] {
        let name = section_id::name(id);
        let tenant = format!("repair_{name}");
        let primary = dir.join(format!("{tenant}.lafs"));
        std::fs::copy(clean_path, &primary).expect("primary copy");
        cache.register(&tenant, &primary).expect("register tenant");
        // Resident (so the scrub sees it), unpinned (so it can quarantine).
        drop(cache.pin(&tenant).expect("warm tenant"));
        // Ordered candidates: the primary first (about to be corrupt, so the
        // repair must reject it on verification) then the clean replica.
        source.set(&tenant, [primary.clone(), clean_path.to_path_buf()]);
        corrupt_copy(clean_path, &primary, id);

        let mut ticks = 0;
        let mut health = supervisor.health(&tenant);
        while ticks < HEAL_TICK_BUDGET {
            supervisor.tick();
            ticks += 1;
            health = supervisor.health(&tenant);
            if health == TenantHealth::Healthy {
                break;
            }
        }
        let healed = health == TenantHealth::Healthy && cache.pin(&tenant).is_ok();
        cases.push(RepairCase {
            section: name.to_string(),
            healed,
            ticks_to_heal: ticks,
            health: format!("{health:?}"),
        });
    }
    drop(supervisor);

    let report = cache.report();
    RepairArm {
        cases,
        repairs_attempted: report.repairs_attempted,
        repairs_succeeded: report.repairs_succeeded,
        repairs_failed: report.repairs_failed,
        mean_time_to_repair_us: report.mean_time_to_repair_us,
        scrub_passes: report.scrub_passes,
    }
}

#[cfg(feature = "fault-injection")]
fn chaos_arm(trained: &LafPipeline, extra: &Dataset, dir: &Path) -> Option<ChaosArm> {
    use laf_core::fault::{self, FaultMode, FaultPlan};
    use laf_core::MutablePipeline;

    const SEED: u64 = 4242;
    const OPS: usize = 80;
    const SITES: [&str; 6] = [
        "wal.append.partial",
        "wal.sync",
        "snapshot.save.fsync",
        "manifest.rename",
        "compact.dir_fsync",
        "mmap.section.bitflip",
    ];

    let sut_dir = dir.join("chaos_sut");
    let oracle_dir = dir.join("chaos_oracle");
    std::fs::remove_dir_all(&sut_dir).ok();
    std::fs::remove_dir_all(&oracle_dir).ok();
    let mut sut = MutablePipeline::create(&sut_dir, trained).expect("chaos sut");
    let mut oracle = MutablePipeline::create(&oracle_dir, trained).expect("chaos oracle");

    // splitmix64 op stream, same construction as the chaos harness.
    let mut state = SEED ^ 0xD1B5_4A32_D192_ED03;
    let mut next = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    let mirror = |oracle: &mut MutablePipeline, f: &dyn Fn(&mut MutablePipeline)| {
        fault::set_enabled(false);
        f(oracle);
        fault::set_enabled(true);
    };

    fault::install(SITES.iter().fold(FaultPlan::new(SEED), |p, s| {
        p.with_site(s, FaultMode::Probability(0.08))
    }));
    let mut typed_errors = 0u64;
    let t = Instant::now();
    for _ in 0..OPS {
        let r = next();
        match r % 100 {
            0..=39 => {
                let row = extra.row(((r >> 8) as usize) % extra.len()).to_vec();
                match sut.insert(&row) {
                    Ok(_) => mirror(&mut oracle, &|o| {
                        o.insert(&row).expect("oracle insert");
                    }),
                    Err(_) => typed_errors += 1,
                }
            }
            40..=59 => {
                if !sut.is_empty() {
                    let dense = ((r >> 8) as usize) % sut.len();
                    match sut.delete(dense) {
                        Ok(_) => mirror(&mut oracle, &|o| {
                            o.delete(dense).expect("oracle delete");
                        }),
                        Err(_) => typed_errors += 1,
                    }
                }
            }
            60..=74 => {
                if sut.sync().is_err() {
                    typed_errors += 1;
                }
            }
            75..=89 => {
                if sut.compact().is_err() {
                    typed_errors += 1;
                }
            }
            _ => {
                drop(sut);
                sut = match MutablePipeline::open(&sut_dir) {
                    Ok(p) => p,
                    Err(_) => {
                        typed_errors += 1;
                        fault::set_enabled(false);
                        let recovered =
                            MutablePipeline::open(&sut_dir).expect("fault-free reopen recovers");
                        fault::set_enabled(true);
                        recovered
                    }
                };
            }
        }
    }
    let schedule_seconds = t.elapsed().as_secs_f64();
    let faults_tripped = fault::total_trips();
    fault::clear();

    // Final crash recovery on the fault-free plane, timed.
    drop(sut);
    let t = Instant::now();
    let recovered = MutablePipeline::open(&sut_dir).expect("final recovery");
    let recovery_seconds = t.elapsed().as_secs_f64();
    let state_bit_identical = recovered.live_dataset().expect("live rows").as_flat()
        == oracle.live_dataset().expect("oracle rows").as_flat();

    std::fs::remove_dir_all(&sut_dir).ok();
    std::fs::remove_dir_all(&oracle_dir).ok();
    Some(ChaosArm {
        seed: SEED,
        ops: OPS,
        faults_tripped,
        typed_errors,
        schedule_seconds,
        recovery_seconds,
        state_bit_identical,
    })
}

#[cfg(not(feature = "fault-injection"))]
fn chaos_arm(_trained: &LafPipeline, _extra: &Dataset, _dir: &Path) -> Option<ChaosArm> {
    None
}

/// Run the fault-model measurements and write `BENCH_faults.json`.
pub fn run(cfg: &HarnessConfig) -> FaultBenchReport {
    let n_points = ((500_000.0 * cfg.scale) as usize).clamp(400, 12_000);
    let data = bench_dataset(cfg, n_points);
    let n_points = data.len();
    let dim = data.dim();
    let laf_config = LafConfig::new(0.35, 4, 1.0);
    println!("\nfault model: {n_points} points x {dim} dims");

    let dir = std::env::temp_dir().join(format!(
        "laf_bench_faults_{n_points}x{dim}_{}",
        std::process::id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("bench dir");
    let clean_path = dir.join("clean.lafs");
    let (eps, min_pts) = (laf_config.eps, laf_config.min_pts);
    let clean = LafPipeline::builder(laf_config)
        .net(cfg.net.clone())
        .training(TrainingSetBuilder {
            max_queries: Some(cfg.train_queries),
            ..Default::default()
        })
        .calibrate(true) // so the snapshot has a calibration section to corrupt
        .train_and_save(data, &clean_path)
        .expect("train and save");
    let clean_labels = clean.cluster().labels().to_vec();
    let exact_labels = Dbscan::with_params(eps, min_pts)
        .cluster(clean.data())
        .labels()
        .to_vec();

    // --- Degraded matrix: one flipped bit per redundant section ------------
    let mut degraded = Vec::new();
    for (id, reference, want) in [
        (section_id::ENGINE, "clean load", &clean_labels),
        (section_id::ESTIMATOR, "exact DBSCAN", &exact_labels),
        (section_id::CALIBRATION, "exact DBSCAN", &exact_labels),
    ] {
        let name = section_id::name(id);
        let path = dir.join(format!("corrupt_{name}.lafs"));
        corrupt_copy(&clean_path, &path, id);
        let t = Instant::now();
        let loaded = LafPipeline::load_degraded(&path);
        let load_seconds = t.elapsed().as_secs_f64();
        let verdict = match loaded {
            Ok((warm, report)) => DegradedVerdict {
                section: name.to_string(),
                load_seconds,
                degraded_ok: !report.is_clean(),
                report: report.to_string(),
                labels_identical: warm.cluster().labels() == &want[..],
                reference: reference.to_string(),
            },
            Err(e) => DegradedVerdict {
                section: name.to_string(),
                load_seconds,
                degraded_ok: false,
                report: format!("load failed: {e}"),
                labels_identical: false,
                reference: reference.to_string(),
            },
        };
        degraded.push(verdict);
    }

    // --- Hard-fail sections: corruption here must never be served ----------
    let mut hard_fail = Vec::new();
    for id in [section_id::CONFIG, section_id::DATASET] {
        let name = section_id::name(id);
        let path = dir.join(format!("fatal_{name}.lafs"));
        corrupt_copy(&clean_path, &path, id);
        let result = LafPipeline::load_degraded(&path);
        hard_fail.push(HardFailVerdict {
            section: name.to_string(),
            rejected: result.is_err(),
            typed_error: result.err().map(|e| e.to_string()).unwrap_or_default(),
        });
    }

    // --- Scrub arm: corruption of a resident snapshot is quarantined -------
    let ok_path = dir.join("tenant_ok.lafs");
    let bad_path = dir.join("tenant_bad.lafs");
    std::fs::copy(&clean_path, &ok_path).expect("tenant copy");
    std::fs::copy(&clean_path, &bad_path).expect("tenant copy");
    let cache = SnapshotCache::new(CacheConfig::default());
    cache.register("ok", &ok_path).expect("register ok");
    cache.register("bad", &bad_path).expect("register bad");
    drop(cache.pin("ok").expect("warm ok"));
    drop(cache.pin("bad").expect("warm bad"));
    // The corruption lands *after* the file was registered and loaded —
    // exactly the bit-rot window the background scrub exists for.
    corrupt_copy(&clean_path, &bad_path, section_id::DATASET);
    let t = Instant::now();
    let scrub_report = cache.scrub();
    let scrub_seconds = t.elapsed().as_secs_f64();
    let quarantined_pin_is_typed =
        matches!(cache.pin("bad"), Err(CacheError::Quarantined { tenant }) if tenant == "bad");
    std::fs::copy(&clean_path, &bad_path).expect("repair tenant");
    let re_register_lifts_quarantine =
        cache.register("bad", &bad_path).is_ok() && cache.pin("bad").is_ok();
    let scrub = ScrubArm {
        tenants: 2,
        verified: scrub_report.verified.len(),
        quarantined: scrub_report.quarantined.clone(),
        scrub_seconds,
        quarantined_pin_is_typed,
        re_register_lifts_quarantine,
    };

    // --- Repair arm: corruption matrix healed by the supervisor ------------
    let repair = repair_arm(&clean_path, &dir);

    // --- Chaos arm (fault-injection builds only) ---------------------------
    let extra = bench_dataset(cfg, (n_points / 4).clamp(16, 512));
    let chaos = chaos_arm(&clean, &extra, &dir);

    std::fs::remove_dir_all(&dir).ok();
    let report = FaultBenchReport {
        n_points,
        dim,
        degraded,
        hard_fail,
        scrub,
        repair,
        chaos,
    };

    let degraded_rows: Vec<Vec<String>> = report
        .degraded
        .iter()
        .map(|v| {
            vec![
                v.section.clone(),
                format_seconds(v.load_seconds),
                v.degraded_ok.to_string(),
                v.labels_identical.to_string(),
                v.reference.clone(),
            ]
        })
        .collect();
    print_table(
        "Degraded loads: one flipped bit per redundant section",
        &["section", "load", "degraded ok", "labels identical", "vs"],
        &degraded_rows,
    );
    let fatal_rows: Vec<Vec<String>> = report
        .hard_fail
        .iter()
        .map(|v| vec![v.section.clone(), v.rejected.to_string()])
        .collect();
    print_table(
        "Hard-fail sections: corruption is typed, never served",
        &["section", "rejected"],
        &fatal_rows,
    );
    println!(
        "scrub: {}/{} verified in {}, quarantined {:?} (typed pin: {}, repair lifts: {})",
        report.scrub.verified,
        report.scrub.tenants,
        format_seconds(report.scrub.scrub_seconds),
        report.scrub.quarantined,
        report.scrub.quarantined_pin_is_typed,
        report.scrub.re_register_lifts_quarantine
    );
    let repair_rows: Vec<Vec<String>> = report
        .repair
        .cases
        .iter()
        .map(|c| {
            vec![
                c.section.clone(),
                c.healed.to_string(),
                c.ticks_to_heal.to_string(),
                c.health.clone(),
            ]
        })
        .collect();
    print_table(
        "Self-healing: supervised repair across the corruption matrix",
        &["section", "healed", "ticks", "health"],
        &repair_rows,
    );
    println!(
        "repair: {}/{} succeeded ({} failed) over {} scrub passes, mean time to repair {:.0} us",
        report.repair.repairs_succeeded,
        report.repair.repairs_attempted,
        report.repair.repairs_failed,
        report.repair.scrub_passes,
        report.repair.mean_time_to_repair_us
    );
    match &report.chaos {
        Some(c) => println!(
            "chaos: seed {} tripped {} faults over {} ops ({} typed errors) in {}; \
             recovery {} (state bit-identical: {})",
            c.seed,
            c.faults_tripped,
            c.ops,
            c.typed_errors,
            format_seconds(c.schedule_seconds),
            format_seconds(c.recovery_seconds),
            c.state_bit_identical
        ),
        None => println!("chaos: skipped (build without the `fault-injection` feature)"),
    }

    write_json(&cfg.results_dir, "BENCH_faults", &report);
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use laf_cardest::NetConfig;

    #[test]
    fn degraded_matrix_scrub_and_chaos_hold_their_gates() {
        let cfg = HarnessConfig {
            scale: 0.001,
            dim_cap: Some(12),
            train_queries: 60,
            net: NetConfig::tiny(),
            results_dir: std::env::temp_dir().join("laf_bench_faults_test"),
            ..Default::default()
        };
        let report = run(&cfg);

        let engine = &report.degraded[0];
        assert!(engine.degraded_ok, "engine: {}", engine.report);
        assert!(engine.labels_identical, "engine rebuild must be bit-exact");
        let estimator = &report.degraded[1];
        assert!(estimator.degraded_ok, "estimator: {}", estimator.report);
        assert!(
            estimator.labels_identical,
            "gate-off serving must equal exact DBSCAN"
        );
        let calibration = &report.degraded[2];
        assert!(
            calibration.degraded_ok,
            "calibration: {}",
            calibration.report
        );

        for fatal in &report.hard_fail {
            assert!(fatal.rejected, "{} must hard-fail", fatal.section);
            assert!(!fatal.typed_error.is_empty());
        }

        assert_eq!(report.scrub.quarantined, vec!["bad".to_string()]);
        assert_eq!(report.scrub.verified, 1);
        assert!(report.scrub.quarantined_pin_is_typed);
        assert!(report.scrub.re_register_lifts_quarantine);

        assert_eq!(report.repair.cases.len(), 5);
        for case in &report.repair.cases {
            assert!(
                case.healed,
                "{}: supervisor must heal the tenant, ended {}",
                case.section, case.health
            );
        }
        assert_eq!(
            report.repair.repairs_succeeded,
            report.repair.cases.len() as u64
        );
        assert_eq!(report.repair.repairs_failed, 0);
        assert!(report.repair.mean_time_to_repair_us > 0.0);

        if let Some(chaos) = &report.chaos {
            assert!(chaos.state_bit_identical);
        }
        assert!(cfg.results_dir.join("BENCH_faults.json").exists());
    }
}
