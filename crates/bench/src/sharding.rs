//! Sharded scatter-gather and tenant-cache experiment.
//!
//! Not a paper exhibit: this measures the two serving-scale features of the
//! format-v4 snapshot layer. **Fan-out**: one pipeline is trained and saved
//! at several shard counts, each snapshot is restored by mmap, and the same
//! query sweep (range / range_count / knn) plus a full LAF-DBSCAN run is
//! timed per shard count — with every result compared bit for bit against
//! the unsharded arm, so the benchmark doubles as the end-to-end
//! equivalence gate for sharded snapshots. **Tenant cache**: the sharded
//! snapshots are then registered as tenants of a
//! [`laf_serve::SnapshotCache`] whose byte budget holds only one of them;
//! a round-robin access pattern forces misses and evictions, and the
//! cache's own counters are cross-checked for accounting consistency
//! (pins = hits + misses = unpins, resident bytes within budget, evictions
//! matching reloads).
//!
//! Results are printed as a table and written to
//! `<results_dir>/BENCH_sharding.json`. The `exp_sharding` binary exits
//! non-zero on any divergence or accounting inconsistency.

use crate::harness::HarnessConfig;
use crate::report::{print_table, write_json};
use laf_cardest::TrainingSetBuilder;
use laf_core::{LafConfig, LafPipeline};
use laf_index::{EngineChoice, Neighbor};
use laf_serve::{CacheConfig, CacheError, CacheStatsReport, SnapshotCache, TenantServer};
use laf_synth::EmbeddingMixtureConfig;
use laf_vector::Dataset;
use serde::Serialize;
use std::path::PathBuf;
use std::time::Instant;

/// Shard counts swept by the experiment; the first (1 = unsharded) is the
/// bit-identity reference the others are compared against.
pub const SHARD_SWEEP: [usize; 3] = [1, 2, 4];

/// Distinct query vectors per sweep.
const N_QUERIES: usize = 32;

/// Cache accesses issued per tenant in the round-robin phase.
const CACHE_ROUNDS: usize = 6;

/// One measured shard-count arm.
#[derive(Debug, Clone, Serialize)]
pub struct ShardingRecord {
    /// Number of shard sections in the snapshot (1 = classic layout).
    pub shards: usize,
    /// Snapshot file size, bytes.
    pub snapshot_bytes: u64,
    /// mmap warm start (decode + engine restore), milliseconds.
    pub load_ms: f64,
    /// The `N_QUERIES`-query range sweep, milliseconds.
    pub range_ms: f64,
    /// The range_count sweep, milliseconds.
    pub range_count_ms: f64,
    /// The knn sweep (k = 5), milliseconds.
    pub knn_ms: f64,
    /// Full LAF-DBSCAN run over the restored pipeline, milliseconds.
    pub cluster_ms: f64,
    /// Results (range, count, knn order, labels, stats) differing from the
    /// unsharded reference — must be 0.
    pub divergences: u64,
}

/// Everything the sharding experiment measures, persisted as one JSON
/// object.
#[derive(Debug, Clone, Serialize)]
pub struct ShardingReport {
    /// Points in the dataset.
    pub n_points: usize,
    /// Data dimensionality.
    pub dim: usize,
    /// Range radius of the query sweeps.
    pub eps: f32,
    /// Queries per sweep.
    pub n_queries: usize,
    /// The shard counts the records cover.
    pub shard_counts: Vec<usize>,
    /// One record per shard count.
    pub records: Vec<ShardingRecord>,
    /// `true` when every sharded result matched the unsharded reference.
    pub results_identical: bool,
    /// Tenants registered in the cache phase.
    pub cache_tenants: usize,
    /// Cache accesses issued in the round-robin phase.
    pub cache_accesses: u64,
    /// The cache's own counters after the round-robin phase.
    pub cache: CacheStatsReport,
    /// `true` when the cache counters are mutually consistent (see
    /// [`cache_accounting_consistent`]).
    pub cache_consistent: bool,
}

/// The accounting invariants the cache phase must leave behind: every pin
/// classified as hit or miss and released again, residency within the byte
/// budget, and every reload beyond the resident set paid for by exactly one
/// eviction.
pub fn cache_accounting_consistent(report: &CacheStatsReport) -> bool {
    report.pins == report.hits + report.misses
        && report.unpins == report.pins
        && report.resident_bytes <= report.byte_budget
        && report.misses >= report.resident_entries as u64
        && report.evictions == report.misses - report.resident_entries as u64
}

fn sharding_dataset(cfg: &HarnessConfig) -> Dataset {
    let n_points = ((40_000.0 * cfg.scale) as usize).clamp(240, 4_000);
    let dim = cfg.dim_cap.unwrap_or(24).clamp(6, 24);
    EmbeddingMixtureConfig {
        n_points,
        dim,
        clusters: 8,
        noise_fraction: 0.15,
        seed: cfg.seed,
        ..Default::default()
    }
    .generate()
    .expect("valid sharding dataset config")
    .0
}

struct Reference {
    range: Vec<Vec<u32>>,
    count: Vec<usize>,
    knn: Vec<Vec<Neighbor>>,
    labels: Vec<i64>,
}

/// Run the sweep plus the cache phase and write `BENCH_sharding.json`.
pub fn run(cfg: &HarnessConfig) -> ShardingReport {
    let data = sharding_dataset(cfg);
    let eps = 0.3f32;
    let (n_points, dim) = (data.len(), data.dim());
    println!(
        "\nsharding sweep: {n_points} points x {dim} dims, eps {eps}, \
         shard counts {SHARD_SWEEP:?}, {N_QUERIES} queries per sweep"
    );

    let dir = std::env::temp_dir().join(format!("laf_bench_sharding_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("bench temp dir");

    // One snapshot file per shard count. The training inputs are identical,
    // so the estimators — and therefore the labels — may only differ if the
    // sharded scatter-gather itself diverges.
    let config = LafConfig {
        engine: EngineChoice::Grid { cell_side: 0.3 },
        ..LafConfig::new(eps, 4, 1.0)
    };
    let paths: Vec<PathBuf> = SHARD_SWEEP
        .iter()
        .map(|&n| {
            let path = dir.join(format!("shards{n}.lafs"));
            LafPipeline::builder(config.clone())
                .net(cfg.net.clone())
                .training(TrainingSetBuilder {
                    max_queries: Some(cfg.train_queries.min(120)),
                    ..Default::default()
                })
                .shards(n)
                .train_and_save(data.clone(), &path)
                .expect("train sharded pipeline");
            path
        })
        .collect();

    let stride = (n_points / N_QUERIES).max(1);
    let queries: Vec<Vec<f32>> = (0..N_QUERIES.min(n_points))
        .map(|i| data.row(i * stride).to_vec())
        .collect();

    let mut reference: Option<Reference> = None;
    let mut records = Vec::new();
    for (&shards, path) in SHARD_SWEEP.iter().zip(&paths) {
        let snapshot_bytes = std::fs::metadata(path).expect("snapshot size").len();
        let started = Instant::now();
        let pipeline = LafPipeline::load_mmap(path).expect("mmap warm start");
        let engine = pipeline.engine();
        let load_ms = started.elapsed().as_secs_f64() * 1e3;

        let started = Instant::now();
        let range: Vec<Vec<u32>> = queries.iter().map(|q| engine.get().range(q, eps)).collect();
        let range_ms = started.elapsed().as_secs_f64() * 1e3;
        let started = Instant::now();
        let count: Vec<usize> = queries
            .iter()
            .map(|q| engine.get().range_count(q, eps))
            .collect();
        let range_count_ms = started.elapsed().as_secs_f64() * 1e3;
        let started = Instant::now();
        let knn: Vec<Vec<Neighbor>> = queries.iter().map(|q| engine.get().knn(q, 5)).collect();
        let knn_ms = started.elapsed().as_secs_f64() * 1e3;
        let started = Instant::now();
        let (clustering, _) = pipeline.cluster_with_stats();
        let cluster_ms = started.elapsed().as_secs_f64() * 1e3;
        let labels = clustering.labels().to_vec();

        let divergences = match &reference {
            None => {
                reference = Some(Reference {
                    range,
                    count,
                    knn,
                    labels,
                });
                0
            }
            Some(want) => {
                let mut diverged = 0u64;
                diverged += (0..queries.len())
                    .filter(|&i| range[i] != want.range[i] || count[i] != want.count[i])
                    .count() as u64;
                diverged += (0..queries.len())
                    .filter(|&i| knn[i] != want.knn[i])
                    .count() as u64;
                if labels != want.labels {
                    diverged += 1;
                }
                diverged
            }
        };
        records.push(ShardingRecord {
            shards,
            snapshot_bytes,
            load_ms,
            range_ms,
            range_count_ms,
            knn_ms,
            cluster_ms,
            divergences,
        });
    }

    // Cache phase: the sharded snapshots become tenants of a cache whose
    // budget holds exactly one of them, so the round-robin access pattern
    // below evicts and reloads on every tenant switch.
    let largest = records
        .iter()
        .map(|r| r.snapshot_bytes)
        .max()
        .expect("non-empty sweep");
    let cache = SnapshotCache::new(CacheConfig {
        byte_budget: largest + largest / 2,
        max_entries: SHARD_SWEEP.len(),
        tenant_quota: 0,
    });
    for (&shards, path) in SHARD_SWEEP.iter().zip(&paths) {
        cache.register(&format!("shards{shards}"), path).unwrap();
    }
    let server = TenantServer::new(cache.clone());
    let want = reference.as_ref().expect("reference arm ran");
    let mut cache_accesses = 0u64;
    let mut cache_divergences = 0u64;
    for round in 0..CACHE_ROUNDS {
        for &shards in &SHARD_SWEEP {
            let tenant = format!("shards{shards}");
            // Two back-to-back queries per tenant: the first is the (likely)
            // miss that loads the snapshot, the second a guaranteed hit —
            // so both counters see real traffic.
            for burst in 0..2 {
                let qi = (round * SHARD_SWEEP.len() + shards + burst) % queries.len();
                cache_accesses += 1;
                match server.range_count(&tenant, &queries[qi], eps) {
                    Ok(count) => {
                        if count != want.count[qi] {
                            cache_divergences += 1;
                        }
                    }
                    Err(CacheError::Overloaded { .. }) => {}
                    Err(e) => panic!("cache phase: unexpected error {e}"),
                }
            }
        }
    }
    let cache_report = cache.report();
    let cache_consistent = cache_accounting_consistent(&cache_report) && cache_divergences == 0;

    let rows: Vec<Vec<String>> = records
        .iter()
        .map(|r| {
            vec![
                r.shards.to_string(),
                r.snapshot_bytes.to_string(),
                format!("{:.2}", r.load_ms),
                format!("{:.2}", r.range_ms),
                format!("{:.2}", r.range_count_ms),
                format!("{:.2}", r.knn_ms),
                format!("{:.2}", r.cluster_ms),
                if r.divergences == 0 { "ok" } else { "DIVERGED" }.to_string(),
            ]
        })
        .collect();
    print_table(
        "Sharded scatter-gather: per-shard fan-out vs the unsharded engine",
        &[
            "shards",
            "bytes",
            "load ms",
            "range ms",
            "count ms",
            "knn ms",
            "cluster ms",
            "results",
        ],
        &rows,
    );
    println!(
        "\ntenant cache ({} tenants through a 1-snapshot budget): {} accesses, \
         {} hits / {} misses / {} evictions; accounting {}",
        SHARD_SWEEP.len(),
        cache_accesses,
        cache_report.hits,
        cache_report.misses,
        cache_report.evictions,
        if cache_consistent {
            "consistent"
        } else {
            "INCONSISTENT"
        }
    );

    let results_identical = records.iter().all(|r| r.divergences == 0);
    let report = ShardingReport {
        n_points,
        dim,
        eps,
        n_queries: queries.len(),
        shard_counts: SHARD_SWEEP.to_vec(),
        records,
        results_identical,
        cache_tenants: SHARD_SWEEP.len(),
        cache_accesses,
        cache: cache_report,
        cache_consistent,
    };
    write_json(&cfg.results_dir, "BENCH_sharding", &report);
    for path in paths {
        std::fs::remove_file(path).ok();
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use laf_cardest::NetConfig;

    #[test]
    fn sweep_is_bit_identical_and_cache_accounting_balances() {
        let cfg = HarnessConfig {
            scale: 0.0025,
            dim_cap: Some(16),
            train_queries: 40,
            net: NetConfig::tiny(),
            results_dir: std::env::temp_dir().join("laf_bench_sharding_test"),
            ..Default::default()
        };
        let report = run(&cfg);
        assert_eq!(report.records.len(), SHARD_SWEEP.len());
        // Bit-identity is asserted even at smoke scale: the sharded engines
        // must reproduce the unsharded answers exactly.
        assert!(report.results_identical, "sharded results diverged");
        assert!(report.cache_consistent, "cache accounting inconsistent");
        // The single-snapshot budget forces real cache churn.
        assert!(
            report.cache.evictions > 0,
            "no evictions — budget too loose"
        );
        assert!(report.cache.misses > report.cache.resident_entries as u64);
        assert!(report.records.iter().all(|r| r.load_ms > 0.0));
        assert!(cfg.results_dir.join("BENCH_sharding.json").exists());
    }
}
