//! Dataset preparation and method execution shared by every experiment.

use laf_cardest::{NetConfig, RmiConfig, RmiEstimator, TrainingSetBuilder};
use laf_clustering::{
    BlockDbscan, BlockDbscanConfig, Clusterer, Clustering, Dbscan, DbscanPlusPlus,
    DbscanPlusPlusConfig, KnnBlockDbscan, KnnBlockDbscanConfig, RhoApproxDbscan,
};
use laf_core::{LafConfig, LafDbscan, LafDbscanPlusPlus, LafDbscanPlusPlusConfig};
use laf_metrics::{adjusted_mutual_information, adjusted_rand_index, MissedClusterReport};
use laf_synth::DatasetCatalog;
use laf_vector::Dataset;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::path::PathBuf;
use std::time::Instant;

/// Scale and training knobs, read from the environment so the same binaries
/// serve both smoke runs and paper-scale runs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HarnessConfig {
    /// Fraction of the paper's dataset sizes to generate.
    pub scale: f64,
    /// Cap on data dimensionality (`None` = the paper's dimensions).
    pub dim_cap: Option<usize>,
    /// Catalog / sampling seed.
    pub seed: u64,
    /// Per-model network configuration for the RMI estimator.
    pub net: NetConfig,
    /// Number of query points used to build the estimator training set.
    pub train_queries: usize,
    /// Offset δ for the DBSCAN++ / LAF-DBSCAN++ sample fraction.
    pub delta: f64,
    /// Directory JSON results are written into.
    pub results_dir: PathBuf,
}

impl Default for HarnessConfig {
    fn default() -> Self {
        Self {
            scale: 0.008,
            dim_cap: Some(64),
            seed: 20230206,
            net: NetConfig {
                epochs: 30,
                ..NetConfig::small()
            },
            train_queries: 400,
            delta: 0.2,
            results_dir: PathBuf::from("results"),
        }
    }
}

impl HarnessConfig {
    /// Read the configuration from `LAF_SCALE`, `LAF_DIM_CAP`,
    /// `LAF_TRAIN_QUERIES` and `LAF_RESULTS_DIR`.
    pub fn from_env() -> Self {
        let mut cfg = Self::default();
        if let Ok(v) = std::env::var("LAF_SCALE") {
            if let Ok(scale) = v.parse::<f64>() {
                if scale > 0.0 && scale <= 1.0 {
                    cfg.scale = scale;
                }
            }
        }
        if let Ok(v) = std::env::var("LAF_DIM_CAP") {
            match v.parse::<usize>() {
                Ok(0) => cfg.dim_cap = None,
                Ok(cap) => cfg.dim_cap = Some(cap),
                Err(_) => {}
            }
        }
        if let Ok(v) = std::env::var("LAF_TRAIN_QUERIES") {
            if let Ok(q) = v.parse::<usize>() {
                if q > 0 {
                    cfg.train_queries = q;
                }
            }
        }
        if let Ok(v) = std::env::var("LAF_RESULTS_DIR") {
            if !v.is_empty() {
                cfg.results_dir = PathBuf::from(v);
            }
        }
        cfg
    }

    /// The dataset catalog implied by this configuration.
    pub fn catalog(&self) -> DatasetCatalog {
        DatasetCatalog {
            scale: self.scale,
            seed: self.seed,
            dim_cap: self.dim_cap,
        }
    }

    /// Generate a preset, split it 80/20 and train the RMI estimator on the
    /// training split (exactly the paper's experimental protocol; all
    /// reported numbers are computed on the testing split).
    pub fn prepare(&self, preset: &str) -> PreparedDataset {
        let ds = self
            .catalog()
            .generate(preset)
            .expect("preset name is one of the Table 1 entries");
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0x5114_7E57);
        let (train, test) = ds.data.train_test_split(0.8, &mut rng);
        let started = Instant::now();
        let training = TrainingSetBuilder {
            max_queries: Some(self.train_queries),
            ..Default::default()
        }
        .build(&train, &train)
        .expect("training set");
        let rmi = RmiEstimator::train(&training, &RmiConfig::paper_stages(self.net.clone()));
        PreparedDataset {
            name: ds.spec.name.to_string(),
            paper_alpha: ds.spec.paper_alpha,
            train,
            test,
            rmi,
            train_seconds: started.elapsed().as_secs_f64(),
        }
    }

    /// Prepare the three largest datasets (NYT-150k, Glove-150k, MS-150k).
    pub fn prepare_largest_three(&self) -> Vec<PreparedDataset> {
        ["NYT-150k", "Glove-150k", "MS-150k"]
            .iter()
            .map(|n| self.prepare(n))
            .collect()
    }

    /// Prepare the MS MARCO scale family (MS-50k, MS-100k, MS-150k).
    pub fn prepare_ms_family(&self) -> Vec<PreparedDataset> {
        ["MS-50k", "MS-100k", "MS-150k"]
            .iter()
            .map(|n| self.prepare(n))
            .collect()
    }
}

/// A generated dataset with its trained estimator.
pub struct PreparedDataset {
    /// Preset name (Table 1).
    pub name: String,
    /// The α the paper uses for LAF-DBSCAN on this dataset.
    pub paper_alpha: f32,
    /// Training split (estimator training only).
    pub train: Dataset,
    /// Testing split (all reported numbers).
    pub test: Dataset,
    /// The trained 3-stage RMI estimator.
    pub rmi: RmiEstimator,
    /// Wall-clock seconds spent building the training set and training the
    /// estimator (reported separately, excluded from clustering times as in
    /// the paper).
    pub train_seconds: f64,
}

/// The methods the paper evaluates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Method {
    /// Original DBSCAN (ground truth).
    Dbscan,
    /// KNN-BLOCK DBSCAN.
    KnnBlock,
    /// BLOCK-DBSCAN.
    BlockDbscan,
    /// DBSCAN++.
    DbscanPlusPlus,
    /// ρ-approximate DBSCAN.
    RhoApprox,
    /// LAF-DBSCAN (the paper's main method).
    LafDbscan,
    /// LAF-DBSCAN++.
    LafDbscanPlusPlus,
}

impl Method {
    /// The approximate methods compared in Table 3 / Figure 1 (ρ-approximate
    /// DBSCAN is excluded there, as in the paper, because of its runtime).
    pub const TABLE3: [Method; 5] = [
        Method::KnnBlock,
        Method::BlockDbscan,
        Method::DbscanPlusPlus,
        Method::LafDbscan,
        Method::LafDbscanPlusPlus,
    ];

    /// Display label matching the paper's tables.
    pub fn label(&self) -> &'static str {
        match self {
            Method::Dbscan => "DBSCAN",
            Method::KnnBlock => "KNN-BLOCK",
            Method::BlockDbscan => "BLOCK-DBSCAN",
            Method::DbscanPlusPlus => "DBSCAN++",
            Method::RhoApprox => "rho-approx",
            Method::LafDbscan => "LAF-DBSCAN",
            Method::LafDbscanPlusPlus => "LAF-DBSCAN++",
        }
    }
}

/// Result of running one method at one (ε, τ) setting on one dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MethodOutcome {
    /// Method label.
    pub method: String,
    /// Dataset name.
    pub dataset: String,
    /// Distance threshold.
    pub eps: f32,
    /// Neighbor threshold.
    pub tau: usize,
    /// Wall-clock clustering time in seconds (training time excluded).
    pub seconds: f64,
    /// Adjusted Rand Index against DBSCAN (1.0 for DBSCAN itself).
    pub ari: f64,
    /// Adjusted Mutual Information against DBSCAN.
    pub ami: f64,
    /// Number of clusters produced.
    pub n_clusters: usize,
    /// Fraction of points labeled noise.
    pub noise_ratio: f64,
    /// Range queries executed.
    pub range_queries: u64,
    /// Range queries skipped by the LAF gate (0 for non-LAF methods).
    pub skipped_range_queries: u64,
    /// The method-specific knob used (α for the LAF methods, sample fraction
    /// for the DBSCAN++ family, ρ for ρ-approximate DBSCAN).
    pub knob: f64,
}

/// All outcomes for one dataset at one (ε, τ) setting.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SettingOutcome {
    /// Dataset name.
    pub dataset: String,
    /// Distance threshold.
    pub eps: f32,
    /// Neighbor threshold.
    pub tau: usize,
    /// Per-method outcomes, DBSCAN first.
    pub outcomes: Vec<MethodOutcome>,
}

/// Run one method and score it against the supplied ground truth (pass the
/// DBSCAN clustering; for DBSCAN itself pass `None` and ARI/AMI are 1).
/// Returns the outcome and the clustering (the latter is needed by the
/// missed-cluster analysis).
pub fn run_method(
    cfg: &HarnessConfig,
    method: Method,
    prepared: &PreparedDataset,
    eps: f32,
    tau: usize,
    alpha_override: Option<f32>,
    truth: Option<&Clustering>,
) -> (MethodOutcome, Clustering) {
    let data = &prepared.test;
    let alpha = alpha_override.unwrap_or(prepared.paper_alpha);
    // The paper keeps the sample fraction of DBSCAN++ and LAF-DBSCAN++
    // identical: p = δ + R_c with R_c the predicted-core ratio.
    let laf_pp_cfg = LafDbscanPlusPlusConfig {
        laf: LafConfig {
            eps,
            min_pts: tau,
            alpha: 1.0,
            ..LafConfig::default()
        },
        delta: cfg.delta,
        ..Default::default()
    };
    let laf_pp = LafDbscanPlusPlus::new(laf_pp_cfg.clone(), &prepared.rmi);
    let shared_fraction = laf_pp.sample_fraction(data);

    let started = Instant::now();
    let (clustering, knob, skipped) = match method {
        Method::Dbscan => (Dbscan::with_params(eps, tau).cluster(data), 0.0, 0),
        Method::KnnBlock => (
            KnnBlockDbscan::new(KnnBlockDbscanConfig::new(eps, tau)).cluster(data),
            0.6,
            0,
        ),
        Method::BlockDbscan => (
            BlockDbscan::new(BlockDbscanConfig::new(eps, tau)).cluster(data),
            2.0,
            0,
        ),
        Method::DbscanPlusPlus => (
            DbscanPlusPlus::new(DbscanPlusPlusConfig {
                eps,
                min_pts: tau,
                sample_fraction: shared_fraction,
                ..Default::default()
            })
            .cluster(data),
            shared_fraction,
            0,
        ),
        Method::RhoApprox => (RhoApproxDbscan::with_params(eps, tau).cluster(data), 1.0, 0),
        Method::LafDbscan => {
            let laf = LafDbscan::new(LafConfig::new(eps, tau, alpha), &prepared.rmi);
            let (c, stats) = laf.cluster_with_stats(data);
            (c, alpha as f64, stats.skipped_range_queries)
        }
        Method::LafDbscanPlusPlus => {
            let (c, stats) = laf_pp.cluster_with_stats(data);
            (c, shared_fraction, stats.skipped_range_queries)
        }
    };
    let seconds = started.elapsed().as_secs_f64();

    let (ari, ami) = match truth {
        Some(t) => (
            adjusted_rand_index(t.labels(), clustering.labels()),
            adjusted_mutual_information(t.labels(), clustering.labels()),
        ),
        None => (1.0, 1.0),
    };
    let stats = clustering.stats();
    let outcome = MethodOutcome {
        method: method.label().to_string(),
        dataset: prepared.name.clone(),
        eps,
        tau,
        seconds,
        ari,
        ami,
        n_clusters: stats.n_clusters,
        noise_ratio: stats.noise_ratio(),
        range_queries: clustering.range_queries,
        skipped_range_queries: skipped,
        knob,
    };
    (outcome, clustering)
}

/// Run DBSCAN (ground truth) plus the requested approximate methods for one
/// dataset and one (ε, τ) setting.
pub fn evaluate_setting(
    cfg: &HarnessConfig,
    prepared: &PreparedDataset,
    eps: f32,
    tau: usize,
    methods: &[Method],
) -> SettingOutcome {
    let (truth_outcome, truth) = run_method(cfg, Method::Dbscan, prepared, eps, tau, None, None);
    let mut outcomes = vec![truth_outcome];
    for &m in methods {
        if m == Method::Dbscan {
            continue;
        }
        let (outcome, _) = run_method(cfg, m, prepared, eps, tau, None, Some(&truth));
        outcomes.push(outcome);
    }
    SettingOutcome {
        dataset: prepared.name.clone(),
        eps,
        tau,
        outcomes,
    }
}

/// Fully-missed-cluster analysis of LAF-DBSCAN on one dataset (Table 6).
pub fn missed_cluster_analysis(
    cfg: &HarnessConfig,
    prepared: &PreparedDataset,
    eps: f32,
    tau: usize,
) -> (MissedClusterReport, MethodOutcome) {
    let (_, truth) = run_method(cfg, Method::Dbscan, prepared, eps, tau, None, None);
    let (outcome, laf) = run_method(
        cfg,
        Method::LafDbscan,
        prepared,
        eps,
        tau,
        None,
        Some(&truth),
    );
    (
        MissedClusterReport::compute(truth.labels(), laf.labels()),
        outcome,
    )
}

/// Speed–quality trade-off sweep for one dataset (Figures 2 and 3): every
/// approximate method is run across its own knob range and each run is
/// reported as a `(time, AMI)` point.
pub fn tradeoff_sweep(
    cfg: &HarnessConfig,
    prepared: &PreparedDataset,
    eps: f32,
    tau: usize,
) -> Vec<MethodOutcome> {
    let data = &prepared.test;
    let (_, truth) = run_method(cfg, Method::Dbscan, prepared, eps, tau, None, None);
    let mut points = Vec::new();

    let mut score = |name: &str, knob: f64, seconds: f64, c: &Clustering, skipped: u64| {
        let stats = c.stats();
        points.push(MethodOutcome {
            method: name.to_string(),
            dataset: prepared.name.clone(),
            eps,
            tau,
            seconds,
            ari: adjusted_rand_index(truth.labels(), c.labels()),
            ami: adjusted_mutual_information(truth.labels(), c.labels()),
            n_clusters: stats.n_clusters,
            noise_ratio: stats.noise_ratio(),
            range_queries: c.range_queries,
            skipped_range_queries: skipped,
            knob,
        });
    };

    // LAF-DBSCAN: α from 1.1 to 15 (paper's Figure 2/3 range).
    for alpha in [1.1f32, 1.5, 2.0, 3.0, 5.0, 8.0, 15.0] {
        let laf = LafDbscan::new(LafConfig::new(eps, tau, alpha), &prepared.rmi);
        let started = Instant::now();
        let (c, stats) = laf.cluster_with_stats(data);
        score(
            "LAF-DBSCAN",
            alpha as f64,
            started.elapsed().as_secs_f64(),
            &c,
            stats.skipped_range_queries,
        );
    }

    // DBSCAN++ and LAF-DBSCAN++: δ from 0.1 to 0.9 (sample fraction sweep).
    for delta in [0.1f64, 0.3, 0.5, 0.7, 0.9] {
        let started = Instant::now();
        let c = DbscanPlusPlus::new(DbscanPlusPlusConfig {
            eps,
            min_pts: tau,
            sample_fraction: delta,
            ..Default::default()
        })
        .cluster(data);
        score("DBSCAN++", delta, started.elapsed().as_secs_f64(), &c, 0);

        let laf_pp = LafDbscanPlusPlus::new(
            LafDbscanPlusPlusConfig {
                laf: LafConfig {
                    eps,
                    min_pts: tau,
                    alpha: 1.0,
                    ..LafConfig::default()
                },
                delta: delta.min(0.3),
                ..Default::default()
            },
            &prepared.rmi,
        );
        let started = Instant::now();
        let (c, stats) = laf_pp.cluster_with_stats(data);
        score(
            "LAF-DBSCAN++",
            delta,
            started.elapsed().as_secs_f64(),
            &c,
            stats.skipped_range_queries,
        );
    }

    // KNN-BLOCK: leaf ratio sweep 0.001–0.3 (and the default branching 10).
    for leaf_ratio in [0.01f64, 0.05, 0.1, 0.3, 0.6] {
        let started = Instant::now();
        let c = KnnBlockDbscan::new(KnnBlockDbscanConfig {
            eps,
            min_pts: tau,
            leaf_ratio,
            ..Default::default()
        })
        .cluster(data);
        score(
            "KNN-BLOCK",
            leaf_ratio,
            started.elapsed().as_secs_f64(),
            &c,
            0,
        );
    }

    // BLOCK-DBSCAN: cover tree basis sweep 1.1–5.
    for basis in [1.1f32, 2.0, 3.0, 5.0] {
        let started = Instant::now();
        let c = BlockDbscan::new(BlockDbscanConfig {
            eps,
            min_pts: tau,
            basis,
            ..Default::default()
        })
        .cluster(data);
        score(
            "BLOCK-DBSCAN",
            basis as f64,
            started.elapsed().as_secs_f64(),
            &c,
            0,
        );
    }

    points
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> HarnessConfig {
        HarnessConfig {
            scale: 0.0015,
            dim_cap: Some(24),
            train_queries: 60,
            net: NetConfig::tiny(),
            ..Default::default()
        }
    }

    #[test]
    fn prepare_splits_and_trains() {
        let cfg = tiny_cfg();
        let prepared = cfg.prepare("MS-50k");
        assert_eq!(prepared.name, "MS-50k");
        assert!(prepared.train.len() > prepared.test.len());
        assert!(prepared.train_seconds > 0.0);
        assert_eq!(prepared.rmi.stage_sizes(), &[1, 2, 4]);
    }

    #[test]
    fn evaluate_setting_scores_every_method() {
        let cfg = tiny_cfg();
        let prepared = cfg.prepare("MS-50k");
        let setting = evaluate_setting(&cfg, &prepared, 0.5, 3, &Method::TABLE3);
        assert_eq!(setting.outcomes.len(), 6);
        assert_eq!(setting.outcomes[0].method, "DBSCAN");
        assert_eq!(setting.outcomes[0].ari, 1.0);
        for o in &setting.outcomes {
            assert!(o.seconds >= 0.0);
            assert!(o.ari <= 1.0 + 1e-9);
            assert!(o.noise_ratio >= 0.0 && o.noise_ratio <= 1.0);
        }
    }

    #[test]
    fn missed_cluster_analysis_is_consistent() {
        let cfg = tiny_cfg();
        let prepared = cfg.prepare("Glove-150k");
        let (report, outcome) = missed_cluster_analysis(&cfg, &prepared, 0.5, 3);
        assert!(report.missed_clusters <= report.total_clusters);
        assert_eq!(outcome.method, "LAF-DBSCAN");
    }

    #[test]
    fn harness_config_from_env_defaults() {
        let cfg = HarnessConfig::from_env();
        assert!(cfg.scale > 0.0);
        assert!(cfg.train_queries > 0);
    }

    #[test]
    fn method_labels_are_unique() {
        let mut labels: Vec<&str> = Method::TABLE3.iter().map(|m| m.label()).collect();
        labels.push(Method::Dbscan.label());
        labels.push(Method::RhoApprox.label());
        let mut dedup = labels.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), labels.len());
    }
}
