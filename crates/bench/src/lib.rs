//! # laf-bench
//!
//! Experiment harness regenerating every table and figure of the paper's
//! evaluation section on the synthetic stand-in datasets.
//!
//! | Binary | Reproduces |
//! |--------|------------|
//! | `exp_table1` | Table 1 — dataset inventory |
//! | `exp_table2` | Table 2 — (noise ratio, #clusters) grid over (ε, τ) |
//! | `exp_table3` | Table 3 — ARI/AMI of the approximate methods on the three largest datasets |
//! | `exp_table4` | Table 4 — ρ-approximate DBSCAN vs DBSCAN runtimes |
//! | `exp_table5` | Table 5 — quality across the MS scale family |
//! | `exp_table6` | Table 6 — fully-missed-cluster statistics of LAF-DBSCAN |
//! | `exp_fig1`   | Figure 1 — clustering time bars at the three (ε, τ) settings |
//! | `exp_fig2`   | Figure 2 — speed–quality trade-off on MS-150k |
//! | `exp_fig3`   | Figure 3 — speed–quality trade-off on Glove-150k |
//! | `exp_fig4`   | Figure 4 — scalability over MS-50k/100k/150k |
//! | `exp_throughput` | (not a paper exhibit) queries/sec of the batched parallel kernels vs batch size vs threads |
//! | `exp_snapshot` | (not a paper exhibit) cold (train+save) vs warm (load) startup to first served clustering |
//! | `exp_serving` | (not a paper exhibit) coalesced vs one-at-a-time dispatch through the serving front, per offered load |
//! | `exp_sharding` | (not a paper exhibit) sharded scatter-gather fan-out vs the unsharded engine, plus tenant-cache churn counters |
//! | `exp_mutable` | (not a paper exhibit) WAL insert throughput, base+delta read overhead, crash-recovery time, post-compaction bit-exactness |
//! | `exp_faults` | (not a paper exhibit) degraded-load matrix on corrupt snapshot sections, cache scrub/quarantine, seeded chaos replay (with `--features fault-injection`) |
//! | `run_all`    | all of the above, writing JSON into `results/` |
//!
//! Scale is controlled by environment variables so the same binaries serve
//! quick smoke runs and larger overnight runs:
//!
//! * `LAF_SCALE` — fraction of the paper's dataset sizes (default `0.008`,
//!   i.e. ≈1,200 points for the 150k datasets);
//! * `LAF_DIM_CAP` — cap on data dimensionality (default `64`; set to `0`
//!   for the paper's full 200/256/768 dimensions);
//! * `LAF_TRAIN_QUERIES` — queries used to build the estimator training set
//!   (default `400`);
//! * `LAF_RESULTS_DIR` — where JSON results are written (default `results`).

#![warn(missing_docs)]

pub mod ablation;
pub mod experiments;
pub mod fault_bench;
pub mod harness;
pub mod mutable_bench;
pub mod report;
pub mod serving;
pub mod sharding;
pub mod snapshot_bench;
pub mod throughput;

pub use harness::{HarnessConfig, Method, MethodOutcome, PreparedDataset, SettingOutcome};
pub use report::{format_seconds, print_table, write_json};
