//! Range-query engine comparison: the per-query cost of the linear scan,
//! cover tree, k-means tree and grid index on an embedding-like workload.
//! This is the substrate ablation behind the paper's baseline differences.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use laf_index::{CoverTree, GridIndex, KMeansTree, LinearScan, RangeQueryEngine};
use laf_synth::EmbeddingMixtureConfig;
use laf_vector::{cosine_to_euclidean, Dataset, Metric};
use std::hint::black_box;

fn dataset() -> Dataset {
    EmbeddingMixtureConfig {
        n_points: 1_000,
        dim: 64,
        clusters: 12,
        spread: 0.08,
        noise_fraction: 0.3,
        seed: 5,
        ..Default::default()
    }
    .generate()
    .unwrap()
    .0
}

fn bench_engines(c: &mut Criterion) {
    let data = dataset();
    let eps = 0.35f32;
    let linear = LinearScan::new(&data, Metric::Cosine);
    let cover = CoverTree::new(&data, Metric::Cosine, 2.0);
    let kmeans = KMeansTree::new(&data, Metric::Cosine, 10, 0.6, 7);
    let grid = GridIndex::new(
        &data,
        Metric::Cosine,
        cosine_to_euclidean(eps) / (data.dim() as f32).sqrt(),
    );
    let engines: Vec<(&str, &dyn RangeQueryEngine)> = vec![
        ("linear", &linear),
        ("cover_tree", &cover),
        ("kmeans_tree", &kmeans),
        ("grid", &grid),
    ];

    let mut group = c.benchmark_group("range_query");
    group.sample_size(20);
    for (name, engine) in &engines {
        group.bench_with_input(BenchmarkId::new("range", name), name, |bench, _| {
            let mut q = 0usize;
            bench.iter(|| {
                q = (q + 97) % data.len();
                black_box(engine.range(data.row(q), eps)).len()
            })
        });
        group.bench_with_input(BenchmarkId::new("knn10", name), name, |bench, _| {
            let mut q = 0usize;
            bench.iter(|| {
                q = (q + 131) % data.len();
                black_box(engine.knn(data.row(q), 10)).len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_engines);
criterion_main!(benches);
