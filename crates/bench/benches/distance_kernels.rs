//! Micro-benchmarks of the distance kernels at the paper's dimensionalities
//! (200-d GloVe, 256-d NYT, 768-d MS MARCO).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use laf_vector::{ops, AngularDistance, CosineDistance, DistanceMetric, EuclideanDistance};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn random_unit(dim: usize, rng: &mut StdRng) -> Vec<f32> {
    let mut v: Vec<f32> = (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
    ops::normalize_in_place(&mut v);
    v
}

fn bench_distances(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let mut group = c.benchmark_group("distance_kernels");
    group.sample_size(30);
    for dim in [200usize, 256, 768] {
        let a = random_unit(dim, &mut rng);
        let b = random_unit(dim, &mut rng);
        group.bench_with_input(BenchmarkId::new("cosine", dim), &dim, |bench, _| {
            bench.iter(|| black_box(CosineDistance.dist(black_box(&a), black_box(&b))))
        });
        group.bench_with_input(BenchmarkId::new("euclidean", dim), &dim, |bench, _| {
            bench.iter(|| black_box(EuclideanDistance.dist(black_box(&a), black_box(&b))))
        });
        group.bench_with_input(BenchmarkId::new("angular", dim), &dim, |bench, _| {
            bench.iter(|| black_box(AngularDistance.dist(black_box(&a), black_box(&b))))
        });
        group.bench_with_input(BenchmarkId::new("dot", dim), &dim, |bench, _| {
            bench.iter(|| black_box(ops::dot(black_box(&a), black_box(&b))))
        });
        // The query-major mini-GEMM tile: four dots per row load. Compare
        // against 4x the scalar `dot` number to see the register-tiling win.
        let (q0, q1, q2, q3) = (
            random_unit(dim, &mut rng),
            random_unit(dim, &mut rng),
            random_unit(dim, &mut rng),
            random_unit(dim, &mut rng),
        );
        group.bench_with_input(BenchmarkId::new("dot4", dim), &dim, |bench, _| {
            bench.iter(|| {
                black_box(ops::dot4(
                    black_box(&q0),
                    black_box(&q1),
                    black_box(&q2),
                    black_box(&q3),
                    black_box(&b),
                ))
            })
        });
        // Norm-cached cosine: the specialized kernel's per-row work (one dot
        // + O(1) epilogue) vs the 3-dot `CosineDistance` above.
        let kernel = laf_vector::MetricKernel::new(laf_vector::Metric::Cosine);
        let prep = kernel.prepare(&a);
        let b_norm = ops::norm(&b);
        group.bench_with_input(BenchmarkId::new("cosine_kernel", dim), &dim, |bench, _| {
            bench.iter(|| black_box(kernel.dist(black_box(&prep), black_box(&b), b_norm)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_distances);
criterion_main!(benches);
