//! Cardinality-estimator inference cost: the LAF gate's overhead per point
//! must be far cheaper than the range query it potentially replaces. This is
//! the ablation backing the paper's claim that "prediction time is constant
//! with the data scale".

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use laf_cardest::{
    CardinalityEstimator, ExactEstimator, HistogramEstimator, MlpEstimator, NetConfig, RmiConfig,
    RmiEstimator, SamplingEstimator, TrainingSetBuilder,
};
use laf_synth::EmbeddingMixtureConfig;
use laf_vector::{Dataset, Metric};
use std::hint::black_box;

fn dataset() -> Dataset {
    EmbeddingMixtureConfig {
        n_points: 800,
        dim: 64,
        clusters: 10,
        spread: 0.08,
        noise_fraction: 0.3,
        seed: 11,
        ..Default::default()
    }
    .generate()
    .unwrap()
    .0
}

fn bench_estimators(c: &mut Criterion) {
    let data = dataset();
    let training = TrainingSetBuilder {
        max_queries: Some(200),
        ..Default::default()
    }
    .build(&data, &data)
    .unwrap();

    let mlp = MlpEstimator::train(&training, &NetConfig::tiny());
    let rmi = RmiEstimator::train(&training, &RmiConfig::paper_stages(NetConfig::tiny()));
    let exact = ExactEstimator::new(&data, Metric::Cosine);
    let sampling = SamplingEstimator::new(&data, Metric::Cosine, data.len() / 10, 3);
    let histogram = HistogramEstimator::from_training(&training);

    let estimators: Vec<(&str, &dyn CardinalityEstimator)> = vec![
        ("mlp", &mlp),
        ("rmi", &rmi),
        ("exact_range_count", &exact),
        ("sampling", &sampling),
        ("histogram", &histogram),
    ];

    let mut group = c.benchmark_group("cardinality_estimate");
    group.sample_size(30);
    for (name, est) in &estimators {
        group.bench_with_input(BenchmarkId::from_parameter(name), name, |bench, _| {
            let mut q = 0usize;
            bench.iter(|| {
                q = (q + 37) % data.len();
                black_box(est.estimate(data.row(q), 0.5))
            })
        });
    }
    group.finish();

    // Training cost of the learned estimators (one sample each; training is
    // excluded from the paper's clustering times but reported here for
    // completeness).
    let mut group = c.benchmark_group("estimator_training");
    group.sample_size(10);
    group.bench_function("mlp_tiny", |bench| {
        bench.iter(|| black_box(MlpEstimator::train(&training, &NetConfig::tiny())))
    });
    group.finish();
}

criterion_group!(benches, bench_estimators);
criterion_main!(benches);
