//! End-to-end clustering cost of every method on a small fixed workload —
//! the Criterion counterpart of the paper's Figure 1 bars.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use laf_cardest::{MlpEstimator, NetConfig, TrainingSetBuilder};
use laf_clustering::{
    BlockDbscan, Clusterer, Dbscan, DbscanPlusPlus, KnnBlockDbscan, RhoApproxDbscan,
};
use laf_core::{LafConfig, LafDbscan, LafDbscanPlusPlus, LafDbscanPlusPlusConfig};
use laf_synth::EmbeddingMixtureConfig;
use laf_vector::Dataset;
use std::hint::black_box;

fn dataset() -> Dataset {
    EmbeddingMixtureConfig {
        n_points: 600,
        dim: 48,
        clusters: 10,
        spread: 0.07,
        noise_fraction: 0.3,
        seed: 23,
        ..Default::default()
    }
    .generate()
    .unwrap()
    .0
}

fn bench_clustering(c: &mut Criterion) {
    let data = dataset();
    let (eps, tau) = (0.35f32, 4usize);
    let training = TrainingSetBuilder {
        max_queries: Some(200),
        ..Default::default()
    }
    .build(&data, &data)
    .unwrap();
    let estimator = MlpEstimator::train(&training, &NetConfig::tiny());

    let mut group = c.benchmark_group("clustering_end_to_end");
    group.sample_size(10);

    group.bench_with_input(BenchmarkId::from_parameter("DBSCAN"), &(), |b, _| {
        b.iter(|| black_box(Dbscan::with_params(eps, tau).cluster(&data)).n_clusters())
    });
    group.bench_with_input(BenchmarkId::from_parameter("DBSCAN++"), &(), |b, _| {
        b.iter(|| black_box(DbscanPlusPlus::with_params(eps, tau, 0.4).cluster(&data)).n_clusters())
    });
    group.bench_with_input(BenchmarkId::from_parameter("KNN-BLOCK"), &(), |b, _| {
        b.iter(|| black_box(KnnBlockDbscan::with_params(eps, tau).cluster(&data)).n_clusters())
    });
    group.bench_with_input(BenchmarkId::from_parameter("BLOCK-DBSCAN"), &(), |b, _| {
        b.iter(|| black_box(BlockDbscan::with_params(eps, tau).cluster(&data)).n_clusters())
    });
    group.bench_with_input(BenchmarkId::from_parameter("rho-approx"), &(), |b, _| {
        b.iter(|| black_box(RhoApproxDbscan::with_params(eps, tau).cluster(&data)).n_clusters())
    });
    group.bench_with_input(BenchmarkId::from_parameter("LAF-DBSCAN"), &(), |b, _| {
        b.iter(|| {
            let laf = LafDbscan::new(LafConfig::new(eps, tau, 1.5), &estimator);
            black_box(laf.cluster(&data)).n_clusters()
        })
    });
    group.bench_with_input(BenchmarkId::from_parameter("LAF-DBSCAN++"), &(), |b, _| {
        b.iter(|| {
            let laf_pp =
                LafDbscanPlusPlus::new(LafDbscanPlusPlusConfig::new(eps, tau, 0.2), &estimator);
            black_box(laf_pp.cluster(&data)).n_clusters()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_clustering);
criterion_main!(benches);
