//! Self-healing maintenance plane: a supervised scrub/repair loop.
//!
//! A [`SnapshotCache`] detects corruption ([`SnapshotCache::scrub`]) and
//! contains it (quarantine, typed errors on pin) — but until something
//! *drives* the scrub and re-fetches a good file, a quarantined tenant
//! stays dark until an operator re-registers it. [`MaintenanceSupervisor`]
//! closes that loop: a background thread periodically scrubs the cache and,
//! for every quarantined tenant, walks a per-tenant health state machine
//!
//! ```text
//! Healthy ──scrub finds corruption──▶ Quarantined
//!                                         │ repair pass
//!                                         ▼
//!                                     Repairing
//!                    candidate verified + registered ╱ ╲ every replica exhausted
//!                                         ▼              ▼
//!                                      Healthy        Failed{reason}
//!                                                        │ retried next pass /
//!                                                        │ operator re-register
//!                                                        ▼
//!                                                     Healthy
//! ```
//!
//! Repairs re-fetch a known-good snapshot through a [`SnapshotSource`] (an
//! ordered replica set). Every candidate is **fully CRC-verified**
//! ([`laf_core::snapshot::Snapshot::verify_file`], the same check the scrub
//! itself runs) and then published through the cache's ordinary
//! [`SnapshotCache::register`] path — the same eager-validation,
//! quarantine-lifting re-registration an operator would perform. Concurrent
//! pins therefore never observe a half-repaired tenant: they fail typed
//! ([`CacheError::Quarantined`]) until the instant the verified file is
//! registered, and serve the repaired snapshot afterwards.
//!
//! Pacing is injectable for determinism: with
//! [`MaintenanceConfig::scrub_interval_us`] non-zero the supervisor's
//! thread self-schedules on a (deterministically jittered) timer; with `0`
//! it runs a pass only when [`MaintenanceSupervisor::tick`] is called —
//! which blocks until the pass completes, so chaos tests step maintenance
//! explicitly instead of sleeping. Every transition is counted on
//! [`crate::CacheStatsReport`] (scrub passes, quarantines, repairs
//! attempted / succeeded / failed, mean time-to-repair).

use crate::cache::{CacheError, SnapshotCache};
use laf_core::fault;
use laf_core::snapshot::Snapshot;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tuning knobs for a [`MaintenanceSupervisor`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MaintenanceConfig {
    /// Microseconds between automatic maintenance passes. `0` disables the
    /// timer entirely: passes run only when
    /// [`MaintenanceSupervisor::tick`] is called — the deterministic mode
    /// the chaos tests drive, so they step maintenance explicitly instead
    /// of sleeping.
    pub scrub_interval_us: u64,
    /// Upper bound on the per-pass jitter added to `scrub_interval_us`, in
    /// microseconds. The jitter is drawn deterministically from the pass
    /// index (no ambient RNG), and exists to de-synchronize the scrub
    /// cadence across a fleet of supervisors sharing storage.
    pub jitter_us: u64,
    /// How many quarantined tenants one pass repairs concurrently; the
    /// rest wait for the next pass's workers. Clamped to at least 1.
    pub max_concurrent_repairs: usize,
    /// Fetch retries per replica candidate after its first failure, before
    /// the repair moves on to the next candidate.
    pub repair_retries: u32,
    /// Backoff before retry `n` of a candidate fetch: `repair_backoff_us
    /// << (n - 1)` microseconds (doubling, capped at 10 doublings).
    pub repair_backoff_us: u64,
}

impl Default for MaintenanceConfig {
    fn default() -> Self {
        Self {
            scrub_interval_us: 5_000_000,
            jitter_us: 500_000,
            max_concurrent_repairs: 2,
            repair_retries: 2,
            repair_backoff_us: 200,
        }
    }
}

/// Where repairs fetch known-good snapshots from: an ordered list of
/// candidate files per tenant, best first.
///
/// The contract: `replicas` returns candidate **paths to complete snapshot
/// files** for the tenant, in the order the repair should try them. The
/// supervisor fully CRC-verifies each candidate before publishing it, so a
/// source may list candidates optimistically (a stale mirror, a file
/// mid-copy) — a bad candidate costs a verification pass, never a wrong
/// answer. Closures implement the trait directly; [`ReplicaSet`] is the
/// ready-made table-backed source.
pub trait SnapshotSource: Send + Sync {
    /// Ordered candidate snapshot files for repairing `tenant`. Empty means
    /// "no replica exists" and the repair fails with
    /// [`RepairError::NoReplicas`].
    fn replicas(&self, tenant: &str) -> Vec<PathBuf>;
}

impl<F> SnapshotSource for F
where
    F: Fn(&str) -> Vec<PathBuf> + Send + Sync,
{
    fn replicas(&self, tenant: &str) -> Vec<PathBuf> {
        self(tenant)
    }
}

/// A table-backed [`SnapshotSource`]: per-tenant ordered replica paths,
/// updatable while a supervisor holds the source (wrap it in an [`Arc`]).
#[derive(Debug, Default)]
pub struct ReplicaSet {
    replicas: Mutex<HashMap<String, Vec<PathBuf>>>,
}

impl ReplicaSet {
    /// An empty replica set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Replace `tenant`'s candidate list (ordered, best first).
    pub fn set<I, P>(&self, tenant: &str, paths: I)
    where
        I: IntoIterator<Item = P>,
        P: Into<PathBuf>,
    {
        self.replicas.lock().expect("replica lock").insert(
            tenant.to_string(),
            paths.into_iter().map(Into::into).collect(),
        );
    }

    /// Append one candidate to `tenant`'s list.
    pub fn push<P: Into<PathBuf>>(&self, tenant: &str, path: P) {
        self.replicas
            .lock()
            .expect("replica lock")
            .entry(tenant.to_string())
            .or_default()
            .push(path.into());
    }
}

impl SnapshotSource for ReplicaSet {
    fn replicas(&self, tenant: &str) -> Vec<PathBuf> {
        self.replicas
            .lock()
            .expect("replica lock")
            .get(tenant)
            .cloned()
            .unwrap_or_default()
    }
}

/// Where a tenant sits in the supervisor's health state machine.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum TenantHealth {
    /// Serving normally (or never seen by the supervisor).
    Healthy,
    /// A scrub pass found corruption; pins fail typed until repaired.
    Quarantined,
    /// A repair is fetching and verifying replica candidates right now.
    /// Pins still fail with [`CacheError::Quarantined`] — the quarantine
    /// lifts only when a verified candidate is registered.
    Repairing,
    /// Every replica candidate was exhausted. Retried on later passes (a
    /// replica may come back); an operator re-register also recovers it.
    Failed {
        /// Display form of the [`RepairError`] that exhausted the repair.
        reason: String,
    },
}

/// A repair that could not restore the tenant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RepairError {
    /// The [`SnapshotSource`] listed no candidates for the tenant.
    NoReplicas {
        /// The tenant with no replicas.
        tenant: String,
    },
    /// Every candidate failed to fetch, verify, or register, even after
    /// the per-candidate retry budget.
    Exhausted {
        /// The tenant whose repair was exhausted.
        tenant: String,
        /// Candidates the source listed.
        candidates: usize,
        /// Total fetch attempts across candidates and retries.
        attempts: u32,
        /// Display form of the last candidate's failure.
        last_error: String,
    },
}

impl fmt::Display for RepairError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RepairError::NoReplicas { tenant } => {
                write!(f, "no replica candidates for tenant `{tenant}`")
            }
            RepairError::Exhausted {
                tenant,
                candidates,
                attempts,
                last_error,
            } => write!(
                f,
                "repair of tenant `{tenant}` exhausted {candidates} replica \
                 candidate(s) in {attempts} attempt(s); last error: {last_error}"
            ),
        }
    }
}

impl std::error::Error for RepairError {}

struct HealthRecord {
    state: TenantHealth,
    /// When the tenant left `Healthy` — the start of the time-to-repair
    /// window credited when a repair lands.
    down_since: Instant,
}

struct SupervisorState {
    stop: bool,
    /// Manual passes requested by [`MaintenanceSupervisor::tick`] but not
    /// yet run.
    pending_ticks: u64,
    /// Passes completed over the supervisor's lifetime.
    passes: u64,
    health: HashMap<String, HealthRecord>,
}

struct SupervisorShared {
    cache: Arc<SnapshotCache>,
    source: Arc<dyn SnapshotSource>,
    config: MaintenanceConfig,
    state: Mutex<SupervisorState>,
    /// Wakes the maintenance thread: a tick was requested or stop was set.
    wake: Condvar,
    /// Signals pass completion back to blocked `tick()` callers.
    pass_done: Condvar,
}

/// The background maintenance thread driving scrub and repair; see the
/// module docs for the state machine and the publish contract.
///
/// Owned like a server handle: created over an `Arc<SnapshotCache>` (via
/// [`MaintenanceSupervisor::start`] or
/// [`crate::TenantServer::start_maintenance`]), stopped and joined cleanly
/// on drop.
pub struct MaintenanceSupervisor {
    shared: Arc<SupervisorShared>,
    thread: Option<JoinHandle<()>>,
}

impl fmt::Debug for MaintenanceSupervisor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MaintenanceSupervisor")
            .field("config", &self.shared.config)
            .field("passes", &self.passes())
            .finish_non_exhaustive()
    }
}

impl MaintenanceSupervisor {
    /// Start the maintenance thread over `cache`, repairing from `source`.
    pub fn start(
        cache: Arc<SnapshotCache>,
        source: Arc<dyn SnapshotSource>,
        config: MaintenanceConfig,
    ) -> Self {
        let shared = Arc::new(SupervisorShared {
            cache,
            source,
            config,
            state: Mutex::new(SupervisorState {
                stop: false,
                pending_ticks: 0,
                passes: 0,
                health: HashMap::new(),
            }),
            wake: Condvar::new(),
            pass_done: Condvar::new(),
        });
        let thread = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("laf-serve-maintenance".into())
                .spawn(move || maintenance_loop(&shared))
                .expect("spawn maintenance thread")
        };
        Self {
            shared,
            thread: Some(thread),
        }
    }

    /// The supervisor's knobs.
    pub fn config(&self) -> &MaintenanceConfig {
        &self.shared.config
    }

    /// Run one maintenance pass now (scrub + repairs) and block until it
    /// completes. This is the deterministic pacing hook: tests step
    /// maintenance with `tick()` instead of sleeping, and the pass still
    /// runs on the real maintenance thread — same locks, same interleaving
    /// with concurrent pins as the timer-driven mode. No-op after the
    /// supervisor stopped.
    pub fn tick(&self) {
        let mut state = self.shared.state.lock().expect("supervisor lock");
        if state.stop {
            return;
        }
        let target = state.passes + state.pending_ticks + 1;
        state.pending_ticks += 1;
        self.shared.wake.notify_all();
        while state.passes < target && !state.stop {
            state = self.shared.pass_done.wait(state).expect("supervisor lock");
        }
    }

    /// Maintenance passes completed so far.
    pub fn passes(&self) -> u64 {
        self.shared.state.lock().expect("supervisor lock").passes
    }

    /// `tenant`'s position in the health state machine. Tenants the
    /// supervisor has never seen quarantined report [`TenantHealth::Healthy`].
    pub fn health(&self, tenant: &str) -> TenantHealth {
        self.shared
            .state
            .lock()
            .expect("supervisor lock")
            .health
            .get(tenant)
            .map(|r| r.state.clone())
            .unwrap_or(TenantHealth::Healthy)
    }

    /// Every tenant the supervisor has tracked, with its current health,
    /// sorted by tenant id.
    pub fn health_report(&self) -> Vec<(String, TenantHealth)> {
        let state = self.shared.state.lock().expect("supervisor lock");
        let mut out: Vec<(String, TenantHealth)> = state
            .health
            .iter()
            .map(|(t, r)| (t.clone(), r.state.clone()))
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Repair `tenant` synchronously on the caller's thread, walking the
    /// same `Quarantined → Repairing → Healthy | Failed` transitions (and
    /// counting the same stats) as a supervisor pass. Returns the replica
    /// path that was published, or the typed [`RepairError`].
    pub fn repair(&self, tenant: &str) -> Result<PathBuf, RepairError> {
        repair_tenant(&self.shared, tenant)
    }
}

impl Drop for MaintenanceSupervisor {
    fn drop(&mut self) {
        {
            let mut state = self.shared.state.lock().expect("supervisor lock");
            state.stop = true;
        }
        // Wake both the maintenance thread and any tick() waiters.
        self.shared.wake.notify_all();
        self.shared.pass_done.notify_all();
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

/// Deterministic per-pass jitter: splitmix64 of the pass index, folded
/// into `[0, jitter_us]`. No wall clock, no ambient RNG — restarting a
/// supervisor reproduces the same cadence.
fn jitter_us(config: &MaintenanceConfig, pass_index: u64) -> u64 {
    if config.jitter_us == 0 {
        return 0;
    }
    let mut z = pass_index
        .wrapping_add(0x9E37_79B9_7F4A_7C15)
        .wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z ^= z >> 27;
    z = z.wrapping_mul(0x94D0_49BB_1331_11EB);
    (z ^ (z >> 31)) % (config.jitter_us + 1)
}

fn maintenance_loop(shared: &SupervisorShared) {
    let interval = (shared.config.scrub_interval_us > 0)
        .then(|| Duration::from_micros(shared.config.scrub_interval_us));
    let mut pass_index: u64 = 0;
    loop {
        // Wait for a reason to run a pass: a manual tick, the timer, or
        // stop (which exits without running).
        {
            let mut state = shared.state.lock().expect("supervisor lock");
            loop {
                if state.stop {
                    return;
                }
                if state.pending_ticks > 0 {
                    state.pending_ticks -= 1;
                    break;
                }
                match interval {
                    Some(every) => {
                        let wait =
                            every + Duration::from_micros(jitter_us(&shared.config, pass_index));
                        let (guard, timeout) = shared
                            .wake
                            .wait_timeout(state, wait)
                            .expect("supervisor lock");
                        state = guard;
                        if timeout.timed_out() {
                            if state.stop {
                                return;
                            }
                            break;
                        }
                    }
                    None => state = shared.wake.wait(state).expect("supervisor lock"),
                }
            }
        }
        run_pass(shared);
        pass_index += 1;
        let mut state = shared.state.lock().expect("supervisor lock");
        state.passes += 1;
        drop(state);
        shared.pass_done.notify_all();
    }
}

/// One maintenance pass: scrub, reconcile the health map against the
/// cache's quarantine set, then repair every quarantined tenant (bounded
/// concurrency, deterministic tenant order).
fn run_pass(shared: &SupervisorShared) {
    let _scrub = shared.cache.scrub();
    let now = Instant::now();
    let quarantined = shared.cache.quarantined();
    let targets: Vec<String> = {
        let mut state = shared.state.lock().expect("supervisor lock");
        // Newly-quarantined tenants enter the state machine; the
        // quarantine instant starts their time-to-repair clock.
        for tenant in &quarantined {
            let record = state
                .health
                .entry(tenant.clone())
                .or_insert_with(|| HealthRecord {
                    state: TenantHealth::Healthy,
                    down_since: now,
                });
            if record.state == TenantHealth::Healthy {
                record.state = TenantHealth::Quarantined;
                record.down_since = now;
            }
        }
        // Tenants no longer quarantined recovered outside this loop — an
        // operator re-registered a fresh file — and return to Healthy.
        for (tenant, record) in state.health.iter_mut() {
            if record.state != TenantHealth::Healthy
                && record.state != TenantHealth::Repairing
                && !quarantined.contains(tenant)
            {
                record.state = TenantHealth::Healthy;
            }
        }
        // Repair every quarantined tenant — including Failed ones from
        // earlier passes: a replica that was unreachable may be back.
        let mut targets: Vec<String> = state
            .health
            .iter()
            .filter(|(tenant, record)| {
                record.state != TenantHealth::Repairing && quarantined.iter().any(|q| q == *tenant)
            })
            .map(|(tenant, _)| tenant.clone())
            .collect();
        targets.sort();
        targets
    };
    if targets.is_empty() {
        return;
    }
    let workers = shared
        .config
        .max_concurrent_repairs
        .max(1)
        .min(targets.len());
    if workers <= 1 {
        for tenant in &targets {
            let _ = repair_tenant(shared, tenant);
        }
        return;
    }
    // Bounded fan-out: `workers` threads pull tenants off a shared cursor,
    // so no pass ever runs more than `max_concurrent_repairs` fetches at
    // once no matter how many tenants rotted together.
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(tenant) = targets.get(i) else { break };
                let _ = repair_tenant(shared, tenant);
            });
        }
    });
}

/// Walk one tenant through `Repairing` and land on `Healthy` or
/// `Failed{reason}`, counting every transition on the cache stats.
fn repair_tenant(shared: &SupervisorShared, tenant: &str) -> Result<PathBuf, RepairError> {
    let down_since = {
        let mut state = shared.state.lock().expect("supervisor lock");
        if state.stop {
            return Err(RepairError::NoReplicas {
                tenant: tenant.to_string(),
            });
        }
        let record = state
            .health
            .entry(tenant.to_string())
            .or_insert_with(|| HealthRecord {
                state: TenantHealth::Quarantined,
                down_since: Instant::now(),
            });
        record.state = TenantHealth::Repairing;
        record.down_since
    };
    shared.cache.stats().record_repair_attempt();
    let outcome = fetch_and_register(shared, tenant);
    let mut state = shared.state.lock().expect("supervisor lock");
    if let Some(record) = state.health.get_mut(tenant) {
        match &outcome {
            Ok(_) => {
                record.state = TenantHealth::Healthy;
                shared
                    .cache
                    .stats()
                    .record_repair_success(down_since.elapsed().as_micros() as u64);
            }
            Err(err) => {
                record.state = TenantHealth::Failed {
                    reason: err.to_string(),
                };
                shared.cache.stats().record_repair_failure();
            }
        }
    }
    outcome
}

/// Try every replica candidate in order, each with the configured
/// exponential-backoff retry budget; the first candidate that fetches,
/// fully CRC-verifies, and registers wins.
fn fetch_and_register(shared: &SupervisorShared, tenant: &str) -> Result<PathBuf, RepairError> {
    let candidates = shared.source.replicas(tenant);
    if candidates.is_empty() {
        return Err(RepairError::NoReplicas {
            tenant: tenant.to_string(),
        });
    }
    let mut attempts = 0u32;
    let mut last_error = String::new();
    for path in &candidates {
        for retry in 0..=shared.config.repair_retries {
            if retry > 0 {
                std::thread::sleep(Duration::from_micros(
                    shared.config.repair_backoff_us << (retry - 1).min(10),
                ));
            }
            attempts += 1;
            match fetch_candidate(shared, tenant, path) {
                Ok(()) => return Ok(path.clone()),
                Err(e) => last_error = e,
            }
        }
    }
    Err(RepairError::Exhausted {
        tenant: tenant.to_string(),
        candidates: candidates.len(),
        attempts,
        last_error,
    })
}

/// One fetch attempt: the `cache.repair.fetch` failpoint models the
/// replica read failing (an unreachable replica host, an I/O error
/// mid-copy); a surviving candidate is CRC-verified section by section —
/// a replica that is itself rotten must never be published — and then
/// registered, which lifts the quarantine atomically under the cache lock.
fn fetch_candidate(shared: &SupervisorShared, tenant: &str, path: &PathBuf) -> Result<(), String> {
    if fault::fire("cache.repair.fetch") {
        return Err(fault::injected("cache.repair.fetch").to_string());
    }
    Snapshot::verify_file(path).map_err(|e| format!("{}: {e}", path.display()))?;
    shared
        .cache
        .register(tenant, path)
        .map_err(|e: CacheError| e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CacheConfig;
    use laf_cardest::{NetConfig, TrainingSetBuilder};
    use laf_core::{LafConfig, LafPipeline};
    use laf_synth::EmbeddingMixtureConfig;
    use std::path::Path;

    fn temp_dir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("laf_serve_maint_{name}_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn snapshot_file(dir: &Path, name: &str, seed: u64) -> PathBuf {
        let (data, _) = EmbeddingMixtureConfig {
            n_points: 80,
            dim: 6,
            clusters: 2,
            seed,
            ..Default::default()
        }
        .generate()
        .unwrap();
        let path = dir.join(format!("{name}.lafs"));
        LafPipeline::builder(LafConfig::new(0.3, 4, 1.0))
            .net(NetConfig::tiny())
            .training(TrainingSetBuilder {
                max_queries: Some(40),
                ..Default::default()
            })
            .train_and_save(data, &path)
            .unwrap();
        path
    }

    /// XOR one mid-file byte in place (call twice to restore).
    fn flip_byte(path: &Path) {
        let mut bytes = std::fs::read(path).unwrap();
        let at = bytes.len() / 2;
        bytes[at] ^= 0x01;
        std::fs::write(path, bytes).unwrap();
    }

    fn manual_config() -> MaintenanceConfig {
        MaintenanceConfig {
            scrub_interval_us: 0,
            jitter_us: 0,
            max_concurrent_repairs: 2,
            repair_retries: 1,
            repair_backoff_us: 10,
        }
    }

    #[test]
    fn supervisor_heals_a_quarantined_tenant_from_a_replica() {
        let dir = temp_dir("heal");
        let primary = snapshot_file(&dir, "primary", 1);
        let replica = dir.join("replica.lafs");
        std::fs::copy(&primary, &replica).unwrap();

        let cache = SnapshotCache::new(CacheConfig::default());
        cache.register("a", &primary).unwrap();
        drop(cache.pin("a").unwrap()); // resident, so the scrub sees it
        let source = Arc::new(ReplicaSet::new());
        source.set("a", [primary.clone(), replica.clone()]);
        let supervisor = MaintenanceSupervisor::start(Arc::clone(&cache), source, manual_config());

        // A clean pass changes nothing.
        supervisor.tick();
        assert_eq!(supervisor.health("a"), TenantHealth::Healthy);
        assert_eq!(supervisor.passes(), 1);

        // Rot the registered file; the next pass must quarantine AND heal
        // (the primary candidate fails verification, the replica wins).
        flip_byte(&primary);
        supervisor.tick();
        assert_eq!(supervisor.health("a"), TenantHealth::Healthy);
        assert!(cache.quarantined().is_empty());
        assert_eq!(cache.registered_path("a"), Some(replica.clone()));
        let pin = cache.pin("a").unwrap();
        assert_eq!(pin.tenant(), "a");
        drop(pin);

        let report = cache.report();
        assert_eq!(report.scrub_passes, 2);
        assert_eq!(report.quarantines, 1);
        assert_eq!(report.repairs_attempted, 1);
        assert_eq!(report.repairs_succeeded, 1);
        assert_eq!(report.repairs_failed, 0);
        drop(supervisor);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn replica_exhaustion_fails_typed_and_manual_reregister_recovers() {
        let dir = temp_dir("exhaust");
        let primary = snapshot_file(&dir, "primary", 2);
        let rotten = dir.join("rotten.lafs");
        std::fs::copy(&primary, &rotten).unwrap();
        flip_byte(&rotten); // the only replica is itself corrupt

        let cache = SnapshotCache::new(CacheConfig::default());
        cache.register("a", &primary).unwrap();
        drop(cache.pin("a").unwrap());
        let source = Arc::new(ReplicaSet::new());
        source.set("a", [rotten.clone()]);
        let supervisor = MaintenanceSupervisor::start(Arc::clone(&cache), source, manual_config());

        flip_byte(&primary);
        supervisor.tick();
        match supervisor.health("a") {
            TenantHealth::Failed { reason } => {
                assert!(reason.contains("exhausted"), "{reason}");
            }
            other => panic!("expected Failed, got {other:?}"),
        }
        // Still quarantined: pins stay typed, never a torn read.
        assert!(matches!(
            cache.pin("a").unwrap_err(),
            CacheError::Quarantined { .. }
        ));
        // Failed tenants are retried on later passes (and keep failing
        // while no good replica exists).
        supervisor.tick();
        assert!(matches!(
            supervisor.health("a"),
            TenantHealth::Failed { .. }
        ));
        let report = cache.report();
        assert_eq!(report.repairs_attempted, 2);
        assert_eq!(report.repairs_failed, 2);
        assert_eq!(report.repairs_succeeded, 0);

        // Operator recovery: repair the file, re-register, next pass
        // reconciles the health map back to Healthy.
        flip_byte(&primary);
        cache.register("a", &primary).unwrap();
        assert!(cache.pin("a").is_ok());
        supervisor.tick();
        assert_eq!(supervisor.health("a"), TenantHealth::Healthy);
        drop(supervisor);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn direct_repair_returns_the_typed_error() {
        let dir = temp_dir("typed");
        let primary = snapshot_file(&dir, "primary", 3);
        let cache = SnapshotCache::new(CacheConfig::default());
        cache.register("a", &primary).unwrap();
        let supervisor = MaintenanceSupervisor::start(
            Arc::clone(&cache),
            Arc::new(ReplicaSet::new()),
            manual_config(),
        );
        let err = supervisor.repair("a").unwrap_err();
        assert_eq!(
            err,
            RepairError::NoReplicas {
                tenant: "a".to_string()
            }
        );
        assert!(err.to_string().contains("no replica"), "{err}");
        assert!(matches!(
            supervisor.health("a"),
            TenantHealth::Failed { .. }
        ));
        drop(supervisor);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn a_pinned_snapshot_survives_scrub_and_heals_after_unpin() {
        let dir = temp_dir("pinrace");
        let primary = snapshot_file(&dir, "primary", 4);
        let replica = dir.join("replica.lafs");
        std::fs::copy(&primary, &replica).unwrap();

        let cache = SnapshotCache::new(CacheConfig::default());
        cache.register("a", &primary).unwrap();
        let pin = cache.pin("a").unwrap();
        let before = pin.pipeline();
        let source = Arc::new(ReplicaSet::new());
        source.set("a", [replica.clone()]);
        let supervisor = MaintenanceSupervisor::start(Arc::clone(&cache), source, manual_config());

        // Corrupt the pinned tenant's file: the pass must NOT quarantine
        // or evict it (the mmap is mid-query), only report it.
        flip_byte(&primary);
        supervisor.tick();
        assert_eq!(supervisor.health("a"), TenantHealth::Healthy);
        assert!(cache.resident("a"), "a pinned entry is never evicted");
        assert!(Arc::ptr_eq(&before, &pin.pipeline()));
        assert_eq!(cache.report().scrub_skipped_pinned, 1);
        assert_eq!(cache.report().quarantines, 0);

        // Once the pin drops, the next pass quarantines and heals.
        drop(pin);
        supervisor.tick();
        assert_eq!(supervisor.health("a"), TenantHealth::Healthy);
        assert_eq!(cache.registered_path("a"), Some(replica.clone()));
        let after = cache.pin("a").unwrap().pipeline();
        assert!(
            !Arc::ptr_eq(&before, &after),
            "the healed tenant serves the repaired replica"
        );
        drop(supervisor);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// A [`SnapshotSource`] that parks the repair until released, so the
    /// test can observe the `Repairing` state from outside.
    struct GatedSource {
        inner: ReplicaSet,
        entered: Mutex<bool>,
        entered_cv: Condvar,
        release: Mutex<bool>,
        release_cv: Condvar,
    }

    impl GatedSource {
        fn new() -> Self {
            Self {
                inner: ReplicaSet::new(),
                entered: Mutex::new(false),
                entered_cv: Condvar::new(),
                release: Mutex::new(false),
                release_cv: Condvar::new(),
            }
        }

        fn wait_entered(&self) {
            let mut entered = self.entered.lock().unwrap();
            while !*entered {
                entered = self.entered_cv.wait(entered).unwrap();
            }
        }

        fn release(&self) {
            *self.release.lock().unwrap() = true;
            self.release_cv.notify_all();
        }
    }

    impl SnapshotSource for GatedSource {
        fn replicas(&self, tenant: &str) -> Vec<PathBuf> {
            *self.entered.lock().unwrap() = true;
            self.entered_cv.notify_all();
            let mut release = self.release.lock().unwrap();
            while !*release {
                release = self.release_cv.wait(release).unwrap();
            }
            self.inner.replicas(tenant)
        }
    }

    #[test]
    fn pins_during_repairing_fail_typed_until_the_repair_publishes() {
        let dir = temp_dir("midrepair");
        let primary = snapshot_file(&dir, "primary", 5);
        let replica = dir.join("replica.lafs");
        std::fs::copy(&primary, &replica).unwrap();

        let cache = SnapshotCache::new(CacheConfig::default());
        cache.register("a", &primary).unwrap();
        drop(cache.pin("a").unwrap());
        let source = Arc::new(GatedSource::new());
        source.inner.set("a", [replica.clone()]);
        let supervisor = MaintenanceSupervisor::start(
            Arc::clone(&cache),
            Arc::clone(&source) as Arc<dyn SnapshotSource>,
            manual_config(),
        );

        flip_byte(&primary);
        std::thread::scope(|scope| {
            let ticker = scope.spawn(|| supervisor.tick());
            source.wait_entered();
            // Mid-repair: the health machine says Repairing and pins are
            // still the typed quarantine error — never a torn read of a
            // half-published snapshot.
            assert_eq!(supervisor.health("a"), TenantHealth::Repairing);
            assert!(matches!(
                cache.pin("a").unwrap_err(),
                CacheError::Quarantined { .. }
            ));
            source.release();
            ticker.join().unwrap();
        });
        assert_eq!(supervisor.health("a"), TenantHealth::Healthy);
        assert!(cache.pin("a").is_ok());
        drop(supervisor);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn timer_mode_runs_passes_without_manual_ticks_and_drops_cleanly() {
        let cache = SnapshotCache::new(CacheConfig::default());
        let supervisor = MaintenanceSupervisor::start(
            Arc::clone(&cache),
            Arc::new(ReplicaSet::new()),
            MaintenanceConfig {
                scrub_interval_us: 1_000,
                jitter_us: 500,
                ..MaintenanceConfig::default()
            },
        );
        let deadline = Instant::now() + Duration::from_secs(20);
        while supervisor.passes() < 2 {
            assert!(Instant::now() < deadline, "timer passes never ran");
            std::thread::sleep(Duration::from_millis(1));
        }
        // Manual ticks compose with the timer.
        let before = supervisor.passes();
        supervisor.tick();
        assert!(supervisor.passes() > before);
        drop(supervisor); // must join, not hang
    }

    #[test]
    fn closure_sources_and_config_serde_work() {
        let source: Arc<dyn SnapshotSource> =
            Arc::new(|tenant: &str| vec![PathBuf::from(format!("/replicas/{tenant}.lafs"))]);
        assert_eq!(
            source.replicas("x"),
            vec![PathBuf::from("/replicas/x.lafs")]
        );
        let config = MaintenanceConfig::default();
        let json = serde_json::to_string(&config).unwrap();
        let back: MaintenanceConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(config, back);
        let health = TenantHealth::Failed { reason: "x".into() };
        let json = serde_json::to_string(&health).unwrap();
        let back: TenantHealth = serde_json::from_str(&json).unwrap();
        assert_eq!(health, back);
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let config = MaintenanceConfig {
            jitter_us: 100,
            ..MaintenanceConfig::default()
        };
        for pass in 0..50 {
            let a = jitter_us(&config, pass);
            assert_eq!(a, jitter_us(&config, pass));
            assert!(a <= 100);
        }
        let none = MaintenanceConfig {
            jitter_us: 0,
            ..MaintenanceConfig::default()
        };
        assert_eq!(jitter_us(&none, 7), 0);
    }
}
