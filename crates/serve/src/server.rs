//! The coalescing dispatcher: [`LafServer`].

use crate::config::{ServeConfig, TILE};
use crate::request::{QueryRequest, QueryResponse, WriteError};
use crate::stats::{ServeStats, ServeStatsReport};
use laf_core::fault;
use laf_core::{LafPipeline, MutablePipeline, SharedEngine, SnapshotError};
use laf_index::Neighbor;
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Retry budget for the dispatcher's transient-I/O edges: a failed WAL
/// group-commit sync is retried up to this many times before the batch's
/// writes are rejected, and a failed background compaction up to
/// [`COMPACT_RETRIES`] times before the failure latches the backoff floor.
/// Backoff doubles from [`RETRY_BACKOFF_BASE_US`] per retry.
const WAL_SYNC_RETRIES: u32 = 3;
/// Immediate re-attempts of a failed background compaction (see
/// [`WAL_SYNC_RETRIES`]); the existing backlog-growth backoff still governs
/// when a batch re-attempts after these are exhausted.
const COMPACT_RETRIES: u32 = 2;

/// Retry budget for a transient dispatcher flush stall (the
/// `serve.coalesce.flush` failpoint). The batch is dispatched after the
/// budget regardless — a stall delays a flush, it never drops one.
const FLUSH_RETRIES: u32 = 3;
/// First-retry backoff; retry `n` sleeps `base << (n - 1)` microseconds.
const RETRY_BACKOFF_BASE_US: u64 = 100;

/// Sleep before retry number `attempt` (1-based) of a transient failure.
fn retry_backoff(attempt: u32) {
    std::thread::sleep(Duration::from_micros(
        RETRY_BACKOFF_BASE_US << (attempt - 1).min(10),
    ));
}

/// Why a submission did not produce a result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeError {
    /// Admission control rejected the request: the queue already held
    /// `depth` requests against a bound of `limit`. The caller owns the
    /// retry policy (back off, shed load, or fail the end-user request);
    /// the server never buffers beyond the bound.
    Overloaded {
        /// Queue depth observed at submission time.
        depth: usize,
        /// The configured `max_queue_depth`.
        limit: usize,
    },
    /// The server is shutting down and no longer admits requests.
    ShuttingDown,
    /// A write was submitted to a server without a mutable pipeline (one
    /// started with [`LafServer::start`] rather than
    /// [`LafServer::start_mutable`]).
    ReadOnly,
    /// The caller's deadline expired before the dispatcher served the
    /// request ([`ServeConfig::request_deadline_us`] on the blocking paths,
    /// or an explicit [`Ticket::wait_timeout`]). The request itself is
    /// **not** cancelled: the dispatcher still answers and counts it, the
    /// result is simply abandoned — exactly like dropping a ticket.
    Timeout {
        /// How long the caller waited before giving up, in microseconds.
        waited_us: u64,
    },
    /// A [`LafServer::reload`] epoch flip failed; the server kept serving
    /// the previous epoch. The caller still owns the replacement workflow
    /// (rebuild the pipeline and reload again).
    ReloadFailed,
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Overloaded { depth, limit } => {
                write!(f, "server overloaded: queue depth {depth} at limit {limit}")
            }
            ServeError::ShuttingDown => write!(f, "server is shutting down"),
            ServeError::ReadOnly => write!(f, "server is read-only: writes need start_mutable"),
            ServeError::Timeout { waited_us } => {
                write!(f, "request deadline expired after {waited_us}us")
            }
            ServeError::ReloadFailed => {
                write!(
                    f,
                    "epoch flip failed: the previous snapshot is still serving"
                )
            }
        }
    }
}

impl std::error::Error for ServeError {}

/// A served result, tagged with the snapshot epoch that produced it.
///
/// Hot-reload makes the epoch part of the response contract: a caller that
/// races a [`LafServer::reload`] can tell which snapshot answered, and the
/// stress tests use it to verify responses are never torn across epochs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Served<T> {
    /// The epoch of the snapshot that served this result (starts at 1,
    /// incremented by every [`LafServer::reload`]).
    pub epoch: u64,
    /// The result itself.
    pub value: T,
}

/// One queued request kind, query vector owned so it outlives the caller's
/// borrow while the batch waits in the window.
enum Work {
    Range { query: Vec<f32>, eps: f32 },
    RangeCount { query: Vec<f32>, eps: f32 },
    Knn { query: Vec<f32>, k: usize },
    Estimate { query: Vec<f32>, eps: f32 },
    Insert { row: Vec<f32> },
    Delete { dense: u64 },
}

impl Work {
    fn query(&self) -> &[f32] {
        match self {
            Work::Range { query, .. }
            | Work::RangeCount { query, .. }
            | Work::Knn { query, .. }
            | Work::Estimate { query, .. } => query,
            Work::Insert { row } => row,
            Work::Delete { .. } => &[],
        }
    }

    /// Batch-grouping key: requests dispatch through one kernel call iff
    /// they share a kind and its parameter (ε compared by bit pattern — the
    /// kernels take one ε per batch). Writes never group (they only occur
    /// on the mutable path, which processes the batch in queue order).
    fn group_key(&self) -> (u8, u64) {
        match self {
            Work::Range { eps, .. } => (0, eps.to_bits() as u64),
            Work::RangeCount { eps, .. } => (1, eps.to_bits() as u64),
            Work::Knn { k, .. } => (2, *k as u64),
            Work::Estimate { eps, .. } => (3, eps.to_bits() as u64),
            Work::Insert { .. } => (4, 0),
            Work::Delete { dense } => (5, *dense),
        }
    }
}

/// An answered request's payload.
enum Reply {
    Range(Vec<u32>),
    Count(usize),
    Knn(Vec<Neighbor>),
    Estimate(f32),
    Written(u64),
    Rejected(WriteError),
}

/// The rendezvous cell a blocked caller waits on.
#[derive(Default)]
struct Slot {
    filled: Mutex<Option<Served<Reply>>>,
    ready: Condvar,
}

impl Slot {
    fn deliver(&self, epoch: u64, value: Reply) {
        *self.filled.lock().unwrap() = Some(Served { epoch, value });
        self.ready.notify_one();
    }

    fn wait(&self) -> Served<Reply> {
        let mut guard = self.filled.lock().unwrap();
        loop {
            match guard.take() {
                Some(served) => return served,
                None => guard = self.ready.wait(guard).unwrap(),
            }
        }
    }

    /// Like [`Slot::wait`], but give up after `timeout`; `Err` carries the
    /// microseconds actually waited.
    fn wait_deadline(&self, timeout: Duration) -> Result<Served<Reply>, u64> {
        let start = Instant::now();
        let mut guard = self.filled.lock().unwrap();
        loop {
            if let Some(served) = guard.take() {
                return Ok(served);
            }
            let elapsed = start.elapsed();
            let Some(remaining) = timeout.checked_sub(elapsed) else {
                return Err(elapsed.as_micros() as u64);
            };
            (guard, _) = self.ready.wait_timeout(guard, remaining).unwrap();
        }
    }
}

struct Pending {
    work: Work,
    slot: Arc<Slot>,
    submitted: Instant,
}

/// A handle to a submitted-but-not-yet-answered request.
///
/// Returned by the `*_async` submission methods. Holding several tickets
/// pipelines requests: a client keeps N submissions in flight and the
/// dispatcher sees a deeper queue to coalesce from, which is how a
/// single-connection caller still feeds full dot4 tiles. Waiting consumes
/// the ticket; dropping it abandons the result (the request is still
/// answered and counted, nobody observes the value).
#[must_use = "a ticket does nothing until waited on; drop abandons the result"]
pub struct Ticket<T> {
    slot: Arc<Slot>,
    shared: Arc<Shared>,
    extract: fn(Reply) -> T,
}

impl<T> Ticket<T> {
    /// Block until the dispatcher delivers this request's result.
    pub fn wait(self) -> Served<T> {
        let served = self.slot.wait();
        Served {
            epoch: served.epoch,
            value: (self.extract)(served.value),
        }
    }

    /// Block at most `timeout` for the result. On expiry the ticket is
    /// consumed and the result abandoned — the dispatcher still answers and
    /// counts the request, exactly as if the ticket were dropped — and the
    /// timeout is counted on [`crate::ServeStats`].
    pub fn wait_timeout(self, timeout: Duration) -> Result<Served<T>, ServeError> {
        match self.slot.wait_deadline(timeout) {
            Ok(served) => Ok(Served {
                epoch: served.epoch,
                value: (self.extract)(served.value),
            }),
            Err(waited_us) => {
                self.shared.stats.record_timeout();
                Err(ServeError::Timeout { waited_us })
            }
        }
    }

    /// Whether the result is already delivered (a `wait` would not block).
    pub fn is_ready(&self) -> bool {
        self.slot.filled.lock().unwrap().is_some()
    }
}

impl<T> fmt::Debug for Ticket<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Ticket")
            .field("ready", &self.is_ready())
            .finish()
    }
}

/// One snapshot generation: the pipeline plus its built engine. In-flight
/// batches hold an `Arc<EpochState>` clone, so a reload never invalidates a
/// batch mid-dispatch — the old epoch drains, then drops.
struct EpochState {
    epoch: u64,
    pipeline: Arc<LafPipeline>,
    engine: SharedEngine,
}

struct QueueState {
    queue: VecDeque<Pending>,
    shutdown: bool,
}

struct Shared {
    config: ServeConfig,
    state: Mutex<QueueState>,
    /// Signals the dispatcher: work arrived or shutdown was requested.
    wake: Condvar,
    current: Mutex<Arc<EpochState>>,
    /// The mutable pipeline, when this server was started with
    /// [`LafServer::start_mutable`]. Only the dispatcher locks it on the
    /// hot path (batches are processed in queue order under one guard), so
    /// the mutex is uncontended in steady state.
    mutable: Option<Mutex<MutablePipeline>>,
    stats: ServeStats,
}

/// A concurrent serving front over a [`LafPipeline`].
///
/// Callers from any number of threads submit range / range-count / knn /
/// estimate requests and block until their result is ready. A dedicated
/// dispatcher thread coalesces queued requests into merged batches and runs
/// them through the engine's batch kernels, so concurrent single-query
/// callers get the query-major mini-GEMM path that a synchronous
/// one-caller-at-a-time handle can never reach. See the crate docs for the
/// flush policy, admission control and the hot-reload epoch model.
pub struct LafServer {
    shared: Arc<Shared>,
    dispatcher: Option<JoinHandle<()>>,
}

impl fmt::Debug for LafServer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LafServer")
            .field("config", &self.shared.config)
            .field("epoch", &self.current_epoch())
            .field("queue_depth", &self.queue_depth())
            .finish_non_exhaustive()
    }
}

impl LafServer {
    /// Start serving `pipeline` under `config`.
    ///
    /// Builds (or restores) the pipeline's engine eagerly — the first
    /// request should not pay the construction cost — and spawns the
    /// dispatcher thread. The server stops (draining every queued request)
    /// on [`LafServer::shutdown`] or drop.
    pub fn start(pipeline: LafPipeline, config: ServeConfig) -> Self {
        let engine = pipeline.engine();
        Self::start_inner(
            EpochState {
                epoch: 1,
                pipeline: Arc::new(pipeline),
                engine,
            },
            config,
            None,
        )
    }

    /// Start a **mutable** serving front over a [`MutablePipeline`].
    ///
    /// Reads answer through the pipeline's merged base+delta path
    /// (bit-identical to a from-scratch pipeline over the live rows) and
    /// writes route through its write-ahead log, all processed **in queue
    /// order** by the dispatcher — a caller that pipelines an insert
    /// followed by a read observes its own write. Writes in one batch are
    /// group-committed: a single WAL sync covers the batch, and results are
    /// delivered only after it succeeds.
    ///
    /// When [`ServeConfig::compact_threshold`] is non-zero, the dispatcher
    /// folds the delta into a fresh base snapshot after any batch that
    /// leaves at least that many pending operations, and publishes the
    /// compacted base as a new epoch — the same epoch-tagged flip as
    /// [`LafServer::reload`], so readers can tell exactly which base
    /// generation served them.
    pub fn start_mutable(mutable: MutablePipeline, config: ServeConfig) -> Self {
        let engine = mutable.base().engine();
        let epoch = EpochState {
            epoch: 1,
            pipeline: Arc::clone(mutable.base()),
            engine,
        };
        Self::start_inner(epoch, config, Some(mutable))
    }

    fn start_inner(
        epoch: EpochState,
        config: ServeConfig,
        mutable: Option<MutablePipeline>,
    ) -> Self {
        let shared = Arc::new(Shared {
            config,
            state: Mutex::new(QueueState {
                queue: VecDeque::new(),
                shutdown: false,
            }),
            wake: Condvar::new(),
            current: Mutex::new(Arc::new(epoch)),
            mutable: mutable.map(Mutex::new),
            stats: ServeStats::default(),
        });
        let dispatcher = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("laf-serve-dispatch".into())
                .spawn(move || dispatch_loop(&shared))
                .expect("spawn dispatcher thread")
        };
        Self {
            shared,
            dispatcher: Some(dispatcher),
        }
    }

    /// Whether this server was started with [`LafServer::start_mutable`]
    /// (writes are admitted and reads see the mutable merge path).
    pub fn is_mutable(&self) -> bool {
        self.shared.mutable.is_some()
    }

    /// The single submission path every entry point funnels through:
    /// admission control, the queue, and the wake policy live in
    /// [`LafServer::enqueue`]; `extract` narrows the delivered [`Reply`] to
    /// the caller's type.
    fn submit_work<T>(&self, work: Work, extract: fn(Reply) -> T) -> Result<Ticket<T>, ServeError> {
        Ok(Ticket {
            slot: self.enqueue(work)?,
            shared: Arc::clone(&self.shared),
            extract,
        })
    }

    /// Wait policy of the blocking entry points: apply the configured
    /// per-request deadline when one is set, wait indefinitely otherwise.
    fn await_ticket<T>(&self, ticket: Ticket<T>) -> Result<Served<T>, ServeError> {
        match self.shared.config.deadline() {
            Some(deadline) => ticket.wait_timeout(deadline),
            None => Ok(ticket.wait()),
        }
    }

    /// Submit any request kind without blocking on its result.
    ///
    /// This is the unified front door: one entry point for every read and
    /// write kind, so routers hold a single `QueryRequest` value instead of
    /// dispatching across per-kind methods. The typed methods
    /// ([`LafServer::range_async`], …) remain as thin wrappers. Write kinds
    /// require a mutable server ([`LafServer::start_mutable`]) and fail at
    /// submission with [`ServeError::ReadOnly`] otherwise.
    pub fn submit_async(&self, request: QueryRequest) -> Result<Ticket<QueryResponse>, ServeError> {
        let work = match request {
            QueryRequest::Range { query, eps } => Work::Range { query, eps },
            QueryRequest::RangeCount { query, eps } => Work::RangeCount { query, eps },
            QueryRequest::Knn { query, k } => Work::Knn { query, k },
            QueryRequest::Estimate { query, eps } => Work::Estimate { query, eps },
            QueryRequest::Insert { row } => {
                self.require_mutable()?;
                Work::Insert { row }
            }
            QueryRequest::Delete { dense } => {
                self.require_mutable()?;
                Work::Delete { dense }
            }
        };
        self.submit_work(work, |reply| match reply {
            Reply::Range(hits) => QueryResponse::Range(hits),
            Reply::Count(n) => QueryResponse::Count(n),
            Reply::Knn(neighbors) => QueryResponse::Knn(neighbors),
            Reply::Estimate(est) => QueryResponse::Estimate(est),
            Reply::Written(lsn) => QueryResponse::Written { lsn },
            Reply::Rejected(err) => QueryResponse::Rejected(err),
        })
    }

    /// Submit any request kind and block until it is served; see
    /// [`LafServer::submit_async`].
    pub fn submit(&self, request: QueryRequest) -> Result<Served<QueryResponse>, ServeError> {
        let ticket = self.submit_async(request)?;
        self.await_ticket(ticket)
    }

    fn require_mutable(&self) -> Result<(), ServeError> {
        if self.shared.mutable.is_some() {
            Ok(())
        } else {
            Err(ServeError::ReadOnly)
        }
    }

    /// Submit an ε-range query without blocking on its result.
    ///
    /// The returned [`Ticket`] resolves (via [`Ticket::wait`]) to the same
    /// bits as `pipeline.engine().range(query, eps)` on the snapshot of the
    /// resolved epoch. Submitting several tickets before waiting pipelines
    /// requests from one thread.
    pub fn range_async(&self, query: &[f32], eps: f32) -> Result<Ticket<Vec<u32>>, ServeError> {
        self.submit_work(
            Work::Range {
                query: query.to_vec(),
                eps,
            },
            |reply| match reply {
                Reply::Range(hits) => hits,
                _ => unreachable!("dispatcher answered a range request with another kind"),
            },
        )
    }

    /// Submit a neighbor-count query without blocking; see
    /// [`LafServer::range_async`].
    pub fn range_count_async(&self, query: &[f32], eps: f32) -> Result<Ticket<usize>, ServeError> {
        self.submit_work(
            Work::RangeCount {
                query: query.to_vec(),
                eps,
            },
            |reply| match reply {
                Reply::Count(n) => n,
                _ => unreachable!("dispatcher answered a count request with another kind"),
            },
        )
    }

    /// Submit a k-nearest-neighbor query without blocking; see
    /// [`LafServer::range_async`].
    pub fn knn_async(&self, query: &[f32], k: usize) -> Result<Ticket<Vec<Neighbor>>, ServeError> {
        self.submit_work(
            Work::Knn {
                query: query.to_vec(),
                k,
            },
            |reply| match reply {
                Reply::Knn(neighbors) => neighbors,
                _ => unreachable!("dispatcher answered a knn request with another kind"),
            },
        )
    }

    /// Submit a learned cardinality estimate without blocking; see
    /// [`LafServer::range_async`].
    pub fn estimate_async(&self, query: &[f32], eps: f32) -> Result<Ticket<f32>, ServeError> {
        self.submit_work(
            Work::Estimate {
                query: query.to_vec(),
                eps,
            },
            |reply| match reply {
                Reply::Estimate(est) => est,
                _ => unreachable!("dispatcher answered an estimate request with another kind"),
            },
        )
    }

    /// Submit a row insert without blocking (mutable servers only).
    ///
    /// The ticket resolves to the write's WAL sequence number, delivered
    /// after the batch's group commit reaches stable storage, or to a
    /// [`WriteError`] when the pipeline rejected the write.
    pub fn insert_async(&self, row: &[f32]) -> Result<Ticket<Result<u64, WriteError>>, ServeError> {
        self.require_mutable()?;
        self.submit_work(Work::Insert { row: row.to_vec() }, |reply| match reply {
            Reply::Written(lsn) => Ok(lsn),
            Reply::Rejected(err) => Err(err),
            _ => unreachable!("dispatcher answered an insert request with another kind"),
        })
    }

    /// Submit a delete of dense live id `dense` without blocking (mutable
    /// servers only); see [`LafServer::insert_async`].
    pub fn delete_async(&self, dense: u64) -> Result<Ticket<Result<u64, WriteError>>, ServeError> {
        self.require_mutable()?;
        self.submit_work(Work::Delete { dense }, |reply| match reply {
            Reply::Written(lsn) => Ok(lsn),
            Reply::Rejected(err) => Err(err),
            _ => unreachable!("dispatcher answered a delete request with another kind"),
        })
    }

    /// ε-range query through the coalescing front. Blocks until served;
    /// bit-identical to `pipeline.engine().range(query, eps)` on the
    /// snapshot of the returned epoch.
    pub fn range(&self, query: &[f32], eps: f32) -> Result<Served<Vec<u32>>, ServeError> {
        let ticket = self.range_async(query, eps)?;
        self.await_ticket(ticket)
    }

    /// Neighbor count within `eps`, served like [`LafServer::range`].
    pub fn range_count(&self, query: &[f32], eps: f32) -> Result<Served<usize>, ServeError> {
        let ticket = self.range_count_async(query, eps)?;
        self.await_ticket(ticket)
    }

    /// k-nearest-neighbor query, served like [`LafServer::range`].
    pub fn knn(&self, query: &[f32], k: usize) -> Result<Served<Vec<Neighbor>>, ServeError> {
        let ticket = self.knn_async(query, k)?;
        self.await_ticket(ticket)
    }

    /// Learned cardinality estimate, served like [`LafServer::range`].
    pub fn estimate(&self, query: &[f32], eps: f32) -> Result<Served<f32>, ServeError> {
        let ticket = self.estimate_async(query, eps)?;
        self.await_ticket(ticket)
    }

    /// Insert a row through the write-ahead log, blocking until the write's
    /// group commit is durable (mutable servers only). Resolves to the
    /// write's WAL sequence number.
    pub fn insert(&self, row: &[f32]) -> Result<Served<Result<u64, WriteError>>, ServeError> {
        let ticket = self.insert_async(row)?;
        self.await_ticket(ticket)
    }

    /// Delete the row with dense live id `dense`, blocking like
    /// [`LafServer::insert`] (mutable servers only).
    pub fn delete(&self, dense: u64) -> Result<Served<Result<u64, WriteError>>, ServeError> {
        let ticket = self.delete_async(dense)?;
        self.await_ticket(ticket)
    }

    /// Atomically swap the served snapshot: an epoch-tagged
    /// `Arc<LafPipeline>` flip.
    ///
    /// The replacement's engine is built **before** the swap is visible, so
    /// no request ever pays the construction cost inline. Requests already
    /// drained into a batch finish on the epoch they were dispatched with
    /// (their batch holds the old `Arc`); requests dispatched after the swap
    /// see the new one. Returns the new epoch number.
    ///
    /// # Errors
    /// [`ServeError::ReloadFailed`] when the epoch flip itself fails (the
    /// `serve.reload.swap` failpoint under fault injection). The failure is
    /// atomic: the previous epoch keeps serving, the replacement is
    /// discarded, and [`ServeStatsReport::reload_failures`] counts it.
    ///
    /// Immutable servers only: a mutable server publishes new epochs
    /// itself, through compaction.
    pub fn reload(&self, pipeline: LafPipeline) -> Result<u64, ServeError> {
        debug_assert!(
            self.shared.mutable.is_none(),
            "reload() on a mutable server: compaction publishes its epochs"
        );
        let engine = pipeline.engine();
        let pipeline = Arc::new(pipeline);
        let mut current = self.shared.current.lock().unwrap();
        // Failpoint: the flip fails after the engine build, before any
        // request can observe the replacement — all-or-nothing.
        if fault::fire("serve.reload.swap") {
            self.shared.stats.record_reload_failure();
            return Err(ServeError::ReloadFailed);
        }
        let epoch = current.epoch + 1;
        *current = Arc::new(EpochState {
            epoch,
            pipeline,
            engine,
        });
        self.shared.stats.record_reload();
        Ok(epoch)
    }

    /// The epoch new requests are currently served under.
    pub fn current_epoch(&self) -> u64 {
        self.shared.current.lock().unwrap().epoch
    }

    /// Live aggregate counters.
    pub fn stats(&self) -> &ServeStats {
        &self.shared.stats
    }

    /// Convenience for [`ServeStats::report`].
    pub fn stats_report(&self) -> ServeStatsReport {
        self.shared.stats.report()
    }

    /// Requests currently queued (excluding any batch being dispatched).
    pub fn queue_depth(&self) -> usize {
        self.shared.state.lock().unwrap().queue.len()
    }

    /// The configuration the server was started with.
    pub fn config(&self) -> &ServeConfig {
        &self.shared.config
    }

    /// Stop admitting requests, drain everything already queued, join the
    /// dispatcher and return the final counters. Dropping the server does
    /// the same minus the report.
    pub fn shutdown(mut self) -> ServeStatsReport {
        self.shutdown_inner();
        self.shared.stats.report()
    }

    fn shutdown_inner(&mut self) {
        self.shared.state.lock().unwrap().shutdown = true;
        self.shared.wake.notify_all();
        if let Some(handle) = self.dispatcher.take() {
            let _ = handle.join();
        }
    }

    fn enqueue(&self, work: Work) -> Result<Arc<Slot>, ServeError> {
        let slot = Arc::new(Slot::default());
        let depth = {
            let mut state = self.shared.state.lock().unwrap();
            if state.shutdown {
                return Err(ServeError::ShuttingDown);
            }
            let depth = state.queue.len();
            if depth >= self.shared.config.max_queue_depth {
                self.shared.stats.record_reject();
                return Err(ServeError::Overloaded {
                    depth,
                    limit: self.shared.config.max_queue_depth,
                });
            }
            state.queue.push_back(Pending {
                work,
                slot: Arc::clone(&slot),
                submitted: Instant::now(),
            });
            let depth = state.queue.len();
            self.shared.stats.record_submit(depth);
            depth
        };
        // Wake the dispatcher only when this submission changes what it
        // would do: the first request arms the window deadline, and a whole
        // dot4 tile or a full batch makes a flush eligible right now.
        // Intermediate depths would be spurious wake-ups (the dispatcher
        // re-checks and goes back to sleep), and under load those wake-ups
        // are the dominant per-request dispatch cost. Depths skipped here
        // are never lost: the dispatcher re-reads the whole queue at every
        // wake and at the window deadline.
        let max_batch = self.shared.config.max_batch.max(1);
        if depth == 1 || depth >= max_batch || (max_batch >= TILE && depth % TILE == 0) {
            self.shared.wake.notify_one();
        }
        Ok(slot)
    }
}

impl Drop for LafServer {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// The dispatcher thread: wait for work, apply the flush policy, run the
/// merged batch through the batch kernels, scatter results.
fn dispatch_loop(shared: &Shared) {
    let window = shared.config.window();
    let max_batch = shared.config.max_batch.max(1);
    // Backoff latch for failed compactions: pending-op count the backlog
    // must reach before compaction is attempted again (0 = no failure
    // outstanding). Dispatcher-local — only this thread compacts.
    let mut compact_floor = 0usize;
    loop {
        let batch: Vec<Pending> = {
            let mut state = shared.state.lock().unwrap();
            loop {
                if state.queue.is_empty() {
                    if state.shutdown {
                        drop(state);
                        // Final durability point: queued writes were group-
                        // committed per batch, but make shutdown an explicit
                        // sync so a clean stop never depends on batch timing.
                        if let Some(mutable) = &shared.mutable {
                            let _ = mutable.lock().unwrap().sync();
                        }
                        return;
                    }
                    state = shared.wake.wait(state).unwrap();
                    continue;
                }
                let n = state.queue.len();
                let oldest = state.queue.front().expect("queue is non-empty").submitted;
                // Flush policy, in priority order: drain on shutdown; flush a
                // full batch; flush whole dot4 tiles immediately (waiting
                // longer cannot improve their per-row amortization); flush
                // whatever is queued once the oldest request has waited out
                // the window; otherwise sleep until that deadline.
                let take = if state.shutdown || n >= max_batch {
                    max_batch.min(n)
                } else if n >= TILE && max_batch >= TILE {
                    (n - n % TILE).min(max_batch)
                } else if oldest.elapsed() >= window {
                    n
                } else {
                    let remaining = window.saturating_sub(oldest.elapsed());
                    let (guard, _) = shared.wake.wait_timeout(state, remaining).unwrap();
                    state = guard;
                    continue;
                };
                break state.queue.drain(..take).collect();
            }
        };
        // Failpoint: a transient flush stall (the downstream kernel pool is
        // briefly saturated). Retried with the dispatcher's usual doubling
        // backoff; the batch is dispatched after the budget no matter what —
        // a stall delays answers, it never drops them.
        let mut flush_attempt = 0;
        while fault::fire("serve.coalesce.flush") && flush_attempt < FLUSH_RETRIES {
            flush_attempt += 1;
            shared.stats.record_flush_retry();
            retry_backoff(flush_attempt);
        }
        shared.stats.record_batch(batch.len());
        match &shared.mutable {
            Some(mutable) => answer_mutable(shared, mutable, &batch, &mut compact_floor),
            None => {
                // The whole batch is answered by ONE epoch: grab the current
                // handle once, outside the queue lock. A concurrent reload
                // after this point affects the next batch, never this one.
                let epoch = Arc::clone(&shared.current.lock().unwrap());
                answer(&epoch, &batch);
            }
        }
    }
}

/// Answer one batch on the mutable path: every request — read or write —
/// is processed **in queue order** against the merged base+delta state, so
/// a pipelined caller reads its own writes. Successful writes are
/// group-committed with one WAL sync before any of them is acknowledged; if
/// the sync fails, their acks degrade to [`WriteError::Storage`] (the
/// in-memory state may be ahead of the log, exactly as if the process had
/// crashed before the sync — replay recovers the synced prefix).
///
/// After delivery, folds the delta into a fresh base and publishes it as a
/// new epoch when [`ServeConfig::compact_threshold`] is reached. A failed
/// compaction is counted on [`ServeStats`] and raises `compact_floor` so
/// the (likely still-failing, full-rebuild-sized) attempt is not retried on
/// every subsequent batch — only once the write backlog has grown by
/// another threshold's worth of operations.
fn answer_mutable(
    shared: &Shared,
    mutable: &Mutex<MutablePipeline>,
    batch: &[Pending],
    compact_floor: &mut usize,
) {
    let mut pipeline = mutable.lock().unwrap();
    let epoch = shared.current.lock().unwrap().epoch;
    let mut replies: Vec<Reply> = Vec::with_capacity(batch.len());
    let mut wrote = false;
    for pending in batch {
        let reply = match &pending.work {
            Work::Range { query, eps } => Reply::Range(pipeline.range(query, *eps)),
            Work::RangeCount { query, eps } => Reply::Count(pipeline.range_count(query, *eps)),
            Work::Knn { query, k } => Reply::Knn(pipeline.knn(query, *k)),
            Work::Estimate { query, eps } => Reply::Estimate(pipeline.estimate(query, *eps)),
            Work::Insert { row } => match pipeline.insert(row) {
                Ok(lsn) => {
                    wrote = true;
                    Reply::Written(lsn)
                }
                Err(SnapshotError::Malformed(_)) => Reply::Rejected(WriteError::DimensionMismatch),
                Err(_) => Reply::Rejected(WriteError::Storage),
            },
            Work::Delete { dense } => match pipeline.delete(*dense as usize) {
                Ok(lsn) => {
                    wrote = true;
                    Reply::Written(lsn)
                }
                Err(SnapshotError::Malformed(_)) => Reply::Rejected(WriteError::OutOfBounds),
                Err(_) => Reply::Rejected(WriteError::Storage),
            },
        };
        replies.push(reply);
    }
    // Group commit with bounded retry: a transient sync failure (a busy
    // device, an injected fault) is retried with doubling backoff before
    // the batch's writes are rejected. Rejecting is still safe — the
    // in-memory state may be ahead of the log, exactly as if the process
    // had crashed before the sync — but a retry that lands keeps the acks.
    let mut commit_failed = false;
    if wrote {
        for attempt in 0..=WAL_SYNC_RETRIES {
            if attempt > 0 {
                retry_backoff(attempt);
                shared.stats.record_wal_sync_retry();
            }
            commit_failed = pipeline.sync().is_err();
            if !commit_failed {
                break;
            }
        }
    }
    for (pending, reply) in batch.iter().zip(replies) {
        let reply = match reply {
            Reply::Written(_) if commit_failed => Reply::Rejected(WriteError::Storage),
            other => other,
        };
        pending.slot.deliver(epoch, reply);
    }

    let threshold = shared.config.compact_threshold;
    let pending = pipeline.pending_ops();
    if threshold != 0 && pending >= threshold && pending >= *compact_floor {
        // Bounded immediate retry for transient compaction I/O errors;
        // compact() mutates nothing visible until its manifest flip, so a
        // failed attempt is safe to re-run. Only after the retries are
        // exhausted does the failure latch the backlog-growth backoff.
        let mut result = pipeline.compact();
        let mut attempt = 0;
        while result.is_err() && attempt < COMPACT_RETRIES {
            attempt += 1;
            retry_backoff(attempt);
            shared.stats.record_compact_retry();
            result = pipeline.compact();
        }
        match result {
            Ok(()) => {
                *compact_floor = 0;
                // Failpoint: the post-compaction epoch flip fails. Safe to
                // skip — mutable reads go through the pipeline directly, so
                // only the epoch *tag* on responses stays behind until the
                // next successful publish. The compaction itself is durable.
                if fault::fire("serve.reload.swap") {
                    shared.stats.record_reload_failure();
                } else {
                    let engine = pipeline.base().engine();
                    let mut current = shared.current.lock().unwrap();
                    *current = Arc::new(EpochState {
                        epoch: current.epoch + 1,
                        pipeline: Arc::clone(pipeline.base()),
                        engine,
                    });
                    shared.stats.record_reload();
                }
            }
            Err(_) => {
                shared.stats.record_compact_failure();
                *compact_floor = pending + threshold;
            }
        }
    }
}

/// Run one merged batch through the kernels and deliver each result.
fn answer(epoch: &EpochState, batch: &[Pending]) {
    // Partition by (kind, parameter) so every group becomes exactly one
    // batch-kernel call; each engine guarantees its batch entry points are
    // bit-identical to the per-query forms, which is what makes coalescing
    // invisible to callers. A uniform batch (one kind, one parameter — the
    // common serving shape) skips the partition map entirely.
    let first_key = batch[0].work.group_key();
    if batch.iter().all(|p| p.work.group_key() == first_key) {
        let group: Vec<&Pending> = batch.iter().collect();
        return answer_group(epoch, &group);
    }
    let mut groups: HashMap<(u8, u64), Vec<&Pending>> = HashMap::new();
    for pending in batch {
        groups
            .entry(pending.work.group_key())
            .or_default()
            .push(pending);
    }
    for group in groups.values() {
        answer_group(epoch, group);
    }
}

/// One batch-kernel call for a group that shares a (kind, parameter) key.
fn answer_group(epoch: &EpochState, group: &[&Pending]) {
    let queries: Vec<&[f32]> = group.iter().map(|p| p.work.query()).collect();
    match &group[0].work {
        Work::Range { eps, .. } => {
            let results = epoch.engine.range_batch(&queries, *eps);
            for (pending, hits) in group.iter().zip(results) {
                pending.slot.deliver(epoch.epoch, Reply::Range(hits));
            }
        }
        Work::RangeCount { eps, .. } => {
            let results = epoch.engine.range_count_batch(&queries, *eps);
            for (pending, count) in group.iter().zip(results) {
                pending.slot.deliver(epoch.epoch, Reply::Count(count));
            }
        }
        Work::Knn { k, .. } => {
            let results = epoch.engine.knn_batch(&queries, *k);
            for (pending, neighbors) in group.iter().zip(results) {
                pending.slot.deliver(epoch.epoch, Reply::Knn(neighbors));
            }
        }
        Work::Estimate { eps, .. } => {
            let results = epoch.pipeline.estimate_batch(&queries, *eps);
            for (pending, estimate) in group.iter().zip(results) {
                pending.slot.deliver(epoch.epoch, Reply::Estimate(estimate));
            }
        }
        Work::Insert { .. } | Work::Delete { .. } => {
            unreachable!("writes are admitted only on mutable servers, which answer in order")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use laf_cardest::{NetConfig, TrainingSetBuilder};
    use laf_core::LafConfig;
    use laf_synth::EmbeddingMixtureConfig;
    use laf_vector::Dataset;

    fn data(seed: u64) -> Dataset {
        EmbeddingMixtureConfig {
            n_points: 300,
            dim: 12,
            clusters: 4,
            noise_fraction: 0.2,
            seed,
            ..Default::default()
        }
        .generate()
        .unwrap()
        .0
    }

    fn pipeline(seed: u64) -> LafPipeline {
        LafPipeline::builder(LafConfig::new(0.3, 4, 1.0))
            .net(NetConfig::tiny())
            .training(TrainingSetBuilder {
                max_queries: Some(60),
                ..Default::default()
            })
            .train(data(seed))
            .unwrap()
    }

    fn assert_send_sync<T: Send + Sync>() {}

    #[test]
    fn server_is_shareable_across_threads() {
        assert_send_sync::<LafServer>();
        assert_send_sync::<ServeError>();
        assert_send_sync::<Served<Vec<u32>>>();
    }

    #[test]
    fn served_results_match_the_synchronous_path() {
        let pipeline = pipeline(7);
        let engine = pipeline.engine();
        let queries: Vec<Vec<f32>> = (0..40).map(|i| pipeline.data().row(i).to_vec()).collect();
        let expected_range: Vec<Vec<u32>> = queries.iter().map(|q| engine.range(q, 0.3)).collect();
        let expected_count: Vec<usize> =
            queries.iter().map(|q| engine.range_count(q, 0.3)).collect();
        let expected_knn: Vec<Vec<Neighbor>> = queries.iter().map(|q| engine.knn(q, 5)).collect();
        let expected_est: Vec<f32> = queries.iter().map(|q| pipeline.estimate(q, 0.3)).collect();

        let server = LafServer::start(pipeline, ServeConfig::default());
        std::thread::scope(|scope| {
            for (i, q) in queries.iter().enumerate() {
                let server = &server;
                let expected_range = &expected_range;
                let expected_count = &expected_count;
                let expected_knn = &expected_knn;
                let expected_est = &expected_est;
                scope.spawn(move || {
                    let served = server.range(q, 0.3).unwrap();
                    assert_eq!(served.epoch, 1);
                    assert_eq!(served.value, expected_range[i], "range query {i}");
                    let count = server.range_count(q, 0.3).unwrap().value;
                    assert_eq!(count, expected_count[i], "count query {i}");
                    let knn = server.knn(q, 5).unwrap().value;
                    assert_eq!(knn.len(), expected_knn[i].len(), "knn query {i}");
                    for (a, b) in knn.iter().zip(&expected_knn[i]) {
                        assert_eq!(a.index, b.index, "knn query {i}");
                        assert_eq!(a.dist.to_bits(), b.dist.to_bits(), "knn query {i}");
                    }
                    let est = server.estimate(q, 0.3).unwrap().value;
                    assert_eq!(est.to_bits(), expected_est[i].to_bits(), "estimate {i}");
                });
            }
        });
        let report = server.shutdown();
        assert_eq!(report.submitted, 160);
        assert_eq!(report.completed, 160);
        assert_eq!(report.rejected, 0);
    }

    #[test]
    fn tickets_pipeline_requests_from_one_thread() {
        let pipeline = pipeline(31);
        let engine = pipeline.engine();
        let queries: Vec<Vec<f32>> = (0..12).map(|i| pipeline.data().row(i).to_vec()).collect();
        let expected: Vec<usize> = queries.iter().map(|q| engine.range_count(q, 0.3)).collect();
        let server = LafServer::start(pipeline, ServeConfig::default());
        let tickets: Vec<Ticket<usize>> = queries
            .iter()
            .map(|q| server.range_count_async(q, 0.3).unwrap())
            .collect();
        for (i, ticket) in tickets.into_iter().enumerate() {
            let served = ticket.wait();
            assert_eq!(served.epoch, 1);
            assert_eq!(served.value, expected[i], "pipelined count query {i}");
        }
        let report = server.shutdown();
        assert_eq!(report.completed, 12);
        assert!(
            report.batches < 12,
            "12 pipelined submissions from one thread must coalesce \
             (got {} batches)",
            report.batches
        );
    }

    #[test]
    fn dropped_tickets_are_still_answered_and_counted() {
        let pipeline = pipeline(37);
        let q: Vec<f32> = pipeline.data().row(0).to_vec();
        let server = LafServer::start(pipeline, ServeConfig::default());
        let kept = server.range_count_async(&q, 0.3).unwrap();
        drop(server.range_count_async(&q, 0.3).unwrap());
        let served = kept.wait();
        assert_eq!(served.epoch, 1);
        let report = server.shutdown();
        assert_eq!(report.submitted, 2);
        assert_eq!(report.completed, 2, "abandoned tickets still drain");
    }

    #[test]
    fn uncoalesced_config_serves_identically() {
        let pipeline = pipeline(9);
        let engine = pipeline.engine();
        let q: Vec<f32> = pipeline.data().row(3).to_vec();
        let expected = engine.range(&q, 0.3);
        let server = LafServer::start(pipeline, ServeConfig::uncoalesced());
        assert_eq!(server.range(&q, 0.3).unwrap().value, expected);
    }

    #[test]
    fn coalescing_actually_batches_under_concurrency() {
        let pipeline = pipeline(11);
        let queries: Vec<Vec<f32>> = (0..64).map(|i| pipeline.data().row(i).to_vec()).collect();
        let server = LafServer::start(
            pipeline,
            ServeConfig {
                coalesce_window_us: 5_000,
                ..ServeConfig::default()
            },
        );
        std::thread::scope(|scope| {
            for q in &queries {
                let server = &server;
                scope.spawn(move || {
                    server.range(q, 0.3).unwrap();
                });
            }
        });
        let report = server.shutdown();
        assert_eq!(report.completed, 64);
        assert!(
            report.batches < 64,
            "64 concurrent requests must coalesce into fewer than 64 batches \
             (got {} batches, mean occupancy {:.2})",
            report.batches,
            report.mean_batch_occupancy
        );
    }

    /// A server whose config lets tests park 3 clients in the queue: below
    /// the dot4 tile, inside a long window, the dispatcher will not flush
    /// them until woken.
    fn parking_server(config: ServeConfig, seed: u64) -> (LafServer, Vec<f32>) {
        let pipeline = pipeline(seed);
        let q: Vec<f32> = pipeline.data().row(0).to_vec();
        (LafServer::start(pipeline, config), q)
    }

    fn wait_for_depth(server: &LafServer, depth: usize) {
        while server.queue_depth() < depth {
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
    }

    /// Wake the dispatcher into its shutdown drain without consuming the
    /// server (scoped client threads still borrow it).
    fn trigger_shutdown(server: &LafServer) {
        server.shared.state.lock().unwrap().shutdown = true;
        server.shared.wake.notify_all();
    }

    #[test]
    fn admission_control_rejects_beyond_the_bound() {
        let (server, q) = parking_server(
            ServeConfig {
                coalesce_window_us: 500_000,
                max_batch: 8,
                max_queue_depth: 3,
                ..ServeConfig::default()
            },
            13,
        );
        std::thread::scope(|scope| {
            for _ in 0..3 {
                let server = &server;
                let q = &q;
                scope.spawn(move || {
                    let _ = server.range(q, 0.3);
                });
            }
            wait_for_depth(&server, 3);
            // The queue is pinned at the bound until the window expires; one
            // more submission must bounce rather than buffer.
            match server.range_count(&q, 0.3) {
                Err(ServeError::Overloaded { depth, limit }) => {
                    assert_eq!(limit, 3);
                    assert!(depth >= limit);
                }
                other => panic!("expected Overloaded, got {other:?}"),
            }
            trigger_shutdown(&server);
        });
        let report = server.shutdown();
        assert_eq!(report.rejected, 1);
        assert_eq!(report.completed, 3);
    }

    #[test]
    fn shutdown_drains_queued_requests() {
        let (server, q) = parking_server(
            ServeConfig {
                coalesce_window_us: 500_000,
                ..ServeConfig::default()
            },
            17,
        );
        std::thread::scope(|scope| {
            for _ in 0..3 {
                let server = &server;
                let q = &q;
                scope.spawn(move || {
                    // Queued mid-window; shutdown must still answer it
                    // rather than losing it.
                    server.range(q, 0.3).unwrap();
                });
            }
            wait_for_depth(&server, 3);
            trigger_shutdown(&server);
        });
        let report = server.shutdown();
        assert_eq!(report.submitted, 3);
        assert_eq!(report.completed, 3, "no request may be lost");
    }

    #[test]
    fn reload_swaps_epochs_and_prebuilds_the_engine() {
        let server = LafServer::start(pipeline(19), ServeConfig::default());
        assert_eq!(server.current_epoch(), 1);
        let replacement = pipeline(23);
        let q: Vec<f32> = replacement.data().row(0).to_vec();
        let expected = replacement.engine().range(&q, 0.3);
        assert_eq!(server.reload(replacement).unwrap(), 2);
        assert_eq!(server.current_epoch(), 2);
        let served = server.range(&q, 0.3).unwrap();
        assert_eq!(served.epoch, 2);
        assert_eq!(served.value, expected);
        assert_eq!(server.stats_report().reloads, 1);
    }

    fn mutable_dir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("laf_serve_mutable_{tag}_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    #[test]
    fn unified_submit_matches_the_typed_methods() {
        let pipeline = pipeline(43);
        let engine = pipeline.engine();
        let q: Vec<f32> = pipeline.data().row(5).to_vec();
        let expected_range = engine.range(&q, 0.3);
        let expected_count = engine.range_count(&q, 0.3);
        let expected_est = pipeline.estimate(&q, 0.3);
        let server = LafServer::start(pipeline, ServeConfig::default());
        assert!(!server.is_mutable());
        match server
            .submit(QueryRequest::Range {
                query: q.clone(),
                eps: 0.3,
            })
            .unwrap()
            .value
        {
            QueryResponse::Range(hits) => assert_eq!(hits, expected_range),
            other => panic!("range request answered with {other:?}"),
        }
        match server
            .submit(QueryRequest::RangeCount {
                query: q.clone(),
                eps: 0.3,
            })
            .unwrap()
            .value
        {
            QueryResponse::Count(n) => assert_eq!(n, expected_count),
            other => panic!("count request answered with {other:?}"),
        }
        match server
            .submit(QueryRequest::Knn {
                query: q.clone(),
                k: 3,
            })
            .unwrap()
            .value
        {
            QueryResponse::Knn(neighbors) => assert_eq!(neighbors.len(), 3),
            other => panic!("knn request answered with {other:?}"),
        }
        match server
            .submit(QueryRequest::Estimate {
                query: q.clone(),
                eps: 0.3,
            })
            .unwrap()
            .value
        {
            QueryResponse::Estimate(est) => assert_eq!(est.to_bits(), expected_est.to_bits()),
            other => panic!("estimate request answered with {other:?}"),
        }
        // Writes bounce at submission on a read-only server.
        assert_eq!(
            server
                .submit(QueryRequest::Insert { row: q.clone() })
                .unwrap_err(),
            ServeError::ReadOnly
        );
        assert_eq!(server.insert(&q).unwrap_err(), ServeError::ReadOnly);
        assert_eq!(server.delete(0).unwrap_err(), ServeError::ReadOnly);
    }

    #[test]
    fn mutable_server_reads_its_own_writes_in_queue_order() {
        use laf_core::MutablePipeline;
        let frozen = pipeline(47);
        let n_base = frozen.data().len() as u32;
        let dir = mutable_dir("ryw");
        let mutable = MutablePipeline::create(&dir, &frozen).unwrap();
        let server = LafServer::start_mutable(mutable, ServeConfig::default());
        assert!(server.is_mutable());

        // Pipeline an insert, a read that must see it, a delete, and a read
        // that must see the delete — all in flight before any wait.
        let row = vec![9.0f32; 12];
        let t_insert = server.insert_async(&row).unwrap();
        let t_seen = server.range_count_async(&row, 1e-3).unwrap();
        let t_delete = server.delete_async(n_base as u64).unwrap();
        let t_gone = server.range_count_async(&row, 1e-3).unwrap();
        assert_eq!(t_insert.wait().value, Ok(1), "first WAL record is LSN 1");
        assert_eq!(t_seen.wait().value, 1, "a pipelined read sees the insert");
        assert_eq!(t_delete.wait().value, Ok(2));
        assert_eq!(t_gone.wait().value, 0, "and then sees the delete");

        // Processing-time rejections come back through the response.
        assert_eq!(
            server.insert(&[1.0]).unwrap().value,
            Err(WriteError::DimensionMismatch)
        );
        assert_eq!(
            server.delete(u64::MAX).unwrap().value,
            Err(WriteError::OutOfBounds)
        );
        server.shutdown();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn compaction_threshold_publishes_new_epochs() {
        use laf_core::MutablePipeline;
        let frozen = pipeline(53);
        let q: Vec<f32> = frozen.data().row(0).to_vec();
        let dir = mutable_dir("compact");
        let mutable = MutablePipeline::create(&dir, &frozen).unwrap();
        let server = LafServer::start_mutable(
            mutable,
            ServeConfig {
                compact_threshold: 1,
                ..ServeConfig::default()
            },
        );
        let before = server.range(&q, 0.3).unwrap();
        assert_eq!(before.epoch, 1);
        let row = vec![4.0f32; 12];
        server.insert(&row).unwrap().value.unwrap();
        // The write batch left pending_ops >= 1, so the dispatcher folded
        // the delta into a new base and published it as epoch 2; answers
        // are unchanged by the fold.
        let after = server.range(&q, 0.3).unwrap();
        assert_eq!(after.epoch, 2, "compaction bumps the served epoch");
        assert_eq!(after.value, before.value);
        assert_eq!(server.range_count(&row, 1e-3).unwrap().value, 1);
        assert_eq!(server.stats_report().reloads, 1);
        server.shutdown();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn failed_compaction_is_counted_and_backed_off() {
        use laf_core::MutablePipeline;
        let frozen = pipeline(59);
        let q: Vec<f32> = frozen.data().row(0).to_vec();
        let dir = mutable_dir("compact_fail");
        let mutable = MutablePipeline::create(&dir, &frozen).unwrap();
        // Block the manifest flip: `Manifest::write` creates MANIFEST.tmp,
        // which fails (EISDIR) while this directory squats on the name, so
        // every compaction attempt errors after the write batch is acked.
        let blocker = dir.join("MANIFEST.tmp");
        std::fs::create_dir(&blocker).unwrap();
        let server = LafServer::start_mutable(
            mutable,
            ServeConfig {
                compact_threshold: 1,
                ..ServeConfig::default()
            },
        );
        let row = vec![4.0f32; 12];
        server.insert(&row).unwrap().value.unwrap();
        let reads = server.range(&q, 0.3).unwrap();
        assert_eq!(reads.epoch, 1, "no epoch published by a failed compaction");
        let report = server.stats_report();
        assert_eq!(report.reloads, 0);
        assert_eq!(report.compact_failures, 1, "failure surfaced in stats");
        // Backoff: read-only batches (backlog unchanged) must not retry the
        // failing full rebuild.
        server.range(&q, 0.3).unwrap();
        server.range_count(&q, 0.3).unwrap();
        assert_eq!(
            server.stats_report().compact_failures,
            1,
            "no retry until the backlog grows"
        );
        // Once the backlog grows past the floor (old pending 1 + threshold
        // 1 = 2) and the blocker is gone, compaction recovers, publishes an
        // epoch, and resets the latch.
        std::fs::remove_dir(&blocker).unwrap();
        server.insert(&row).unwrap().value.unwrap();
        let after = server.range(&q, 0.3).unwrap();
        assert_eq!(after.epoch, 2, "recovered compaction publishes an epoch");
        assert_eq!(after.value, reads.value);
        let report = server.stats_report();
        assert_eq!(report.reloads, 1);
        assert_eq!(report.compact_failures, 1);
        assert_eq!(server.range_count(&row, 1e-3).unwrap().value, 2);
        server.shutdown();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn mutable_server_state_survives_shutdown_and_reopen() {
        use laf_core::MutablePipeline;
        let frozen = pipeline(59);
        let dir = mutable_dir("durable");
        let mutable = MutablePipeline::create(&dir, &frozen).unwrap();
        let n_before = mutable.len();
        let server = LafServer::start_mutable(mutable, ServeConfig::default());
        let row = vec![2.5f32; 12];
        server.insert(&row).unwrap().value.unwrap();
        server.delete(0).unwrap().value.unwrap();
        server.shutdown();
        let reopened = MutablePipeline::open(&dir).unwrap();
        assert_eq!(reopened.len(), n_before, "+1 insert, -1 delete");
        assert_eq!(reopened.last_lsn(), 2, "both writes recovered from the WAL");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn deadline_times_out_parked_requests() {
        let (server, q) = parking_server(
            ServeConfig {
                coalesce_window_us: 500_000,
                max_batch: 8,
                request_deadline_us: 2_000,
                ..ServeConfig::default()
            },
            61,
        );
        // One parked request — below the dot4 tile, inside the long window —
        // must unblock with a typed timeout, not hang for the window.
        match server.range(&q, 0.3) {
            Err(ServeError::Timeout { waited_us }) => assert!(waited_us >= 2_000, "{waited_us}"),
            other => panic!("expected Timeout, got {other:?}"),
        }
        assert_eq!(server.stats_report().timeouts, 1);
        // The dispatcher still answers the abandoned request on drain.
        let report = server.shutdown();
        assert_eq!(report.submitted, 1);
        assert_eq!(report.completed, 1, "timed-out requests still drain");
    }

    #[test]
    fn wait_timeout_returns_the_result_when_served_in_time() {
        let pipeline = pipeline(67);
        let engine = pipeline.engine();
        let q: Vec<f32> = pipeline.data().row(1).to_vec();
        let expected = engine.range_count(&q, 0.3);
        let server = LafServer::start(pipeline, ServeConfig::default());
        let ticket = server.range_count_async(&q, 0.3).unwrap();
        let served = ticket.wait_timeout(Duration::from_secs(30)).unwrap();
        assert_eq!(served.value, expected);
        assert_eq!(server.stats_report().timeouts, 0);
        assert!(ServeError::Timeout { waited_us: 7 }
            .to_string()
            .contains("7us"));
    }

    #[cfg(feature = "fault-injection")]
    #[test]
    fn transient_wal_sync_failures_are_absorbed_by_retry() {
        use laf_core::fault::{self, FaultMode, FaultPlan};
        use laf_core::MutablePipeline;
        let frozen = pipeline(71);
        let dir = mutable_dir("wal_retry");
        let mutable = MutablePipeline::create(&dir, &frozen).unwrap();
        let server = LafServer::start_mutable(mutable, ServeConfig::default());
        let row = vec![3.0f32; 12];
        // The registry is process-wide and sibling tests also sync; if one
        // of them consumes the single armed firing, re-arm and try again.
        let mut absorbed = false;
        for _ in 0..5 {
            fault::install(FaultPlan::new(1).with_site("wal.sync", FaultMode::OnceAt(0)));
            let lsn = server.insert(&row).unwrap().value;
            assert!(
                lsn.is_ok(),
                "a single transient sync failure must be retried away"
            );
            if server.stats_report().wal_sync_retries > 0 {
                absorbed = true;
                break;
            }
        }
        fault::clear();
        assert!(absorbed, "retry counter never advanced");
        server.shutdown();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[cfg(feature = "fault-injection")]
    #[test]
    fn transient_compaction_failures_are_absorbed_by_retry() {
        use laf_core::fault::{self, FaultMode, FaultPlan};
        use laf_core::MutablePipeline;
        let frozen = pipeline(73);
        let q: Vec<f32> = frozen.data().row(0).to_vec();
        let dir = mutable_dir("compact_retry");
        let mutable = MutablePipeline::create(&dir, &frozen).unwrap();
        let server = LafServer::start_mutable(
            mutable,
            ServeConfig {
                compact_threshold: 1,
                ..ServeConfig::default()
            },
        );
        let before = server.range(&q, 0.3).unwrap();
        fault::install(FaultPlan::new(2).with_site("compact.dir_fsync", FaultMode::OnceAt(0)));
        let row = vec![4.0f32; 12];
        server.insert(&row).unwrap().value.unwrap();
        fault::clear();
        let after = server.range(&q, 0.3).unwrap();
        let report = server.stats_report();
        assert_eq!(
            report.compact_failures, 0,
            "one transient fsync failure must not latch a compaction failure"
        );
        assert_eq!(
            after.epoch, 2,
            "retried compaction still publishes its epoch"
        );
        assert_eq!(after.value, before.value);
        server.shutdown();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn submitting_after_shutdown_fails_cleanly() {
        let mut server = LafServer::start(pipeline(29), ServeConfig::default());
        let q = vec![0.0f32; 12];
        server.shutdown_inner();
        assert_eq!(server.range(&q, 0.3), Err(ServeError::ShuttingDown));
        assert_eq!(
            ServeError::ShuttingDown.to_string(),
            "server is shutting down"
        );
        let overloaded = ServeError::Overloaded { depth: 4, limit: 4 };
        assert!(overloaded.to_string().contains("queue depth 4"));
    }
}
