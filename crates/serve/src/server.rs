//! The coalescing dispatcher: [`LafServer`].

use crate::config::{ServeConfig, TILE};
use crate::stats::{ServeStats, ServeStatsReport};
use laf_core::{LafPipeline, SharedEngine};
use laf_index::Neighbor;
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// Why a submission did not produce a result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeError {
    /// Admission control rejected the request: the queue already held
    /// `depth` requests against a bound of `limit`. The caller owns the
    /// retry policy (back off, shed load, or fail the end-user request);
    /// the server never buffers beyond the bound.
    Overloaded {
        /// Queue depth observed at submission time.
        depth: usize,
        /// The configured `max_queue_depth`.
        limit: usize,
    },
    /// The server is shutting down and no longer admits requests.
    ShuttingDown,
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Overloaded { depth, limit } => {
                write!(f, "server overloaded: queue depth {depth} at limit {limit}")
            }
            ServeError::ShuttingDown => write!(f, "server is shutting down"),
        }
    }
}

impl std::error::Error for ServeError {}

/// A served result, tagged with the snapshot epoch that produced it.
///
/// Hot-reload makes the epoch part of the response contract: a caller that
/// races a [`LafServer::reload`] can tell which snapshot answered, and the
/// stress tests use it to verify responses are never torn across epochs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Served<T> {
    /// The epoch of the snapshot that served this result (starts at 1,
    /// incremented by every [`LafServer::reload`]).
    pub epoch: u64,
    /// The result itself.
    pub value: T,
}

/// One queued request kind, query vector owned so it outlives the caller's
/// borrow while the batch waits in the window.
enum Work {
    Range { query: Vec<f32>, eps: f32 },
    RangeCount { query: Vec<f32>, eps: f32 },
    Knn { query: Vec<f32>, k: usize },
    Estimate { query: Vec<f32>, eps: f32 },
}

impl Work {
    fn query(&self) -> &[f32] {
        match self {
            Work::Range { query, .. }
            | Work::RangeCount { query, .. }
            | Work::Knn { query, .. }
            | Work::Estimate { query, .. } => query,
        }
    }

    /// Batch-grouping key: requests dispatch through one kernel call iff
    /// they share a kind and its parameter (ε compared by bit pattern — the
    /// kernels take one ε per batch).
    fn group_key(&self) -> (u8, u64) {
        match self {
            Work::Range { eps, .. } => (0, eps.to_bits() as u64),
            Work::RangeCount { eps, .. } => (1, eps.to_bits() as u64),
            Work::Knn { k, .. } => (2, *k as u64),
            Work::Estimate { eps, .. } => (3, eps.to_bits() as u64),
        }
    }
}

/// An answered request's payload.
enum Reply {
    Range(Vec<u32>),
    Count(usize),
    Knn(Vec<Neighbor>),
    Estimate(f32),
}

/// The rendezvous cell a blocked caller waits on.
#[derive(Default)]
struct Slot {
    filled: Mutex<Option<Served<Reply>>>,
    ready: Condvar,
}

impl Slot {
    fn deliver(&self, epoch: u64, value: Reply) {
        *self.filled.lock().unwrap() = Some(Served { epoch, value });
        self.ready.notify_one();
    }

    fn wait(&self) -> Served<Reply> {
        let mut guard = self.filled.lock().unwrap();
        loop {
            match guard.take() {
                Some(served) => return served,
                None => guard = self.ready.wait(guard).unwrap(),
            }
        }
    }
}

struct Pending {
    work: Work,
    slot: Arc<Slot>,
    submitted: Instant,
}

/// A handle to a submitted-but-not-yet-answered request.
///
/// Returned by the `*_async` submission methods. Holding several tickets
/// pipelines requests: a client keeps N submissions in flight and the
/// dispatcher sees a deeper queue to coalesce from, which is how a
/// single-connection caller still feeds full dot4 tiles. Waiting consumes
/// the ticket; dropping it abandons the result (the request is still
/// answered and counted, nobody observes the value).
#[must_use = "a ticket does nothing until waited on; drop abandons the result"]
pub struct Ticket<T> {
    slot: Arc<Slot>,
    extract: fn(Reply) -> T,
}

impl<T> Ticket<T> {
    /// Block until the dispatcher delivers this request's result.
    pub fn wait(self) -> Served<T> {
        let served = self.slot.wait();
        Served {
            epoch: served.epoch,
            value: (self.extract)(served.value),
        }
    }

    /// Whether the result is already delivered (a `wait` would not block).
    pub fn is_ready(&self) -> bool {
        self.slot.filled.lock().unwrap().is_some()
    }
}

impl<T> fmt::Debug for Ticket<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Ticket")
            .field("ready", &self.is_ready())
            .finish()
    }
}

/// One snapshot generation: the pipeline plus its built engine. In-flight
/// batches hold an `Arc<EpochState>` clone, so a reload never invalidates a
/// batch mid-dispatch — the old epoch drains, then drops.
struct EpochState {
    epoch: u64,
    pipeline: Arc<LafPipeline>,
    engine: SharedEngine,
}

struct QueueState {
    queue: VecDeque<Pending>,
    shutdown: bool,
}

struct Shared {
    config: ServeConfig,
    state: Mutex<QueueState>,
    /// Signals the dispatcher: work arrived or shutdown was requested.
    wake: Condvar,
    current: Mutex<Arc<EpochState>>,
    stats: ServeStats,
}

/// A concurrent serving front over a [`LafPipeline`].
///
/// Callers from any number of threads submit range / range-count / knn /
/// estimate requests and block until their result is ready. A dedicated
/// dispatcher thread coalesces queued requests into merged batches and runs
/// them through the engine's batch kernels, so concurrent single-query
/// callers get the query-major mini-GEMM path that a synchronous
/// one-caller-at-a-time handle can never reach. See the crate docs for the
/// flush policy, admission control and the hot-reload epoch model.
pub struct LafServer {
    shared: Arc<Shared>,
    dispatcher: Option<JoinHandle<()>>,
}

impl fmt::Debug for LafServer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LafServer")
            .field("config", &self.shared.config)
            .field("epoch", &self.current_epoch())
            .field("queue_depth", &self.queue_depth())
            .finish_non_exhaustive()
    }
}

impl LafServer {
    /// Start serving `pipeline` under `config`.
    ///
    /// Builds (or restores) the pipeline's engine eagerly — the first
    /// request should not pay the construction cost — and spawns the
    /// dispatcher thread. The server stops (draining every queued request)
    /// on [`LafServer::shutdown`] or drop.
    pub fn start(pipeline: LafPipeline, config: ServeConfig) -> Self {
        let engine = pipeline.engine();
        let shared = Arc::new(Shared {
            config,
            state: Mutex::new(QueueState {
                queue: VecDeque::new(),
                shutdown: false,
            }),
            wake: Condvar::new(),
            current: Mutex::new(Arc::new(EpochState {
                epoch: 1,
                pipeline: Arc::new(pipeline),
                engine,
            })),
            stats: ServeStats::default(),
        });
        let dispatcher = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("laf-serve-dispatch".into())
                .spawn(move || dispatch_loop(&shared))
                .expect("spawn dispatcher thread")
        };
        Self {
            shared,
            dispatcher: Some(dispatcher),
        }
    }

    /// Submit an ε-range query without blocking on its result.
    ///
    /// The returned [`Ticket`] resolves (via [`Ticket::wait`]) to the same
    /// bits as `pipeline.engine().range(query, eps)` on the snapshot of the
    /// resolved epoch. Submitting several tickets before waiting pipelines
    /// requests from one thread.
    pub fn range_async(&self, query: &[f32], eps: f32) -> Result<Ticket<Vec<u32>>, ServeError> {
        let slot = self.enqueue(Work::Range {
            query: query.to_vec(),
            eps,
        })?;
        Ok(Ticket {
            slot,
            extract: |reply| match reply {
                Reply::Range(hits) => hits,
                _ => unreachable!("dispatcher answered a range request with another kind"),
            },
        })
    }

    /// Submit a neighbor-count query without blocking; see
    /// [`LafServer::range_async`].
    pub fn range_count_async(&self, query: &[f32], eps: f32) -> Result<Ticket<usize>, ServeError> {
        let slot = self.enqueue(Work::RangeCount {
            query: query.to_vec(),
            eps,
        })?;
        Ok(Ticket {
            slot,
            extract: |reply| match reply {
                Reply::Count(n) => n,
                _ => unreachable!("dispatcher answered a count request with another kind"),
            },
        })
    }

    /// Submit a k-nearest-neighbor query without blocking; see
    /// [`LafServer::range_async`].
    pub fn knn_async(&self, query: &[f32], k: usize) -> Result<Ticket<Vec<Neighbor>>, ServeError> {
        let slot = self.enqueue(Work::Knn {
            query: query.to_vec(),
            k,
        })?;
        Ok(Ticket {
            slot,
            extract: |reply| match reply {
                Reply::Knn(neighbors) => neighbors,
                _ => unreachable!("dispatcher answered a knn request with another kind"),
            },
        })
    }

    /// Submit a learned cardinality estimate without blocking; see
    /// [`LafServer::range_async`].
    pub fn estimate_async(&self, query: &[f32], eps: f32) -> Result<Ticket<f32>, ServeError> {
        let slot = self.enqueue(Work::Estimate {
            query: query.to_vec(),
            eps,
        })?;
        Ok(Ticket {
            slot,
            extract: |reply| match reply {
                Reply::Estimate(est) => est,
                _ => unreachable!("dispatcher answered an estimate request with another kind"),
            },
        })
    }

    /// ε-range query through the coalescing front. Blocks until served;
    /// bit-identical to `pipeline.engine().range(query, eps)` on the
    /// snapshot of the returned epoch.
    pub fn range(&self, query: &[f32], eps: f32) -> Result<Served<Vec<u32>>, ServeError> {
        Ok(self.range_async(query, eps)?.wait())
    }

    /// Neighbor count within `eps`, served like [`LafServer::range`].
    pub fn range_count(&self, query: &[f32], eps: f32) -> Result<Served<usize>, ServeError> {
        Ok(self.range_count_async(query, eps)?.wait())
    }

    /// k-nearest-neighbor query, served like [`LafServer::range`].
    pub fn knn(&self, query: &[f32], k: usize) -> Result<Served<Vec<Neighbor>>, ServeError> {
        Ok(self.knn_async(query, k)?.wait())
    }

    /// Learned cardinality estimate, served like [`LafServer::range`].
    pub fn estimate(&self, query: &[f32], eps: f32) -> Result<Served<f32>, ServeError> {
        Ok(self.estimate_async(query, eps)?.wait())
    }

    /// Atomically swap the served snapshot: an epoch-tagged
    /// `Arc<LafPipeline>` flip.
    ///
    /// The replacement's engine is built **before** the swap is visible, so
    /// no request ever pays the construction cost inline. Requests already
    /// drained into a batch finish on the epoch they were dispatched with
    /// (their batch holds the old `Arc`); requests dispatched after the swap
    /// see the new one. Returns the new epoch number.
    pub fn reload(&self, pipeline: LafPipeline) -> u64 {
        let engine = pipeline.engine();
        let pipeline = Arc::new(pipeline);
        let mut current = self.shared.current.lock().unwrap();
        let epoch = current.epoch + 1;
        *current = Arc::new(EpochState {
            epoch,
            pipeline,
            engine,
        });
        self.shared.stats.record_reload();
        epoch
    }

    /// The epoch new requests are currently served under.
    pub fn current_epoch(&self) -> u64 {
        self.shared.current.lock().unwrap().epoch
    }

    /// Live aggregate counters.
    pub fn stats(&self) -> &ServeStats {
        &self.shared.stats
    }

    /// Convenience for [`ServeStats::report`].
    pub fn stats_report(&self) -> ServeStatsReport {
        self.shared.stats.report()
    }

    /// Requests currently queued (excluding any batch being dispatched).
    pub fn queue_depth(&self) -> usize {
        self.shared.state.lock().unwrap().queue.len()
    }

    /// The configuration the server was started with.
    pub fn config(&self) -> &ServeConfig {
        &self.shared.config
    }

    /// Stop admitting requests, drain everything already queued, join the
    /// dispatcher and return the final counters. Dropping the server does
    /// the same minus the report.
    pub fn shutdown(mut self) -> ServeStatsReport {
        self.shutdown_inner();
        self.shared.stats.report()
    }

    fn shutdown_inner(&mut self) {
        self.shared.state.lock().unwrap().shutdown = true;
        self.shared.wake.notify_all();
        if let Some(handle) = self.dispatcher.take() {
            let _ = handle.join();
        }
    }

    fn enqueue(&self, work: Work) -> Result<Arc<Slot>, ServeError> {
        let slot = Arc::new(Slot::default());
        let depth = {
            let mut state = self.shared.state.lock().unwrap();
            if state.shutdown {
                return Err(ServeError::ShuttingDown);
            }
            let depth = state.queue.len();
            if depth >= self.shared.config.max_queue_depth {
                self.shared.stats.record_reject();
                return Err(ServeError::Overloaded {
                    depth,
                    limit: self.shared.config.max_queue_depth,
                });
            }
            state.queue.push_back(Pending {
                work,
                slot: Arc::clone(&slot),
                submitted: Instant::now(),
            });
            let depth = state.queue.len();
            self.shared.stats.record_submit(depth);
            depth
        };
        // Wake the dispatcher only when this submission changes what it
        // would do: the first request arms the window deadline, and a whole
        // dot4 tile or a full batch makes a flush eligible right now.
        // Intermediate depths would be spurious wake-ups (the dispatcher
        // re-checks and goes back to sleep), and under load those wake-ups
        // are the dominant per-request dispatch cost. Depths skipped here
        // are never lost: the dispatcher re-reads the whole queue at every
        // wake and at the window deadline.
        let max_batch = self.shared.config.max_batch.max(1);
        if depth == 1 || depth >= max_batch || (max_batch >= TILE && depth % TILE == 0) {
            self.shared.wake.notify_one();
        }
        Ok(slot)
    }
}

impl Drop for LafServer {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// The dispatcher thread: wait for work, apply the flush policy, run the
/// merged batch through the batch kernels, scatter results.
fn dispatch_loop(shared: &Shared) {
    let window = shared.config.window();
    let max_batch = shared.config.max_batch.max(1);
    loop {
        let batch: Vec<Pending> = {
            let mut state = shared.state.lock().unwrap();
            loop {
                if state.queue.is_empty() {
                    if state.shutdown {
                        return;
                    }
                    state = shared.wake.wait(state).unwrap();
                    continue;
                }
                let n = state.queue.len();
                let oldest = state.queue.front().expect("queue is non-empty").submitted;
                // Flush policy, in priority order: drain on shutdown; flush a
                // full batch; flush whole dot4 tiles immediately (waiting
                // longer cannot improve their per-row amortization); flush
                // whatever is queued once the oldest request has waited out
                // the window; otherwise sleep until that deadline.
                let take = if state.shutdown || n >= max_batch {
                    max_batch.min(n)
                } else if n >= TILE && max_batch >= TILE {
                    (n - n % TILE).min(max_batch)
                } else if oldest.elapsed() >= window {
                    n
                } else {
                    let remaining = window.saturating_sub(oldest.elapsed());
                    let (guard, _) = shared.wake.wait_timeout(state, remaining).unwrap();
                    state = guard;
                    continue;
                };
                break state.queue.drain(..take).collect();
            }
        };
        shared.stats.record_batch(batch.len());
        // The whole batch is answered by ONE epoch: grab the current handle
        // once, outside the queue lock. A concurrent reload after this point
        // affects the next batch, never this one.
        let epoch = Arc::clone(&shared.current.lock().unwrap());
        answer(&epoch, &batch);
    }
}

/// Run one merged batch through the kernels and deliver each result.
fn answer(epoch: &EpochState, batch: &[Pending]) {
    // Partition by (kind, parameter) so every group becomes exactly one
    // batch-kernel call; each engine guarantees its batch entry points are
    // bit-identical to the per-query forms, which is what makes coalescing
    // invisible to callers. A uniform batch (one kind, one parameter — the
    // common serving shape) skips the partition map entirely.
    let first_key = batch[0].work.group_key();
    if batch.iter().all(|p| p.work.group_key() == first_key) {
        let group: Vec<&Pending> = batch.iter().collect();
        return answer_group(epoch, &group);
    }
    let mut groups: HashMap<(u8, u64), Vec<&Pending>> = HashMap::new();
    for pending in batch {
        groups
            .entry(pending.work.group_key())
            .or_default()
            .push(pending);
    }
    for group in groups.values() {
        answer_group(epoch, group);
    }
}

/// One batch-kernel call for a group that shares a (kind, parameter) key.
fn answer_group(epoch: &EpochState, group: &[&Pending]) {
    let queries: Vec<&[f32]> = group.iter().map(|p| p.work.query()).collect();
    match &group[0].work {
        Work::Range { eps, .. } => {
            let results = epoch.engine.range_batch(&queries, *eps);
            for (pending, hits) in group.iter().zip(results) {
                pending.slot.deliver(epoch.epoch, Reply::Range(hits));
            }
        }
        Work::RangeCount { eps, .. } => {
            let results = epoch.engine.range_count_batch(&queries, *eps);
            for (pending, count) in group.iter().zip(results) {
                pending.slot.deliver(epoch.epoch, Reply::Count(count));
            }
        }
        Work::Knn { k, .. } => {
            let results = epoch.engine.knn_batch(&queries, *k);
            for (pending, neighbors) in group.iter().zip(results) {
                pending.slot.deliver(epoch.epoch, Reply::Knn(neighbors));
            }
        }
        Work::Estimate { eps, .. } => {
            let results = epoch.pipeline.estimate_batch(&queries, *eps);
            for (pending, estimate) in group.iter().zip(results) {
                pending.slot.deliver(epoch.epoch, Reply::Estimate(estimate));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use laf_cardest::{NetConfig, TrainingSetBuilder};
    use laf_core::LafConfig;
    use laf_synth::EmbeddingMixtureConfig;
    use laf_vector::Dataset;

    fn data(seed: u64) -> Dataset {
        EmbeddingMixtureConfig {
            n_points: 300,
            dim: 12,
            clusters: 4,
            noise_fraction: 0.2,
            seed,
            ..Default::default()
        }
        .generate()
        .unwrap()
        .0
    }

    fn pipeline(seed: u64) -> LafPipeline {
        LafPipeline::builder(LafConfig::new(0.3, 4, 1.0))
            .net(NetConfig::tiny())
            .training(TrainingSetBuilder {
                max_queries: Some(60),
                ..Default::default()
            })
            .train(data(seed))
            .unwrap()
    }

    fn assert_send_sync<T: Send + Sync>() {}

    #[test]
    fn server_is_shareable_across_threads() {
        assert_send_sync::<LafServer>();
        assert_send_sync::<ServeError>();
        assert_send_sync::<Served<Vec<u32>>>();
    }

    #[test]
    fn served_results_match_the_synchronous_path() {
        let pipeline = pipeline(7);
        let engine = pipeline.engine();
        let queries: Vec<Vec<f32>> = (0..40).map(|i| pipeline.data().row(i).to_vec()).collect();
        let expected_range: Vec<Vec<u32>> = queries.iter().map(|q| engine.range(q, 0.3)).collect();
        let expected_count: Vec<usize> =
            queries.iter().map(|q| engine.range_count(q, 0.3)).collect();
        let expected_knn: Vec<Vec<Neighbor>> = queries.iter().map(|q| engine.knn(q, 5)).collect();
        let expected_est: Vec<f32> = queries.iter().map(|q| pipeline.estimate(q, 0.3)).collect();

        let server = LafServer::start(pipeline, ServeConfig::default());
        std::thread::scope(|scope| {
            for (i, q) in queries.iter().enumerate() {
                let server = &server;
                let expected_range = &expected_range;
                let expected_count = &expected_count;
                let expected_knn = &expected_knn;
                let expected_est = &expected_est;
                scope.spawn(move || {
                    let served = server.range(q, 0.3).unwrap();
                    assert_eq!(served.epoch, 1);
                    assert_eq!(served.value, expected_range[i], "range query {i}");
                    let count = server.range_count(q, 0.3).unwrap().value;
                    assert_eq!(count, expected_count[i], "count query {i}");
                    let knn = server.knn(q, 5).unwrap().value;
                    assert_eq!(knn.len(), expected_knn[i].len(), "knn query {i}");
                    for (a, b) in knn.iter().zip(&expected_knn[i]) {
                        assert_eq!(a.index, b.index, "knn query {i}");
                        assert_eq!(a.dist.to_bits(), b.dist.to_bits(), "knn query {i}");
                    }
                    let est = server.estimate(q, 0.3).unwrap().value;
                    assert_eq!(est.to_bits(), expected_est[i].to_bits(), "estimate {i}");
                });
            }
        });
        let report = server.shutdown();
        assert_eq!(report.submitted, 160);
        assert_eq!(report.completed, 160);
        assert_eq!(report.rejected, 0);
    }

    #[test]
    fn tickets_pipeline_requests_from_one_thread() {
        let pipeline = pipeline(31);
        let engine = pipeline.engine();
        let queries: Vec<Vec<f32>> = (0..12).map(|i| pipeline.data().row(i).to_vec()).collect();
        let expected: Vec<usize> = queries.iter().map(|q| engine.range_count(q, 0.3)).collect();
        let server = LafServer::start(pipeline, ServeConfig::default());
        let tickets: Vec<Ticket<usize>> = queries
            .iter()
            .map(|q| server.range_count_async(q, 0.3).unwrap())
            .collect();
        for (i, ticket) in tickets.into_iter().enumerate() {
            let served = ticket.wait();
            assert_eq!(served.epoch, 1);
            assert_eq!(served.value, expected[i], "pipelined count query {i}");
        }
        let report = server.shutdown();
        assert_eq!(report.completed, 12);
        assert!(
            report.batches < 12,
            "12 pipelined submissions from one thread must coalesce \
             (got {} batches)",
            report.batches
        );
    }

    #[test]
    fn dropped_tickets_are_still_answered_and_counted() {
        let pipeline = pipeline(37);
        let q: Vec<f32> = pipeline.data().row(0).to_vec();
        let server = LafServer::start(pipeline, ServeConfig::default());
        let kept = server.range_count_async(&q, 0.3).unwrap();
        drop(server.range_count_async(&q, 0.3).unwrap());
        let served = kept.wait();
        assert_eq!(served.epoch, 1);
        let report = server.shutdown();
        assert_eq!(report.submitted, 2);
        assert_eq!(report.completed, 2, "abandoned tickets still drain");
    }

    #[test]
    fn uncoalesced_config_serves_identically() {
        let pipeline = pipeline(9);
        let engine = pipeline.engine();
        let q: Vec<f32> = pipeline.data().row(3).to_vec();
        let expected = engine.range(&q, 0.3);
        let server = LafServer::start(pipeline, ServeConfig::uncoalesced());
        assert_eq!(server.range(&q, 0.3).unwrap().value, expected);
    }

    #[test]
    fn coalescing_actually_batches_under_concurrency() {
        let pipeline = pipeline(11);
        let queries: Vec<Vec<f32>> = (0..64).map(|i| pipeline.data().row(i).to_vec()).collect();
        let server = LafServer::start(
            pipeline,
            ServeConfig {
                coalesce_window_us: 5_000,
                ..ServeConfig::default()
            },
        );
        std::thread::scope(|scope| {
            for q in &queries {
                let server = &server;
                scope.spawn(move || {
                    server.range(q, 0.3).unwrap();
                });
            }
        });
        let report = server.shutdown();
        assert_eq!(report.completed, 64);
        assert!(
            report.batches < 64,
            "64 concurrent requests must coalesce into fewer than 64 batches \
             (got {} batches, mean occupancy {:.2})",
            report.batches,
            report.mean_batch_occupancy
        );
    }

    /// A server whose config lets tests park 3 clients in the queue: below
    /// the dot4 tile, inside a long window, the dispatcher will not flush
    /// them until woken.
    fn parking_server(config: ServeConfig, seed: u64) -> (LafServer, Vec<f32>) {
        let pipeline = pipeline(seed);
        let q: Vec<f32> = pipeline.data().row(0).to_vec();
        (LafServer::start(pipeline, config), q)
    }

    fn wait_for_depth(server: &LafServer, depth: usize) {
        while server.queue_depth() < depth {
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
    }

    /// Wake the dispatcher into its shutdown drain without consuming the
    /// server (scoped client threads still borrow it).
    fn trigger_shutdown(server: &LafServer) {
        server.shared.state.lock().unwrap().shutdown = true;
        server.shared.wake.notify_all();
    }

    #[test]
    fn admission_control_rejects_beyond_the_bound() {
        let (server, q) = parking_server(
            ServeConfig {
                coalesce_window_us: 500_000,
                max_batch: 8,
                max_queue_depth: 3,
            },
            13,
        );
        std::thread::scope(|scope| {
            for _ in 0..3 {
                let server = &server;
                let q = &q;
                scope.spawn(move || {
                    let _ = server.range(q, 0.3);
                });
            }
            wait_for_depth(&server, 3);
            // The queue is pinned at the bound until the window expires; one
            // more submission must bounce rather than buffer.
            match server.range_count(&q, 0.3) {
                Err(ServeError::Overloaded { depth, limit }) => {
                    assert_eq!(limit, 3);
                    assert!(depth >= limit);
                }
                other => panic!("expected Overloaded, got {other:?}"),
            }
            trigger_shutdown(&server);
        });
        let report = server.shutdown();
        assert_eq!(report.rejected, 1);
        assert_eq!(report.completed, 3);
    }

    #[test]
    fn shutdown_drains_queued_requests() {
        let (server, q) = parking_server(
            ServeConfig {
                coalesce_window_us: 500_000,
                ..ServeConfig::default()
            },
            17,
        );
        std::thread::scope(|scope| {
            for _ in 0..3 {
                let server = &server;
                let q = &q;
                scope.spawn(move || {
                    // Queued mid-window; shutdown must still answer it
                    // rather than losing it.
                    server.range(q, 0.3).unwrap();
                });
            }
            wait_for_depth(&server, 3);
            trigger_shutdown(&server);
        });
        let report = server.shutdown();
        assert_eq!(report.submitted, 3);
        assert_eq!(report.completed, 3, "no request may be lost");
    }

    #[test]
    fn reload_swaps_epochs_and_prebuilds_the_engine() {
        let server = LafServer::start(pipeline(19), ServeConfig::default());
        assert_eq!(server.current_epoch(), 1);
        let replacement = pipeline(23);
        let q: Vec<f32> = replacement.data().row(0).to_vec();
        let expected = replacement.engine().range(&q, 0.3);
        assert_eq!(server.reload(replacement), 2);
        assert_eq!(server.current_epoch(), 2);
        let served = server.range(&q, 0.3).unwrap();
        assert_eq!(served.epoch, 2);
        assert_eq!(served.value, expected);
        assert_eq!(server.stats_report().reloads, 1);
    }

    #[test]
    fn submitting_after_shutdown_fails_cleanly() {
        let mut server = LafServer::start(pipeline(29), ServeConfig::default());
        let q = vec![0.0f32; 12];
        server.shutdown_inner();
        assert_eq!(server.range(&q, 0.3), Err(ServeError::ShuttingDown));
        assert_eq!(
            ServeError::ShuttingDown.to_string(),
            "server is shutting down"
        );
        let overloaded = ServeError::Overloaded { depth: 4, limit: 4 };
        assert!(overloaded.to_string().contains("queue depth 4"));
    }
}
