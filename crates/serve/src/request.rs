//! The unified request/response surface shared by every serving front.
//!
//! [`QueryRequest`] is the single front door: one enum covers the four read
//! kinds that used to be four separate per-kind request paths, plus the two
//! write kinds of the mutable plane. [`crate::LafServer::submit`] /
//! [`crate::LafServer::submit_async`] and [`crate::TenantServer::submit`]
//! accept it; the per-kind typed methods remain as thin wrappers over the
//! same path. Both enums are `#[non_exhaustive]`: new request kinds are an
//! additive change, so routers matching on them must carry a wildcard arm.

use laf_index::Neighbor;

/// Why a write reached the mutable pipeline but was not applied.
///
/// Distinct from [`crate::ServeError`], which covers *submission* failures:
/// a `WriteError` is delivered through the response (the request was
/// admitted, processed in order, and durably rejected without side effects).
#[non_exhaustive]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteError {
    /// The inserted row's dimensionality does not match the dataset's.
    DimensionMismatch,
    /// The delete target is not a live dense id (it may have been deleted
    /// by an earlier write in the same queue).
    OutOfBounds,
    /// Appending to or syncing the write-ahead log failed; the write is
    /// neither applied nor durable.
    Storage,
}

impl std::fmt::Display for WriteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WriteError::DimensionMismatch => write!(f, "row dimensionality mismatch"),
            WriteError::OutOfBounds => write!(f, "delete target is not a live dense id"),
            WriteError::Storage => write!(f, "write-ahead log I/O failure"),
        }
    }
}

impl std::error::Error for WriteError {}

/// One request, any kind: the argument to [`crate::LafServer::submit`],
/// [`crate::LafServer::submit_async`] and [`crate::TenantServer::submit`].
///
/// Read kinds are answered on every server; the write kinds route through
/// the write-ahead log of a mutable server
/// ([`crate::LafServer::start_mutable`]) and are rejected with
/// [`crate::ServeError::ReadOnly`] (or [`crate::CacheError::ReadOnly`] on a
/// tenant server) everywhere else.
#[non_exhaustive]
#[derive(Debug, Clone, PartialEq)]
pub enum QueryRequest {
    /// ε-range query: ids of rows within `eps` of `query`, ascending.
    Range {
        /// The query vector.
        query: Vec<f32>,
        /// The range radius, in the configured metric.
        eps: f32,
    },
    /// ε-range count: how many rows lie within `eps` of `query`.
    RangeCount {
        /// The query vector.
        query: Vec<f32>,
        /// The range radius, in the configured metric.
        eps: f32,
    },
    /// k-nearest-neighbor query.
    Knn {
        /// The query vector.
        query: Vec<f32>,
        /// How many neighbors to return.
        k: usize,
    },
    /// Learned cardinality estimate for an ε-range count.
    Estimate {
        /// The query vector.
        query: Vec<f32>,
        /// The range radius, in the configured metric.
        eps: f32,
    },
    /// Insert a row (mutable servers only); logged before it is applied.
    Insert {
        /// The row to append.
        row: Vec<f32>,
    },
    /// Delete the row with this dense live id (mutable servers only).
    Delete {
        /// Dense live id of the row to delete, at the time this request is
        /// processed (earlier queued deletes shift later ids down).
        dense: u64,
    },
}

/// The answer to a [`QueryRequest`], same-kind by construction: `Range`
/// requests resolve to [`QueryResponse::Range`], and so on; the write kinds
/// resolve to [`QueryResponse::Written`] on success and
/// [`QueryResponse::Rejected`] when the pipeline refused the write.
#[non_exhaustive]
#[derive(Debug, Clone)]
pub enum QueryResponse {
    /// Row ids within range, ascending.
    Range(Vec<u32>),
    /// The neighbor count.
    Count(usize),
    /// The k nearest neighbors, nearest first.
    Knn(Vec<Neighbor>),
    /// The learned estimate.
    Estimate(f32),
    /// The write committed; `lsn` is its log sequence number.
    Written {
        /// Log sequence number assigned by the write-ahead log.
        lsn: u64,
    },
    /// The write was admitted but durably rejected without side effects.
    Rejected(WriteError),
}
