//! Buffer-managed multi-tenant snapshot cache.
//!
//! A serving host holds snapshots for many tenants but has one memory
//! budget. [`SnapshotCache`] is the buffer manager between the two: tenants
//! are registered with the path of their (read-only) snapshot file, a
//! request [`pin`](SnapshotCache::pin)s its tenant's pipeline — loading it
//! on a miss, evicting unpinned victims if the byte budget or entry cap
//! would be exceeded — and the returned [`PinnedSnapshot`] guard keeps the
//! entry ineligible for eviction until dropped.
//!
//! ## Pin/unpin contract
//!
//! * A resident entry with at least one live pin is **never** evicted: a
//!   request that is mid-query cannot have its dataset unmapped underneath
//!   it. (The pipeline is also held behind an `Arc`, so even a bug on this
//!   front would degrade to memory over-use, never to a dangling read.)
//! * Pins are short: take one per request (or request batch), drop it when
//!   the response is built. Holding pins across idle time defeats the
//!   buffer manager.
//! * [`SnapshotCache::pin`] is the loading entry point;
//!   [`SnapshotCache::try_pin`] never loads and reports a cold tenant as
//!   [`CacheError::Evicted`], which is how probes distinguish "evicted /
//!   never loaded" from "unknown tenant".
//!
//! ## Eviction
//!
//! Victim choice is delegated to an [`EvictionPolicy`] (default
//! [`LruPolicy`]); the cache enforces the *rules* — only unpinned entries
//! are offered as candidates, the byte budget and entry cap are checked
//! after every admission — while the policy supplies the *preference*. If
//! every resident entry is pinned and the budget still does not fit the
//! incoming snapshot, admission fails with [`CacheError::Overloaded`]
//! rather than over-committing.
//!
//! Bytes are accounted at snapshot-file granularity (the on-disk size,
//! which for mmap-served snapshots is exactly the mapped footprint), so
//! `resident_bytes <= byte_budget` holds at every instant the inner lock is
//! released.

use laf_core::fault;
use laf_core::snapshot::Snapshot;
use laf_core::{LafPipeline, SnapshotError};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::ops::Deref;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Sizing knobs for a [`SnapshotCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Total bytes of resident snapshots the cache may hold. Admissions
    /// that would exceed it evict unpinned victims first and fail with
    /// [`CacheError::Overloaded`] when none suffice.
    pub byte_budget: u64,
    /// Maximum number of resident snapshots, regardless of size.
    pub max_entries: usize,
    /// Per-tenant quota: the largest snapshot a single tenant may load,
    /// in bytes. `0` disables the quota. A tenant whose snapshot exceeds it
    /// is rejected with [`CacheError::QuotaExceeded`] before any eviction
    /// happens on its behalf.
    pub tenant_quota: u64,
}

impl Default for CacheConfig {
    fn default() -> Self {
        Self {
            byte_budget: 256 << 20,
            max_entries: 16,
            tenant_quota: 0,
        }
    }
}

/// Errors produced by [`SnapshotCache`] operations.
#[derive(Debug)]
pub enum CacheError {
    /// The tenant was never [`register`](SnapshotCache::register)ed.
    UnknownTenant(String),
    /// The tenant's snapshot is larger than the per-tenant quota.
    QuotaExceeded {
        /// Tenant whose snapshot was rejected.
        tenant: String,
        /// Size of the tenant's snapshot file.
        bytes: u64,
        /// The configured [`CacheConfig::tenant_quota`].
        quota: u64,
    },
    /// The snapshot does not fit: every resident entry is pinned (or the
    /// snapshot alone exceeds the budget), so nothing can be evicted.
    Overloaded {
        /// Bytes the admission needed to free.
        needed: u64,
        /// The configured [`CacheConfig::byte_budget`].
        budget: u64,
    },
    /// Non-loading access ([`SnapshotCache::try_pin`]) to a tenant that is
    /// registered but not resident — evicted, or never loaded.
    Evicted {
        /// The non-resident tenant.
        tenant: String,
    },
    /// Loading the tenant's snapshot failed.
    Load {
        /// Tenant whose snapshot failed to load.
        tenant: String,
        /// The underlying snapshot error.
        source: SnapshotError,
    },
    /// A write request was routed to a tenant's cached snapshot. Cached
    /// snapshots are read-only by construction (many pins share one mmap);
    /// writes need a dedicated mutable server for the tenant.
    ReadOnly {
        /// The tenant whose snapshot the write targeted.
        tenant: String,
    },
    /// [`SnapshotCache::register`] validated the snapshot eagerly and the
    /// file failed: bad magic, unsupported version, damaged header or an
    /// out-of-bounds section table. The path names exactly which file to
    /// regenerate.
    Corrupt {
        /// Tenant whose registration was rejected.
        tenant: String,
        /// The snapshot file that failed validation.
        path: PathBuf,
        /// The underlying validation error.
        source: SnapshotError,
    },
    /// The tenant's snapshot was quarantined by a [`SnapshotCache::scrub`]
    /// pass (a section CRC failed on re-verification). Quarantined tenants
    /// reject pins until re-[`register`](SnapshotCache::register)ed with a
    /// repaired or regenerated file.
    Quarantined {
        /// The quarantined tenant.
        tenant: String,
    },
}

impl fmt::Display for CacheError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CacheError::UnknownTenant(tenant) => write!(f, "unknown tenant `{tenant}`"),
            CacheError::QuotaExceeded {
                tenant,
                bytes,
                quota,
            } => write!(
                f,
                "tenant `{tenant}` snapshot is {bytes} bytes, over the {quota}-byte quota"
            ),
            CacheError::Overloaded { needed, budget } => write!(
                f,
                "cache overloaded: {needed} bytes needed but every resident \
                 snapshot is pinned (budget {budget} bytes)"
            ),
            CacheError::Evicted { tenant } => {
                write!(
                    f,
                    "tenant `{tenant}` is not resident (evicted or never loaded)"
                )
            }
            CacheError::Load { tenant, source } => {
                write!(f, "loading tenant `{tenant}` snapshot failed: {source}")
            }
            CacheError::ReadOnly { tenant } => {
                write!(
                    f,
                    "tenant `{tenant}` snapshot is read-only: writes need a mutable server"
                )
            }
            CacheError::Corrupt {
                tenant,
                path,
                source,
            } => {
                write!(
                    f,
                    "tenant `{tenant}` snapshot {} failed validation: {source}",
                    path.display()
                )
            }
            CacheError::Quarantined { tenant } => {
                write!(
                    f,
                    "tenant `{tenant}` snapshot is quarantined (scrub found corruption); \
                     re-register a repaired file"
                )
            }
        }
    }
}

impl std::error::Error for CacheError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CacheError::Load { source, .. } | CacheError::Corrupt { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// Victim-selection strategy plugged into a [`SnapshotCache`].
///
/// The cache calls the `on_*` hooks (under its internal lock, in event
/// order) so the policy can maintain whatever bookkeeping it wants, and
/// consults [`choose_victim`](EvictionPolicy::choose_victim) when an
/// admission needs space. The cache — not the policy — enforces the safety
/// rules: only unpinned tenants are ever offered as candidates, and a
/// policy returning `None` (or a tenant outside `candidates`) simply fails
/// the admission with [`CacheError::Overloaded`].
pub trait EvictionPolicy: Send + fmt::Debug {
    /// A snapshot was admitted for `tenant`.
    fn on_admit(&mut self, tenant: &str);
    /// A resident snapshot was pinned again (a cache hit).
    fn on_use(&mut self, tenant: &str);
    /// `tenant`'s snapshot left the cache (evicted or invalidated).
    fn on_remove(&mut self, tenant: &str);
    /// Pick the next victim among `candidates` (all resident, all
    /// unpinned). `None` means "no preference — fail the admission".
    fn choose_victim(&mut self, candidates: &[&str]) -> Option<String>;
}

/// Least-recently-used eviction: victims are chosen in order of last pin.
#[derive(Debug, Default)]
pub struct LruPolicy {
    /// Tenants from least- to most-recently used.
    order: Vec<String>,
}

impl LruPolicy {
    /// A fresh LRU policy.
    pub fn new() -> Self {
        Self::default()
    }

    fn touch(&mut self, tenant: &str) {
        self.order.retain(|t| t != tenant);
        self.order.push(tenant.to_string());
    }
}

impl EvictionPolicy for LruPolicy {
    fn on_admit(&mut self, tenant: &str) {
        self.touch(tenant);
    }

    fn on_use(&mut self, tenant: &str) {
        self.touch(tenant);
    }

    fn on_remove(&mut self, tenant: &str) {
        self.order.retain(|t| t != tenant);
    }

    fn choose_victim(&mut self, candidates: &[&str]) -> Option<String> {
        self.order
            .iter()
            .find(|t| candidates.contains(&t.as_str()))
            .cloned()
    }
}

/// Lock-free cache counters; every mutation happens while the cache's inner
/// lock is held, so `report` values are mutually consistent snapshots
/// whenever no operation is mid-flight.
#[derive(Debug, Default)]
pub struct CacheStats {
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    rejections: AtomicU64,
    pins: AtomicU64,
    unpins: AtomicU64,
    bytes_loaded: AtomicU64,
    scrub_passes: AtomicU64,
    scrub_skipped_pinned: AtomicU64,
    quarantines: AtomicU64,
    repairs_attempted: AtomicU64,
    repairs_succeeded: AtomicU64,
    repairs_failed: AtomicU64,
    repair_time_us_total: AtomicU64,
}

impl CacheStats {
    /// Pins served from a resident entry.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Pins that had to load the snapshot.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Resident snapshots evicted to make room.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// [`SnapshotCache::scrub`] passes completed.
    pub fn scrub_passes(&self) -> u64 {
        self.scrub_passes.load(Ordering::Relaxed)
    }

    /// Tenants quarantined across all scrub passes.
    pub fn quarantines(&self) -> u64 {
        self.quarantines.load(Ordering::Relaxed)
    }

    pub(crate) fn record_repair_attempt(&self) {
        self.repairs_attempted.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_repair_success(&self, elapsed_us: u64) {
        self.repairs_succeeded.fetch_add(1, Ordering::Relaxed);
        self.repair_time_us_total
            .fetch_add(elapsed_us, Ordering::Relaxed);
    }

    pub(crate) fn record_repair_failure(&self) {
        self.repairs_failed.fetch_add(1, Ordering::Relaxed);
    }
}

/// Serializable snapshot of a cache's counters and residency, embedded in
/// `BENCH_sharding.json` and printed by the `serve-tenants` example mode.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CacheStatsReport {
    /// Pins served from a resident entry.
    pub hits: u64,
    /// Pins that had to load the snapshot.
    pub misses: u64,
    /// Resident snapshots evicted to make room.
    pub evictions: u64,
    /// Admissions rejected (`Overloaded` / `QuotaExceeded`).
    pub rejections: u64,
    /// Total pins taken.
    pub pins: u64,
    /// Total pins released.
    pub unpins: u64,
    /// Bytes of snapshot files loaded over the cache's lifetime.
    pub bytes_loaded: u64,
    /// Bytes resident right now.
    pub resident_bytes: u64,
    /// Snapshots resident right now.
    pub resident_entries: usize,
    /// The configured byte budget, for downstream invariant checks.
    pub byte_budget: u64,
    /// [`SnapshotCache::scrub`] passes completed over the cache's lifetime.
    #[serde(default)]
    pub scrub_passes: u64,
    /// Pinned resident entries whose file failed a scrub re-verification
    /// — visible corruption the scrub could not quarantine because the
    /// mmap was mid-query (cumulative across passes).
    #[serde(default)]
    pub scrub_skipped_pinned: u64,
    /// Tenants quarantined across all scrub passes.
    #[serde(default)]
    pub quarantines: u64,
    /// Repairs the maintenance supervisor started.
    #[serde(default)]
    pub repairs_attempted: u64,
    /// Repairs that published a verified replica and lifted quarantine.
    #[serde(default)]
    pub repairs_succeeded: u64,
    /// Repairs that exhausted every replica candidate.
    #[serde(default)]
    pub repairs_failed: u64,
    /// Mean time from quarantine to successful repair, in microseconds
    /// (`0.0` until a repair succeeds).
    #[serde(default)]
    pub mean_time_to_repair_us: f64,
}

/// One resident snapshot.
struct CacheEntry {
    pipeline: Arc<LafPipeline>,
    bytes: u64,
    pins: u32,
}

struct CacheInner {
    /// Tenant registry: tenant id → snapshot path.
    tenants: HashMap<String, PathBuf>,
    /// Resident entries.
    entries: HashMap<String, CacheEntry>,
    /// Tenants whose snapshot failed a [`SnapshotCache::scrub`] CRC
    /// re-verification. Pins are rejected until the tenant re-registers.
    quarantined: HashSet<String>,
    policy: Box<dyn EvictionPolicy>,
    resident_bytes: u64,
}

/// Outcome of one [`SnapshotCache::scrub`] pass.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScrubReport {
    /// Resident snapshots whose on-disk CRCs re-verified clean (pinned or
    /// not).
    pub verified: Vec<String>,
    /// Tenants quarantined this pass (CRC mismatch on re-verification).
    pub quarantined: Vec<String>,
    /// Resident entries whose file failed re-verification but were pinned,
    /// so quarantine was skipped — a mid-query mmap is never unmapped
    /// behind the request. These tenants are also listed in
    /// [`ScrubReport::pinned_corrupt`]; a later pass quarantines them once
    /// the pins drain.
    pub skipped_pinned: usize,
    /// The tenants counted by [`ScrubReport::skipped_pinned`]: pinned
    /// entries whose file no longer verifies. Visible corruption, not yet
    /// quarantined.
    #[serde(default)]
    pub pinned_corrupt: Vec<String>,
}

/// A buffer-managed, multi-tenant snapshot cache (see the crate
/// documentation's "Multi-tenant snapshot cache" section).
pub struct SnapshotCache {
    config: CacheConfig,
    inner: Mutex<CacheInner>,
    stats: CacheStats,
}

impl fmt::Debug for SnapshotCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.inner.lock().expect("cache lock");
        f.debug_struct("SnapshotCache")
            .field("config", &self.config)
            .field("tenants", &inner.tenants.len())
            .field("resident", &inner.entries.len())
            .field("resident_bytes", &inner.resident_bytes)
            .finish_non_exhaustive()
    }
}

impl SnapshotCache {
    /// A cache with the default [`LruPolicy`].
    pub fn new(config: CacheConfig) -> Arc<Self> {
        Self::with_policy(config, Box::new(LruPolicy::new()))
    }

    /// A cache with a custom eviction policy.
    pub fn with_policy(config: CacheConfig, policy: Box<dyn EvictionPolicy>) -> Arc<Self> {
        Arc::new(Self {
            config,
            inner: Mutex::new(CacheInner {
                tenants: HashMap::new(),
                entries: HashMap::new(),
                quarantined: HashSet::new(),
                policy,
                resident_bytes: 0,
            }),
            stats: CacheStats::default(),
        })
    }

    /// The cache's sizing knobs.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// The cache's counters.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Register (or re-point) `tenant`'s snapshot path. Re-pointing a
    /// resident tenant invalidates its cached entry once unpinned; live
    /// pins keep serving the old snapshot until dropped.
    ///
    /// The snapshot header and section table are validated **eagerly**
    /// (without reading section bodies), so a truncated or garbage file is
    /// rejected here — naming the offending path — instead of surfacing as
    /// a load failure on some later request. Re-registering also lifts any
    /// [`CacheError::Quarantined`] state left by a [`scrub`](Self::scrub)
    /// pass: the operator has, by registering, asserted the file is fresh.
    pub fn register<P: AsRef<Path>>(&self, tenant: &str, path: P) -> Result<(), CacheError> {
        Snapshot::validate_header(path.as_ref()).map_err(|source| CacheError::Corrupt {
            tenant: tenant.to_string(),
            path: path.as_ref().to_path_buf(),
            source,
        })?;
        let mut inner = self.inner.lock().expect("cache lock");
        inner.quarantined.remove(tenant);
        let prev = inner
            .tenants
            .insert(tenant.to_string(), path.as_ref().to_path_buf());
        // A changed path invalidates the resident entry (if unpinned) so the
        // next pin loads the new file instead of serving a stale snapshot.
        if prev.is_some_and(|p| p != path.as_ref())
            && inner.entries.get(tenant).is_some_and(|e| e.pins == 0)
        {
            Self::remove_entry(&mut inner, tenant);
        }
        Ok(())
    }

    /// Registered tenant ids, in no particular order.
    pub fn tenants(&self) -> Vec<String> {
        let inner = self.inner.lock().expect("cache lock");
        inner.tenants.keys().cloned().collect()
    }

    /// The snapshot path `tenant` is currently registered to serve, if any.
    pub fn registered_path(&self, tenant: &str) -> Option<PathBuf> {
        let inner = self.inner.lock().expect("cache lock");
        inner.tenants.get(tenant).cloned()
    }

    /// Whether `tenant`'s snapshot is currently resident.
    pub fn resident(&self, tenant: &str) -> bool {
        let inner = self.inner.lock().expect("cache lock");
        inner.entries.contains_key(tenant)
    }

    /// Pin `tenant`'s pipeline, loading the snapshot on a miss (evicting
    /// unpinned victims as needed). The returned guard keeps the entry
    /// pinned — ineligible for eviction — until dropped.
    ///
    /// Misses load and build the engine while holding the cache lock, so
    /// accounting is exact: at no instant do resident snapshots exceed the
    /// byte budget. Concurrent hits on other tenants briefly queue behind a
    /// miss; the engine build is the dominant cost and is paid once.
    pub fn pin(self: &Arc<Self>, tenant: &str) -> Result<PinnedSnapshot, CacheError> {
        let mut inner = self.inner.lock().expect("cache lock");
        if inner.quarantined.contains(tenant) {
            return Err(CacheError::Quarantined {
                tenant: tenant.to_string(),
            });
        }
        if let Some(entry) = inner.entries.get_mut(tenant) {
            entry.pins += 1;
            let pipeline = Arc::clone(&entry.pipeline);
            inner.policy.on_use(tenant);
            self.stats.hits.fetch_add(1, Ordering::Relaxed);
            self.stats.pins.fetch_add(1, Ordering::Relaxed);
            return Ok(self.guard(tenant, pipeline));
        }
        let path = inner
            .tenants
            .get(tenant)
            .cloned()
            .ok_or_else(|| CacheError::UnknownTenant(tenant.to_string()))?;
        let bytes = std::fs::metadata(&path)
            .map(|m| m.len())
            .map_err(|e| CacheError::Load {
                tenant: tenant.to_string(),
                source: SnapshotError::Io(e),
            })?;
        if self.config.tenant_quota > 0 && bytes > self.config.tenant_quota {
            self.stats.rejections.fetch_add(1, Ordering::Relaxed);
            return Err(CacheError::QuotaExceeded {
                tenant: tenant.to_string(),
                bytes,
                quota: self.config.tenant_quota,
            });
        }
        self.make_room(&mut inner, bytes).inspect_err(|_| {
            self.stats.rejections.fetch_add(1, Ordering::Relaxed);
        })?;
        // Failpoint: the mmap of a cold snapshot fails (file vanished
        // between metadata and map, transient EIO). Surfaces as the same
        // typed `Load` error a real mmap failure produces.
        if fault::fire("cache.pin.mmap") {
            return Err(CacheError::Load {
                tenant: tenant.to_string(),
                source: SnapshotError::Io(fault::injected("cache.pin.mmap")),
            });
        }
        let pipeline = LafPipeline::load_mmap(&path).map_err(|source| CacheError::Load {
            tenant: tenant.to_string(),
            source,
        })?;
        // Build the engine as part of the miss: every later query on this
        // pin (and on every hit) reuses the cached build.
        let _ = pipeline.engine();
        let pipeline = Arc::new(pipeline);
        inner.entries.insert(
            tenant.to_string(),
            CacheEntry {
                pipeline: Arc::clone(&pipeline),
                bytes,
                pins: 1,
            },
        );
        inner.resident_bytes += bytes;
        inner.policy.on_admit(tenant);
        self.stats.misses.fetch_add(1, Ordering::Relaxed);
        self.stats.pins.fetch_add(1, Ordering::Relaxed);
        self.stats.bytes_loaded.fetch_add(bytes, Ordering::Relaxed);
        Ok(self.guard(tenant, pipeline))
    }

    /// Pin `tenant`'s pipeline **only if already resident** — never loads.
    ///
    /// # Errors
    /// [`CacheError::Evicted`] when the tenant is registered but not
    /// resident; [`CacheError::UnknownTenant`] when it was never
    /// registered.
    pub fn try_pin(self: &Arc<Self>, tenant: &str) -> Result<PinnedSnapshot, CacheError> {
        let mut inner = self.inner.lock().expect("cache lock");
        if inner.quarantined.contains(tenant) {
            return Err(CacheError::Quarantined {
                tenant: tenant.to_string(),
            });
        }
        if let Some(entry) = inner.entries.get_mut(tenant) {
            entry.pins += 1;
            let pipeline = Arc::clone(&entry.pipeline);
            inner.policy.on_use(tenant);
            self.stats.hits.fetch_add(1, Ordering::Relaxed);
            self.stats.pins.fetch_add(1, Ordering::Relaxed);
            return Ok(self.guard(tenant, pipeline));
        }
        if inner.tenants.contains_key(tenant) {
            Err(CacheError::Evicted {
                tenant: tenant.to_string(),
            })
        } else {
            Err(CacheError::UnknownTenant(tenant.to_string()))
        }
    }

    /// Background scrub pass: re-verify the section CRCs of **every**
    /// resident snapshot — pinned or not — against its on-disk bytes, and
    /// quarantine the unpinned tenants whose files no longer verify (bit
    /// rot, a truncating copy, an operator overwrite gone wrong).
    ///
    /// Quarantined tenants are dropped from residency and every subsequent
    /// [`pin`](Self::pin)/[`try_pin`](Self::try_pin) returns
    /// [`CacheError::Quarantined`] — never a silently wrong answer — until
    /// the tenant is re-[`register`](Self::register)ed with a repaired
    /// file. A **pinned** entry whose file fails verification is never
    /// quarantined (its mmap is mid-query), but the corruption is no
    /// longer silent: the tenant is reported in
    /// [`ScrubReport::pinned_corrupt`] / counted in
    /// [`ScrubReport::skipped_pinned`], so a long-pinned rotten tenant is
    /// visible long before its pins drain and a later pass quarantines it.
    ///
    /// The full-file CRC verification runs **outside** the cache lock, so a
    /// scrub never stalls concurrent pins; the pass re-checks under the
    /// lock that each entry is still unpinned and still points at the same
    /// file before quarantining.
    pub fn scrub(&self) -> ScrubReport {
        let mut report = ScrubReport::default();
        let mut candidates: Vec<(String, PathBuf)> = {
            let inner = self.inner.lock().expect("cache lock");
            inner
                .entries
                .keys()
                .filter_map(|t| inner.tenants.get(t).map(|p| (t.clone(), p.clone())))
                .collect()
        };
        // Verify in tenant order, not hash order: under fault injection the
        // consultation sequence is part of a seeded schedule, and replaying
        // a seed must replay it exactly.
        candidates.sort();
        for (tenant, path) in candidates {
            match Snapshot::verify_file(&path) {
                Ok(()) => report.verified.push(tenant),
                Err(_) => {
                    let mut inner = self.inner.lock().expect("cache lock");
                    // Re-registration may have raced the verify; only act
                    // if the tenant still serves this file.
                    if inner.tenants.get(&tenant) != Some(&path) {
                        continue;
                    }
                    if inner.entries.get(&tenant).is_some_and(|e| e.pins > 0) {
                        report.skipped_pinned += 1;
                        self.stats
                            .scrub_skipped_pinned
                            .fetch_add(1, Ordering::Relaxed);
                        report.pinned_corrupt.push(tenant);
                        continue;
                    }
                    Self::remove_entry(&mut inner, &tenant);
                    inner.quarantined.insert(tenant.clone());
                    self.stats.quarantines.fetch_add(1, Ordering::Relaxed);
                    report.quarantined.push(tenant);
                }
            }
        }
        self.stats.scrub_passes.fetch_add(1, Ordering::Relaxed);
        report.verified.sort();
        report.quarantined.sort();
        report.pinned_corrupt.sort();
        report
    }

    /// Tenants currently quarantined by [`scrub`](Self::scrub), sorted.
    pub fn quarantined(&self) -> Vec<String> {
        let inner = self.inner.lock().expect("cache lock");
        let mut out: Vec<String> = inner.quarantined.iter().cloned().collect();
        out.sort();
        out
    }

    /// Point-in-time snapshot of the counters and current residency.
    pub fn report(&self) -> CacheStatsReport {
        let inner = self.inner.lock().expect("cache lock");
        CacheStatsReport {
            hits: self.stats.hits.load(Ordering::Relaxed),
            misses: self.stats.misses.load(Ordering::Relaxed),
            evictions: self.stats.evictions.load(Ordering::Relaxed),
            rejections: self.stats.rejections.load(Ordering::Relaxed),
            pins: self.stats.pins.load(Ordering::Relaxed),
            unpins: self.stats.unpins.load(Ordering::Relaxed),
            bytes_loaded: self.stats.bytes_loaded.load(Ordering::Relaxed),
            resident_bytes: inner.resident_bytes,
            resident_entries: inner.entries.len(),
            byte_budget: self.config.byte_budget,
            scrub_passes: self.stats.scrub_passes.load(Ordering::Relaxed),
            scrub_skipped_pinned: self.stats.scrub_skipped_pinned.load(Ordering::Relaxed),
            quarantines: self.stats.quarantines.load(Ordering::Relaxed),
            repairs_attempted: self.stats.repairs_attempted.load(Ordering::Relaxed),
            repairs_succeeded: self.stats.repairs_succeeded.load(Ordering::Relaxed),
            repairs_failed: self.stats.repairs_failed.load(Ordering::Relaxed),
            mean_time_to_repair_us: {
                let succeeded = self.stats.repairs_succeeded.load(Ordering::Relaxed);
                if succeeded == 0 {
                    0.0
                } else {
                    self.stats.repair_time_us_total.load(Ordering::Relaxed) as f64
                        / succeeded as f64
                }
            },
        }
    }

    /// Evict unpinned entries until `incoming` more bytes and one more
    /// entry fit within the budgets.
    fn make_room(&self, inner: &mut CacheInner, incoming: u64) -> Result<(), CacheError> {
        if incoming > self.config.byte_budget {
            return Err(CacheError::Overloaded {
                needed: incoming,
                budget: self.config.byte_budget,
            });
        }
        while inner.resident_bytes + incoming > self.config.byte_budget
            || inner.entries.len() + 1 > self.config.max_entries.max(1)
        {
            let candidates: Vec<&str> = inner
                .entries
                .iter()
                .filter(|(_, e)| e.pins == 0)
                .map(|(t, _)| t.as_str())
                .collect();
            let victim = inner
                .policy
                .choose_victim(&candidates)
                .filter(|v| candidates.iter().any(|c| c == v));
            let Some(victim) = victim else {
                return Err(CacheError::Overloaded {
                    needed: incoming,
                    budget: self.config.byte_budget,
                });
            };
            Self::remove_entry(inner, &victim);
            self.stats.evictions.fetch_add(1, Ordering::Relaxed);
        }
        Ok(())
    }

    fn remove_entry(inner: &mut CacheInner, tenant: &str) {
        if let Some(entry) = inner.entries.remove(tenant) {
            debug_assert_eq!(entry.pins, 0, "evicting a pinned entry");
            inner.resident_bytes -= entry.bytes;
            inner.policy.on_remove(tenant);
        }
    }

    fn guard(self: &Arc<Self>, tenant: &str, pipeline: Arc<LafPipeline>) -> PinnedSnapshot {
        PinnedSnapshot {
            cache: Arc::clone(self),
            tenant: tenant.to_string(),
            pipeline,
        }
    }

    fn unpin(&self, tenant: &str) {
        let mut inner = self.inner.lock().expect("cache lock");
        if let Some(entry) = inner.entries.get_mut(tenant) {
            entry.pins = entry.pins.saturating_sub(1);
        }
        self.stats.unpins.fetch_add(1, Ordering::Relaxed);
    }
}

/// RAII pin on a tenant's cached pipeline: [`Deref`]s to the
/// [`LafPipeline`]; dropping it releases the pin (making the entry
/// evictable again once no other pins remain).
pub struct PinnedSnapshot {
    cache: Arc<SnapshotCache>,
    tenant: String,
    pipeline: Arc<LafPipeline>,
}

impl PinnedSnapshot {
    /// The tenant this pin belongs to.
    pub fn tenant(&self) -> &str {
        &self.tenant
    }

    /// The pinned pipeline, shared. The `Arc` may outlive the pin — it
    /// keeps the pipeline alive, but not the cache entry's residency.
    pub fn pipeline(&self) -> Arc<LafPipeline> {
        Arc::clone(&self.pipeline)
    }
}

impl Deref for PinnedSnapshot {
    type Target = LafPipeline;

    fn deref(&self) -> &Self::Target {
        &self.pipeline
    }
}

impl Drop for PinnedSnapshot {
    fn drop(&mut self) {
        self.cache.unpin(&self.tenant);
    }
}

impl fmt::Debug for PinnedSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PinnedSnapshot")
            .field("tenant", &self.tenant)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use laf_cardest::{NetConfig, TrainingSetBuilder};
    use laf_core::{LafConfig, LafPipeline};
    use laf_synth::EmbeddingMixtureConfig;

    fn snapshot_file(dir: &Path, name: &str, seed: u64) -> (PathBuf, u64) {
        let (data, _) = EmbeddingMixtureConfig {
            n_points: 80,
            dim: 6,
            clusters: 2,
            seed,
            ..Default::default()
        }
        .generate()
        .unwrap();
        let path = dir.join(format!("{name}_{}.lafs", std::process::id()));
        LafPipeline::builder(LafConfig::new(0.3, 4, 1.0))
            .net(NetConfig::tiny())
            .training(TrainingSetBuilder {
                max_queries: Some(40),
                ..Default::default()
            })
            .train_and_save(data, &path)
            .unwrap();
        let bytes = std::fs::metadata(&path).unwrap().len();
        (path, bytes)
    }

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("laf_serve_cache_{name}"));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn hit_after_miss_reuses_the_resident_pipeline() {
        let dir = temp_dir("hit");
        let (path, bytes) = snapshot_file(&dir, "a", 1);
        let cache = SnapshotCache::new(CacheConfig {
            byte_budget: bytes * 4,
            ..CacheConfig::default()
        });
        cache.register("a", &path).unwrap();
        let first = cache.pin("a").unwrap();
        let second = cache.pin("a").unwrap();
        assert!(Arc::ptr_eq(&first.pipeline(), &second.pipeline()));
        let report = cache.report();
        assert_eq!((report.misses, report.hits), (1, 1));
        assert_eq!(report.resident_bytes, bytes);
        drop((first, second));
        assert_eq!(cache.report().unpins, 2);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn lru_evicts_the_coldest_unpinned_tenant() {
        let dir = temp_dir("lru");
        let (pa, bytes) = snapshot_file(&dir, "a", 1);
        let (pb, _) = snapshot_file(&dir, "b", 2);
        let (pc, _) = snapshot_file(&dir, "c", 3);
        // Room for exactly two resident snapshots.
        let cache = SnapshotCache::new(CacheConfig {
            byte_budget: bytes * 2 + bytes / 2,
            ..CacheConfig::default()
        });
        cache.register("a", &pa).unwrap();
        cache.register("b", &pb).unwrap();
        cache.register("c", &pc).unwrap();
        drop(cache.pin("a").unwrap());
        drop(cache.pin("b").unwrap());
        drop(cache.pin("a").unwrap()); // a is now warmer than b
        drop(cache.pin("c").unwrap()); // must evict b, the LRU victim
        assert!(cache.resident("a"));
        assert!(!cache.resident("b"));
        assert!(cache.resident("c"));
        assert!(matches!(
            cache.try_pin("b").unwrap_err(),
            CacheError::Evicted { .. }
        ));
        assert_eq!(cache.report().evictions, 1);
        for p in [pa, pb, pc] {
            std::fs::remove_file(p).ok();
        }
    }

    #[test]
    fn pinned_entries_are_never_evicted() {
        let dir = temp_dir("pinned");
        let (pa, bytes) = snapshot_file(&dir, "a", 1);
        let (pb, _) = snapshot_file(&dir, "b", 2);
        // Room for one resident snapshot only.
        let cache = SnapshotCache::new(CacheConfig {
            byte_budget: bytes + bytes / 2,
            ..CacheConfig::default()
        });
        cache.register("a", &pa).unwrap();
        cache.register("b", &pb).unwrap();
        let pinned = cache.pin("a").unwrap();
        let err = cache.pin("b").unwrap_err();
        assert!(matches!(err, CacheError::Overloaded { .. }), "{err}");
        assert!(cache.resident("a"), "the pinned tenant must survive");
        drop(pinned);
        // Unpinned, `a` is now evictable and `b` fits.
        let b = cache.pin("b").unwrap();
        assert!(!cache.resident("a"));
        assert_eq!(b.tenant(), "b");
        let report = cache.report();
        assert_eq!(report.rejections, 1);
        assert_eq!(report.evictions, 1);
        assert!(report.resident_bytes <= report.byte_budget);
        drop(b);
        for p in [pa, pb] {
            std::fs::remove_file(p).ok();
        }
    }

    #[test]
    fn unknown_tenants_and_quotas_are_typed_errors() {
        let dir = temp_dir("typed");
        let (pa, bytes) = snapshot_file(&dir, "a", 1);
        let cache = SnapshotCache::new(CacheConfig {
            byte_budget: bytes * 4,
            tenant_quota: bytes - 1,
            ..CacheConfig::default()
        });
        assert!(matches!(
            cache.pin("ghost").unwrap_err(),
            CacheError::UnknownTenant(_)
        ));
        assert!(matches!(
            cache.try_pin("ghost").unwrap_err(),
            CacheError::UnknownTenant(_)
        ));
        cache.register("a", &pa).unwrap();
        let err = cache.pin("a").unwrap_err();
        assert!(matches!(err, CacheError::QuotaExceeded { .. }), "{err}");
        assert_eq!(cache.report().rejections, 1);
        std::fs::remove_file(pa).ok();
    }

    #[test]
    fn entry_cap_is_enforced_independently_of_bytes() {
        let dir = temp_dir("cap");
        let (pa, bytes) = snapshot_file(&dir, "a", 1);
        let (pb, _) = snapshot_file(&dir, "b", 2);
        let cache = SnapshotCache::new(CacheConfig {
            byte_budget: bytes * 10,
            max_entries: 1,
            tenant_quota: 0,
        });
        cache.register("a", &pa).unwrap();
        cache.register("b", &pb).unwrap();
        drop(cache.pin("a").unwrap());
        drop(cache.pin("b").unwrap());
        assert!(
            !cache.resident("a"),
            "entry cap must evict despite byte room"
        );
        assert_eq!(cache.report().evictions, 1);
        for p in [pa, pb] {
            std::fs::remove_file(p).ok();
        }
    }

    #[test]
    fn repointing_a_tenant_invalidates_the_stale_entry() {
        let dir = temp_dir("repoint");
        let (pa, bytes) = snapshot_file(&dir, "a", 1);
        let (pa2, _) = snapshot_file(&dir, "a2", 2);
        let cache = SnapshotCache::new(CacheConfig {
            byte_budget: bytes * 4,
            ..CacheConfig::default()
        });
        cache.register("a", &pa).unwrap();
        let before = cache.pin("a").unwrap().pipeline();
        cache.register("a", &pa2).unwrap();
        let after = cache.pin("a").unwrap().pipeline();
        assert!(
            !Arc::ptr_eq(&before, &after),
            "a re-pointed tenant must load the new snapshot"
        );
        for p in [pa, pa2] {
            std::fs::remove_file(p).ok();
        }
    }

    #[test]
    fn cache_and_guards_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Arc<SnapshotCache>>();
        assert_send_sync::<PinnedSnapshot>();
        assert_send_sync::<CacheConfig>();
    }

    /// XOR one byte of the file in place (and back, when called twice).
    fn flip_byte(path: &Path, offset: usize) {
        let mut bytes = std::fs::read(path).unwrap();
        bytes[offset] ^= 0x01;
        std::fs::write(path, bytes).unwrap();
    }

    #[test]
    fn register_rejects_a_garbage_file_naming_it() {
        let dir = temp_dir("reject");
        let path = dir.join(format!("garbage_{}.lafs", std::process::id()));
        std::fs::write(&path, b"not a snapshot at all").unwrap();
        let cache = SnapshotCache::new(CacheConfig::default());
        let err = cache.register("a", &path).unwrap_err();
        match &err {
            CacheError::Corrupt {
                tenant, path: p, ..
            } => {
                assert_eq!(tenant, "a");
                assert_eq!(p, &path);
            }
            other => panic!("expected Corrupt, got {other}"),
        }
        assert!(err.to_string().contains("garbage_"), "{err}");
        // The rejected registration left no tenant behind.
        assert!(matches!(
            cache.pin("a").unwrap_err(),
            CacheError::UnknownTenant(_)
        ));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn scrub_quarantines_a_corrupted_resident_snapshot() {
        let dir = temp_dir("scrub");
        let (pa, bytes) = snapshot_file(&dir, "sa", 1);
        let (pb, _) = snapshot_file(&dir, "sb", 2);
        let cache = SnapshotCache::new(CacheConfig {
            byte_budget: bytes * 4,
            ..CacheConfig::default()
        });
        cache.register("a", &pa).unwrap();
        cache.register("b", &pb).unwrap();
        drop(cache.pin("a").unwrap());
        drop(cache.pin("b").unwrap());
        let clean = cache.scrub();
        assert_eq!(clean.verified, vec!["a".to_string(), "b".to_string()]);
        assert!(clean.quarantined.is_empty());
        // Rot a byte in the middle of a's file (a section body, not the
        // header the eager register validation already covered).
        let len = std::fs::metadata(&pa).unwrap().len() as usize;
        flip_byte(&pa, len / 2);
        let report = cache.scrub();
        assert_eq!(report.verified, vec!["b".to_string()]);
        assert_eq!(report.quarantined, vec!["a".to_string()]);
        assert!(!cache.resident("a"), "quarantine drops residency");
        assert!(matches!(
            cache.pin("a").unwrap_err(),
            CacheError::Quarantined { .. }
        ));
        assert!(matches!(
            cache.try_pin("a").unwrap_err(),
            CacheError::Quarantined { .. }
        ));
        assert_eq!(cache.quarantined(), vec!["a".to_string()]);
        // The healthy tenant keeps serving.
        drop(cache.pin("b").unwrap());
        for p in [pa, pb] {
            std::fs::remove_file(p).ok();
        }
    }

    #[test]
    fn re_registering_a_repaired_file_lifts_quarantine() {
        let dir = temp_dir("requarantine");
        let (pa, _) = snapshot_file(&dir, "ra", 7);
        let cache = SnapshotCache::new(CacheConfig::default());
        cache.register("a", &pa).unwrap();
        drop(cache.pin("a").unwrap());
        let len = std::fs::metadata(&pa).unwrap().len() as usize;
        flip_byte(&pa, len / 2);
        assert_eq!(cache.scrub().quarantined, vec!["a".to_string()]);
        assert!(matches!(
            cache.pin("a").unwrap_err(),
            CacheError::Quarantined { .. }
        ));
        // Repair the file and re-register: the tenant serves again.
        flip_byte(&pa, len / 2);
        cache.register("a", &pa).unwrap();
        let pin = cache.pin("a").unwrap();
        assert_eq!(pin.tenant(), "a");
        drop(pin);
        assert!(cache.quarantined().is_empty());
        std::fs::remove_file(pa).ok();
    }

    #[test]
    fn scrub_skips_pinned_entries() {
        let dir = temp_dir("scrubpin");
        let (pa, _) = snapshot_file(&dir, "pa", 9);
        let cache = SnapshotCache::new(CacheConfig::default());
        cache.register("a", &pa).unwrap();
        let pin = cache.pin("a").unwrap();
        // A clean pinned entry is verified like any other.
        let clean = cache.scrub();
        assert_eq!(clean.verified, vec!["a".to_string()]);
        assert_eq!(clean.skipped_pinned, 0);
        let len = std::fs::metadata(&pa).unwrap().len() as usize;
        flip_byte(&pa, len / 2);
        let report = cache.scrub();
        assert_eq!(report.skipped_pinned, 1);
        assert_eq!(report.pinned_corrupt, vec!["a".to_string()]);
        assert!(report.quarantined.is_empty(), "pinned entries are immune");
        assert!(cache.resident("a"));
        let stats = cache.report();
        assert_eq!(stats.scrub_passes, 2);
        assert_eq!(stats.scrub_skipped_pinned, 1);
        assert_eq!(stats.quarantines, 0);
        // Once the pin drops, the next pass quarantines the rotten file.
        drop(pin);
        assert_eq!(cache.scrub().quarantined, vec!["a".to_string()]);
        assert_eq!(cache.report().quarantines, 1);
        std::fs::remove_file(pa).ok();
    }
}
