//! Multi-tenant request routing over a [`SnapshotCache`].
//!
//! [`TenantServer`] is the thin serving front for hosts that hold many
//! tenants' snapshots behind one memory budget: every query names a tenant,
//! the server pins that tenant's pipeline in the shared [`SnapshotCache`]
//! (loading it on a miss, evicting colder tenants as needed), runs the
//! query against the cached engine, and releases the pin when the answer is
//! built. Results are bit-identical to querying the tenant's pipeline
//! directly — the cache only changes *when* snapshots are resident, never
//! what they answer.

use crate::cache::{CacheError, PinnedSnapshot, SnapshotCache};
use crate::maintenance::{MaintenanceConfig, MaintenanceSupervisor, SnapshotSource};
use crate::request::{QueryRequest, QueryResponse};
use laf_clustering::Clustering;
use laf_core::LafStats;
use laf_index::Neighbor;
use std::sync::Arc;

/// Routes per-tenant queries through a shared [`SnapshotCache`].
///
/// Cloning is cheap (the cache is shared); a `TenantServer` per worker
/// thread is the intended usage.
#[derive(Debug, Clone)]
pub struct TenantServer {
    cache: Arc<SnapshotCache>,
}

impl TenantServer {
    /// A server routing through `cache`.
    pub fn new(cache: Arc<SnapshotCache>) -> Self {
        Self { cache }
    }

    /// The underlying cache (for registration, stats, or direct pinning).
    pub fn cache(&self) -> &Arc<SnapshotCache> {
        &self.cache
    }

    /// Start a self-healing [`MaintenanceSupervisor`] over this server's
    /// cache: periodic scrub, quarantine, and replica-backed repair of
    /// every tenant the cache serves (see [`MaintenanceSupervisor`]). The
    /// supervisor stops and joins when the returned handle drops; requests
    /// keep flowing through `self` while it runs.
    pub fn start_maintenance(
        &self,
        source: Arc<dyn SnapshotSource>,
        config: MaintenanceConfig,
    ) -> MaintenanceSupervisor {
        MaintenanceSupervisor::start(Arc::clone(&self.cache), source, config)
    }

    /// Pin `tenant`'s pipeline for a multi-query request. Prefer the
    /// one-shot query methods below for single lookups; use an explicit pin
    /// when several queries must see the same snapshot generation.
    pub fn pin(&self, tenant: &str) -> Result<PinnedSnapshot, CacheError> {
        self.cache.pin(tenant)
    }

    /// Answer any [`QueryRequest`] over `tenant`'s snapshot — the unified
    /// request path every typed method below funnels through. Read kinds
    /// pin the tenant's pipeline for exactly one query; write kinds fail
    /// with [`CacheError::ReadOnly`] (cached snapshots are shared, mmap'd
    /// and immutable — a tenant that takes writes needs its own mutable
    /// server, [`crate::LafServer::start_mutable`]).
    pub fn submit(&self, tenant: &str, request: QueryRequest) -> Result<QueryResponse, CacheError> {
        match request {
            QueryRequest::Insert { .. } | QueryRequest::Delete { .. } => {
                return Err(CacheError::ReadOnly {
                    tenant: tenant.to_string(),
                })
            }
            _ => {}
        }
        let pin = self.cache.pin(tenant)?;
        Ok(match request {
            QueryRequest::Range { query, eps } => {
                QueryResponse::Range(pin.engine().get().range(&query, eps))
            }
            QueryRequest::RangeCount { query, eps } => {
                QueryResponse::Count(pin.engine().get().range_count(&query, eps))
            }
            QueryRequest::Knn { query, k } => QueryResponse::Knn(pin.engine().get().knn(&query, k)),
            QueryRequest::Estimate { query, eps } => {
                QueryResponse::Estimate(pin.estimate(&query, eps))
            }
            QueryRequest::Insert { .. } | QueryRequest::Delete { .. } => {
                unreachable!("write kinds rejected before pinning")
            }
        })
    }

    /// ε-range query over `tenant`'s snapshot: row ids within `eps`.
    pub fn range(&self, tenant: &str, query: &[f32], eps: f32) -> Result<Vec<u32>, CacheError> {
        match self.submit(
            tenant,
            QueryRequest::Range {
                query: query.to_vec(),
                eps,
            },
        )? {
            QueryResponse::Range(hits) => Ok(hits),
            _ => unreachable!("range requests resolve to range responses"),
        }
    }

    /// ε-range count over `tenant`'s snapshot.
    pub fn range_count(&self, tenant: &str, query: &[f32], eps: f32) -> Result<usize, CacheError> {
        match self.submit(
            tenant,
            QueryRequest::RangeCount {
                query: query.to_vec(),
                eps,
            },
        )? {
            QueryResponse::Count(n) => Ok(n),
            _ => unreachable!("count requests resolve to count responses"),
        }
    }

    /// k-nearest-neighbor query over `tenant`'s snapshot.
    pub fn knn(&self, tenant: &str, query: &[f32], k: usize) -> Result<Vec<Neighbor>, CacheError> {
        match self.submit(
            tenant,
            QueryRequest::Knn {
                query: query.to_vec(),
                k,
            },
        )? {
            QueryResponse::Knn(neighbors) => Ok(neighbors),
            _ => unreachable!("knn requests resolve to knn responses"),
        }
    }

    /// Learned cardinality estimate from `tenant`'s trained estimator.
    pub fn estimate(&self, tenant: &str, query: &[f32], eps: f32) -> Result<f32, CacheError> {
        match self.submit(
            tenant,
            QueryRequest::Estimate {
                query: query.to_vec(),
                eps,
            },
        )? {
            QueryResponse::Estimate(est) => Ok(est),
            _ => unreachable!("estimate requests resolve to estimate responses"),
        }
    }

    /// Run LAF-DBSCAN over `tenant`'s snapshot dataset.
    pub fn cluster_with_stats(&self, tenant: &str) -> Result<(Clustering, LafStats), CacheError> {
        let pin = self.cache.pin(tenant)?;
        Ok(pin.cluster_with_stats())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::{CacheConfig, SnapshotCache};
    use laf_cardest::{NetConfig, TrainingSetBuilder};
    use laf_core::{LafConfig, LafPipeline};
    use laf_synth::EmbeddingMixtureConfig;
    use std::path::PathBuf;

    fn snapshot_file(name: &str, seed: u64) -> (PathBuf, u64, LafPipeline) {
        let (data, _) = EmbeddingMixtureConfig {
            n_points: 90,
            dim: 6,
            clusters: 2,
            seed,
            ..Default::default()
        }
        .generate()
        .unwrap();
        let dir = std::env::temp_dir().join("laf_serve_tenant");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("{name}_{}.lafs", std::process::id()));
        let pipeline = LafPipeline::builder(LafConfig::new(0.3, 4, 1.0))
            .net(NetConfig::tiny())
            .training(TrainingSetBuilder {
                max_queries: Some(40),
                ..Default::default()
            })
            .train_and_save(data, &path)
            .unwrap();
        let bytes = std::fs::metadata(&path).unwrap().len();
        (path, bytes, pipeline)
    }

    #[test]
    fn tenant_queries_match_the_direct_pipeline() {
        let (pa, bytes, direct_a) = snapshot_file("a", 11);
        let (pb, _, direct_b) = snapshot_file("b", 22);
        let cache = SnapshotCache::new(CacheConfig {
            byte_budget: bytes * 4,
            ..CacheConfig::default()
        });
        cache.register("a", &pa).unwrap();
        cache.register("b", &pb).unwrap();
        let server = TenantServer::new(Arc::clone(&cache));
        for (tenant, direct) in [("a", &direct_a), ("b", &direct_b)] {
            let q: Vec<f32> = direct.data().row(0).to_vec();
            let engine = direct.engine();
            assert_eq!(
                server.range(tenant, &q, 0.3).unwrap(),
                engine.get().range(&q, 0.3)
            );
            assert_eq!(
                server.range_count(tenant, &q, 0.3).unwrap(),
                engine.get().range_count(&q, 0.3)
            );
            assert_eq!(server.knn(tenant, &q, 5).unwrap(), engine.get().knn(&q, 5));
            assert_eq!(
                server.estimate(tenant, &q, 0.3).unwrap(),
                direct.estimate(&q, 0.3)
            );
            let (clustering, stats) = server.cluster_with_stats(tenant).unwrap();
            let (want_clustering, want_stats) = direct.cluster_with_stats();
            assert_eq!(clustering.labels(), want_clustering.labels());
            assert_eq!(stats, want_stats);
        }
        // Every query after the two misses was a hit.
        let report = cache.report();
        assert_eq!(report.misses, 2);
        assert_eq!(report.pins, report.unpins, "all pins released");
        for p in [pa, pb] {
            std::fs::remove_file(p).ok();
        }
    }

    #[test]
    fn tenant_writes_are_rejected_as_read_only() {
        let cache = SnapshotCache::new(CacheConfig::default());
        let server = TenantServer::new(cache);
        // Rejected before the pin: no UnknownTenant for a write, even on a
        // tenant that was never registered — the kind is wrong regardless.
        match server
            .submit("anyone", QueryRequest::Insert { row: vec![0.0] })
            .unwrap_err()
        {
            CacheError::ReadOnly { tenant } => assert_eq!(tenant, "anyone"),
            other => panic!("expected ReadOnly, got {other}"),
        }
        assert!(matches!(
            server
                .submit("anyone", QueryRequest::Delete { dense: 0 })
                .unwrap_err(),
            CacheError::ReadOnly { .. }
        ));
    }

    #[test]
    fn unknown_tenants_surface_the_cache_error() {
        let cache = SnapshotCache::new(CacheConfig::default());
        let server = TenantServer::new(cache);
        assert!(matches!(
            server.range("ghost", &[0.0], 0.3).unwrap_err(),
            CacheError::UnknownTenant(_)
        ));
    }
}
